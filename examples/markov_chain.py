#!/usr/bin/env python
"""Out-of-core solution of a Markov-chain ranking system.

The paper's lineage includes "distributed disk-based solution techniques
for large Markov models ... using Jacobi or Conjugate Gradient algorithms"
(its reference [6]).  This example solves a PageRank-style linear system

    (I - alpha * P^T) x = (1 - alpha)/n * 1

for a random sparse row-stochastic transition matrix P, with the matrix
stored out-of-core as DOoC sub-matrix files and every Jacobi sweep's SpMV
running through the middleware.  Validated against a direct sparse solve.

    python examples/markov_chain.py [--n 900] [--alpha 0.85]
"""

import argparse
import tempfile

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg

from repro.solvers import conjugate_gradient_solve, jacobi_solve
from repro.spmv.csr import CSRBlock
from repro.spmv.generator import choose_gap_parameter, gap_uniform_csr
from repro.spmv.ooc_operator import OutOfCoreMatrix
from repro.spmv.partition import GridPartition


def random_transition_matrix(n: int, rng: np.random.Generator) -> sp.csr_matrix:
    """A random sparse row-stochastic matrix (every row sums to 1)."""
    raw = gap_uniform_csr(n, n, choose_gap_parameter(n, 12.0), rng).to_scipy()
    raw.data = np.abs(raw.data) + 0.05
    row_sums = np.asarray(raw.sum(axis=1)).ravel()
    # Dangling rows get a self-loop.
    for i in np.nonzero(row_sums == 0)[0]:
        raw[i, i] = 1.0
    row_sums = np.asarray(raw.sum(axis=1)).ravel()
    return sp.diags(1.0 / row_sums) @ raw


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=900)
    parser.add_argument("--alpha", type=float, default=0.85)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)
    p = random_transition_matrix(args.n, rng)
    system = sp.identity(args.n) - args.alpha * p.T
    b = np.full(args.n, (1 - args.alpha) / args.n)
    reference = scipy.sparse.linalg.spsolve(sp.csc_matrix(system), b)

    k = 3
    blocks = GridPartition(args.n, k).split_matrix(
        CSRBlock.from_scipy(sp.csr_matrix(system)))

    with tempfile.TemporaryDirectory() as scratch:
        operator = OutOfCoreMatrix(blocks, n_nodes=k, scratch_dir=scratch)
        # Incremental (delta/workset) sweeps: partitions whose iterate goes
        # bitwise stationary leave the workset, so late sweeps stop
        # re-reading their sub-matrix files — same iterates, less work.
        result = jacobi_solve(operator, b, tol=1e-10, max_iterations=300,
                              mode="incremental")
        print(f"Jacobi: converged={result.converged} in "
              f"{result.iterations} out-of-core sweeps "
              f"(residual {result.residual_norm:.2e})")
        rep = result.convergence
        if rep is not None and rep.first_freeze_sweep() is not None:
            print(f"        workset dropout from sweep "
                  f"{rep.first_freeze_sweep()}: sizes {rep.workset_sizes()}")
        np.testing.assert_allclose(result.x, reference, rtol=1e-6, atol=1e-12)

    # The same system through CG on the normal equations is overkill, but
    # a symmetric Markov-like system solves directly; demonstrate CG on
    # the symmetrized diagonally-shifted variant.
    sym = sp.csr_matrix((system + system.T) * 0.5 + 0.5 * sp.identity(args.n))
    blocks_sym = GridPartition(args.n, k).split_matrix(CSRBlock.from_scipy(sym))
    ref_sym = scipy.sparse.linalg.spsolve(sp.csc_matrix(sym), b)
    with tempfile.TemporaryDirectory() as scratch:
        operator = OutOfCoreMatrix(blocks_sym, n_nodes=k, scratch_dir=scratch)
        result = conjugate_gradient_solve(operator, b, tol=1e-12)
        print(f"CG:     converged={result.converged} in "
              f"{result.iterations} out-of-core iterations "
              f"(residual {result.residual_norm:.2e})")
        np.testing.assert_allclose(result.x, ref_sym, rtol=1e-6, atol=1e-12)

    ranking = np.argsort(result.x)[::-1][:5]
    print("top-5 states by symmetrized score:", ranking.tolist())
    print("all solutions verified against scipy.sparse.linalg.spsolve")


if __name__ == "__main__":
    main()
