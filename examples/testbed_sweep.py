#!/usr/bin/env python
"""Regenerate the paper's evaluation on the simulated SSD testbed.

Runs the Table III/IV node sweeps (both scheduling policies) on the
discrete-event model of the Carver SSD testbed, then prints Fig. 6
(runtime vs the optimal-I/O bound) and Fig. 7 (CPU-hour cost vs the
MFDn-on-Hopper model), including the 9-node oversubscribed "star" run.

The full sweep simulates 36-node runs and takes a few minutes:

    python examples/testbed_sweep.py            # quick: 1, 4, 9 nodes
    python examples/testbed_sweep.py --full     # the paper's 1..36 sweep
"""

import argparse

from repro.experiments import fig6, fig7, table34
from repro.testbed import simulated_gantt


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="run the full 1..36-node sweep")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    node_counts = (1, 4, 9, 16, 25, 36) if args.full else (1, 4, 9)

    for policy in ("simple", "interleaved"):
        rows = table34.run(policy, node_counts=node_counts, seed=args.seed)
        print(table34.render(rows, policy))
        print()

    points = fig6.run(node_counts=node_counts, seed=args.seed)
    print(fig6.render(points))
    print()

    result = fig7.run(node_counts=node_counts, seed=args.seed)
    print(fig7.render(result))
    print()

    print("Activity timeline of one simulated iteration (4 nodes):")
    for policy in ("simple", "interleaved"):
        print(simulated_gantt(4, policy, seed=args.seed))
        print()


if __name__ == "__main__":
    main()
