#!/usr/bin/env python
"""The paper's use case at laptop scale: out-of-core iterated SpMV.

Generates a gap-uniform random matrix (the paper's testbed generator),
partitions it on a K x K grid across three DOoC nodes (each owning one
grid column, the Fig. 5 setting), and runs several SpMV iterations under
both reduction policies with memory for about one sub-matrix per node.
Prints per-policy matrix-load counts against the Fig. 5 plans and
validates the result against an in-core reference.

    python examples/out_of_core_spmv.py [--n 1500] [--iterations 3]
    python examples/out_of_core_spmv.py --trace run.json   # chrome://tracing
"""

import argparse
import tempfile

import numpy as np

from repro.core import DOoCEngine
from repro.spmv.csrfile import serialize_csr
from repro.spmv.generator import choose_gap_parameter, gap_uniform_csr
from repro.spmv.partition import GridPartition, column_owner
from repro.spmv.program import build_iterated_spmv
from repro.spmv.reference import (
    iterated_spmv_reference,
    loads_back_and_forth_plan,
    loads_regular_plan,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=1500, help="matrix dimension")
    parser.add_argument("--iterations", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="export the 'simple'-policy run as a Chrome trace JSON "
             "(open with chrome://tracing or https://ui.perfetto.dev)")
    args = parser.parse_args()

    k = 3
    rng = np.random.default_rng(args.seed)
    partition = GridPartition(args.n, k)
    # Dense enough that the sub-matrix files dwarf the working vectors
    # (the paper's regime: 4 GB sub-matrices vs 80 MB sub-vectors).
    matrix = gap_uniform_csr(
        args.n, args.n, choose_gap_parameter(args.n, args.n / 8.0), rng)
    blocks = partition.split_matrix(matrix)
    x0 = rng.normal(size=args.n)
    want = iterated_spmv_reference(matrix, x0, args.iterations)
    a_bytes = max(len(serialize_csr(b)) for b in blocks.values())
    print(f"matrix: {args.n} x {args.n}, {matrix.nnz} nnz, "
          f"{k}x{k} grid, ~{a_bytes / 1e6:.2f} MB per sub-matrix file")

    for policy in ("simple", "interleaved"):
        result = build_iterated_spmv(
            blocks, partition.split_vector(x0), iterations=args.iterations,
            n_nodes=k, policy=policy, owner=column_owner(k, k))
        with tempfile.TemporaryDirectory() as scratch:
            # Budget: ~1.5 sub-matrices plus room for the working vectors —
            # the Fig. 5 regime where only one sub-matrix fits at a time.
            engine = DOoCEngine(
                n_nodes=k, workers_per_node=1,
                memory_budget_per_node=int(1.5 * a_bytes) + 64 * args.n,
                scratch_dir=scratch,
                trace=bool(args.trace),
            )
            report = engine.run(result.program, timeout=600)
            got = result.fetch_final(engine)
        np.testing.assert_allclose(got, want, rtol=1e-9)
        if args.trace and policy == "simple":
            report.save_chrome_trace(args.trace)
            print(f"[{policy:11s}] trace: {len(report.trace_events)} events "
                  f"-> {args.trace}")
        matrix_loads = sum(
            c for s in report.store_stats.values()
            for a, c in s.loads_by_array.items() if a.startswith("A_")
        )
        print(f"[{policy:11s}] verified; matrix loads: {matrix_loads} "
              f"(naive plan: {k * loads_regular_plan(k, args.iterations)}, "
              f"back-and-forth: "
              f"{k * loads_back_and_forth_plan(k, args.iterations)}); "
              f"remote vector fetches: {report.total_remote_fetches}; "
              f"wall {report.wall_seconds:.2f} s")


if __name__ == "__main__":
    main()
