#!/usr/bin/env python
"""Out-of-core breadth-first search over a disk-resident graph.

Section VI points at SSD-accelerated graph traversal (the Graph 500
Leviathan result) as a neighbouring use of the same idea.  This example
runs level-synchronous BFS where each frontier expansion is one
out-of-core SpMV over the adjacency matrix stored as DOoC sub-matrix
files; the (small) frontier bookkeeping stays in core.  Levels are
validated against networkx.

    python examples/graph_bfs.py [--n 800] [--degree 6]
"""

import argparse
import tempfile

import networkx as nx
import numpy as np
import scipy.sparse as sp

from repro.spmv.csr import CSRBlock
from repro.spmv.generator import choose_gap_parameter, gap_uniform_csr
from repro.spmv.ooc_operator import OutOfCoreMatrix
from repro.spmv.partition import GridPartition


def random_undirected_adjacency(n: int, degree: float,
                                rng: np.random.Generator) -> sp.csr_matrix:
    half = gap_uniform_csr(n, n, choose_gap_parameter(n, degree / 2.0),
                           rng, values="ones").to_scipy()
    adj = ((half + half.T) > 0).astype(float)
    adj.setdiag(0)
    adj.eliminate_zeros()
    return sp.csr_matrix(adj)


def ooc_bfs_levels(operator: OutOfCoreMatrix, source: int) -> np.ndarray:
    """BFS levels (-1 = unreachable), one out-of-core SpMV per level.

    Each expansion is a *sparse frontier* sweep: vector partitions with no
    frontier vertex contribute exactly zero, so their sub-matrix column is
    never read and no task is scheduled for it.  The loop terminates at
    the explicit fixpoint — the first sweep that discovers no new vertex —
    rather than paying one more full expansion of an unchanged frontier.
    """
    n = operator.n
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.zeros(n)
    frontier[source] = 1.0
    level = 0
    while frontier.any():
        reached = operator.matvec(frontier, frontier=True)
        newly = (reached > 0) & (dist < 0)
        if not newly.any():
            break  # fixpoint: the frontier expanded into nothing new
        level += 1
        dist[newly] = level
        frontier = np.zeros(n)
        frontier[newly] = 1.0
    return dist


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=800)
    parser.add_argument("--degree", type=float, default=6.0)
    parser.add_argument("--source", type=int, default=0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)
    adj = random_undirected_adjacency(args.n, args.degree, rng)
    print(f"graph: {args.n} vertices, {adj.nnz} directed edges")

    k = 3
    blocks = GridPartition(args.n, k).split_matrix(CSRBlock.from_scipy(adj))
    with tempfile.TemporaryDirectory() as scratch:
        operator = OutOfCoreMatrix(blocks, n_nodes=k, scratch_dir=scratch)
        dist = ooc_bfs_levels(operator, args.source)
        spmvs = operator.matvec_count
        tasks = sum(e["tasks"] for e in operator.sweep_log)
        active = [len(e["active"]) for e in operator.sweep_log]

    graph = nx.from_scipy_sparse_array(adj)
    expected = nx.single_source_shortest_path_length(graph, args.source)
    want = np.full(args.n, -1, dtype=np.int64)
    for node, level in expected.items():
        want[node] = level
    np.testing.assert_array_equal(dist, want)

    reachable = int((dist >= 0).sum())
    eccentricity = int(dist.max())
    print(f"BFS from vertex {args.source}: {reachable}/{args.n} vertices "
          f"reached, eccentricity {eccentricity}, "
          f"{spmvs} out-of-core frontier expansions")
    print(f"sparse frontiers: {tasks} tasks total, active partitions per "
          f"expansion {active} (full sweeps would use {k} each)")
    hist = np.bincount(dist[dist >= 0])
    print("vertices per level:", hist.tolist())
    print("levels verified against networkx")


if __name__ == "__main__":
    main()
