#!/usr/bin/env python
"""The motivating application: eigenvalues of a CI-style Hamiltonian.

1. Counts the exact M-scheme basis dimensions of the paper's 10B cases
   (Table I) from first principles.
2. Builds a laptop-scale synthetic symmetric "Hamiltonian", stores it as
   binary-CSR sub-matrix files, and finds its lowest eigenvalues with the
   out-of-core Lanczos solver whose SpMV runs through DOoC.

    python examples/nuclear_eigenvalues.py [--n 600] [--eigenvalues 3]
"""

import argparse
import tempfile

import numpy as np

from repro.ci.cases import TABLE1_CASES
from repro.lanczos import OutOfCoreLanczos
from repro.spmv.generator import symmetric_test_matrix
from repro.spmv.partition import GridPartition


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=600)
    parser.add_argument("--eigenvalues", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print("Exact M-scheme dimensions of the paper's 10B spaces (Table I):")
    for case in TABLE1_CASES[:2]:  # the larger two take a few seconds more
        d = case.space().dimension()
        print(f"  Nmax={case.nmax}, Mj={case.mj}: D = {d:,} "
              f"(paper: {case.published_dimension:.3g})")

    print(f"\nOut-of-core Lanczos on a synthetic {args.n}-dim Hamiltonian:")
    rng = np.random.default_rng(args.seed)
    hamiltonian = symmetric_test_matrix(args.n, 12.0, rng, diag_shift=40.0)
    partition = GridPartition(args.n, 3)
    blocks = partition.split_matrix(hamiltonian)
    exact = np.linalg.eigvalsh(hamiltonian.to_dense())[: args.eigenvalues]

    with tempfile.TemporaryDirectory() as scratch:
        solver = OutOfCoreLanczos(blocks, n_nodes=3, scratch_dir=scratch)
        result = solver.solve(
            k=min(args.n, 80), n_eigenvalues=args.eigenvalues,
            rng=np.random.default_rng(1), tol=1e-9)

    print(f"  Lanczos iterations: {result.iterations} "
          f"(each SpMV ran out-of-core on 3 DOoC nodes; "
          f"{solver.matvec_count} distributed SpMVs)")
    for i, (got, want) in enumerate(zip(result.eigenvalues, exact, strict=True)):
        print(f"  E_{i}: {got:+.8f}   (dense reference {want:+.8f}, "
              f"residual bound {result.residuals[i]:.1e})")
    np.testing.assert_allclose(result.eigenvalues, exact, rtol=1e-6)
    print("  lowest eigenvalues verified against the dense solver")


if __name__ == "__main__":
    main()
