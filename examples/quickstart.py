#!/usr/bin/env python
"""Quickstart: run a task DAG out-of-core through DOoC.

Declares two global arrays and a two-stage computation, runs it on a
two-node (threaded) DOoC engine with a deliberately small memory budget,
and prints what the storage layer did: the out-of-core machinery (loads,
spills, scheduling) is fully exercised even by this toy program.

    python examples/quickstart.py
"""

import tempfile

import numpy as np

from repro.core import DOoCEngine, Program


def scale(ins, outs, meta):
    outs["y"][:] = meta["factor"] * ins["x"]


def shift(ins, outs, meta):
    outs["z"][:] = ins["y"] + meta["offset"]


def main() -> None:
    n = 1 << 16  # 64k doubles = 512 KiB per array
    prog = Program("quickstart", default_block_elems=1 << 14)

    x = np.linspace(0.0, 1.0, n)
    prog.initial_array("x", x, home=0)
    prog.array("y", n)
    prog.array("z", n)
    prog.add_task("scale", scale, ["x"], ["y"], factor=3.0)
    prog.add_task("shift", shift, ["y"], ["z"], offset=1.0)

    with tempfile.TemporaryDirectory() as scratch:
        engine = DOoCEngine(
            n_nodes=2,
            workers_per_node=2,
            memory_budget_per_node=1 << 20,  # 1 MiB: forces out-of-core
            scratch_dir=scratch,
        )
        report = engine.run(prog)
        z = engine.fetch("z")

    np.testing.assert_allclose(z, 3.0 * x + 1.0)
    print("result verified: z = 3x + 1 on", n, "elements")
    print("task placement:", report.assignment)
    for node, stats in report.store_stats.items():
        print(
            f"node {node}: loads={stats.loads} spills={stats.spills} "
            f"drops={stats.drops} remote_fetches={stats.remote_fetches}"
        )
    print(f"wall time: {report.wall_seconds:.3f} s")


if __name__ == "__main__":
    main()
