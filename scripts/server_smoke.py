"""CI smoke for the job service: one real server, eight real clients.

Starts ``python -m repro serve`` as a subprocess (fault injection on via
``DOOC_FAULT_SEED``), drives a mixed batch from 8 concurrent clients —
including one over-budget job, one past-deadline job, one preemption
victim, and fault-exposed ordinary jobs — then SIGTERMs the server and
asserts:

* every job ended in a *structured* terminal state (done / rejected /
  deadline-exceeded / cancelled), never a hang or a watchdog stall;
* the preemption victim resumed from a checkpoint;
* the server exited 0 after the drain wrote its manifest;
* /dev/shm and the scratch tempdir hold no ``dooc-*`` litter.

Exit status: 0 on success, 1 on any violated expectation.

    PYTHONPATH=src python scripts/server_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.server.client import JobClient  # noqa: E402
from repro.server.jobs import JobState  # noqa: E402

BIG = 4 * 2**20  # two of these fill the 8 MiB budget exactly


def start_server(env: dict) -> tuple[subprocess.Popen, str]:
    proc = subprocess.Popen(
        [sys.executable, "-W", "ignore", "-m", "repro", "serve",
         "--port", "0", "--memory-budget-mb", "8", "--engine-budget-mb",
         "32", "--max-concurrent", "2",
         "--quota", "vip=2,4,4.0", "--quota", "bulk=2,4,1.0"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    for _ in range(20):
        line = proc.stdout.readline()
        if not line:
            break
        print(f"[server] {line.rstrip()}")
        m = re.search(r"http://127\.0\.0\.1:(\d+)", line)
        if m:
            return proc, f"http://127.0.0.1:{m.group(1)}"
    raise RuntimeError("server never printed its listen address")


def main() -> int:
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"),
               PYTHONUNBUFFERED="1")
    env.setdefault("DOOC_FAULT_SEED", "29")
    print(f"fault seed: {env['DOOC_FAULT_SEED']}")
    proc, url = start_server(env)
    pump = threading.Thread(
        target=lambda: [print(f"[server] {ln.rstrip()}")
                        for ln in proc.stdout], daemon=True)
    pump.start()
    client = JobClient(url, timeout=60)
    results: dict[int, dict] = {}
    errors: list[str] = []
    heavy_ids: list[str] = []
    lock = threading.Lock()

    def record(i, rec):
        with lock:
            results[i] = rec

    def run_client(i: int) -> None:
        try:
            if i == 0:  # over budget: must be rejected by name
                rec = client.submit({"tenant": "bulk", "kind": "cg",
                                     "n": 64, "parts": 2,
                                     "working_set_bytes": 10**12})
                record(i, rec)
                return
            if i == 1:  # past deadline: supervisor must cancel it
                rec = client.submit({"tenant": "bulk", "kind": "spmv",
                                     "n": 96, "parts": 2,
                                     "iterations": 5000,
                                     "checkpoint_every": 10,
                                     "deadline_s": 1.0})
            elif i in (2, 3):  # heavy bulk pair: preemption victims
                rec = client.submit({"tenant": "bulk", "kind": "spmv",
                                     "n": 96, "parts": 2,
                                     "iterations": 600,
                                     "checkpoint_every": 2,
                                     "working_set_bytes": BIG})
                with lock:
                    heavy_ids.append(rec["id"])
            elif i == 4:  # the heavier tenant that provokes preemption:
                # wait until both victims hold the whole budget, so the
                # vip job cannot fit without suspending one of them.
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    with lock:
                        ids = list(heavy_ids)
                    if len(ids) == 2 and all(
                            client.status(j)["state"] == "running"
                            for j in ids):
                        break
                    time.sleep(0.1)
                time.sleep(1.0)  # let them pass a checkpoint boundary
                rec = client.submit({"tenant": "vip", "kind": "jacobi",
                                     "n": 64, "parts": 2, "iterations": 8,
                                     "working_set_bytes": BIG})
            else:  # ordinary fault-exposed jobs across kinds
                kind = ("jacobi", "cg", "lanczos")[i % 3]
                rec = client.submit({"tenant": ("vip", "bulk")[i % 2],
                                     "kind": kind, "n": 64, "parts": 2,
                                     "iterations": 6, "seed": i})
            if rec["state"] == JobState.REJECTED:
                record(i, rec)
                return
            record(i, client.wait_terminal(rec["id"], timeout=240))
        except Exception as exc:  # noqa: BLE001 - reported below
            with lock:
                errors.append(f"client {i}: {exc!r}")

    threads = [threading.Thread(target=run_client, args=(i,))
               for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300)

    ok = True
    if errors:
        ok = False
        for e in errors:
            print(f"FAIL: {e}")
    for i, rec in sorted(results.items()):
        print(f"client {i}: {rec['id']} -> {rec['state']} "
              f"(attempts={rec.get('attempts')}, "
              f"preemptions={rec.get('preemptions')})")
    expect = {0: JobState.REJECTED, 1: JobState.DEADLINE_EXCEEDED,
              4: JobState.DONE}
    for i, want in expect.items():
        got = results.get(i, {}).get("state")
        if got != want:
            print(f"FAIL: client {i} expected {want}, got {got}")
            ok = False
    for i, rec in results.items():
        if rec.get("state") not in JobState.TERMINAL:
            print(f"FAIL: client {i} job not terminal: {rec}")
            ok = False
        if rec.get("outcome", {}).get("error_type") == "StallError":
            print(f"FAIL: client {i} died as a watchdog stall: {rec}")
            ok = False
    victims = [rec for i, rec in results.items() if i in (2, 3)]
    resumed = [r for r in victims if r.get("preemptions", 0) > 0]
    if not resumed:
        print("FAIL: neither heavy bulk job was preempted")
        ok = False
    for rec in resumed:
        if rec["state"] == JobState.DONE and \
                rec["outcome"].get("restored_from") is None:
            print(f"FAIL: preempted job {rec['id']} did not resume "
                  "from a checkpoint")
            ok = False

    # graceful SIGTERM drain
    proc.send_signal(signal.SIGTERM)
    try:
        rc = proc.wait(timeout=90)
    except subprocess.TimeoutExpired:
        proc.kill()
        print("FAIL: server did not exit within 90 s of SIGTERM")
        return 1
    print(f"server exit code: {rc}")
    if rc != 0:
        ok = False

    litter = [f for f in os.listdir("/dev/shm") if f.startswith("dooc-")]
    if litter:
        print(f"FAIL: /dev/shm litter after drain: {litter}")
        ok = False
    tmp = Path(tempfile.gettempdir())
    dirt = [p.name for p in tmp.iterdir()
            if re.match(rf"dooc-{proc.pid}-", p.name)]
    if dirt:
        print(f"FAIL: scratch litter after drain: {dirt}")
        ok = False

    print("SERVER SMOKE " + ("PASSED" if ok else "FAILED"))
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
