"""Fig. 7 benchmark: CPU-hour cost crossover, testbed vs Hopper."""

import pytest

from repro.experiments import fig7


@pytest.mark.paper
def bench_fig7(once):
    result = once(fig7.run, seed=1)
    print()
    print(fig7.render(result))
    # 9-node run vs test1128: comparable cost (1.68 vs 1.72 in the paper).
    testbed_9 = dict((int(d / 1e6), c) for d, c in result.testbed_points)[150]
    hopper_1128 = result.hopper_points[1][1]
    assert testbed_9 == pytest.approx(hopper_1128, rel=0.35)
    # 36-node run about 2x worse than test4560 (bandwidth-per-node bound).
    testbed_36 = dict((int(d / 1e6), c) for d, c in result.testbed_points)[300]
    hopper_4560 = result.hopper_points[2][1]
    assert 1.3 < testbed_36 / hopper_4560 < 2.7
    # The star: significantly cheaper than the comparable Hopper run
    # (32% in the paper).
    assert 0.15 < result.star_saving_vs_hopper < 0.55
    assert result.star_cpu_hours == pytest.approx(
        result.published_star_cpu_hours, rel=0.25)
