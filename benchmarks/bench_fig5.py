"""Fig. 5 benchmark: the back-and-forth plan emerging from the real
threaded DOoC engine, asserted from the run *trace* (traversal order),
not just aggregate load counts."""

import pytest

from repro.experiments import fig5


@pytest.mark.paper
def bench_fig5_back_and_forth(once, tmp_path):
    result = once(fig5.run, iterations=3, seed=3, scratch_dir=tmp_path)
    print()
    print(fig5.render(result))
    assert result.correct

    naive = result.engine_matrix_loads_naive_total          # 27
    bnf = 3 * result.back_and_forth_loads_per_node          # 21
    assert result.engine_matrix_loads_total < naive
    assert abs(result.engine_matrix_loads_total - bnf) <= 3

    # The figure's claim is about *order*, not only counts: each node
    # should traverse its sub-matrix column back and forth, keeping the
    # boundary block resident across iterations instead of restarting
    # from the top (Fig. 5a).  Read that off the storage.load trace.
    order = result.engine_load_order
    assert sorted(order) == list(range(result.k)), "loads seen on every node"
    for node, rows in order.items():
        diffs = [b - a for a, b in zip(rows, rows[1:], strict=False)]
        assert any(d > 0 for d in diffs) and any(d < 0 for d in diffs), (
            f"node {node}: no direction reversal in load order {rows}")
        # Regular plan reloads the whole column every iteration.
        assert len(rows) < result.k * result.iterations, (
            f"node {node}: no cross-iteration reuse in load order {rows}")
