"""Fig. 5 benchmark: the back-and-forth plan emerging from the real
threaded DOoC engine (load counts + correctness)."""

import pytest

from repro.experiments import fig5


@pytest.mark.paper
def bench_fig5_back_and_forth(once, tmp_path):
    result = once(fig5.run, iterations=3, seed=3, scratch_dir=tmp_path)
    print()
    print(fig5.render(result))
    assert result.correct
    naive = result.engine_matrix_loads_naive_total          # 27
    bnf = 3 * result.back_and_forth_loads_per_node          # 21
    assert result.engine_matrix_loads_total < naive
    assert abs(result.engine_matrix_loads_total - bnf) <= 3
