"""Table I benchmark: exact dimension counting + nnz estimation."""

import pytest

from repro.ci.cases import TABLE1_CASES
from repro.experiments import table1


@pytest.mark.paper
def bench_table1_full(once):
    rows = once(table1.run, nnz_samples=30, seed=0)
    print()
    print(table1.render(rows))
    for row in rows:
        assert row.dimension == pytest.approx(row.published_dimension,
                                              rel=0.005)


def bench_table1_dimension_counting_speed(benchmark):
    """Microbenchmark: one exact M-scheme dimension (largest case)."""
    case = TABLE1_CASES[-1]

    def count():
        return case.space().dimension()

    d = benchmark.pedantic(count, rounds=3, iterations=1, warmup_rounds=0)
    assert d == pytest.approx(case.published_dimension, rel=0.005)
