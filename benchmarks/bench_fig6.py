"""Fig. 6 benchmark: runtime relative to the 20 GB/s optimal-I/O bound."""

import pytest

from repro.experiments import fig6


@pytest.mark.paper
def bench_fig6(once):
    points = once(fig6.run, seed=1)
    print()
    print(fig6.render(points))
    by = {(p.policy, p.nodes): p for p in points}
    # Shape: the interleaved policy sits closer to the optimum everywhere
    # at >= 9 nodes, and both policies approach it as nodes grow (until
    # the ceiling binds).
    for nodes in (9, 16, 25, 36):
        assert by[("interleaved", nodes)].relative_time < \
            by[("simple", nodes)].relative_time
    # 1 node is far above the bound (a single 1.45 GB/s client vs 20 GB/s).
    assert by[("simple", 1)].relative_time > 10
    # At 16+ nodes the interleaved policy is within ~2.1x of optimal I/O
    # (the paper's best points sit around 1.3-1.6x).
    assert by[("interleaved", 16)].relative_time < 2.1
