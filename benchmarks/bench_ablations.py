"""Ablations over the design choices DESIGN.md calls out.

Each ablation switches off one modelled mechanism and reports how the
reproduced Table III/IV behaviour degrades — evidence that the mechanism
(not a tuned constant) carries the corresponding effect in the paper.
"""

import pytest

from repro.testbed import TestbedParams, run_testbed_spmv


@pytest.mark.paper
def bench_ablate_prefetch_window(once):
    """Without the prefetch window (window=1), the interleaved policy
    loses its ability to hide barrier waits behind next-iteration reads."""

    def run():
        base = run_testbed_spmv(16, "interleaved", seed=1)
        no_window = run_testbed_spmv(
            16, "interleaved", seed=1,
            params=TestbedParams(window=1))
        return base, no_window

    base, no_window = once(run)
    print()
    print(f"  window=4: {base.time_s:.0f} s, "
          f"non-overlapped {100 * base.non_overlapped_fraction:.0f}%")
    print(f"  window=1: {no_window.time_s:.0f} s, "
          f"non-overlapped {100 * no_window.non_overlapped_fraction:.0f}%")
    assert no_window.time_s > base.time_s


@pytest.mark.paper
def bench_ablate_gpfs_jitter(once):
    """Without shared-GPFS bandwidth variation, barriers have nothing to
    amplify: the simple policy's non-overlapped fraction collapses toward
    its compute-only floor, far below Table III's 30-36%."""

    def run():
        noisy = run_testbed_spmv(16, "simple", seed=1)
        quiet = run_testbed_spmv(
            16, "simple", seed=1,
            params=TestbedParams(jitter_cv0=0.0, jitter_cv_per_node=0.0))
        return noisy, quiet

    noisy, quiet = once(run)
    print()
    print(f"  jittered GPFS: non-overlapped "
          f"{100 * noisy.non_overlapped_fraction:.0f}% "
          f"(paper: 36%), t={noisy.time_s:.0f} s")
    print(f"  ideal GPFS:    non-overlapped "
          f"{100 * quiet.non_overlapped_fraction:.0f}%, t={quiet.time_s:.0f} s")
    assert quiet.non_overlapped_fraction < noisy.non_overlapped_fraction
    assert quiet.time_s < noisy.time_s


@pytest.mark.paper
def bench_ablate_local_aggregation(once):
    """The interleaved policy's per-node aggregation cuts reduction traffic
    5x; shipping raw intermediates through the receive path is what makes
    the simple policy's reduction phase expensive."""

    def run():
        simple = run_testbed_spmv(25, "simple", seed=1)
        inter = run_testbed_spmv(25, "interleaved", seed=1)
        return simple, inter

    simple, inter = once(run)
    print()
    print(f"  raw intermediates (simple): {simple.time_s:.0f} s")
    print(f"  aggregated partials (interleaved): {inter.time_s:.0f} s")
    assert inter.time_s < simple.time_s


@pytest.mark.paper
def bench_ablate_contention_loss(once):
    """GPFS aggregate degradation under many clients produces the GFlop/s
    plateau's slight decline; without it the plateau is flat-to-rising."""

    def run():
        base = run_testbed_spmv(36, "simple", seed=1)
        ideal = run_testbed_spmv(
            36, "simple", seed=1,
            spec=_spec_without_contention(36))
        return base, ideal

    base, ideal = once(run)
    print()
    print(f"  with contention loss: {base.gflops:.2f} GF/s (paper: 3.15)")
    print(f"  ideal aggregate:      {ideal.gflops:.2f} GF/s")
    assert ideal.gflops > base.gflops


@pytest.mark.paper
def bench_ablate_scheduler_reordering(once, tmp_path):
    """Switching off the local scheduler's data-aware reordering in the
    REAL threaded engine reverts Fig. 5's load counts to the naive plan —
    the contribution's headline mechanism, isolated."""
    import numpy as np

    from repro.core import DOoCEngine
    from repro.spmv.csrfile import serialize_csr
    from repro.spmv.generator import choose_gap_parameter, gap_uniform_csr
    from repro.spmv.partition import GridPartition, column_owner
    from repro.spmv.program import build_iterated_spmv

    def run(reorder):
        k, n, iterations = 3, 150, 3
        rng = np.random.default_rng(3)
        p = GridPartition(n, k)
        m = gap_uniform_csr(n, n, choose_gap_parameter(n, 20.0), rng)
        blocks = p.split_matrix(m)
        result = build_iterated_spmv(
            blocks, p.split_vector(rng.normal(size=n)),
            iterations=iterations, n_nodes=k, policy="simple",
            owner=column_owner(k, k))
        a_bytes = max(len(serialize_csr(b)) for b in blocks.values())
        eng = DOoCEngine(
            n_nodes=k, workers_per_node=1,
            memory_budget_per_node=int(a_bytes * 1.5) + 3000,
            scratch_dir=tmp_path / str(reorder),
            scheduler_reorder=reorder,
        )
        report = eng.run(result.program, timeout=300)
        return sum(
            c for s in report.store_stats.values()
            for a, c in s.loads_by_array.items() if a.startswith("A_")
        )

    def both():
        return run(True), run(False)

    smart, naive = once(both)
    print()
    print(f"  data-aware reordering: {smart} matrix loads "
          f"(Fig. 5b plan: 21)")
    print(f"  FIFO (naive plan):     {naive} matrix loads "
          f"(Fig. 5a plan: 27)")
    assert smart < naive


def _spec_without_contention(nodes):
    import dataclasses

    from repro.cluster.spec import carver_ssd_testbed

    spec = carver_ssd_testbed(compute_nodes=nodes)
    fs = dataclasses.replace(spec.filesystem, contention_loss_per_client=0.0)
    return dataclasses.replace(spec, filesystem=fs)
