"""Table II benchmark: the MFDn-on-Hopper model vs published rows."""

import pytest

from repro.experiments import table2


@pytest.mark.paper
def bench_table2(once):
    rows = once(table2.run)
    print()
    print(table2.render(rows))
    # Shape assertions: communication fraction must grow monotonically and
    # end dominating the iteration (34% -> 86% in the paper).
    fracs = [r.comm_fraction for r in rows]
    assert all(b > a for a, b in zip(fracs, fracs[1:], strict=False))
    assert fracs[-1] > 0.75
    for r in rows:
        assert r.cpu_hours_per_iteration == pytest.approx(
            r.published_cpu_hours, rel=0.25)
