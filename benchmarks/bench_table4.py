"""Table IV benchmark: the interleaved-policy sweep, and the policy delta."""

import pytest

from repro.experiments import table34


@pytest.mark.paper
def bench_table4_sweep(once):
    rows = once(table34.run, "interleaved", seed=1)
    print()
    print(table34.render(rows, "interleaved"))
    by_nodes = {r.measured.nodes: r for r in rows}
    for nodes, row in by_nodes.items():
        assert row.measured.time_s == pytest.approx(
            row.published["time_s"], rel=0.25), f"{nodes} nodes"
        # Overlap claim: >= 80% of the time is filesystem I/O at scale.
        if nodes >= 9:
            assert row.measured.non_overlapped_fraction < 0.25
    # CPU-hour cost column must be monotonically increasing with nodes.
    costs = [by_nodes[n].measured.cpu_hours_per_iteration
             for n in sorted(by_nodes)]
    assert costs == sorted(costs)


@pytest.mark.paper
def bench_policy_gain_at_scale(once):
    """The paper's 17-28% improvement of interleaving at >= 9 nodes."""
    def both():
        simple = table34.run("simple", node_counts=(9, 16, 25, 36), seed=1)
        inter = table34.run("interleaved", node_counts=(9, 16, 25, 36), seed=1)
        return simple, inter

    simple, inter = once(both)
    print()
    for s, i in zip(simple, inter, strict=True):
        gain = 1 - i.measured.time_s / s.measured.time_s
        print(f"  {s.measured.nodes:2d} nodes: interleaving gains "
              f"{100 * gain:.0f}% (paper: 17-28%)")
        assert 0.05 < gain < 0.40
