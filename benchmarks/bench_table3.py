"""Table III benchmark: the full simple-policy sweep on the simulated
SSD testbed (1-36 nodes, 4 iterations each)."""

import pytest

from repro.experiments import table34


@pytest.mark.paper
def bench_table3_sweep(once):
    rows = once(table34.run, "simple", seed=1)
    print()
    print(table34.render(rows, "simple"))
    by_nodes = {r.measured.nodes: r for r in rows}
    # Near-linear GFlop/s to 9 nodes...
    assert by_nodes[9].measured.gflops == pytest.approx(
        9 * by_nodes[1].measured.gflops, rel=0.30)
    # ... then a plateau: 16 -> 36 nodes gains < 15%.
    g16 = by_nodes[16].measured.gflops
    g36 = by_nodes[36].measured.gflops
    assert abs(g36 - g16) / g16 < 0.15
    # Every row's wall time within 25% of the published one.
    for nodes, row in by_nodes.items():
        assert row.measured.time_s == pytest.approx(
            row.published["time_s"], rel=0.25), f"{nodes} nodes"
