"""Benchmarks for the Section VI extensions (colocated SSDs, energy)."""

import pytest

from repro.experiments import extensions


@pytest.mark.paper
def bench_colocated_ssd_sweep(once):
    rows = once(extensions.run_colocated, node_counts=(1, 4, 9, 16), seed=1)
    print()
    print(extensions.render_colocated(rows))
    # Linear scaling without the shared aggregate: 16-node colocated beats
    # 16-node shared by a wide margin.
    last = rows[-1]
    assert last.colocated.gflops > 1.5 * last.shared.gflops


@pytest.mark.paper
def bench_energy_comparison(once):
    cmp_ = once(extensions.run_energy, node_counts=(9, 36), seed=1)
    print()
    print(extensions.render_energy(cmp_))
    # Colocation always beats the separated design on energy.
    for sep, col in zip(cmp_.testbed, cmp_.colocated, strict=True):
        assert col.kwh < sep.kwh
