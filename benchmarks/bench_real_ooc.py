"""Real (non-simulated) out-of-core benchmarks on the threaded engine.

Laptop-scale counterparts of the headline claims, on real files and real
NumPy kernels: wall-clock numbers are indicative only (Python threads),
so assertions target load/spill/byte counts — the quantities the
scheduler actually controls.
"""

import numpy as np
import pytest

from repro.core import DOoCEngine
from repro.lanczos import OutOfCoreLanczos, lanczos
from repro.spmv.csrfile import serialize_csr
from repro.spmv.generator import choose_gap_parameter, gap_uniform_csr, symmetric_test_matrix
from repro.spmv.partition import GridPartition
from repro.spmv.program import build_iterated_spmv
from repro.spmv.reference import iterated_spmv_reference


def _problem(n, k, seed, nnz_per_row=24.0):
    rng = np.random.default_rng(seed)
    p = GridPartition(n, k)
    matrix = gap_uniform_csr(n, n, choose_gap_parameter(n, nnz_per_row), rng)
    return matrix, p, p.split_matrix(matrix), rng.normal(size=n)


@pytest.mark.paper
def bench_real_ooc_iterated_spmv(once, tmp_path):
    """Out-of-core iterated SpMV under memory pressure, both policies."""
    matrix, p, blocks, x0 = _problem(n=2000, k=4, seed=0)
    a_bytes = max(len(serialize_csr(b)) for b in blocks.values())

    def run(policy):
        result = build_iterated_spmv(
            blocks, p.split_vector(x0), iterations=3, n_nodes=1,
            policy=policy)
        eng = DOoCEngine(
            n_nodes=1, workers_per_node=2,
            memory_budget_per_node=4 * a_bytes + 512 * 1024,
            scratch_dir=tmp_path / policy,
        )
        report = eng.run(result.program, timeout=300)
        got = result.fetch_final(eng)
        return report, got

    report, got = once(run, "interleaved")
    want = iterated_spmv_reference(matrix, x0, 3)
    np.testing.assert_allclose(got, want, rtol=1e-9)
    print()
    print(f"  loads={report.total_loads} spills={report.total_spills} "
          f"wall={report.wall_seconds:.2f}s")
    assert report.total_loads > 0  # genuinely out-of-core


@pytest.mark.paper
def bench_real_ooc_lanczos(once, tmp_path):
    """Out-of-core Lanczos finds the right lowest eigenvalues."""
    n, k = 600, 3
    b = symmetric_test_matrix(n, 12.0, np.random.default_rng(1),
                              diag_shift=40.0)
    p = GridPartition(n, k)
    blocks = p.split_matrix(b)

    def run():
        ooc = OutOfCoreLanczos(blocks, n_nodes=1, scratch_dir=tmp_path)
        return ooc.solve(k=60, n_eigenvalues=3,
                         rng=np.random.default_rng(2), tol=1e-8)

    result = once(run)
    incore = lanczos(b.matvec, n, k=60, n_eigenvalues=3,
                     rng=np.random.default_rng(2), tol=1e-8)
    print()
    print(f"  lowest eigenvalues: {result.eigenvalues}")
    np.testing.assert_allclose(result.eigenvalues, incore.eigenvalues,
                               rtol=1e-6)


def bench_spmv_kernel_throughput(benchmark):
    """Microbenchmark: the SciPy CSR kernel the workers run."""
    rng = np.random.default_rng(3)
    b = gap_uniform_csr(20000, 20000, choose_gap_parameter(20000, 50), rng)
    x = rng.normal(size=20000)
    y = benchmark(lambda: b.matvec(x))
    assert y.shape == (20000,)


def bench_middleware_overhead(once, tmp_path):
    """Honest overhead quantification: the same iterated SpMV in-core
    (plain SciPy loop) vs through the full DOoC engine with ample memory.
    The engine pays for file seeding, message passing, and thread
    scheduling; the printed ratio is the cost of the middleware at a scale
    where I/O is NOT the bottleneck (at the paper's scale it is, and the
    middleware cost vanishes under it)."""
    import time

    matrix, p, blocks, x0 = _problem(n=3000, k=3, seed=4, nnz_per_row=40.0)

    t0 = time.perf_counter()
    want = iterated_spmv_reference(matrix, x0, 4)
    incore_s = time.perf_counter() - t0

    def run_engine():
        result = build_iterated_spmv(
            blocks, p.split_vector(x0), iterations=4, n_nodes=1,
            policy="interleaved")
        eng = DOoCEngine(n_nodes=1, workers_per_node=2,
                         memory_budget_per_node=1 << 30,
                         scratch_dir=tmp_path)
        report = eng.run(result.program, timeout=300)
        return result.fetch_final(eng), report

    got, report = once(run_engine)
    np.testing.assert_allclose(got, want, rtol=1e-9)
    print()
    print(f"  in-core SciPy loop: {incore_s * 1e3:.1f} ms")
    print(f"  DOoC engine:        {report.wall_seconds * 1e3:.1f} ms "
          f"({report.wall_seconds / max(incore_s, 1e-9):.0f}x overhead at "
          "laptop scale, I/O not binding)")
