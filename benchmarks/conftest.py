"""Benchmark harness configuration.

Heavy simulations run once per benchmark (pedantic mode); the printed
tables are the regenerated paper artefacts, emitted with ``-s`` or
captured into ``bench_output.txt``.
"""

import pytest


def pytest_configure(config):
    # Benchmarks live outside testpaths; make intent explicit when invoked.
    config.addinivalue_line("markers", "paper: regenerates a paper artefact")


@pytest.fixture
def once(benchmark):
    """Run the target exactly once under the benchmark clock."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return runner
