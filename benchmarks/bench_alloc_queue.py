"""Alloc-queue pump benchmark: drain a deep demand-allocation queue.

Regression guard for the quadratic ``LocalStore._pump_allocs``: with a
budget of one block and N queued write grants, every release pumps the
queue.  The pump must make a *single pass* with a skip threshold — the
old implementation restarted from the head after each admission and ran
an LRU reclaim walk per blocked entry, so draining a deep queue cost
O(n^2) thunk scans with redundant spill walks.
"""

import numpy as np
import pytest

from repro.core.array import ArrayDesc
from repro.core.interval import whole_block
from repro.core.storage import LocalStore

DEPTH = 400
BLOCK = 64  # float64 elements -> 512 B per block


def _drain_deep_queue(depth: int = DEPTH) -> LocalStore:
    """Queue ``depth`` write grants behind one block of budget, then
    release grants one by one so each release pumps the deep queue."""
    store = LocalStore(0, memory_budget=BLOCK * 8)
    descs = [ArrayDesc(f"q{i}", length=BLOCK, block_elems=BLOCK)
             for i in range(depth)]
    for d in descs:
        store.create_array(d)

    granted = []

    def absorb(ticket, effects):
        for e in effects:
            if e.kind == "grant_write":
                granted.append(e.ticket)
            elif e.kind == "spill":
                # Complete spills synchronously; follow-up effects are
                # themselves grants or more spills.
                absorb(None, store.on_spilled(e.array, e.block))

    t, eff = store.request_write(whole_block(descs[0], 0))
    absorb(t, eff)
    for d in descs[1:]:
        t, eff = store.request_write(whole_block(d, 0))
        absorb(t, eff)

    done = 0
    while granted:
        ticket = granted.pop(0)
        ticket.data[:] = float(done)
        absorb(None, store.release(ticket))
        done += 1
    assert done == depth, f"only {done}/{depth} grants completed"
    assert store.alloc_queue_depth == 0
    return store


@pytest.mark.paper
def bench_alloc_queue_pump(once):
    store = once(_drain_deep_queue)
    assert store.metrics.maximum("alloc_queue_depth") >= DEPTH - 1
    assert np.isfinite(store.in_use)
