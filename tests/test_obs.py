"""Tests for the :mod:`repro.obs` observability package."""

import json
import threading

import pytest

from repro.obs import (
    SCHEMA_VERSION,
    MetricsRegistry,
    TraceEvent,
    Tracer,
    events_from_sim_trace,
    export_chrome_trace,
    load_chrome_trace,
    load_events_jsonl,
    normalize_chrome_trace,
    save_events_jsonl,
    to_chrome,
    validate_chrome_trace,
)
from repro.obs.cli import main as trace_cli
from repro.sim.trace import TraceRecorder


class FakeClock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestTracer:
    def test_instant_uses_injected_clock(self):
        clock = FakeClock(100.0)
        tr = Tracer(clock=clock)
        clock.advance(1.5)
        tr.instant(0, "sched", "sched", "prefetch", array="A_0_0")
        (e,) = tr.events()
        assert e.ts == pytest.approx(1.5)  # relative to the epoch
        assert (e.node, e.lane, e.cat, e.name, e.ph) == (
            0, "sched", "sched", "prefetch", "i")
        assert e.args == {"array": "A_0_0"}

    def test_span_records_duration(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        with tr.span(1, "worker/0", "task", "task", task="t0"):
            clock.advance(2.0)
        (e,) = tr.events()
        assert e.ph == "X"
        assert e.dur == pytest.approx(2.0)
        assert e.ts == pytest.approx(0.0)

    def test_counter_event(self):
        tr = Tracer(clock=FakeClock())
        tr.counter(0, "storage", "storage", "alloc_queue", 7)
        (e,) = tr.events()
        assert e.ph == "C" and e.args["value"] == 7

    def test_disabled_records_nothing_but_keeps_heartbeat(self):
        clock = FakeClock()
        tr = Tracer(enabled=False, clock=clock)
        clock.advance(3.0)
        tr.instant(0, "x", "task", "task")
        assert tr.events() == []
        assert tr.last_activity == pytest.approx(3.0)

    def test_ring_overflow_counts_dropped(self):
        tr = Tracer(capacity=4, clock=FakeClock())
        for i in range(10):
            tr.instant(0, "x", "task", f"e{i}")
        events = tr.events()
        assert len(events) == 4
        assert [e.name for e in events] == ["e6", "e7", "e8", "e9"]
        assert tr.dropped() == {0: 6}

    def test_per_node_rings_and_filter(self):
        tr = Tracer(clock=FakeClock())
        tr.instant(0, "x", "task", "a")
        tr.instant(1, "x", "task", "b")
        assert [e.name for e in tr.events(node=1)] == ["b"]
        assert len(tr.events()) == 2

    def test_drain_clears(self):
        tr = Tracer(clock=FakeClock())
        tr.instant(0, "x", "task", "a")
        assert len(tr.drain()) == 1
        assert tr.events() == []

    def test_concurrent_emit(self):
        tr = Tracer(capacity=1 << 14)
        n_threads, per_thread = 8, 200

        def emitter(tid):
            for i in range(per_thread):
                tr.instant(tid % 3, f"lane{tid}", "task", "task", i=i)

        threads = [threading.Thread(target=emitter, args=(t,))
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tr.events()) == n_threads * per_thread
        assert tr.dropped() == {}

    def test_event_json_round_trip(self):
        e = TraceEvent(1.25, 2, "io/0", "io", "read", "X", 0.5,
                       {"array": "a", "block": 3})
        assert TraceEvent.from_json(e.to_json()) == e


class TestMetricsRegistry:
    def test_counters_and_labels(self):
        m = MetricsRegistry(0)
        m.inc("loads", label="a")
        m.inc("loads", 2, label="b")
        m.inc("spills")
        assert m.get("loads") == 3
        assert m.labeled("loads") == {"a": 1, "b": 2}
        assert m.get("missing") == 0

    def test_observe_max(self):
        m = MetricsRegistry()
        m.observe_max("depth", 3)
        m.observe_max("depth", 1)
        assert m.maximum("depth") == 3

    def test_as_dict_flattens(self):
        m = MetricsRegistry()
        m.inc("loads", label="a")
        m.observe_max("depth", 5)
        d = m.as_dict()
        assert d["loads"] == 1
        assert d["loads_by_label"] == {"a": 1}
        assert d["depth_max"] == 5


def scripted_events() -> list[TraceEvent]:
    """A fixed miniature run used by the export and golden-file tests."""
    return [
        TraceEvent(0.0, -1, "engine", "run", "phase", "i",
                   args={"phase": "start"}),
        TraceEvent(0.001, 0, "sched", "sched", "prefetch", "i",
                   args={"array": "A_0_0"}),
        TraceEvent(0.002, 0, "io/0", "io", "read", "X", 0.004,
                   args={"array": "A_0_0", "block": 0}),
        TraceEvent(0.002, 0, "storage", "storage", "load", "X", 0.005,
                   args={"array": "A_0_0", "block": 0}),
        TraceEvent(0.008, 0, "sched", "task", "dispatch", "i",
                   args={"task": "mult_0", "worker": 0}),
        TraceEvent(0.009, 0, "worker/0", "task", "grant_wait", "X", 0.001,
                   args={"op": "read", "array": "A_0_0"}),
        TraceEvent(0.010, 0, "worker/0", "task", "task", "X", 0.02,
                   args={"task": "mult_0"}),
        TraceEvent(0.031, 0, "storage", "storage", "spill", "X", 0.003,
                   args={"array": "y_0", "block": 0}),
        TraceEvent(0.034, 0, "storage", "storage", "drop", "i",
                   args={"array": "A_0_0", "block": 0}),
        TraceEvent(0.035, 1, "storage", "storage", "fetch_remote", "X", 0.002,
                   args={"array": "x_0", "block": 0}),
        TraceEvent(0.036, 1, "storage", "storage", "alloc_queue", "C",
                   args={"value": 2}),
        TraceEvent(0.040, -1, "engine", "run", "phase", "i",
                   args={"phase": "end"}),
    ]


class TestChromeExport:
    def test_structure(self):
        doc = to_chrome(scripted_events())
        events = validate_chrome_trace(doc)
        meta = [e for e in events if e["ph"] == "M"]
        assert {m["pid"] for m in meta} == {-1, 0, 1}
        assert {m["args"]["name"] for m in meta} == {"engine", "node0", "node1"}
        assert doc["otherData"]["schema_version"] == SCHEMA_VERSION
        spans = [e for e in events if e["ph"] == "X"]
        assert all(isinstance(e["dur"], (int, float)) for e in spans)
        # seconds -> microseconds
        load = next(e for e in spans if e["name"] == "load")
        assert load["ts"] == pytest.approx(2000.0)
        assert load["dur"] == pytest.approx(5000.0)
        instants = [e for e in events if e["ph"] == "i"]
        assert all(e["s"] == "t" for e in instants)
        counter = next(e for e in events if e["ph"] == "C")
        assert counter["args"] == {"value": 2}

    def test_export_and_validate_file(self, tmp_path):
        path = export_chrome_trace(scripted_events(), tmp_path / "t.json")
        doc = load_chrome_trace(path)
        assert validate_chrome_trace(doc)

    @pytest.mark.parametrize("doc", [
        [],
        {"traceEvents": "nope"},
        {"traceEvents": [{"ph": "Z", "name": "x", "pid": 0, "ts": 0}]},
        {"traceEvents": [{"ph": "i", "pid": 0, "ts": 0}]},
        {"traceEvents": [{"ph": "i", "name": "x", "pid": 0, "ts": -5}]},
        {"traceEvents": [{"ph": "X", "name": "x", "pid": 0, "ts": 0}]},
    ])
    def test_validate_rejects_malformed(self, doc):
        with pytest.raises(ValueError):
            validate_chrome_trace(doc)

    def test_jsonl_round_trip(self, tmp_path):
        events = scripted_events()
        path = save_events_jsonl(events, tmp_path / "t.jsonl")
        header = json.loads(path.read_text().splitlines()[0])
        assert header == {"schema_version": SCHEMA_VERSION}
        assert load_events_jsonl(path) == events

    def test_normalize_is_shift_invariant(self):
        events = scripted_events()
        shifted = [TraceEvent(e.ts + 17.3, e.node, e.lane, e.cat, e.name,
                              e.ph, e.dur * 3.0, e.args) for e in events]
        a = normalize_chrome_trace(to_chrome(events))
        b = normalize_chrome_trace(to_chrome(shifted))
        assert a == b


class TestGoldenChromeTrace:
    def test_matches_golden_file(self):
        from pathlib import Path
        golden_path = Path(__file__).parent / "data" / "golden_chrome_trace.json"
        golden = json.loads(golden_path.read_text())
        got = normalize_chrome_trace(to_chrome(scripted_events()))
        assert got == golden, (
            "exported Chrome-trace schema drifted from the golden file; if "
            "the change is intentional, regenerate tests/data/"
            "golden_chrome_trace.json (see docs/OBSERVABILITY.md)")


class TestSimBridge:
    def test_interval_and_point_mapping(self):
        rec = TraceRecorder()
        rec.interval("n3", "io", "sub", 1.0, 2.5)
        rec.interval("n3", "io", "prefetch", 3.0, 3.5)
        rec.interval("n0", "compute", "mult", 0.5, 0.9)
        rec.interval("n1", "send", "partial", 4.0, 4.2)
        rec.interval("gpfs", "server", "svc", 0.0, 1.0)
        rec.point("n0", "barrier", "iter0", 5.0)
        events = events_from_sim_trace(rec)
        by_name = {(e.cat, e.name): e for e in events}
        load = by_name[("storage", "load")]
        assert (load.node, load.ts, load.dur) == (3, 1.0, 1.5)
        assert by_name[("sched", "prefetch")].node == 3
        assert by_name[("task", "task")].node == 0
        assert by_name[("storage", "fetch_remote")].node == 1
        assert by_name[("sim", "server")].node == -1  # unmapped kind
        phase = by_name[("run", "phase")]
        assert phase.ph == "i" and phase.args["label"] == "iter0"

    def test_chronological_order(self):
        rec = TraceRecorder()
        rec.interval("n1", "io", "b", 2.0, 3.0)
        rec.interval("n0", "io", "a", 1.0, 2.0)
        events = events_from_sim_trace(rec)
        assert [e.ts for e in events] == [1.0, 2.0]


class TestEngineTraceIntegration:
    """A real traced engine run exports a valid, complete Chrome trace."""

    def _chain_program(self, nodes=2, length=4096, links=5):
        import numpy as np

        from repro.core import Program

        def step(ins, outs, meta):
            (o,) = list(outs)
            (i,) = list(ins)
            outs[o][:] = ins[i] + 1.0

        def join(ins, outs, meta):
            (o,) = list(outs)
            total = None
            for arr in ins.values():
                total = arr.astype(float) if total is None else total + arr
            outs[o][:] = total

        prog = Program("traced", default_block_elems=length)
        for node in range(nodes):
            x = np.arange(length, dtype=float)
            prog.initial_array(f"x{node}", x, home=node)
            prog.initial_array(f"z{node}", np.ones(length), home=node)
            prev = f"x{node}"
            for i in range(links):
                out = f"y{node}_{i}"
                prog.array(out, length)
                prog.add_task(f"t{node}_{i}", step, [prev], [out])
                prev = out
            prog.array(f"out{node}", length)
            # z goes cold during the chain: the join's prefetch must
            # re-warm it, and its spilled/loaded round trip shows up.
            prog.add_task(f"join{node}", join, [prev, f"z{node}"],
                          [f"out{node}"])
        return prog

    def test_run_trace_has_all_event_kinds_on_all_nodes(self, tmp_path):
        from repro.core import DOoCEngine

        prog = self._chain_program()
        # Budget for ~3.3 blocks per node: enough for any one task's pins
        # (3 blocks), tight enough to force loads, spills and prefetches.
        eng = DOoCEngine(n_nodes=2, memory_budget_per_node=110_000,
                         scratch_dir=tmp_path, trace=True)
        report = eng.run(prog, timeout=120)
        events = report.trace_events
        assert events
        kinds = {(e.cat, e.name) for e in events}
        for expected in [("task", "task"), ("task", "dispatch"),
                         ("storage", "load"), ("storage", "spill"),
                         ("sched", "prefetch"), ("io", "read"),
                         ("io", "write"), ("run", "phase")]:
            assert expected in kinds, f"missing {expected} in trace"
        # Every node contributed task AND storage events.
        for node in (0, 1):
            cats = {e.cat for e in events if e.node == node}
            assert {"task", "storage"} <= cats
        # Spans carry non-negative durations; instants none.
        assert all(e.dur >= 0 for e in events)
        # The exported file is a structurally valid Chrome trace.
        path = report.save_chrome_trace(tmp_path / "run.json")
        validate_chrome_trace(load_chrome_trace(path))
        # And the JSONL round-trips losslessly.
        jsonl = report.save_trace(tmp_path / "run.jsonl")
        assert load_events_jsonl(jsonl) == sorted(
            events, key=lambda e: (e.ts, e.node, e.lane))

    def test_untraced_run_is_empty_but_reports_metrics(self, tmp_path):
        from repro.core import DOoCEngine

        prog = self._chain_program(nodes=1, links=2)
        eng = DOoCEngine(n_nodes=1, scratch_dir=tmp_path)
        report = eng.run(prog, timeout=60)
        assert report.trace_events == []
        assert report.metrics[0]["loads"] >= 1
        assert report.store_stats[0].loads == report.metrics[0]["loads"]


class TestTraceCLI:
    def test_summary_of_jsonl(self, tmp_path, capsys):
        path = save_events_jsonl(scripted_events(), tmp_path / "run.jsonl")
        assert trace_cli([str(path)]) == 0
        out = capsys.readouterr().out
        assert "12 events" in out
        assert "3 node(s)" in out
        assert "task.task" in out

    def test_convert_to_chrome(self, tmp_path, capsys):
        src = save_events_jsonl(scripted_events(), tmp_path / "run.jsonl")
        dst = tmp_path / "run.json"
        assert trace_cli([str(src), "-o", str(dst)]) == 0
        assert validate_chrome_trace(load_chrome_trace(dst))

    def test_summary_of_chrome_json(self, tmp_path, capsys):
        path = export_chrome_trace(scripted_events(), tmp_path / "run.json")
        assert trace_cli([str(path)]) == 0
        assert "events" in capsys.readouterr().out

    def test_module_dispatch(self, tmp_path, capsys):
        from repro.__main__ import main as repro_main
        path = save_events_jsonl(scripted_events(), tmp_path / "run.jsonl")
        assert repro_main(["trace", str(path)]) == 0
        assert "events" in capsys.readouterr().out
