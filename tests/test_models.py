"""Tests for the calibrated analytic models (Table II, Fig. 6 baseline)."""

import pytest

from repro.ci.cases import TABLE1_CASES
from repro.models import (
    MEMORY_HIERARCHY,
    MFDnHopperModel,
    TestbedWorkload,
    optimal_io_seconds,
)
from repro.models.mfdn_hopper import TABLE2_PUBLISHED, HopperModelParams
from repro.util.units import GB, TB


class TestHopperModel:
    def test_rows_track_published_totals(self):
        model = MFDnHopperModel()
        for case in TABLE1_CASES:
            row = model.table2_row(case)
            pub = TABLE2_PUBLISHED[case.name]
            assert row["t_total_s"] == pytest.approx(pub["t_total_s"], rel=0.25)
            assert row["cpu_hours_per_iteration"] == pytest.approx(
                pub["cpu_hours_per_iteration"], rel=0.25)

    def test_comm_fraction_shape_grows_to_dominate(self):
        """The qualitative Table II claim: 34% -> 86%."""
        model = MFDnHopperModel()
        fracs = [model.table2_row(c)["comm_fraction"] for c in TABLE1_CASES]
        assert all(b > a for a, b in zip(fracs, fracs[1:], strict=False))
        assert fracs[0] < 0.5
        assert fracs[-1] > 0.75

    def test_effective_rate_decays_with_scale(self):
        model = MFDnHopperModel()
        assert model.effective_rate(276) == pytest.approx(125e6)
        assert model.effective_rate(18336) < model.effective_rate(276)

    def test_cpu_hours_formula(self):
        model = MFDnHopperModel()
        it = model.iteration(int(1e8), 1e11, 1000, 45)
        assert it.cpu_hours == pytest.approx(1000 * it.total_seconds / 3600)
        assert 0 < it.comm_fraction < 1

    def test_validation(self):
        with pytest.raises(ValueError):
            HopperModelParams(rate0_flops=0)
        with pytest.raises(ValueError):
            HopperModelParams(epsilon=1.5)
        model = MFDnHopperModel()
        with pytest.raises(ValueError):
            model.effective_rate(0)
        with pytest.raises(ValueError):
            model.iteration(10, 10.0, 10, 0)


class TestTestbedWorkload:
    def test_paper_constants(self):
        w = TestbedWorkload()
        # ~0.10 TB per node, ~4 GB per sub-matrix (Table III row 1).
        assert w.bytes_per_node == pytest.approx(0.1024 * TB)
        assert w.submatrix_bytes == pytest.approx(4.096 * GB)
        assert w.subvector_rows == 10**7
        assert w.local_grid_side == 5

    def test_scaling_with_nodes(self):
        w = TestbedWorkload()
        assert w.matrix_dimension(36) == 300 * 10**6   # "300 M"
        assert w.matrix_dimension(1) == 50 * 10**6
        assert w.total_nnz(36) == pytest.approx(460.8e9)  # "460 billions"
        assert w.total_bytes(36) == pytest.approx(3.6864 * TB)  # "3.50 TB" in TiB-ish rounding
        assert w.grid_k(9) == 15

    def test_grid_requires_square(self):
        w = TestbedWorkload()
        with pytest.raises(ValueError):
            w.grid_k(8)
        with pytest.raises(ValueError):
            w.matrix_dimension(8)

    def test_flops(self):
        w = TestbedWorkload()
        assert w.flops(1) == pytest.approx(2 * 12.8e9 * 4)


class TestOptimalIo:
    def test_fig6_denominator(self):
        w = TestbedWorkload()
        # 16 nodes: 1.6384 TB x 4 iterations / 20 GB/s.
        t = optimal_io_seconds(w.total_bytes(16), 4)
        assert t == pytest.approx(4 * 16 * 0.1024e12 / 20e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            optimal_io_seconds(-1, 4)
        with pytest.raises(ValueError):
            optimal_io_seconds(1e12, 0)


class TestMemoryHierarchy:
    def test_fig1_shape(self):
        """Capacities grow down the hierarchy; latencies grow; the
        DRAM->disk latency gap is at least two orders of magnitude."""
        caps = [l.capacity_bytes for l in MEMORY_HIERARCHY]
        lats = [l.latency_cycles for l in MEMORY_HIERARCHY]
        assert caps == sorted(caps)
        assert lats == sorted(lats)
        by_name = {l.name: l for l in MEMORY_HIERARCHY}
        assert by_name["hdd"].latency_cycles >= 100 * by_name["dram"].latency_cycles
        # And the SSD sits inside the gap: the paper's opportunity.
        assert by_name["dram"].latency_cycles < by_name["ssd"].latency_cycles \
            < by_name["hdd"].latency_cycles
