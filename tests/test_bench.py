"""The bench harness: report schema, regression gate, operand cache."""

import json

import numpy as np
import pytest

from repro.bench import (
    SCHEMA,
    Workload,
    check_regression,
    load_report,
    pinned_workloads,
    run_workload,
    write_report,
)
from repro.bench.cli import main as cli_main
from repro.core.opcache import (
    OPERAND_CONTEXT_KEY,
    DecodedOperandCache,
    OperandContext,
    cached_decode,
)

#: every field a workload entry must carry (the documented schema)
WORKLOAD_FIELDS = {
    "config", "workers", "wall_seconds", "tasks", "tasks_per_second",
    "bytes_copied", "bytes_copied_per_task", "opcache", "loads", "spills",
    "io_retries", "task_reexecutions", "io_bytes", "phases",
    "bit_identical", "max_abs_err",
}

PHASE_FIELDS = {"task", "grant_wait", "load", "spill", "fetch_remote",
                "read", "write"}

TINY = Workload("tiny", n=64, k=2, nnz_per_row=4.0, iterations=2,
                n_nodes=1, memory_budget=32 * 2**20)


class TestRunWorkload:
    def test_report_matches_documented_schema(self, tmp_path):
        trace = tmp_path / "tiny.trace.json"
        r = run_workload(TINY, trace_path=trace, repeats=1)
        assert set(r) == WORKLOAD_FIELDS
        assert set(r["phases"]) == PHASE_FIELDS
        assert set(r["opcache"]) == {"hits", "misses", "hit_rate"}
        assert r["config"] == TINY.config()
        assert r["tasks"] > 0 and r["workers"] >= 1
        assert r["wall_seconds"] > 0 and r["tasks_per_second"] > 0
        for counter in ("bytes_copied", "loads", "spills", "io_retries",
                        "task_reexecutions"):
            assert r[counter] >= 0
        assert all(v >= 0 for v in r["phases"].values())
        assert 0.0 <= r["opcache"]["hit_rate"] <= 1.0
        assert r["bit_identical"] is True
        assert r["max_abs_err"] == 0.0
        # The Chrome trace export is valid JSON with events.
        events = json.loads(trace.read_text())
        assert events["traceEvents"]

    def test_pinned_matrix_is_stable(self):
        for quick in (True, False):
            names = [w.name for w in pinned_workloads(quick=quick)]
            assert names == ["in_core", "in_core_process", "out_of_core",
                             "faulty"]
        quick = {w.name: w for w in pinned_workloads(quick=True)}
        assert quick["faulty"].fault_seed == 0
        assert quick["out_of_core"].n_nodes == 2
        assert quick["in_core_process"].worker_plane == "process"
        assert quick["in_core"].worker_plane == "thread"
        # Pinned = calling twice yields identical configs.
        assert ([w.config() for w in pinned_workloads(quick=True)]
                == [w.config() for w in pinned_workloads(quick=True)])


def report_with(name="out_of_core", wall=1.0, copied=0, bit_identical=True,
                mode="quick"):
    return {
        "schema": SCHEMA,
        "tag": "t",
        "mode": mode,
        "data_plane": "zerocopy",
        "workloads": {
            name: {
                "wall_seconds": wall,
                "bytes_copied": copied,
                "bit_identical": bit_identical,
            },
        },
        "totals": {"wall_seconds": wall, "tasks": 1,
                   "tasks_per_second": 1.0, "bytes_copied": copied},
    }


class TestCheckRegression:
    def test_identical_reports_pass(self):
        base = report_with()
        assert check_regression(report_with(), base) == []

    def test_wall_within_tolerance_passes(self):
        assert check_regression(report_with(wall=1.2), report_with(wall=1.0),
                                tolerance_pct=25.0) == []

    def test_wall_regression_fails(self):
        failures = check_regression(report_with(wall=1.5),
                                    report_with(wall=1.0),
                                    tolerance_pct=25.0)
        assert any("wall time regressed" in f for f in failures)

    def test_any_bytes_copied_increase_fails(self):
        failures = check_regression(report_with(copied=1),
                                    report_with(copied=0))
        assert any("bytes_copied increased" in f for f in failures)

    def test_lost_bit_identity_fails(self):
        failures = check_regression(report_with(bit_identical=False),
                                    report_with())
        assert any("bit-identical" in f for f in failures)

    def test_missing_workload_fails(self):
        failures = check_regression(report_with(name="other"), report_with())
        assert any("missing" in f for f in failures)

    def test_mode_mismatch_fails(self):
        failures = check_regression(report_with(mode="quick"),
                                    report_with(mode="full"))
        assert any("mode mismatch" in f for f in failures)


class TestReportIO:
    def test_round_trip(self, tmp_path):
        path = write_report(report_with(), tmp_path / "BENCH_t.json")
        assert load_report(path) == report_with()

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps({"schema": "dooc-bench/0"}))
        with pytest.raises(ValueError, match="refresh the baseline"):
            load_report(path)


class TestCLICheck:
    def test_missing_baseline_is_a_usage_error(self, tmp_path, capsys):
        assert cli_main(["--check",
                           "--baseline", str(tmp_path / "nope.json")]) == 2
        assert "cannot load baseline" in capsys.readouterr().err

    def test_pass_and_fail_exit_codes(self, tmp_path, capsys):
        base = write_report(report_with(wall=1.0),
                            tmp_path / "BENCH_baseline.json")
        good = write_report(report_with(wall=1.1), tmp_path / "BENCH_ok.json")
        bad = write_report(report_with(wall=9.0, copied=7),
                           tmp_path / "BENCH_bad.json")
        assert cli_main(["--check", "--baseline", str(base),
                           "--candidate", str(good)]) == 0
        assert cli_main(["--check", "--baseline", str(base),
                           "--candidate", str(bad)]) == 1
        err = capsys.readouterr().err
        assert "REGRESSION" in err


class TestDecodedOperandCache:
    def test_hit_miss_accounting(self):
        c = DecodedOperandCache(1024)
        assert c.get("a", (0,)) is None
        assert c.put("a", (0,), "v", 100)
        assert c.get("a", (0,)) == "v"
        assert (c.hits, c.misses) == (1, 1)
        assert c.hit_rate == 0.5

    def test_lru_eviction_under_budget(self):
        c = DecodedOperandCache(250)
        c.put("a", (0,), "va", 100)
        c.put("b", (0,), "vb", 100)
        c.get("a", (0,))                     # refresh a: b is now LRU
        c.put("c", (0,), "vc", 100)          # must evict b, not a
        assert c.get("b", (0,)) is None
        assert c.get("a", (0,)) == "va"
        assert c.get("c", (0,)) == "vc"
        assert c.evictions == 1
        assert c.in_use <= 250

    def test_oversized_entry_rejected(self):
        c = DecodedOperandCache(100)
        assert not c.put("a", (0,), "v", 101)
        assert len(c) == 0

    def test_stale_generation_misses(self):
        c = DecodedOperandCache(1024)
        c.put("a", (0,), "v", 10)
        assert c.get("a", (1,)) is None      # bumped generation: miss
        assert c.get("a", (0,)) == "v"

    def test_invalidate_drops_all_generations(self):
        c = DecodedOperandCache(1024)
        c.put("a", (0,), "v0", 10)
        c.put("a", (1,), "v1", 10)
        c.put("b", (0,), "w", 10)
        assert c.invalidate("a") == 2
        assert len(c) == 1 and c.get("b", (0,)) == "w"
        assert c.in_use == 10


class TestCachedDecode:
    def test_plain_decode_without_context(self):
        calls = []
        raw = np.arange(4.0)
        out = cached_decode({}, "a", raw, lambda r: calls.append(1) or "d")
        assert out == "d" and calls == [1]

    def test_second_decode_is_a_hit(self):
        cache = DecodedOperandCache(1 << 20)
        meta = {OPERAND_CONTEXT_KEY: OperandContext(cache, {"a": (3,)})}
        calls = []
        raw = np.arange(4.0)
        decode = lambda r: calls.append(1) or "d"  # noqa: E731
        assert cached_decode(meta, "a", raw, decode) == "d"
        assert cached_decode(meta, "a", raw, decode) == "d"
        assert calls == [1]                  # decoded exactly once
        assert cache.hits == 1

    def test_unknown_array_falls_back(self):
        cache = DecodedOperandCache(1 << 20)
        meta = {OPERAND_CONTEXT_KEY: OperandContext(cache, {"a": (0,)})}
        calls = []
        cached_decode(meta, "other", np.arange(2.0),
                      lambda r: calls.append(1) or "d")
        assert calls == [1] and len(cache) == 0
