"""Property tests for interval algebra and the scheduler decision cores."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.array import ArrayDesc
from repro.core.dag import TaskDAG
from repro.core.global_scheduler import GlobalScheduler
from repro.core.interval import intervals_for_range, whole_array
from repro.core.local_scheduler import LocalSchedulerCore
from repro.core.task import task


def noop(ins, outs, meta):
    pass


# ---------------------------------------------------------------------------
# Interval algebra
# ---------------------------------------------------------------------------

@st.composite
def array_and_range(draw):
    length = draw(st.integers(1, 500))
    block = draw(st.integers(1, 64))
    lo = draw(st.integers(0, length - 1))
    hi = draw(st.integers(lo + 1, length))
    return ArrayDesc("a", length=length, block_elems=block), lo, hi


@given(array_and_range())
@settings(max_examples=200, deadline=None)
def test_intervals_cover_range_exactly_and_disjointly(case):
    desc, lo, hi = case
    ivs = intervals_for_range(desc, lo, hi)
    # Coverage: concatenation of [lo_i, hi_i) equals [lo, hi) in order.
    assert ivs[0].lo == lo and ivs[-1].hi == hi
    for a, b in zip(ivs, ivs[1:], strict=False):
        assert a.hi == b.lo          # contiguous, disjoint
        assert b.block == a.block + 1
    for iv in ivs:
        iv.validate_against(desc)    # never spans a block


@given(st.integers(1, 500), st.integers(1, 64))
@settings(max_examples=100, deadline=None)
def test_whole_array_blocks_partition_the_array(length, block):
    desc = ArrayDesc("a", length=length, block_elems=block)
    ivs = whole_array(desc)
    assert len(ivs) == desc.n_blocks
    total = sum(iv.length for iv in ivs)
    assert total == length


# ---------------------------------------------------------------------------
# Global scheduler
# ---------------------------------------------------------------------------

@st.composite
def random_dags(draw):
    n_initial = draw(st.integers(1, 4))
    n_tasks = draw(st.integers(1, 10))
    n_nodes = draw(st.integers(1, 4))
    initial = [f"in{i}" for i in range(n_initial)]
    homes = {a: draw(st.integers(0, n_nodes - 1)) for a in initial}
    sizes = {a: draw(st.integers(1, 1000)) for a in initial}
    available = list(initial)
    tasks = []
    for t in range(n_tasks):
        n_inputs = draw(st.integers(0, min(3, len(available))))
        idx = draw(st.lists(st.integers(0, len(available) - 1),
                            min_size=n_inputs, max_size=n_inputs, unique=True))
        inputs = [available[i] for i in idx]
        out = f"out{t}"
        sizes[out] = draw(st.integers(1, 1000))
        tasks.append(task(f"t{t}", noop, inputs, [out]))
        available.append(out)
    return tasks, initial, homes, sizes, n_nodes


@given(random_dags())
@settings(max_examples=100, deadline=None)
def test_every_task_assigned_to_a_valid_node(problem):
    tasks, initial, homes, sizes, n_nodes = problem
    dag = TaskDAG(tasks, initial)
    gs = GlobalScheduler(dag, n_nodes, array_homes=homes, array_nbytes=sizes)
    assignment = gs.assign_all()
    assert set(assignment) == {t.name for t in tasks}
    assert all(0 <= node < n_nodes for node in assignment.values())


@given(random_dags())
@settings(max_examples=100, deadline=None)
def test_single_home_inputs_pin_the_task(problem):
    """If every input of a task lives on one node, affinity demands it."""
    tasks, initial, homes, sizes, n_nodes = problem
    dag = TaskDAG(tasks, initial)
    gs = GlobalScheduler(dag, n_nodes, array_homes=homes, array_nbytes=sizes)
    assignment = gs.assign_all()
    for t in tasks:
        if not t.inputs:
            continue
        input_homes = {gs.array_homes[a] for a in t.inputs}
        if len(input_homes) == 1:
            assert assignment[t.name] == next(iter(input_homes))


# ---------------------------------------------------------------------------
# Local scheduler
# ---------------------------------------------------------------------------

@given(
    n_tasks=st.integers(1, 12),
    resident_mask=st.lists(st.booleans(), min_size=12, max_size=12),
    seed=st.integers(0, 100),
)
@settings(max_examples=100, deadline=None)
def test_pick_drains_all_tasks_exactly_once(n_tasks, resident_mask, seed):
    ls = LocalSchedulerCore(0)
    names = []
    for i in range(n_tasks):
        t = task(f"t{i}", noop, [f"A{i}"], [f"y{i}"])
        ls.add_ready(t)
        names.append(t.name)
    resident = {f"A{i}" for i in range(n_tasks) if resident_mask[i]}
    nbytes = {f"A{i}": 100 for i in range(n_tasks)}
    picked = []
    while ls.ready_count:
        picked.append(ls.pick(resident, nbytes).name)
    assert sorted(picked) == sorted(names)
    assert ls.pick(resident, nbytes) is None


@given(
    n_tasks=st.integers(1, 10),
    depth=st.integers(0, 5),
)
@settings(max_examples=100, deadline=None)
def test_prefetch_plan_is_subset_of_pending_inputs(n_tasks, depth):
    ls = LocalSchedulerCore(0, prefetch_depth=depth)
    all_inputs = set()
    for i in range(n_tasks):
        ls.add_ready(task(f"t{i}", noop, [f"A{i}", f"B{i}"], [f"y{i}"]))
        all_inputs |= {f"A{i}", f"B{i}"}
    nbytes = {a: 10 for a in all_inputs}
    plan = ls.prefetch_plan(set(), nbytes)
    assert set(plan) <= all_inputs
    assert len(plan) == len(set(plan))  # no duplicates
    assert len(plan) <= 2 * depth


@given(st.integers(1, 12))
@settings(max_examples=50, deadline=None)
def test_resident_tasks_always_precede_nonresident(n_tasks):
    ls = LocalSchedulerCore(0)
    for i in range(n_tasks):
        ls.add_ready(task(f"t{i}", noop, [f"A{i}"], [f"y{i}"]))
    resident = {f"A{i}" for i in range(0, n_tasks, 2)}
    nbytes = {f"A{i}": 100 for i in range(n_tasks)}
    ranked = ls.rank(resident, nbytes)
    seen_nonresident = False
    for t in ranked:
        is_resident = t.inputs[0] in resident
        if not is_resident:
            seen_nonresident = True
        assert not (is_resident and seen_nonresident), (
            "a resident task ranked below a non-resident one"
        )


# ---------------------------------------------------------------------------
# Co-simulation: global + local scheduler cores over random DAGs
# ---------------------------------------------------------------------------

@given(random_dags(), st.booleans())
@settings(max_examples=100, deadline=None)
def test_scheduler_cores_execute_any_dag_to_completion(problem, reorder):
    """Drive the pure decision cores with a toy executor: every task runs
    exactly once, on its assigned node, after all of its predecessors."""
    tasks, initial, homes, sizes, n_nodes = problem
    dag = TaskDAG(tasks, initial)
    gs = GlobalScheduler(dag, n_nodes, array_homes=homes, array_nbytes=sizes)
    assignment = gs.assign_all()
    cores = {n: LocalSchedulerCore(n, reorder=reorder)
             for n in range(n_nodes)}
    resident: dict[int, list] = {n: [] for n in range(n_nodes)}
    CAPACITY = 3  # arrays per node: forces LRU churn

    def touch(node, array):
        if array in resident[node]:
            resident[node].remove(array)
        resident[node].append(array)
        while len(resident[node]) > CAPACITY:
            resident[node].pop(0)

    for name in dag.ready_tasks():
        cores[assignment[name]].add_ready(dag.tasks[name])

    executed = []
    finished_at = {}
    guard = 0
    while not dag.done:
        guard += 1
        assert guard < 10_000, "executor failed to make progress"
        progressed = False
        for node, core in cores.items():
            t = core.pick(set(resident[node]), sizes)
            if t is None:
                continue
            progressed = True
            assert assignment[t.name] == node
            for a in t.inputs:
                touch(node, a)
            for a in t.outputs:
                touch(node, a)
            executed.append(t.name)
            finished_at[t.name] = len(executed)
            for newly in dag.mark_complete(t.name):
                cores[assignment[newly]].add_ready(dag.tasks[newly])
        assert progressed, "no core could pick a task but the DAG is not done"

    assert sorted(executed) == sorted(t.name for t in tasks)
    for name, preds in dag.preds.items():
        for p in preds:
            assert finished_at[p] < finished_at[name]
