"""Tests for the filter-stream middleware (buffers, layout, threaded runtime)."""

import threading

import numpy as np
import pytest

from repro.datacutter import (
    END_OF_STREAM,
    DataBuffer,
    DistributionPolicy,
    Filter,
    FilterError,
    Layout,
    LayoutError,
    ThreadedRuntime,
)
from repro.datacutter.filters import FunctionFilter


class TestDataBuffer:
    def test_nbytes_estimates(self):
        assert DataBuffer(np.zeros(10, dtype=np.float64)).nbytes == 80
        assert DataBuffer(b"abcd").nbytes == 4
        assert DataBuffer("hi").nbytes == 2
        assert DataBuffer(None).nbytes == 0
        assert DataBuffer([b"ab", b"cd"]).nbytes == 4
        assert DataBuffer({"k": b"abc"}).nbytes == 3
        assert DataBuffer(object()).nbytes == 64

    def test_explicit_nbytes_wins(self):
        assert DataBuffer(b"abcd", nbytes=100).nbytes == 100
        with pytest.raises(ValueError):
            DataBuffer(b"", nbytes=-1)

    def test_tagged_copies_meta_shares_payload(self):
        arr = np.arange(3)
        buf = DataBuffer(arr, {"a": 1})
        tag = buf.tagged(b=2)
        assert tag.meta == {"a": 1, "b": 2}
        assert buf.meta == {"a": 1}
        assert tag.payload is arr

    def test_eos_is_falsy_singleton(self):
        assert not END_OF_STREAM
        assert END_OF_STREAM is type(END_OF_STREAM)()


class Source(Filter):
    outputs = ("out",)

    def __init__(self, items):
        self.items = items

    def process(self, ctx):
        for item in self.items:
            ctx.write("out", DataBuffer(item, {"key": item}))


class Collect(Filter):
    inputs = ("in",)
    results: list  # set per-instance in __init__

    def __init__(self, sink):
        self.sink = sink

    def process(self, ctx):
        while True:
            buf = ctx.read("in")
            if buf is END_OF_STREAM:
                return
            self.sink.append((ctx.instance, buf.payload))


def run_layout(items, *, workers=1, policy=DistributionPolicy.ROUND_ROBIN,
               hash_key=None, transform=lambda x: x * 10):
    sink = []
    layout = Layout("test")
    layout.add_filter("src", lambda: Source(items))
    layout.add_filter("work", lambda: FunctionFilter(transform),
                      instances=workers, replicable=True)
    layout.add_filter("col", lambda: Collect(sink))
    layout.connect("src", "out", "work", "in", policy=policy, hash_key=hash_key)
    layout.connect("work", "out", "col", "in")
    ThreadedRuntime(layout).run(timeout=20)
    return sink


class TestPipelines:
    def test_linear_pipeline(self):
        sink = run_layout([1, 2, 3, 4])
        assert sorted(p for _, p in sink) == [10, 20, 30, 40]

    def test_replicated_workers_process_everything(self):
        sink = run_layout(list(range(40)), workers=4)
        assert sorted(p for _, p in sink) == [i * 10 for i in range(40)]

    def test_round_robin_spreads_work(self):
        counts = [0, 0, 0, 0]
        lock = threading.Lock()

        def spy(x):
            return x

        sink = []
        layout = Layout("rr")
        layout.add_filter("src", lambda: Source(list(range(16))))

        class Tally(Filter):
            inputs = ("in",)
            outputs = ("out",)

            def process(self, ctx):
                while True:
                    buf = ctx.read("in")
                    if buf is END_OF_STREAM:
                        return
                    with lock:
                        counts[ctx.instance] += 1
                    ctx.write("out", buf)

        layout.add_filter("work", Tally, instances=4, replicable=True)
        layout.add_filter("col", lambda: Collect(sink))
        layout.connect("src", "out", "work", "in")
        layout.connect("work", "out", "col", "in")
        ThreadedRuntime(layout).run(timeout=20)
        assert counts == [4, 4, 4, 4]

    def test_broadcast_copies_to_all_instances(self):
        sink = []
        layout = Layout("bc")
        layout.add_filter("src", lambda: Source([7]))
        layout.add_filter("col", lambda: Collect(sink), instances=3, replicable=True)
        layout.connect("src", "out", "col", "in",
                       policy=DistributionPolicy.BROADCAST)
        ThreadedRuntime(layout).run(timeout=20)
        assert sorted(i for i, _ in sink) == [0, 1, 2]
        assert all(p == 7 for _, p in sink)

    def test_hash_policy_is_sticky(self):
        sink = []
        layout = Layout("hash")
        layout.add_filter("src", lambda: Source([5, 5, 5, 9, 9]))
        layout.add_filter("col", lambda: Collect(sink), instances=4, replicable=True)
        layout.connect("src", "out", "col", "in",
                       policy=DistributionPolicy.HASH, hash_key="key")
        ThreadedRuntime(layout).run(timeout=20)
        by_payload = {}
        for inst, payload in sink:
            by_payload.setdefault(payload, set()).add(inst)
        assert all(len(insts) == 1 for insts in by_payload.values())

    def test_directed_policy_routes_by_dest(self):
        sink = []

        class DirectedSource(Filter):
            outputs = ("out",)

            def process(self, ctx):
                for dest in [2, 0, 1]:
                    ctx.write("out", DataBuffer(dest, {"__dest__": dest}))

        layout = Layout("dir")
        layout.add_filter("src", DirectedSource)
        layout.add_filter("col", lambda: Collect(sink), instances=3, replicable=True)
        layout.connect("src", "out", "col", "in",
                       policy=DistributionPolicy.DIRECTED)
        ThreadedRuntime(layout).run(timeout=20)
        assert sorted(sink) == [(0, 0), (1, 1), (2, 2)]

    def test_merging_two_streams_on_one_input_port(self):
        sink = []
        layout = Layout("merge")
        layout.add_filter("a", lambda: Source([1, 2]))
        layout.add_filter("b", lambda: Source([3, 4]))
        layout.add_filter("col", lambda: Collect(sink))
        layout.connect("a", "out", "col", "in")
        layout.connect("b", "out", "col", "in")
        ThreadedRuntime(layout).run(timeout=20)
        assert sorted(p for _, p in sink) == [1, 2, 3, 4]

    def test_fan_out_one_port_to_two_streams(self):
        sink_a, sink_b = [], []
        layout = Layout("fan")
        layout.add_filter("src", lambda: Source([1, 2, 3]))
        layout.add_filter("ca", lambda: Collect(sink_a))
        layout.add_filter("cb", lambda: Collect(sink_b))
        layout.connect("src", "out", "ca", "in")
        layout.connect("src", "out", "cb", "in")
        ThreadedRuntime(layout).run(timeout=20)
        assert sorted(p for _, p in sink_a) == [1, 2, 3]
        assert sorted(p for _, p in sink_b) == [1, 2, 3]

    def test_backpressure_small_capacity_still_completes(self):
        sink = []
        layout = Layout("bp")
        layout.add_filter("src", lambda: Source(list(range(100))))
        layout.add_filter("col", lambda: Collect(sink))
        layout.connect("src", "out", "col", "in", capacity=1)
        ThreadedRuntime(layout).run(timeout=30)
        assert len(sink) == 100

    def test_pipelined_parallelism_overlaps_stages(self):
        """Two dependent stages run concurrently on different buffers."""
        active = {"work": 0, "peak": 0}
        lock = threading.Lock()
        barrier_hit = threading.Event()

        def slowish(x):
            with lock:
                active["work"] += 1
                active["peak"] = max(active["peak"], active["work"])
            barrier_hit.wait(0.01)
            with lock:
                active["work"] -= 1
            return x

        sink = []
        layout = Layout("pipe")
        layout.add_filter("src", lambda: Source(list(range(30))))
        layout.add_filter("w1", lambda: FunctionFilter(slowish), instances=3,
                          replicable=True)
        layout.add_filter("col", lambda: Collect(sink))
        layout.connect("src", "out", "w1", "in")
        layout.connect("w1", "out", "col", "in")
        ThreadedRuntime(layout).run(timeout=30)
        assert len(sink) == 30
        assert active["peak"] >= 2  # replicas genuinely overlapped


class TestStats:
    def test_stream_stats_count_buffers_and_bytes(self):
        sink = []
        layout = Layout("stats")
        layout.add_filter("src", lambda: Source([b"aa", b"bbbb"]))
        layout.add_filter("col", lambda: Collect(sink))
        layout.connect("src", "out", "col", "in", name="s")
        rt = ThreadedRuntime(layout)
        rt.run(timeout=20)
        buffers, nbytes = rt.stream_stats()["s"]
        assert buffers == 2 and nbytes == 6


class TestErrors:
    def test_filter_exception_propagates_with_identity(self):
        def boom(x):
            raise ValueError("kaboom")

        with pytest.raises(FilterError) as excinfo:
            run_layout([1], transform=boom)
        assert excinfo.value.filter_name == "work"
        assert isinstance(excinfo.value.cause, ValueError)

    def test_blocked_writer_unblocks_on_consumer_crash(self):
        class Crash(Filter):
            inputs = ("in",)

            def process(self, ctx):
                ctx.read("in")
                raise RuntimeError("consumer died")

        layout = Layout("crash")
        layout.add_filter("src", lambda: Source(list(range(1000))))
        layout.add_filter("col", Crash)
        layout.connect("src", "out", "col", "in", capacity=1)
        with pytest.raises(FilterError):
            ThreadedRuntime(layout).run(timeout=30)

    def test_layout_validation_unknown_port(self):
        layout = Layout("bad")
        layout.add_filter("src", lambda: Source([1]))
        layout.add_filter("col", lambda: Collect([]))
        layout.connect("src", "nope", "col", "in")
        with pytest.raises(LayoutError, match="no output port"):
            ThreadedRuntime(layout)

    def test_layout_validation_unknown_filter(self):
        layout = Layout("bad")
        layout.add_filter("src", lambda: Source([1]))
        layout.connect("src", "out", "ghost", "in")
        with pytest.raises(LayoutError, match="unknown filter"):
            ThreadedRuntime(layout)

    def test_duplicate_filter_rejected(self):
        layout = Layout("dup")
        layout.add_filter("x", lambda: Source([1]))
        with pytest.raises(LayoutError, match="duplicate"):
            layout.add_filter("x", lambda: Source([2]))

    def test_non_replicable_multi_instance_rejected(self):
        layout = Layout("bad")
        with pytest.raises(LayoutError, match="not replicable"):
            layout.add_filter("s", lambda: Source([1]), instances=2)

    def test_self_loop_rejected(self):
        class Loop(Filter):
            inputs = ("in",)
            outputs = ("out",)

            def process(self, ctx):
                pass

        layout = Layout("loop")
        layout.add_filter("l", Loop)
        layout.connect("l", "out", "l", "in")
        with pytest.raises(LayoutError, match="self-loop"):
            ThreadedRuntime(layout)

    def test_hash_without_key_rejected(self):
        layout = Layout("h")
        layout.add_filter("src", lambda: Source([1]))
        layout.add_filter("col", lambda: Collect([]))
        with pytest.raises(LayoutError, match="needs hash_key"):
            layout.connect("src", "out", "col", "in",
                           policy=DistributionPolicy.HASH)

    def test_unconnected_declared_input_reads_eos(self):
        sink = []

        class Lonely(Filter):
            inputs = ("in",)

            def process(self, ctx):
                sink.append(ctx.read("in"))

        layout = Layout("lonely")
        layout.add_filter("l", Lonely)
        ThreadedRuntime(layout).run(timeout=10)
        assert sink == [END_OF_STREAM]

    def test_unconnected_output_discards(self):
        layout = Layout("sinkless")
        layout.add_filter("src", lambda: Source([1, 2, 3]))
        ThreadedRuntime(layout).run(timeout=10)  # must not raise


class TestReadAny:
    def test_read_any_multiplexes_and_terminates(self):
        seen = []

        class Mux(Filter):
            inputs = ("a", "b")

            def process(self, ctx):
                while True:
                    port, buf = ctx.read_any(["a", "b"])
                    if buf is END_OF_STREAM:
                        return
                    seen.append((port, buf.payload))

        layout = Layout("mux")
        layout.add_filter("sa", lambda: Source([1, 2]))
        layout.add_filter("sb", lambda: Source([3]))
        layout.add_filter("mux", Mux)
        layout.connect("sa", "out", "mux", "a")
        layout.connect("sb", "out", "mux", "b")
        ThreadedRuntime(layout).run(timeout=20)
        assert sorted(seen) == [("a", 1), ("a", 2), ("b", 3)]

    def test_read_any_with_no_connected_ports(self):
        result = []

        class Empty(Filter):
            inputs = ("a",)

            def process(self, ctx):
                result.append(ctx.read_any(["a"]))

        layout = Layout("e")
        layout.add_filter("f", Empty)
        ThreadedRuntime(layout).run(timeout=10)
        assert result == [(None, END_OF_STREAM)]
