"""Deep half of repro.analysis: whole-program rules, baseline, SARIF, CLI.

Each seeded fixture is a miniature multi-module program carrying exactly
the interprocedural defect its rule describes; the known-good fixtures
encode the repo's blessed zero-copy idioms (fill-then-seal, write grants,
copy-before-mutate) and must stay clean.  The property test at the bottom
proves ``# dooc: noqa[CODE]`` suppresses every registered rule — per-file
and whole-program alike — so the suppression contract can't drift as
rules are added.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.cli import _rule_span, main as lint_main, rule_table_markdown
from repro.analysis.flow import analyze_sources, deep_lint_paths
from repro.analysis.flow.baseline import (
    apply_baseline,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.analysis.lint import (
    DEEP_RULES,
    RULES,
    Violation,
    all_rules,
    lint_paths,
    lint_source,
)

REPO = Path(__file__).resolve().parent.parent


def codes(violations):
    return [v.code for v in violations]


# -- DOOC010: sealed-view mutation escape --------------------------------------


ESCAPE_HELPERS = (
    "def normalize(arr):\n"
    "    arr[0] = 0.0\n"
    "    return arr\n"
)
ESCAPE_PUBLISH = (
    "import numpy as np\n"
    "from helpers import normalize\n"
    "def publish(buf):\n"
    "    view = np.frombuffer(buf, dtype=np.float64)\n"
    "    return normalize(view)\n"
)


def test_dooc010_cross_module_escape_flags():
    vs = analyze_sources({"src/helpers.py": ESCAPE_HELPERS,
                          "src/publish.py": ESCAPE_PUBLISH})
    assert [(v.code, v.path, v.line) for v in vs] == [
        ("DOOC010", "src/helpers.py", 2)]
    # the message carries the taint path back to the frombuffer call site
    assert "taint path" in vs[0].message
    assert "publish.publish" in vs[0].message


def test_dooc010_local_subscript_store_flags():
    src = (
        "import numpy as np\n"
        "def bad(buf):\n"
        "    view = np.frombuffer(buf, dtype=np.uint8)\n"
        "    view[0] = 1\n"
    )
    vs = analyze_sources({"src/m.py": src})
    assert [(v.code, v.line) for v in vs] == [("DOOC010", 4)]


def test_dooc010_augassign_and_inplace_method_flag():
    src = (
        "import numpy as np\n"
        "def bad(buf):\n"
        "    view = np.frombuffer(buf, dtype=np.uint8)\n"
        "    view += 1\n"
        "    view.sort()\n"
    )
    assert [(v.code, v.line) for v in analyze_sources({"src/m.py": src})] == [
        ("DOOC010", 4), ("DOOC010", 5)]


def test_dooc010_copyto_destination_flags():
    src = (
        "import numpy as np\n"
        "def bad(buf, payload):\n"
        "    view = np.frombuffer(buf, dtype=np.uint8)\n"
        "    np.copyto(view, payload)\n"
    )
    assert [(v.code, v.line) for v in analyze_sources({"src/m.py": src})] == [
        ("DOOC010", 4)]


def test_dooc010_writeable_flip_flags():
    src = (
        "import numpy as np\n"
        "def bad(buf):\n"
        "    view = np.frombuffer(buf, dtype=np.uint8)\n"
        "    view.flags.writeable = True\n"
    )
    assert [(v.code, v.line) for v in analyze_sources({"src/m.py": src})] == [
        ("DOOC010", 4)]


def test_dooc010_anonymous_sealed_expression_flags():
    src = (
        "import numpy as np\n"
        "def bad(buf, payload):\n"
        "    np.frombuffer(buf, dtype=np.uint8)[:] = payload\n"
    )
    assert [(v.code, v.line) for v in analyze_sources({"src/m.py": src})] == [
        ("DOOC010", 3)]


def test_dooc010_read_grant_ticket_data_flags():
    src = (
        "def reader(store, iv):\n"
        "    ticket, effects = store.request_read(iv)\n"
        "    ticket.data[0] = 1.0\n"
        "    return effects\n"
    )
    assert [(v.code, v.line) for v in analyze_sources({"src/m.py": src})] == [
        ("DOOC010", 3)]


def test_dooc010_write_grant_is_clean():
    src = (
        "def writer(store, iv):\n"
        "    ticket, effects = store.request_write(iv)\n"
        "    ticket.data[0] = 1.0\n"
        "    return effects\n"
    )
    assert analyze_sources({"src/m.py": src}) == []


def test_dooc010_writable_attach_view_is_clean():
    # the procplane scatter idiom: the callee asked for a writable map
    src = (
        "from repro.core.shm import attach_view\n"
        "def scatter(handle, payload):\n"
        "    view = attach_view(handle, writable=True)\n"
        "    view[:] = payload\n"
    )
    assert analyze_sources({"src/m.py": src}) == []


def test_dooc010_readonly_attach_view_flags():
    src = (
        "from repro.core.shm import attach_view\n"
        "def corrupt(handle, payload):\n"
        "    view = attach_view(handle)\n"
        "    view[:] = payload\n"
    )
    assert [(v.code, v.line) for v in analyze_sources({"src/m.py": src})] == [
        ("DOOC010", 4)]


def test_dooc010_pool_fill_then_seal_is_clean():
    # SegmentPool.ndarray is writable by default (fill-then-seal)
    src = (
        "def install(pool, spec, payload):\n"
        "    arr = pool.ndarray(spec)\n"
        "    arr[:] = payload\n"
    )
    assert analyze_sources({"src/m.py": src}) == []


def test_dooc010_readonly_pool_view_flags():
    src = (
        "def corrupt(pool, spec):\n"
        "    arr = pool.ndarray(spec, readonly=True)\n"
        "    arr[:] = 0\n"
    )
    assert [(v.code, v.line) for v in analyze_sources({"src/m.py": src})] == [
        ("DOOC010", 3)]


def test_dooc010_copy_before_mutate_is_clean():
    src = (
        "import numpy as np\n"
        "def fine(buf):\n"
        "    view = np.frombuffer(buf, dtype=np.uint8)\n"
        "    scratch = np.array(view)\n"
        "    scratch[0] = 1\n"
        "    own = view.copy()\n"
        "    own += 1\n"
        "    return scratch, own\n"
    )
    assert analyze_sources({"src/m.py": src}) == []


def test_dooc010_taint_survives_view_reshaping():
    # reshape/ravel/slicing preserve the underlying sealed buffer
    src = (
        "import numpy as np\n"
        "def bad(buf):\n"
        "    planes = np.frombuffer(buf, dtype=np.uint8).reshape(4, -1)\n"
        "    flat = planes.ravel()\n"
        "    flat[0] = 1\n"
    )
    assert [(v.code, v.line) for v in analyze_sources({"src/m.py": src})] == [
        ("DOOC010", 5)]


def test_dooc010_sealed_return_value_taints_caller():
    helpers = (
        "import numpy as np\n"
        "def open_block(buf):\n"
        "    return np.frombuffer(buf, dtype=np.float64)\n"
    )
    caller = (
        "from helpers import open_block\n"
        "def patch(buf):\n"
        "    block = open_block(buf)\n"
        "    block[0] = 0.0\n"
    )
    vs = analyze_sources({"src/helpers.py": helpers, "src/caller.py": caller})
    assert [(v.code, v.path, v.line) for v in vs] == [
        ("DOOC010", "src/caller.py", 4)]


# -- DOOC011: static lock-order cycles -----------------------------------------


LOCK_CYCLE = (
    "class Engine:\n"
    "    def io_then_sched(self):\n"
    "        with self._io_lock:\n"
    "            with self._sched_lock:\n"
    "                pass\n"
    "    def sched_then_io(self):\n"
    "        with self._sched_lock:\n"
    "            with self._io_lock:\n"
    "                pass\n"
)


def test_dooc011_direct_with_nesting_cycle_flags():
    vs = analyze_sources({"src/engine.py": LOCK_CYCLE})
    assert codes(vs) == ["DOOC011"]
    msg = vs[0].message
    assert "static lock-order cycle" in msg
    assert "Engine._io_lock" in msg and "Engine._sched_lock" in msg


def test_dooc011_cycle_through_a_call_carries_witness():
    src = (
        "class Engine:\n"
        "    def flush(self):\n"
        "        with self._io_lock:\n"
        "            self._drain()\n"
        "    def _drain(self):\n"
        "        with self._sched_lock:\n"
        "            pass\n"
        "    def schedule(self):\n"
        "        with self._sched_lock:\n"
        "            with self._io_lock:\n"
        "                pass\n"
    )
    vs = analyze_sources({"src/engine.py": src})
    assert codes(vs) == ["DOOC011"]
    # the witness names the call edge that closes the cycle
    assert "while calling" in vs[0].message
    assert "Engine._drain" in vs[0].message


def test_dooc011_consistent_order_is_clean():
    src = (
        "class Engine:\n"
        "    def flush(self):\n"
        "        with self._io_lock:\n"
        "            with self._sched_lock:\n"
        "                pass\n"
        "    def drain(self):\n"
        "        with self._io_lock:\n"
        "            with self._sched_lock:\n"
        "                pass\n"
    )
    assert analyze_sources({"src/engine.py": src}) == []


def test_dooc011_reentrant_single_lock_is_clean():
    src = (
        "class Engine:\n"
        "    def pump(self):\n"
        "        with self._lock:\n"
        "            with self._lock:\n"
        "                pass\n"
    )
    assert analyze_sources({"src/engine.py": src}) == []


# -- DOOC012: interprocedural effect drop ---------------------------------------


EFFECT_WRAPPER = (
    "def _cleanup(store, ticket):\n"
    "    return store.release(ticket)\n"
    "def driver(store, ticket):\n"
    "    _cleanup(store, ticket)\n"
)


def test_dooc012_wrapped_effect_drop_flags():
    vs = analyze_sources({"src/m.py": EFFECT_WRAPPER})
    assert [(v.code, v.line) for v in vs] == [("DOOC012", 4)]
    assert "result of _cleanup() discarded" in vs[0].message


def test_dooc012_bound_but_never_pumped_flags():
    src = (
        "def _cleanup(store, ticket):\n"
        "    return store.release(ticket)\n"
        "def driver(store, ticket):\n"
        "    _ = _cleanup(store, ticket)\n"
    )
    vs = analyze_sources({"src/m.py": src})
    assert [(v.code, v.line) for v in vs] == [("DOOC012", 4)]
    assert "never" in vs[0].message and "pumped" in vs[0].message


def test_dooc012_pumped_effects_are_clean():
    src = (
        "def _cleanup(store, ticket):\n"
        "    return store.release(ticket)\n"
        "def driver(store, ticket, run):\n"
        "    effects = _cleanup(store, ticket)\n"
        "    run(effects)\n"
    )
    assert analyze_sources({"src/m.py": src}) == []


def test_dooc012_accumulated_effect_list_flags():
    src = (
        "def teardown(store, tickets):\n"
        "    effects = []\n"
        "    for t in tickets:\n"
        "        effects.extend(store.release(t))\n"
        "    return effects\n"
        "def shutdown(store, tickets):\n"
        "    teardown(store, tickets)\n"
    )
    vs = analyze_sources({"src/m.py": src})
    assert [(v.code, v.line) for v in vs] == [("DOOC012", 7)]
    assert "accumulated effect list" in vs[0].message


def test_dooc012_chain_through_two_helpers_flags():
    helpers = (
        "def _release(store, t):\n"
        "    return store.release(t)\n"
        "def _cleanup(store, t):\n"
        "    return _release(store, t)\n"
    )
    driver = (
        "from helpers import _cleanup\n"
        "def shutdown(store, t):\n"
        "    _cleanup(store, t)\n"
    )
    vs = analyze_sources({"src/helpers.py": helpers, "src/driver.py": driver})
    assert [(v.code, v.path, v.line) for v in vs] == [
        ("DOOC012", "src/driver.py", 3)]


def test_dooc012_direct_drop_left_to_dooc002():
    # `store.release(t)` as a bare statement is DOOC002's per-file finding;
    # the deep rule must not duplicate it.
    src = (
        "def driver(store, ticket):\n"
        "    store.release(ticket)\n"
    )
    assert analyze_sources({"src/m.py": src}) == []
    assert codes(lint_source(src, path="src/m.py")) == ["DOOC002"]


# -- registry + relaxations ------------------------------------------------------


def test_deep_registry_has_the_documented_rules():
    assert set(DEEP_RULES) == {"DOOC010", "DOOC011", "DOOC012"}
    assert set(all_rules()) == set(RULES) | set(DEEP_RULES)


def test_help_text_rule_span_tracks_registry():
    assert _rule_span() == "rules DOOC001..DOOC013"


def test_deep_rules_relaxed_under_tests_dir():
    src = (
        "import numpy as np\n"
        "def scribble(buf):\n"
        "    view = np.frombuffer(buf, dtype=np.uint8)\n"
        "    view[0] = 1\n"
    )
    assert analyze_sources({"tests/test_x.py": src}) == []
    assert codes(analyze_sources({"tests/test_x.py": src},
                                 strict=True)) == ["DOOC010"]


def test_unknown_code_rejected_by_deep_pass():
    with pytest.raises(ValueError, match="DOOC999"):
        analyze_sources({"src/m.py": "x = 1\n"}, select=["DOOC999"])


def test_unparseable_file_skipped_by_deep_pass():
    # DOOC000 belongs to the per-file pass; the program builder skips junk
    vs = analyze_sources({"src/junk.py": "def broken(:\n",
                          "src/m.py": EFFECT_WRAPPER})
    assert [(v.code, v.path) for v in vs] == [("DOOC012", "src/m.py")]


# -- the noqa contract holds for EVERY registered rule ---------------------------


RULE_SEEDS = {
    "DOOC001": (
        "def leaky(store, iv):\n"
        "    ticket, effects = store.request_read(iv)\n"
        "    return effects\n"
    ),
    "DOOC002": (
        "def driver(store, ticket):\n"
        "    store.release(ticket)\n"
    ),
    "DOOC003": (
        "import time\n"
        "def poll(self):\n"
        "    with self._lock:\n"
        "        time.sleep(0.1)\n"
    ),
    "DOOC004": (
        "def note(tracer):\n"
        '    tracer.instant(0, "lane", "cat", "totally_unknown_event")\n'
    ),
    "DOOC005": (
        "def save(path, data):\n"
        "    with open(str(path) + '.ckpt', 'wb') as fh:\n"
        "        fh.write(data)\n"
    ),
    "DOOC006": (
        "from multiprocessing.shared_memory import SharedMemory\n"
        "shm = SharedMemory(name='x')\n"
    ),
    "DOOC007": (
        "import zlib\n"
        "def pack(data):\n"
        "    return zlib.compress(data)\n"
    ),
    "DOOC010": (
        "import numpy as np\n"
        "def bad(buf):\n"
        "    view = np.frombuffer(buf, dtype=np.uint8)\n"
        "    view[0] = 1\n"
    ),
    "DOOC011": LOCK_CYCLE,
    "DOOC012": EFFECT_WRAPPER,
    "DOOC013": (
        "import time\n"
        "def worker_loop(self):\n"
        "    time.sleep(0.5)\n"
    ),
}

#: rules whose scope is a specific directory need a matching seed path
RULE_SEED_PATHS = {"DOOC013": "src/repro/server/m.py"}


def _run_rule(code: str, src: str):
    path = RULE_SEED_PATHS.get(code, "src/m.py")
    if code in DEEP_RULES:
        return analyze_sources({path: src}, select=[code])
    return lint_source(src, path=path, select=[code])


def test_rule_seeds_cover_the_whole_registry():
    # if a new rule lands without a seed here, the property test below
    # silently loses coverage — fail loudly instead
    assert set(RULE_SEEDS) == set(all_rules())


@pytest.mark.parametrize("code", sorted(RULE_SEEDS))
def test_noqa_suppresses_every_registered_rule(code):
    src = RULE_SEEDS[code]
    vs = _run_rule(code, src)
    assert codes(vs) == [code]

    flagged = vs[0].line
    lines = src.splitlines()
    lines[flagged - 1] += f"  # dooc: noqa[{code}]"
    assert _run_rule(code, "\n".join(lines) + "\n") == []

    # a noqa naming a different rule must NOT suppress this one
    other = "DOOC002" if code == "DOOC001" else "DOOC001"
    lines = src.splitlines()
    lines[flagged - 1] += f"  # dooc: noqa[{other}]"
    assert codes(_run_rule(code, "\n".join(lines) + "\n")) == [code]


@pytest.mark.parametrize("code", sorted(RULE_SEEDS))
def test_bare_noqa_suppresses_every_registered_rule(code):
    src = RULE_SEEDS[code]
    flagged = _run_rule(code, src)[0].line
    lines = src.splitlines()
    lines[flagged - 1] += "  # dooc: noqa"
    assert _run_rule(code, "\n".join(lines) + "\n") == []


# -- baseline ---------------------------------------------------------------------


def test_baseline_roundtrip(tmp_path):
    vs = analyze_sources({"src/m.py": EFFECT_WRAPPER})
    bl = tmp_path / "baseline.json"
    assert write_baseline(bl, vs, reason="legacy driver, tracked in #42") == 1
    payload = json.loads(bl.read_text())
    assert payload["version"] == 1
    assert payload["findings"][0]["code"] == "DOOC012"
    assert payload["findings"][0]["reason"] == "legacy driver, tracked in #42"

    kept, suppressed = apply_baseline(vs, load_baseline(bl))
    assert kept == [] and suppressed == 1


def test_baseline_fingerprint_stable_across_line_drift():
    a = Violation("DOOC012", "src/m.py", 4, 4, "result of _cleanup() discarded")
    b = Violation("DOOC012", "src/m.py", 90, 4, "result of _cleanup() discarded")
    assert fingerprint(a) == fingerprint(b)
    c = Violation("DOOC012", "src/other.py", 4, 4,
                  "result of _cleanup() discarded")
    assert fingerprint(a) != fingerprint(c)


def test_absent_baseline_is_empty(tmp_path):
    assert load_baseline(tmp_path / "nope.json") == set()


# -- parallel scan ------------------------------------------------------------------


def test_parallel_scan_matches_serial_and_is_sorted(tmp_path):
    for i in range(24):  # above the process-pool threshold
        (tmp_path / f"m{i:02d}.py").write_text(
            "def leaky(store, iv):\n"
            "    ticket, effects = store.request_read(iv)\n"
        )
    serial = lint_paths([tmp_path], jobs=1)
    pooled = lint_paths([tmp_path], jobs=4)
    key = [(v.path, v.line, v.col, v.code) for v in serial]
    assert key == [(v.path, v.line, v.col, v.code) for v in pooled]
    assert len(serial) == 24
    assert key == sorted(key)


# -- CLI + report formats -------------------------------------------------------------


def test_cli_deep_finds_cross_file_escape(tmp_path, capsys):
    (tmp_path / "helpers.py").write_text(ESCAPE_HELPERS)
    (tmp_path / "publish.py").write_text(ESCAPE_PUBLISH)
    # shallow pass alone misses the interprocedural escape
    assert lint_main([str(tmp_path)]) == 0
    capsys.readouterr()
    rc = lint_main(["--deep", "--json", str(tmp_path)])
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["deep"] is True
    assert payload["files"] == 2
    assert payload["wall_time_s"] >= 0
    assert payload["baselined"] == 0
    assert [v["code"] for v in payload["violations"]] == ["DOOC010"]


def test_cli_sarif_schema(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(RULE_SEEDS["DOOC010"])
    rc = lint_main(["--deep", "--sarif", "-", str(tmp_path)])
    assert rc == 1
    log = json.loads(capsys.readouterr().out)
    assert log["version"] == "2.1.0"
    run = log["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {"DOOC001", "DOOC010", "DOOC011", "DOOC012"} <= rule_ids
    result = run["results"][0]
    assert result["ruleId"] == "DOOC010"
    loc = result["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"].endswith("bad.py")
    assert loc["region"]["startLine"] == 4
    assert loc["region"]["startColumn"] >= 1


def test_cli_sarif_to_file(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(RULE_SEEDS["DOOC001"])
    out = tmp_path / "lint.sarif"
    rc = lint_main(["--sarif", str(out), str(bad)])
    assert rc == 1
    log = json.loads(out.read_text())
    assert log["runs"][0]["results"][0]["ruleId"] == "DOOC001"


def test_cli_baseline_workflow(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(RULE_SEEDS["DOOC001"])
    bl = tmp_path / "baseline.json"

    rc = lint_main(["--write-baseline", "--baseline", str(bl), str(bad)])
    assert rc == 0
    capsys.readouterr()

    rc = lint_main(["--json", "--baseline", str(bl), str(bad)])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["violations"] == [] and payload["baselined"] == 1

    # --no-baseline reports everything again
    assert lint_main(["--no-baseline", "--baseline", str(bl), str(bad)]) == 1


def test_cli_list_rules_marks_deep_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("DOOC010", "DOOC011", "DOOC012"):
        assert code in out
    assert "[deep]" in out


def test_docs_rule_table_is_generated_from_registry():
    table = rule_table_markdown()
    for code in all_rules():
        assert f"`{code}`" in table
    doc = (REPO / "docs" / "ANALYSIS.md").read_text(encoding="utf-8")
    assert table in doc, (
        "docs/ANALYSIS.md rule table is stale: regenerate it with "
        "`python -m repro lint --rule-table`")


# -- the shipped tree is the ultimate fixture ------------------------------------------


def test_shipped_tree_is_deep_clean():
    assert deep_lint_paths([REPO / "src", REPO / "tests",
                            REPO / "benchmarks", REPO / "examples"]) == []


def test_module_entry_point_runs_deep():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--deep",
         str(REPO / "src" / "repro" / "analysis")],
        capture_output=True, text=True,
        cwd=REPO, env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
