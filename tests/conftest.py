"""Shared fixtures for the test suite."""

import os

import pytest


@pytest.fixture
def protocol_checkers(monkeypatch):
    """Force the runtime protocol checkers on for one test.

    Engines and runtimes constructed inside the test behave as under
    ``DOOC_CHECKERS=1``: lock acquisitions are recorded, every ticket
    grant is audited, and task sets are validated before threads start.
    """
    monkeypatch.setenv("DOOC_CHECKERS", "1")
    return True


def pytest_report_header(config):
    flag = os.environ.get("DOOC_CHECKERS", "")
    return f"DOOC_CHECKERS={flag or '0'} (runtime protocol checkers)"
