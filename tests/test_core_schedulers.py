"""Tests for the global (affinity) and local (reorder/prefetch) schedulers."""

import numpy as np
import pytest

from repro.core.dag import TaskDAG
from repro.core.directory import DirectoryClient, LookupFailed
from repro.core.errors import DoocError, SchedulingError
from repro.core.global_scheduler import GlobalScheduler
from repro.core.local_scheduler import LocalSchedulerCore
from repro.core.task import task


def noop(ins, outs, meta):
    pass


class TestGlobalScheduler:
    def test_affinity_places_task_with_its_data(self):
        tasks = [task("t", noop, ["big", "small"], ["out"])]
        dag = TaskDAG(tasks, ["big", "small"])
        gs = GlobalScheduler(dag, 3,
                             array_homes={"big": 2, "small": 0},
                             array_nbytes={"big": 1000, "small": 10, "out": 10})
        assert gs.assign_all() == {"t": 2}
        assert gs.array_homes["out"] == 2  # outputs homed where produced

    def test_affinity_chains_through_dag(self):
        tasks = [
            task("p", noop, ["a"], ["mid"]),
            task("c", noop, ["mid"], ["out"]),
        ]
        dag = TaskDAG(tasks, ["a"])
        gs = GlobalScheduler(dag, 4, array_homes={"a": 3},
                             array_nbytes={"a": 100, "mid": 100, "out": 100})
        assert gs.assign_all() == {"p": 3, "c": 3}

    def test_tie_break_balances_load(self):
        # Four independent tasks with no inputs: spread across nodes.
        tasks = [task(f"t{i}", noop, [], [f"o{i}"]) for i in range(4)]
        dag = TaskDAG(tasks, [])
        gs = GlobalScheduler(dag, 2, array_homes={},
                             array_nbytes={f"o{i}": 8 for i in range(4)})
        assignment = gs.assign_all()
        assert sorted(assignment.values()) == [0, 0, 1, 1]

    def test_spmv_blocks_stay_on_their_nodes(self):
        # 2 nodes, node j owns column j of a 2x2 grid.
        tasks = []
        for u in range(2):
            for v in range(2):
                tasks.append(task(f"m{u}{v}", noop,
                                  [f"A{u}{v}", f"x{v}"], [f"y{u}{v}"]))
        initial = [f"A{u}{v}" for u in range(2) for v in range(2)] + ["x0", "x1"]
        dag = TaskDAG(tasks, initial)
        homes = {"A00": 0, "A10": 0, "A01": 1, "A11": 1, "x0": 0, "x1": 1}
        nbytes = {name: 10**6 if name.startswith("A") else 10
                  for name in homes}
        nbytes.update({f"y{u}{v}": 10 for u in range(2) for v in range(2)})
        gs = GlobalScheduler(dag, 2, array_homes=homes, array_nbytes=nbytes)
        a = gs.assign_all()
        # Multiply tasks follow the (big) matrix blocks, not the vectors.
        assert a["m00"] == 0 and a["m10"] == 0
        assert a["m01"] == 1 and a["m11"] == 1

    def test_missing_home_rejected(self):
        dag = TaskDAG([task("t", noop, ["a"], ["o"])], ["a"])
        with pytest.raises(SchedulingError, match="no home"):
            GlobalScheduler(dag, 2, array_homes={}, array_nbytes={"a": 1, "o": 1})

    def test_invalid_home_rejected(self):
        dag = TaskDAG([task("t", noop, ["a"], ["o"])], ["a"])
        with pytest.raises(SchedulingError, match="invalid node"):
            GlobalScheduler(dag, 2, array_homes={"a": 5},
                            array_nbytes={"a": 1, "o": 1})

    def test_node_tasks_listing(self):
        tasks = [task("t", noop, ["a"], ["o"])]
        dag = TaskDAG(tasks, ["a"])
        gs = GlobalScheduler(dag, 2, array_homes={"a": 1},
                             array_nbytes={"a": 1, "o": 1})
        gs.assign_all()
        assert gs.node_tasks(1) == ["t"]
        assert gs.node_tasks(0) == []


class TestLocalScheduler:
    def mk(self, **kw):
        return LocalSchedulerCore(0, **kw)

    def test_prefers_fully_resident_tasks(self):
        ls = self.mk()
        ls.add_ready(task("cold", noop, ["A0"], ["y0"]))
        ls.add_ready(task("hot", noop, ["A1"], ["y1"]))
        nbytes = {"A0": 100, "A1": 100}
        picked = ls.pick(resident={"A1"}, nbytes=nbytes)
        assert picked.name == "hot"

    def test_prefers_more_resident_bytes(self):
        ls = self.mk()
        ls.add_ready(task("a", noop, ["big", "m1"], ["y0"]))
        ls.add_ready(task("b", noop, ["small", "m2"], ["y1"]))
        nbytes = {"big": 1000, "small": 10, "m1": 500, "m2": 500}
        picked = ls.pick(resident={"big", "small"}, nbytes=nbytes)
        assert picked.name == "a"

    def test_lifo_tie_break_gives_back_and_forth(self):
        """The signature Fig. 5(b) behaviour: with nothing resident, the
        most recently readied task runs first, reversing the traversal."""
        ls = self.mk()
        for v in range(3):
            ls.add_ready(task(f"col{v}", noop, [f"A{v}"], [f"y{v}"]))
        nbytes = {f"A{v}": 100 for v in range(3)}
        order = [ls.pick(set(), nbytes).name for _ in range(3)]
        assert order == ["col2", "col1", "col0"]

    def test_residency_beats_lifo(self):
        ls = self.mk()
        for v in range(3):
            ls.add_ready(task(f"col{v}", noop, [f"A{v}"], [f"y{v}"]))
        nbytes = {f"A{v}": 100 for v in range(3)}
        assert ls.pick({"A0"}, nbytes).name == "col0"

    def test_pick_empty_returns_none(self):
        ls = self.mk()
        assert ls.pick(set(), {}) is None

    def test_duplicate_ready_rejected(self):
        ls = self.mk()
        t = task("t", noop, [], ["y"])
        ls.add_ready(t)
        with pytest.raises(ValueError):
            ls.add_ready(t)

    def test_prefetch_plan_covers_top_tasks_once(self):
        ls = self.mk(prefetch_depth=2)
        ls.add_ready(task("a", noop, ["A"], ["ya"]))
        ls.add_ready(task("b", noop, ["B"], ["yb"]))
        ls.add_ready(task("c", noop, ["C"], ["yc"]))
        nbytes = {"A": 1, "B": 1, "C": 1}
        plan = ls.prefetch_plan(set(), nbytes)
        # LIFO rank: c, b -> prefetch C and B.
        assert plan == ["C", "B"]
        # Second call: already requested, nothing new.
        assert ls.prefetch_plan(set(), nbytes) == []

    def test_prefetch_skips_resident(self):
        ls = self.mk(prefetch_depth=3)
        ls.add_ready(task("a", noop, ["A"], ["ya"]))
        assert ls.prefetch_plan({"A"}, {"A": 1}) == []

    def test_forget_prefetch_reenables(self):
        ls = self.mk(prefetch_depth=1)
        ls.add_ready(task("a", noop, ["A"], ["ya"]))
        assert ls.prefetch_plan(set(), {"A": 1}) == ["A"]
        ls.forget_prefetch("A")
        assert ls.prefetch_plan(set(), {"A": 1}) == ["A"]

    def test_split_requires_splitter_meta(self):
        t = task("t", noop, ["A"], ["y"], splittable=True)
        assert LocalSchedulerCore.split(t, 4) == [t]  # no splitter: unsplit

    def test_split_calls_splitter_and_checks_parent(self):
        def splitter(parent, parts):
            return [
                task(f"{parent.name}#{k}", noop, parent.inputs, parent.outputs,
                     parent=parent.name)
                for k in range(parts)
            ]

        t = task("t", noop, ["A"], ["y"], splittable=True, splitter=splitter)
        subs = LocalSchedulerCore.split(t, 3)
        assert [s.name for s in subs] == ["t#0", "t#1", "t#2"]

    def test_split_bad_splitter_rejected(self):
        def bad(parent, parts):
            return [task("x", noop, [], ["y2"])]

        t = task("t", noop, [], ["y"], splittable=True, splitter=bad)
        with pytest.raises(ValueError, match="parent"):
            LocalSchedulerCore.split(t, 2)

    def test_split_one_part_is_identity(self):
        t = task("t", noop, [], ["y"], splittable=True)
        assert LocalSchedulerCore.split(t, 1) == [t]


class TestDirectory:
    def rng(self, seed=0):
        return np.random.default_rng(seed)

    def test_walk_terminates_and_caches(self):
        d = DirectoryClient(0, 4, self.rng())
        assert d.start_lookup("arr", 0) is None
        probed = set()
        # Drive: everyone misses except node 3.
        for _ in range(3):
            peer = d.next_probe("arr", 0)
            assert peer not in probed and peer != 0
            probed.add(peer)
            if peer == 3:
                d.probe_hit("arr", 0, 3)
                break
            d.probe_miss("arr", 0)
        assert d.resolved[("arr", 0)] == 3
        assert d.start_lookup("arr", 0) == 3  # cached
        assert not d.in_flight("arr", 0)

    def test_exhausted_walk_raises(self):
        d = DirectoryClient(0, 3, self.rng())
        d.start_lookup("ghost", 0)
        d.next_probe("ghost", 0)
        d.probe_miss("ghost", 0)
        d.next_probe("ghost", 0)
        d.probe_miss("ghost", 0)
        with pytest.raises(LookupFailed):
            d.next_probe("ghost", 0)

    def test_never_probes_self_or_repeats(self):
        for seed in range(20):
            d = DirectoryClient(2, 6, self.rng(seed))
            d.start_lookup("a", 1)
            seen = set()
            for _ in range(5):
                p = d.next_probe("a", 1)
                assert p != 2 and p not in seen
                seen.add(p)
                d.probe_miss("a", 1)

    def test_coalesces_duplicate_lookups(self):
        d = DirectoryClient(0, 4, self.rng())
        d.start_lookup("a", 0)
        d.start_lookup("a", 0)  # joins the same walk
        assert d.in_flight("a", 0)
        p = d.next_probe("a", 0)
        d.probe_hit("a", 0, p)
        assert not d.in_flight("a", 0)

    def test_protocol_misuse_rejected(self):
        d = DirectoryClient(0, 4, self.rng())
        with pytest.raises(DoocError):
            d.next_probe("a", 0)
        with pytest.raises(DoocError):
            d.probe_hit("a", 0, 1)
        with pytest.raises(DoocError):
            d.probe_miss("a", 0)

    def test_invalidate_clears_cache(self):
        d = DirectoryClient(0, 2, self.rng())
        d.start_lookup("a", 0)
        p = d.next_probe("a", 0)
        d.probe_hit("a", 0, p)
        d.invalidate("a")
        assert d.start_lookup("a", 0) is None

    def test_bad_node_rejected(self):
        with pytest.raises(DoocError):
            DirectoryClient(5, 4, self.rng())
