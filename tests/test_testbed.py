"""Tests for the DES testbed simulation (Tables III/IV machinery).

Full-scale sweeps live in benchmarks/; here we verify mechanics and the
qualitative relations on affordable configurations.
"""

import pytest

from repro.models.testbed import TestbedWorkload
from repro.testbed import TestbedParams, run_testbed_spmv
from repro.util.units import GB


SMALL = TestbedWorkload()  # the real per-node workload; node counts stay small


class TestMechanics:
    def test_single_node_io_bound(self):
        row = run_testbed_spmv(1, "interleaved", seed=0)
        # 0.41 TB through a ~1.45 GB/s client: ~283 s, fully overlapped.
        expected_io = SMALL.bytes_per_node * 4 / (1.45 * GB)
        assert row.time_s == pytest.approx(expected_io, rel=0.15)
        assert row.non_overlapped_fraction < 0.05
        assert row.read_bw_bytes_per_s == pytest.approx(1.45 * GB, rel=0.15)

    def test_single_node_simple_pays_compute(self):
        """Table III row 1: ~13% of the run is multiply time that the
        simple policy does not overlap with reads."""
        row = run_testbed_spmv(1, "simple", seed=0)
        assert 0.05 < row.non_overlapped_fraction < 0.20

    def test_row_fields_consistent(self):
        row = run_testbed_spmv(4, "simple", seed=0)
        assert row.nodes == 4
        assert row.dimension == 100 * 10**6  # 50M x sqrt(4): Table III
        assert row.nnz == pytest.approx(4 * 12.8e9)
        assert row.gflops == pytest.approx(
            2 * row.nnz * 4 / row.time_s / 1e9)
        assert row.cpu_hours_per_iteration == pytest.approx(
            4 * 8 * row.time_s / 4 / 3600)

    def test_interleaved_beats_simple_at_scale(self):
        simple = run_testbed_spmv(9, "simple", seed=0)
        inter = run_testbed_spmv(9, "interleaved", seed=0)
        assert inter.time_s < simple.time_s
        # Paper: 17-28% faster at >= 9 nodes; allow a generous band.
        gain = 1 - inter.time_s / simple.time_s
        assert 0.05 < gain < 0.40

    def test_interleaved_overlaps_more(self):
        simple = run_testbed_spmv(9, "simple", seed=0)
        inter = run_testbed_spmv(9, "interleaved", seed=0)
        assert inter.non_overlapped_fraction < simple.non_overlapped_fraction

    def test_gflops_grow_then_saturate(self):
        """Near-linear to 9 nodes; the aggregate ceiling binds later."""
        g1 = run_testbed_spmv(1, "simple", seed=0).gflops
        g4 = run_testbed_spmv(4, "simple", seed=0).gflops
        g9 = run_testbed_spmv(9, "simple", seed=0).gflops
        assert g4 == pytest.approx(4 * g1, rel=0.25)
        assert g9 == pytest.approx(9 * g1, rel=0.30)

    def test_determinism(self):
        a = run_testbed_spmv(4, "interleaved", seed=7)
        b = run_testbed_spmv(4, "interleaved", seed=7)
        assert a.time_s == b.time_s
        assert a.read_bw_bytes_per_s == b.read_bw_bytes_per_s

    def test_seed_changes_jitter(self):
        a = run_testbed_spmv(4, "simple", seed=1)
        b = run_testbed_spmv(4, "simple", seed=2)
        assert a.time_s != b.time_s

    def test_oversubscribed_run(self):
        """The Fig. 7 star: more data per node, lower CPU-hour cost than
        running the same matrix on proportionally more nodes."""
        star = run_testbed_spmv(1, "interleaved", seed=0, oversubscribe=4)
        spread = run_testbed_spmv(4, "interleaved", seed=0)
        assert star.dimension == spread.dimension
        assert star.nnz == pytest.approx(spread.nnz)
        # Four times the data through one client: ~4x the time...
        assert star.time_s == pytest.approx(4 * 283, rel=0.25)
        # ...but fewer cores burning: cheaper per iteration when the
        # aggregate is not the binding constraint for the small run.
        assert star.cpu_hours_per_iteration < 1.5 * spread.cpu_hours_per_iteration

    def test_validation(self):
        with pytest.raises(ValueError, match="square"):
            run_testbed_spmv(5, "simple")
        with pytest.raises(ValueError, match="policy"):
            run_testbed_spmv(4, "bogus")
        with pytest.raises(ValueError, match="square"):
            run_testbed_spmv(4, "simple", oversubscribe=3)
        with pytest.raises(ValueError):
            TestbedParams(window=0)
        with pytest.raises(ValueError):
            TestbedParams(jitter_cv0=-1)
        with pytest.raises(ValueError):
            TestbedParams(per_flow_cap_bytes=0)

    def test_jitter_cv_scales_with_nodes(self):
        p = TestbedParams()
        assert p.jitter_cv(36) > p.jitter_cv(1)


class TestOversubscribedSimple:
    def test_simple_policy_oversubscribed(self):
        star = run_testbed_spmv(1, "simple", seed=0, oversubscribe=4)
        assert star.dimension == 100 * 10**6
        assert star.nnz == pytest.approx(4 * 12.8e9)
        # Four blocks' worth of reads through one client.
        assert star.time_s > 4 * 250


class TestCustomWorkload:
    def test_smaller_local_grid(self):
        w = TestbedWorkload(submatrices_per_node=4)  # 2x2 per node
        assert w.local_grid_side == 2
        row = run_testbed_spmv(4, "interleaved", seed=0, workload=w)
        assert row.gflops > 0
        assert row.time_s > 0

    def test_bad_local_grid_rejected(self):
        with pytest.raises(ValueError):
            TestbedWorkload(submatrices_per_node=5)
