"""Ablation: data-aware reordering on vs off in the real engine.

The paper's claim is that the back-and-forth plan "is automatically
discovered and executed by the DOoC middleware without requiring any
effort or input from the application programmer."  With the reordering
switched off, the same engine must fall back to ~Fig. 5(a) load counts.
"""

import numpy as np

from repro.core import DOoCEngine
from repro.core.local_scheduler import LocalSchedulerCore
from repro.core.task import task
from repro.spmv.csrfile import serialize_csr
from repro.spmv.generator import choose_gap_parameter, gap_uniform_csr
from repro.spmv.partition import GridPartition, column_owner
from repro.spmv.program import build_iterated_spmv
from repro.spmv.reference import iterated_spmv_reference


def noop(ins, outs, meta):
    pass


class TestCoreFifoMode:
    def test_fifo_ignores_residency(self):
        ls = LocalSchedulerCore(0, reorder=False)
        ls.add_ready(task("cold", noop, ["A0"], ["y0"]))
        ls.add_ready(task("hot", noop, ["A1"], ["y1"]))
        picked = ls.pick(resident={"A1"}, nbytes={"A0": 1, "A1": 1})
        assert picked.name == "cold"  # strict FIFO

    def test_fifo_is_stable(self):
        ls = LocalSchedulerCore(0, reorder=False)
        for i in range(5):
            ls.add_ready(task(f"t{i}", noop, [], [f"y{i}"]))
        order = [ls.pick(set(), {}).name for _ in range(5)]
        assert order == [f"t{i}" for i in range(5)]


def matrix_loads(report):
    return sum(
        c for s in report.store_stats.values()
        for a, c in s.loads_by_array.items() if a.startswith("A_")
    )


class TestEngineAblation:
    def run_engine(self, tmp_path, reorder, iterations=3):
        k = 3
        rng = np.random.default_rng(3)
        n = 150
        p = GridPartition(n, k)
        m = gap_uniform_csr(n, n, choose_gap_parameter(n, 20.0), rng)
        blocks = p.split_matrix(m)
        x0 = rng.normal(size=n)
        result = build_iterated_spmv(
            blocks, p.split_vector(x0), iterations=iterations, n_nodes=k,
            policy="simple", owner=column_owner(k, k))
        a_bytes = max(len(serialize_csr(b)) for b in blocks.values())
        eng = DOoCEngine(
            n_nodes=k, workers_per_node=1,
            memory_budget_per_node=int(a_bytes * 1.5) + 3000,
            scratch_dir=tmp_path / str(reorder),
            scheduler_reorder=reorder,
        )
        report = eng.run(result.program, timeout=300)
        got = result.fetch_final(eng)
        want = iterated_spmv_reference(m, x0, iterations)
        np.testing.assert_allclose(got, want, rtol=1e-9)
        return matrix_loads(report)

    def test_reordering_saves_loads(self, tmp_path):
        smart = self.run_engine(tmp_path, reorder=True)
        naive = self.run_engine(tmp_path, reorder=False)
        # Naive plan: ~3 loads per node per iteration (27 total); the
        # data-aware plan tracks Fig. 5b (21). Both runs are correct; only
        # the I/O traffic differs.  Thread timing occasionally lets the FIFO
        # run reuse a block or two across iterations, so allow a small slack
        # below the ideal k*k*iterations = 27 full-reload count.
        assert smart < naive
        assert naive >= 23  # essentially a full reload every iteration
