"""Tests for DAG-driven array garbage collection (the storage layer's
delete interface, exercised end to end)."""

import numpy as np
import pytest

from repro.core import DOoCEngine, DoocError, Program
from repro.core.iofilter import array_path


def scale_fn(ins, outs, meta):
    (in_name,) = list(ins)
    (out_name,) = list(outs)
    outs[out_name][:] = ins[in_name] * meta.get("factor", 2.0)


def chain_program(stages=6, n=512):
    prog = Program("gc-chain", default_block_elems=n)
    x = np.arange(n, dtype=float)
    prog.initial_array("a0", x)
    for i in range(stages):
        prog.array(f"a{i+1}", n)
        prog.add_task(f"t{i}", scale_fn, [f"a{i}"], [f"a{i+1}"], factor=2.0)
    return prog, x, stages


class TestGarbageCollection:
    def test_intermediates_deleted_result_kept(self, tmp_path):
        prog, x, stages = chain_program()
        eng = DOoCEngine(n_nodes=1, scratch_dir=tmp_path, gc_arrays=True)
        eng.run(prog, timeout=60)
        # The terminal output survives and is correct.
        np.testing.assert_allclose(eng.fetch(f"a{stages}"), x * 2.0 ** stages)
        # Intermediates are gone from the store.
        store = eng.stores[0]
        for i in range(1, stages):
            assert not store.has_array(f"a{i}")
        # The initial array is never collected.
        assert store.has_array("a0")

    def test_gc_disabled_keeps_everything(self, tmp_path):
        prog, x, stages = chain_program()
        eng = DOoCEngine(n_nodes=1, scratch_dir=tmp_path, gc_arrays=False)
        eng.run(prog, timeout=60)
        store = eng.stores[0]
        for i in range(stages + 1):
            assert store.has_array(f"a{i}")

    def test_gc_unlinks_scratch_files(self, tmp_path):
        """Under a tiny budget, intermediates spill to scratch files; with
        GC those files are unlinked (or never created, because the array
        died before eviction needed to persist it)."""
        def leftover_files(gc):
            prog, x, stages = chain_program(stages=8, n=4096)
            eng = DOoCEngine(
                n_nodes=1, workers_per_node=1,
                memory_budget_per_node=3 * 4096 * 8 + 1024,
                scratch_dir=tmp_path / f"gc{gc}", gc_arrays=gc,
            )
            report = eng.run(prog, timeout=120)
            np.testing.assert_allclose(
                eng.fetch(f"a{stages}"), x * 2.0 ** stages)
            scratch = eng.node_scratch(0)
            files = sum(
                array_path(scratch, f"a{i}").exists()
                for i in range(1, stages)
            )
            return files, report.total_spills

        files_without, spills_without = leftover_files(False)
        files_with, _ = leftover_files(True)
        assert spills_without > 0          # the budget genuinely bites
        assert files_without > 0           # ... leaving spill files behind
        assert files_with < files_without  # GC removes (or avoids) them

    def test_gc_bounds_memory_on_long_chains(self, tmp_path):
        """With GC, a long chain needs spills only for the working set;
        without it, dead intermediates must be spilled to make room."""
        def run(gc):
            prog, _, stages = chain_program(stages=10, n=4096)
            eng = DOoCEngine(
                n_nodes=1, workers_per_node=1,
                memory_budget_per_node=4 * 4096 * 8,
                scratch_dir=tmp_path / f"gc{gc}", gc_arrays=gc,
            )
            return eng.run(prog, timeout=120)

        with_gc = run(True)
        without_gc = run(False)
        assert with_gc.total_spills <= without_gc.total_spills

    def test_gc_across_nodes_clears_cached_copies(self, tmp_path):
        """Consumers' remotely-fetched cached copies are collected too."""
        def head_sum(ins, outs, meta):
            outs["out"][:] = ins["left"] + ins["right"]

        prog = Program("gc-cross", default_block_elems=256)
        prog.initial_array("x", np.full(256, 1.0), home=0)
        prog.array("left", 256)
        prog.array("right", 256)
        prog.array("out", 256)
        prog.add_task("l", scale_fn, ["x"], ["left"], factor=2.0)
        prog.add_task("r", scale_fn, ["x"], ["right"], factor=3.0)
        prog.add_task("join", head_sum, ["left", "right"], ["out"])
        eng = DOoCEngine(n_nodes=2, scratch_dir=tmp_path, gc_arrays=True)
        report = eng.run(prog, timeout=60)
        np.testing.assert_allclose(eng.fetch("out"), np.full(256, 5.0))
        for node in range(2):
            store = eng.stores[node]
            assert not store.has_array("left")
            assert not store.has_array("right")

    def test_fetch_of_collected_array_fails_cleanly(self, tmp_path):
        prog, x, stages = chain_program(stages=3)
        eng = DOoCEngine(n_nodes=1, scratch_dir=tmp_path, gc_arrays=True)
        eng.run(prog, timeout=60)
        with pytest.raises(DoocError):
            eng.fetch("a1")
