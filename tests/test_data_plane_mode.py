"""Data-plane mode is a construction-time snapshot, not a live env read.

The regression these tests pin: the engine used to re-sample
``DOOC_DATA_PLANE`` at every consulting site (engine construction for
the opcache gate, filter construction for the copy paths), so flipping
the variable between constructing an engine and running it produced a
*mixed* plane — e.g. operand cache on (zerocopy decision) with
defensive copies on (legacy decision).  Now ``DOoCEngine.__init__``
resolves the mode exactly once and threads the snapshot everywhere.
"""

import numpy as np
import pytest

from repro.core import DOoCEngine, Program
from repro.core.opcache import DATA_PLANE_ENV, resolve_data_plane


def scale_fn(ins, outs, meta):
    (in_name,) = list(ins)
    (out_name,) = list(outs)
    outs[out_name][:] = ins[in_name] * 2.0


def _total(report, name):
    return sum(per.get(name, 0) for per in report.metrics.values())


def _chain(links=4, n=64):
    prog = Program("chain", default_block_elems=n)
    prog.initial_array("a0", np.arange(n, dtype=float))
    for i in range(links):
        prog.array(f"a{i+1}", n)
        prog.add_task(f"t{i}", scale_fn, [f"a{i}"], [f"a{i+1}"])
    return prog


class TestResolveDataPlane:
    def test_explicit_values_normalized(self):
        assert resolve_data_plane("zerocopy") == "zerocopy"
        assert resolve_data_plane(" Legacy ") == "legacy"

    def test_unknown_value_rejected(self):
        with pytest.raises(ValueError, match="unknown data plane"):
            resolve_data_plane("copyful")

    def test_none_samples_environment(self, monkeypatch):
        monkeypatch.delenv(DATA_PLANE_ENV, raising=False)
        assert resolve_data_plane() == "zerocopy"
        monkeypatch.setenv(DATA_PLANE_ENV, "legacy")
        assert resolve_data_plane() == "legacy"


class TestSnapshotCoherence:
    def test_flip_to_legacy_after_construction_is_ignored(
            self, tmp_path, monkeypatch):
        monkeypatch.delenv(DATA_PLANE_ENV, raising=False)
        eng = DOoCEngine(n_nodes=1, workers_per_node=2, scratch_dir=tmp_path)
        assert eng.data_plane == "zerocopy"
        # The old bug: filters constructed inside run() would re-sample
        # the environment and come up legacy while the opcache gate
        # (sampled in __init__) stayed zerocopy — a mixed plane.
        monkeypatch.setenv(DATA_PLANE_ENV, "legacy")
        try:
            report = eng.run(_chain(), timeout=60)
        finally:
            eng.cleanup()
        assert _total(report, "bytes_copied") == 0  # still fully zerocopy

    def test_flip_to_zerocopy_after_construction_is_ignored(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv(DATA_PLANE_ENV, "legacy")
        eng = DOoCEngine(n_nodes=1, workers_per_node=2, scratch_dir=tmp_path)
        assert eng.data_plane == "legacy"
        assert eng.opcache_bytes == 0  # cache force-disabled with the copies
        monkeypatch.delenv(DATA_PLANE_ENV, raising=False)
        try:
            report = eng.run(_chain(), timeout=60)
        finally:
            eng.cleanup()
        # Still fully legacy: loads round-trip through defensive copies.
        assert _total(report, "bytes_copied") > 0
        assert _total(report, "opcache_hits") == 0

    def test_explicit_data_plane_overrides_environment(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv(DATA_PLANE_ENV, "legacy")
        eng = DOoCEngine(n_nodes=1, workers_per_node=2, scratch_dir=tmp_path,
                         data_plane="zerocopy")
        assert eng.data_plane == "zerocopy"
        try:
            report = eng.run(_chain(), timeout=60)
        finally:
            eng.cleanup()
        assert _total(report, "bytes_copied") == 0
