"""Tests for the in-core and out-of-core Lanczos eigensolvers."""

import numpy as np
import pytest

from repro.lanczos import OutOfCoreLanczos, lanczos
from repro.spmv.generator import symmetric_test_matrix
from repro.spmv.partition import GridPartition


def dense_sym(n, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    return (a + a.T) / 2


class TestInCore:
    def test_converges_to_extreme_eigenvalues(self):
        m = dense_sym(80, seed=1)
        exact = np.linalg.eigvalsh(m)
        result = lanczos(lambda v: m @ v, 80, k=80, n_eigenvalues=3,
                         rng=np.random.default_rng(2))
        np.testing.assert_allclose(result.eigenvalues, exact[:3], rtol=1e-8)

    def test_early_exit_on_convergence(self):
        # A matrix with well-separated lowest eigenvalue converges fast.
        d = np.concatenate([[-100.0], np.linspace(0, 1, 63)])
        m = np.diag(d)
        result = lanczos(lambda v: m @ v, 64, k=64, n_eigenvalues=1,
                         tol=1e-10, rng=np.random.default_rng(0))
        assert result.iterations < 64
        assert result.eigenvalues[0] == pytest.approx(-100.0)

    def test_sparse_operator(self):
        b = symmetric_test_matrix(120, 10.0, np.random.default_rng(3),
                                  diag_shift=25.0)
        exact = np.linalg.eigvalsh(b.to_dense())
        result = lanczos(b.matvec, 120, k=120, n_eigenvalues=4,
                         rng=np.random.default_rng(4))
        np.testing.assert_allclose(result.eigenvalues, exact[:4], rtol=1e-7)

    def test_ritz_vectors_are_eigenvectors(self):
        m = dense_sym(50, seed=5)
        result = lanczos(lambda v: m @ v, 50, k=50, n_eigenvalues=2,
                         rng=np.random.default_rng(6), want_vectors=True)
        for i in range(2):
            v = result.eigenvectors[:, i]
            lam = result.eigenvalues[i]
            assert np.linalg.norm(m @ v - lam * v) < 1e-6 * max(abs(lam), 1)

    def test_tridiagonal_property(self):
        m = dense_sym(30, seed=7)
        result = lanczos(lambda v: m @ v, 30, k=10, n_eigenvalues=1,
                         rng=np.random.default_rng(8), tol=0.0)
        t = result.tridiagonal
        assert t.shape == (result.iterations, result.iterations)
        # Tridiagonal: zero beyond the first off-diagonals.
        mask = np.triu(np.ones_like(t, dtype=bool), 2)
        assert np.all(t[mask] == 0)

    def test_invariant_subspace_breakdown(self):
        # Start exactly in an eigenvector: Lanczos stops after 1 step.
        m = np.diag(np.arange(1.0, 11.0))
        v0 = np.zeros(10)
        v0[0] = 1.0
        result = lanczos(lambda v: m @ v, 10, k=10, n_eigenvalues=1, v0=v0)
        assert result.iterations == 1
        assert result.eigenvalues[0] == pytest.approx(1.0)

    def test_validation(self):
        m = np.eye(4)
        with pytest.raises(ValueError):
            lanczos(lambda v: m @ v, 4, k=0)
        with pytest.raises(ValueError):
            lanczos(lambda v: m @ v, 4, k=4, n_eigenvalues=5)
        with pytest.raises(ValueError):
            lanczos(lambda v: m @ v, 4, k=4, v0=np.zeros(4))
        with pytest.raises(ValueError):
            lanczos(lambda v: m @ v, 4, k=4, v0=np.zeros(5))

    def test_reproducible_with_seeded_rng(self):
        m = dense_sym(40, seed=9)
        r1 = lanczos(lambda v: m @ v, 40, k=20, rng=np.random.default_rng(1))
        r2 = lanczos(lambda v: m @ v, 40, k=20, rng=np.random.default_rng(1))
        np.testing.assert_array_equal(r1.eigenvalues, r2.eigenvalues)


class TestOutOfCore:
    @pytest.fixture
    def problem(self):
        n, k = 90, 3
        b = symmetric_test_matrix(n, 8.0, np.random.default_rng(10),
                                  diag_shift=30.0)
        p = GridPartition(n, k)
        return b, p.split_matrix(b), p

    def test_matvec_matches_incore(self, problem, tmp_path):
        matrix, blocks, p = problem
        ooc = OutOfCoreLanczos(blocks, n_nodes=1, scratch_dir=tmp_path)
        x = np.random.default_rng(11).standard_normal(p.n)
        np.testing.assert_allclose(ooc.matvec(x), matrix.matvec(x), rtol=1e-10)
        assert ooc.matvec_count == 1

    def test_eigenvalues_match_incore_lanczos(self, problem, tmp_path):
        matrix, blocks, p = problem
        ooc = OutOfCoreLanczos(blocks, n_nodes=1, scratch_dir=tmp_path)
        result = ooc.solve(k=40, n_eigenvalues=2,
                           rng=np.random.default_rng(12), tol=1e-8)
        exact = np.linalg.eigvalsh(matrix.to_dense())
        np.testing.assert_allclose(result.eigenvalues, exact[:2], rtol=1e-6)

    def test_multi_node_ooc_lanczos(self, problem, tmp_path):
        matrix, blocks, p = problem
        ooc = OutOfCoreLanczos(blocks, n_nodes=3, scratch_dir=tmp_path,
                               policy="interleaved")
        x = np.random.default_rng(13).standard_normal(p.n)
        np.testing.assert_allclose(ooc.matvec(x), matrix.matvec(x), rtol=1e-10)

    def test_simple_policy_matvec(self, problem, tmp_path):
        matrix, blocks, p = problem
        ooc = OutOfCoreLanczos(blocks, n_nodes=1, scratch_dir=tmp_path,
                               policy="simple")
        x = np.ones(p.n)
        np.testing.assert_allclose(ooc.matvec(x), matrix.matvec(x), rtol=1e-10)

    def test_validation(self, problem, tmp_path):
        matrix, blocks, p = problem
        with pytest.raises(ValueError, match="policy"):
            OutOfCoreLanczos(blocks, scratch_dir=tmp_path, policy="bogus")
        bad = dict(blocks)
        del bad[(0, 0)]
        with pytest.raises(ValueError, match="complete"):
            OutOfCoreLanczos(bad, scratch_dir=tmp_path)
        ooc = OutOfCoreLanczos(blocks, n_nodes=1, scratch_dir=tmp_path)
        with pytest.raises(ValueError):
            ooc.matvec(np.zeros(7))


class TestBasisStores:
    def test_disk_basis_round_trip(self, tmp_path):
        from repro.lanczos.basis import DiskBasis

        store = DiskBasis(32, scratch_dir=tmp_path)
        vecs = [np.random.default_rng(i).standard_normal(32) for i in range(4)]
        for v in vecs:
            store.append(v)
        assert len(store) == 4
        np.testing.assert_allclose(store.last(1), vecs[-1])
        np.testing.assert_allclose(store.last(4), vecs[0])
        combo = store.combine(np.array([1.0, 0.0, -2.0, 0.5]))
        np.testing.assert_allclose(combo, vecs[0] - 2 * vecs[2] + 0.5 * vecs[3])

    def test_disk_basis_orthogonalize_matches_inmemory(self, tmp_path):
        from repro.lanczos.basis import DiskBasis, InMemoryBasis

        rng = np.random.default_rng(14)
        # An orthonormal set via QR.
        q, _ = np.linalg.qr(rng.standard_normal((40, 5)))
        disk = DiskBasis(40, scratch_dir=tmp_path)
        mem = InMemoryBasis(40, 6)
        for i in range(5):
            disk.append(q[:, i])
            mem.append(q[:, i])
        w = rng.standard_normal(40)
        np.testing.assert_allclose(disk.orthogonalize(w.copy()),
                                   mem.orthogonalize(w.copy()), atol=1e-12)
        # The result is orthogonal to the whole set.
        out = disk.orthogonalize(w.copy())
        assert np.max(np.abs(q.T @ out)) < 1e-10

    def test_disk_basis_validation(self, tmp_path):
        from repro.lanczos.basis import DiskBasis

        with pytest.raises(ValueError):
            DiskBasis(0, scratch_dir=tmp_path)
        store = DiskBasis(8, scratch_dir=tmp_path)
        with pytest.raises(ValueError):
            store.append(np.zeros(9))
        with pytest.raises(IndexError):
            store.last(1)
        store.append(np.ones(8))
        with pytest.raises(ValueError):
            store.combine(np.zeros(3))

    def test_disk_basis_cache_bounds_reads(self, tmp_path):
        from repro.lanczos.basis import DiskBasis

        store = DiskBasis(16, scratch_dir=tmp_path, cache_last=2)
        for i in range(5):
            store.append(np.full(16, float(i)))
        # The two most recent vectors are cached: no reads for them.
        store.last(1)
        store.last(2)
        assert store.reads == 0
        store.last(5)
        assert store.reads == 1

    def test_lanczos_with_disk_basis_matches_inmemory(self, tmp_path):
        from repro.lanczos.basis import DiskBasis

        m = dense_sym(60, seed=15)
        in_mem = lanczos(lambda v: m @ v, 60, k=40, n_eigenvalues=3,
                         rng=np.random.default_rng(16), want_vectors=True)
        on_disk = lanczos(lambda v: m @ v, 60, k=40, n_eigenvalues=3,
                          rng=np.random.default_rng(16), want_vectors=True,
                          basis=DiskBasis(60, scratch_dir=tmp_path))
        np.testing.assert_allclose(on_disk.eigenvalues, in_mem.eigenvalues,
                                   rtol=1e-9)
        # Ritz vectors match up to sign.
        for i in range(3):
            a, b = in_mem.eigenvectors[:, i], on_disk.eigenvectors[:, i]
            assert min(np.linalg.norm(a - b), np.linalg.norm(a + b)) < 1e-7

    def test_fully_out_of_core_lanczos(self, tmp_path):
        """Matrix AND basis on disk: the complete Section-II scenario."""
        from repro.spmv.partition import GridPartition

        n, k = 90, 3
        matrix = symmetric_test_matrix(n, 8.0, np.random.default_rng(17),
                                       diag_shift=30.0)
        blocks = GridPartition(n, k).split_matrix(matrix)
        solver = OutOfCoreLanczos(blocks, n_nodes=1, scratch_dir=tmp_path)
        result = solver.solve(k=40, n_eigenvalues=2,
                              rng=np.random.default_rng(18), tol=1e-8,
                              basis_on_disk=True)
        exact = np.linalg.eigvalsh(matrix.to_dense())
        np.testing.assert_allclose(result.eigenvalues, exact[:2], rtol=1e-6)
        basis_files = list((tmp_path / "lanczos-basis").glob("*.arr"))
        # k iterations keep k (early exit) or k+1 (last residual vector
        # already appended) basis files on disk.
        assert len(basis_files) in (result.iterations, result.iterations + 1)
