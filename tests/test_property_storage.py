"""Stateful property-based testing of the DOoC storage layer.

A hypothesis rule machine drives a LocalStore through random interleavings
of writes, reads, releases, prefetches, I/O completions, and checks the
core invariants the paper's design rests on:

* memory accounting never goes negative nor above the budget;
* write-once semantics hold under any interleaving;
* every read that is eventually granted observes exactly the bytes that
  were written (immutability = no torn reads);
* the store never issues a load for a block that has no persistent copy;
* all effects reference tickets it created.
"""

from __future__ import annotations

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core.array import ArrayDesc
from repro.core.errors import ImmutabilityError, StorageError
from repro.core.interval import Interval
from repro.core.storage import LocalStore, Ticket

N_ARRAYS = 3
LENGTH = 40
BLOCK = 10
BUDGET_BLOCKS = 3  # tight: forces spills and evictions


class StorageMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.store = LocalStore(0, memory_budget=BUDGET_BLOCKS * BLOCK * 8)
        self.descs = {}
        for i in range(N_ARRAYS):
            desc = ArrayDesc(f"a{i}", length=LENGTH, block_elems=BLOCK)
            self.descs[desc.name] = desc
            self.store.create_array(desc)
        # model state
        self.written: dict[tuple[str, int, int], float] = {}  # (arr, lo, hi)->fill
        self.covered: dict[str, set[int]] = {f"a{i}": set() for i in range(N_ARRAYS)}
        self.write_tickets: list[Ticket] = []
        self.read_tickets: list[Ticket] = []
        self.pending_loads: list[tuple[str, int]] = []
        self.pending_spills: list[tuple[str, int, np.ndarray]] = []
        self.spilled_data: dict[tuple[str, int], np.ndarray] = {}
        self.fill_counter = 0.0

    # -- helpers ----------------------------------------------------------------

    def _absorb(self, effects):
        for e in effects:
            if e.kind == "load":
                assert (e.array, e.block) in self.spilled_data, (
                    "load issued for a block never spilled/persisted"
                )
                self.pending_loads.append((e.array, e.block))
            elif e.kind == "spill":
                assert e.data is not None
                self.pending_spills.append((e.array, e.block, e.data.copy()))
            elif e.kind == "grant_read":
                t = e.ticket
                assert t is not None and t.granted
                self.read_tickets.append(t)
                self._check_read(t)
            elif e.kind == "grant_write":
                t = e.ticket
                assert t is not None and t.granted
                # fill with a unique value and record the model
                self.fill_counter += 1.0
                t.data[:] = self.fill_counter
                self.written[(t.interval.array, t.interval.lo, t.interval.hi)] = \
                    self.fill_counter
                self.write_tickets.append(t)
            elif e.kind in ("drop", "fetch_remote"):
                pass

    def _check_read(self, t: Ticket):
        """A granted read must see exactly the written values."""
        iv = t.interval
        for pos in range(iv.lo, iv.hi):
            expected = None
            for (arr, lo, hi), fill in self.written.items():
                if arr == iv.array and lo <= pos < hi:
                    expected = fill
                    break
            assert expected is not None, "read granted over unwritten range"
            assert float(t.data[pos - iv.lo]) == expected

    # -- rules -------------------------------------------------------------------

    intervals = st.tuples(
        st.integers(0, N_ARRAYS - 1),
        st.integers(0, LENGTH // BLOCK - 1),
        st.integers(0, BLOCK - 2),
        st.integers(1, BLOCK),
    )

    @rule(spec=intervals)
    def request_write(self, spec):
        ai, block, off, size = spec
        name = f"a{ai}"
        lo = block * BLOCK + off
        hi = min(lo + size, (block + 1) * BLOCK)
        try:
            ticket, effects = self.store.request_write(Interval(name, block, lo, hi))
        except ImmutabilityError:
            return  # overlap with previous writes: correctly refused
        self._absorb(effects)
        if not ticket.granted:
            self.write_tickets.append(ticket)  # queued; will fill at grant

    @rule(spec=intervals)
    def request_read(self, spec):
        ai, block, off, size = spec
        name = f"a{ai}"
        lo = block * BLOCK + off
        hi = min(lo + size, (block + 1) * BLOCK)
        ticket, effects = self.store.request_read(Interval(name, block, lo, hi))
        self._absorb(effects)

    @rule(data=st.data())
    def release_a_write(self, data):
        ready = [t for t in self.write_tickets if t.granted and not t.released]
        if not ready:
            return
        t = data.draw(st.sampled_from(ready))
        iv = t.interval
        key = (iv.array, iv.lo, iv.hi)
        if key not in self.written:
            # Grant effect not yet absorbed is impossible (absorb is sync);
            # but a queued ticket granted inside absorb is filled there.
            self.fill_counter += 1.0
            t.data[:] = self.fill_counter
            self.written[key] = self.fill_counter
        self._absorb(self.store.release(t))
        self.write_tickets.remove(t)
        for pos in range(iv.lo, iv.hi):
            self.covered[iv.array].add(pos)

    @rule(data=st.data())
    def release_a_read(self, data):
        ready = [t for t in self.read_tickets if not t.released]
        if not ready:
            return
        t = data.draw(st.sampled_from(ready))
        self._absorb(self.store.release(t))
        self.read_tickets.remove(t)

    @rule(data=st.data())
    def serve_load(self, data):
        if not self.pending_loads:
            return
        idx = data.draw(st.integers(0, len(self.pending_loads) - 1))
        array, block = self.pending_loads.pop(idx)
        payload = self.spilled_data[(array, block)]
        self._absorb(self.store.on_loaded(array, block, payload.copy()))

    @rule(data=st.data())
    def serve_spill(self, data):
        if not self.pending_spills:
            return
        idx = data.draw(st.integers(0, len(self.pending_spills) - 1))
        array, block, payload = self.pending_spills.pop(idx)
        self.spilled_data[(array, block)] = payload
        self._absorb(self.store.on_spilled(array, block))

    @rule(spec=intervals)
    def prefetch(self, spec):
        ai, block, _, _ = spec
        name = f"a{ai}"
        lo, hi = self.descs[name].block_bounds(block)
        self._absorb(self.store.prefetch(Interval(name, block, lo, hi)))

    # -- invariants --------------------------------------------------------------

    @invariant()
    def memory_accounting(self):
        assert 0 <= self.store.in_use <= self.store.budget

    @invariant()
    def double_release_is_refused(self):
        for t in self.read_tickets[:1]:
            if t.released:
                try:
                    self.store.release(t)
                    raise AssertionError("double release accepted")
                except StorageError:
                    pass

    @invariant()
    def availability_map_is_consistent(self):
        amap = self.store.availability_map()
        for (name, block), avail in amap.items():
            if avail:
                blo, bhi = self.descs[name].block_bounds(block)
                data = self.store.peek_block(name, block)
                assert data is not None


TestStorageStateMachine = StorageMachine.TestCase
TestStorageStateMachine.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None)
