"""Unit + property tests for the max-min fair flow network."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, FlowNetwork, Link
from repro.sim.flow import fair_rates


def run_transfers(specs):
    """specs: list of (start_time, links, nbytes). Returns completion times."""
    env = Environment()
    net = FlowNetwork(env)
    done_at = {}

    def starter(i, start, links, nbytes):
        if start:
            yield env.timeout(start)
        yield net.transfer(links, nbytes)
        done_at[i] = env.now

    for i, (start, links, nbytes) in enumerate(specs):
        env.process(starter(i, start, links, nbytes))
    env.run()
    return done_at


def test_single_flow_full_bandwidth():
    link = Link("l", 100.0)
    done = run_transfers([(0.0, [link], 1000.0)])
    assert done[0] == pytest.approx(10.0)


def test_two_flows_share_equally():
    link = Link("l", 100.0)
    done = run_transfers([(0.0, [link], 500.0), (0.0, [link], 500.0)])
    # Each gets 50 B/s until both finish together.
    assert done[0] == pytest.approx(10.0)
    assert done[1] == pytest.approx(10.0)


def test_short_flow_finishes_then_long_flow_speeds_up():
    link = Link("l", 100.0)
    done = run_transfers([(0.0, [link], 200.0), (0.0, [link], 600.0)])
    # Phase 1: both at 50 B/s; short one done at t=4 (200/50).
    assert done[0] == pytest.approx(4.0)
    # Long flow: 200 B by t=4, then 400 B at 100 B/s -> t=8.
    assert done[1] == pytest.approx(8.0)


def test_late_arrival_slows_existing_flow():
    link = Link("l", 100.0)
    done = run_transfers([(0.0, [link], 1000.0), (5.0, [link], 250.0)])
    # First: 500 B alone by t=5, then 50 B/s. Second finishes at 5+250/50=10,
    # first has 500-250=250 left at t=10, then full rate: 10+2.5.
    assert done[1] == pytest.approx(10.0)
    assert done[0] == pytest.approx(12.5)


def test_multi_link_flow_bottlenecked_by_slowest():
    fast = Link("fast", 1000.0)
    slow = Link("slow", 10.0)
    done = run_transfers([(0.0, [fast, slow], 100.0)])
    assert done[0] == pytest.approx(10.0)


def test_aggregate_ceiling_with_per_node_caps():
    """The testbed pattern: per-node 1.5 GB/s caps + 20 GB/s shared storage."""
    storage = Link("gpfs", 20.0)
    nodes = [Link(f"nic{i}", 1.5) for i in range(25)]
    env = Environment()
    net = FlowNetwork(env)
    rates = {}

    def starter(i):
        yield net.transfer([nodes[i], storage], 150.0)
        rates[i] = env.now
        return None

    for i in range(25):
        env.process(starter(i))
    env.run()
    # 25 flows over a 20-unit storage link: fair share 0.8 each (below the
    # 1.5 per-node cap), so each 150-byte transfer takes 187.5 s.
    assert all(t == pytest.approx(187.5) for t in rates.values())


def test_per_node_cap_binds_when_few_nodes():
    storage = Link("gpfs", 20.0)
    nodes = [Link(f"nic{i}", 1.5) for i in range(4)]
    done = run_transfers([(0.0, [nodes[i], storage], 15.0) for i in range(4)])
    # 4 x 1.5 = 6 < 20, so NICs bind: each at 1.5 -> 10 s.
    for i in range(4):
        assert done[i] == pytest.approx(10.0)


def test_zero_byte_transfer_completes_instantly():
    env = Environment()
    net = FlowNetwork(env)
    ev = net.transfer([Link("l", 1.0)], 0.0)
    env.run()
    assert ev.processed and ev.value == 0.0


def test_transfer_requires_links():
    env = Environment()
    net = FlowNetwork(env)
    with pytest.raises(ValueError):
        net.transfer([], 10.0)
    with pytest.raises(ValueError):
        net.transfer([Link("l", 1.0)], -1.0)


def test_bytes_completed_accounting():
    link = Link("l", 100.0)
    env = Environment()
    net = FlowNetwork(env)

    def go():
        yield net.transfer([link], 300.0)
        yield net.transfer([link], 200.0)

    env.process(go())
    env.run()
    assert net.bytes_completed == pytest.approx(500.0)


# ---------------------------------------------------------------------------
# Property tests on the pure allocation routine
# ---------------------------------------------------------------------------

link_caps = st.lists(st.floats(min_value=0.5, max_value=1000.0), min_size=1, max_size=6)


@st.composite
def allocation_problems(draw):
    caps = draw(link_caps)
    n_flows = draw(st.integers(min_value=1, max_value=8))
    flows = [
        draw(
            st.lists(
                st.integers(min_value=0, max_value=len(caps) - 1),
                min_size=1,
                max_size=len(caps),
                unique=True,
            )
        )
        for _ in range(n_flows)
    ]
    return caps, flows


@given(allocation_problems())
@settings(max_examples=200, deadline=None)
def test_rates_never_exceed_any_link_capacity(problem):
    caps, flows = problem
    rates = fair_rates(caps, flows)
    for li, cap in enumerate(caps):
        used = sum(r for r, f in zip(rates, flows, strict=True) if li in f)
        assert used <= cap * (1 + 1e-9)


@given(allocation_problems())
@settings(max_examples=200, deadline=None)
def test_every_flow_gets_positive_rate(problem):
    caps, flows = problem
    rates = fair_rates(caps, flows)
    assert all(r > 0 for r in rates)


@given(allocation_problems())
@settings(max_examples=200, deadline=None)
def test_allocation_is_maximal(problem):
    """Max-min fairness implies Pareto efficiency: every flow crosses at
    least one saturated link."""
    caps, flows = problem
    rates = fair_rates(caps, flows)
    usage = [0.0] * len(caps)
    for r, f in zip(rates, flows, strict=True):
        for li in f:
            usage[li] += r
    for _r, f in zip(rates, flows, strict=True):
        assert any(usage[li] >= caps[li] * (1 - 1e-6) for li in f)


@given(allocation_problems())
@settings(max_examples=100, deadline=None)
def test_single_link_flows_get_equal_shares(problem):
    caps, flows = problem
    rates = fair_rates(caps, flows)
    # Flows with identical link sets must receive identical rates.
    seen: dict[tuple, float] = {}
    for r, f in zip(rates, flows, strict=True):
        key = tuple(sorted(f))
        if key in seen:
            assert math.isclose(seen[key], r, rel_tol=1e-9, abs_tol=1e-12)
        else:
            seen[key] = r
