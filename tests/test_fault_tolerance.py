"""Fault tolerance: the runtime must survive I/O and peer failures.

The fault seed is overridable via ``DOOC_FAULT_SEED`` so CI can sweep a
seed matrix over the same assertions (see .github/workflows/ci.yml).
"""

import os

import numpy as np
import pytest

from repro.core import DOoCEngine, IOFailedError, Program, StallError
from repro.core.iofilter import array_path
from repro.datacutter import FilterError
from repro.faults import FaultPlan, RetryPolicy
from repro.spmv.partition import GridPartition
from repro.spmv.program import build_iterated_spmv
from repro.testbed import run_testbed_spmv

FAULT_SEED = int(os.environ.get("DOOC_FAULT_SEED", "0"))


def spmv_problem(n=512, k=4, seed=0):
    from repro.spmv.generator import choose_gap_parameter, gap_uniform_csr
    rng = np.random.default_rng(seed)
    p = GridPartition(n, k)
    global_m = gap_uniform_csr(n, n, choose_gap_parameter(n, 8.0), rng)
    return global_m, p, p.split_matrix(global_m), rng.normal(size=n)


class TestTransientIOFaults:
    def test_soak_iterated_spmv_bit_identical(self, tmp_path):
        """~5% transient I/O faults under real memory pressure (the tight
        budget forces spill/reload churn, so loads *and* stores are
        decision sites): same bits as the fault-free run.

        The correctness half holds for any seed; the metric half
        (``faults_injected > 0``) needs a seed whose plan draws at least
        one fault over this run's ~50 sites — true of the CI seed matrix
        (0, 1, 2), verified when it was chosen."""
        _, p, blocks, x0 = spmv_problem()

        def run(scratch, faults):
            result = build_iterated_spmv(
                blocks, p.split_vector(x0), iterations=4, n_nodes=2)
            eng = DOoCEngine(
                n_nodes=2, workers_per_node=2, scratch_dir=scratch,
                memory_budget_per_node=1 << 16, faults=faults,
                io_retry=RetryPolicy(attempts=6, backoff_s=0.001))
            report = eng.run(result.program, timeout=180)
            return result.fetch_final(eng), report

        clean, _ = run(tmp_path / "clean", None)
        plan = FaultPlan(seed=FAULT_SEED, io_transient=0.05)
        faulty, report = run(tmp_path / "faulty", plan)
        # Injection perturbs timing only, never arithmetic: bit-identical.
        assert np.array_equal(clean, faulty)
        totals = {
            key: sum(m.get(key, 0) for m in report.metrics.values())
            for key in ("io_retries", "faults_injected")
        }
        assert totals["faults_injected"] > 0
        assert totals["io_retries"] >= totals["faults_injected"]

    def test_metrics_absent_without_faults(self, tmp_path):
        prog = Program("quiet", default_block_elems=32)
        prog.initial_array("x", np.ones(64), home=0)
        prog.array("y", 64)
        prog.add_task("t", lambda i, o, m: o["y"].__setitem__(
            slice(None), i["x"]), ["x"], ["y"])
        eng = DOoCEngine(n_nodes=1, scratch_dir=tmp_path)
        report = eng.run(prog, timeout=60)
        for m in report.metrics.values():
            assert m.get("faults_injected", 0) == 0
            assert m.get("io_retries", 0) == 0


class TestPermanentIOFaults:
    def test_poisoned_load_fails_fast_not_stall(self, tmp_path):
        """A truncated backing file must surface as a run failure (the
        I/O error propagated through ticket denial and task failure),
        never as a silent stall that only the watchdog timeout ends."""
        desc_len, block = 64, 32
        scratch = tmp_path / "node0"
        scratch.mkdir()
        prog = Program("poisoned", default_block_elems=block)
        prog.initial_from_scratch("ghost", desc_len, home=0)
        prog.array("y", desc_len)
        prog.add_task("t", lambda i, o, m: o["y"].__setitem__(
            slice(None), i["ghost"]), ["ghost"], ["y"])
        # Backing file exists but holds only half the bytes: block 1's
        # offset is past EOF — a missing (never-written) block, which the
        # I/O filter refuses to retry (retries cannot conjure bytes).
        path = array_path(scratch, "ghost")
        path.write_bytes(b"\x00" * (block * 8))
        eng = DOoCEngine(
            n_nodes=1, scratch_dir=tmp_path,
            io_retry=RetryPolicy(attempts=2, backoff_s=0.001),
            task_max_attempts=2)
        with pytest.raises(FilterError) as excinfo:
            eng.run(prog, timeout=60)
        assert not isinstance(excinfo.value, StallError)
        assert "never written" in str(excinfo.value.cause)

    def test_worker_sees_io_failed_error(self, tmp_path):
        """The denied ticket reaches the worker as IOFailedError (visible
        in the task-failure report), not as a bare hang."""
        plan = FaultPlan(seed=FAULT_SEED, io_permanent=1.0)
        prog = Program("doomed", default_block_elems=32)
        prog.initial_array("x", np.ones(32), home=0)
        prog.array("y", 32)
        prog.add_task("t", lambda i, o, m: o["y"].__setitem__(
            slice(None), i["x"]), ["x"], ["y"])
        eng = DOoCEngine(
            n_nodes=1, scratch_dir=tmp_path, faults=plan,
            io_retry=RetryPolicy(attempts=2, backoff_s=0.001),
            task_max_attempts=2)
        with pytest.raises(FilterError) as excinfo:
            eng.run(prog, timeout=60)
        assert IOFailedError.__name__ in str(excinfo.value.cause)


class TestTaskReexecution:
    def test_injected_crashes_recovered_locally(self, tmp_path):
        plan = FaultPlan(seed=FAULT_SEED, task_crash=0.4)
        prog = Program("crashy", default_block_elems=32)
        prog.initial_array("x", np.arange(128, dtype=float), home=0)
        prev = "x"
        for i in range(6):
            prog.array(f"y{i}", 128)
            prog.add_task(
                f"t{i}",
                lambda ins, outs, m, src=prev, dst=f"y{i}":
                    outs[dst].__setitem__(slice(None), ins[src] + 1),
                [prev], [f"y{i}"])
            prev = f"y{i}"
        # Generous attempt budget: at task_crash=0.4 a task would need a
        # 12-long crash streak in its (deterministic) draws to exhaust it.
        eng = DOoCEngine(n_nodes=1, scratch_dir=tmp_path, faults=plan,
                         task_max_attempts=12)
        report = eng.run(prog, timeout=120)
        np.testing.assert_array_equal(eng.fetch(prev), np.arange(128) + 6.0)
        crashes = sum(
            m.get("faults_injected_by_label", {}).get("task_crash", 0)
            for m in report.metrics.values())
        reexec = sum(m.get("task_reexecutions", 0)
                     for m in report.metrics.values())
        assert reexec == crashes  # every crash was retried, none leaked

    def test_reroute_to_second_node_after_local_exhaustion(self, tmp_path):
        import itertools
        calls = itertools.count()

        def flaky(ins, outs, meta):
            # Fails every attempt on the first node (task_max_attempts=3),
            # succeeds on the rerouted node's first attempt.
            if next(calls) < 3:
                raise RuntimeError("node-local poison")
            outs["y"][:] = ins["x"] + 1

        prog = Program("reroute", default_block_elems=64)
        prog.initial_array("x", np.arange(256, dtype=float), home=0)
        prog.array("y", 256)
        prog.array("z", 256)
        prog.add_task("flaky", flaky, ["x"], ["y"])
        prog.add_task("dbl", lambda i, o, m: o["z"].__setitem__(
            slice(None), i["y"] * 2), ["y"], ["z"])
        eng = DOoCEngine(n_nodes=2, scratch_dir=tmp_path,
                         task_max_attempts=3)
        report = eng.run(prog, timeout=120)
        assert report.assignment["flaky"] == 1  # moved off node 0
        np.testing.assert_array_equal(eng.fetch("y"), np.arange(256) + 1.0)
        # The downstream consumer found y at its new home.
        np.testing.assert_array_equal(
            eng.fetch("z"), (np.arange(256) + 1.0) * 2)

    def test_unrecoverable_task_raises_task_failure(self, tmp_path):
        def always(ins, outs, meta):
            raise RuntimeError("fails everywhere")

        prog = Program("hopeless", default_block_elems=32)
        prog.initial_array("x", np.ones(32), home=0)
        prog.array("y", 32)
        prog.add_task("t", always, ["x"], ["y"])
        eng = DOoCEngine(n_nodes=2, scratch_dir=tmp_path,
                         task_max_attempts=2)
        with pytest.raises(FilterError) as excinfo:
            eng.run(prog, timeout=60)
        assert not isinstance(excinfo.value, StallError)
        assert "fails everywhere" in str(excinfo.value.cause)


class TestPeerFaults:
    def test_dropped_and_delayed_messages_recovered(self, tmp_path):
        prog = Program("peers", default_block_elems=64)
        prog.initial_array("x", np.arange(256, dtype=float), home=0)
        # The big input pins the task to node 1; x must be fetched from
        # node 0 over the faulty peer links.
        prog.initial_array("big", np.ones(4096), home=1)
        prog.array("y", 256)

        def fn(ins, outs, meta):
            outs["y"][:] = ins["x"] + ins["big"][:256]

        prog.add_task("mix", fn, ["big", "x"], ["y"])
        plan = FaultPlan(seed=FAULT_SEED, peer_drop=0.3, peer_delay=0.2)
        eng = DOoCEngine(n_nodes=2, scratch_dir=tmp_path, faults=plan)
        report = eng.run(prog, timeout=120)
        assert report.assignment["mix"] == 1
        np.testing.assert_array_equal(eng.fetch("y"), np.arange(256) + 1.0)
        injected = sum(m.get("faults_injected", 0)
                       for m in report.metrics.values())
        recovered = sum(
            m.get("fetch_retransmits", 0) + m.get("lookup_retransmits", 0)
            + m.get("lookup_restarts", 0)
            for m in report.metrics.values())
        drops = sum(
            m.get("faults_injected_by_label", {}).get("peer_drop", 0)
            for m in report.metrics.values())
        assert injected > 0
        if drops:  # delays heal by waiting; drops need retransmission
            assert recovered > 0


class TestTestbedFaultMirror:
    def test_deterministic_and_slower_with_same_table_shape(self):
        base = run_testbed_spmv(4, "interleaved", seed=3)
        plan = FaultPlan(seed=FAULT_SEED, io_transient=0.05)
        f1 = run_testbed_spmv(4, "interleaved", seed=3, faults=plan)
        f2 = run_testbed_spmv(4, "interleaved", seed=3, faults=plan)
        assert f1 == f2
        assert f1.io_retries > 0 and f1.faults_injected > 0
        assert f1.time_s > base.time_s
        assert (f1.dimension, f1.nnz, f1.size_bytes) == \
               (base.dimension, base.nnz, base.size_bytes)

    def test_permanent_faults_count_reexecutions(self):
        row = run_testbed_spmv(
            4, "simple", seed=3,
            faults=FaultPlan(seed=FAULT_SEED, io_permanent=0.02))
        assert row.task_reexecutions > 0
        assert row.faults_injected >= row.task_reexecutions
