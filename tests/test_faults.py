"""Unit tests for the fault layer: plans, retry policy, injector."""

import pytest

from repro.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.obs import MetricsRegistry, Tracer


class TestFaultPlanValidation:
    @pytest.mark.parametrize("field", [
        "io_transient", "io_permanent", "peer_drop", "peer_delay",
        "task_crash",
    ])
    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_probabilities_validated(self, field, bad):
        with pytest.raises(ValueError, match="probability"):
            FaultPlan(**{field: bad})

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="peer_delay_s"):
            FaultPlan(peer_delay_s=-1.0)

    def test_enabled(self):
        assert not FaultPlan().enabled
        assert not FaultPlan(seed=42).enabled
        assert FaultPlan(io_transient=0.1).enabled
        assert FaultPlan(task_crash=1.0).enabled


class TestFaultPlanDeterminism:
    def sites(self):
        return [(n, op, a, b, k)
                for n in range(2) for op in ("load", "store")
                for a in ("x", "y") for b in range(4) for k in (1, 2)]

    def test_same_seed_same_decisions(self):
        p1 = FaultPlan(seed=7, io_transient=0.3, io_permanent=0.05)
        p2 = FaultPlan(seed=7, io_transient=0.3, io_permanent=0.05)
        assert [p1.io_fault(*s) for s in self.sites()] == \
               [p2.io_fault(*s) for s in self.sites()]

    def test_different_seed_different_decisions(self):
        p1 = FaultPlan(seed=1, io_transient=0.5)
        p2 = FaultPlan(seed=2, io_transient=0.5)
        assert [p1.io_fault(*s) for s in self.sites()] != \
               [p2.io_fault(*s) for s in self.sites()]

    def test_decisions_independent_of_call_order(self):
        plan = FaultPlan(seed=3, io_transient=0.4)
        forward = [plan.io_fault(*s) for s in self.sites()]
        backward = [plan.io_fault(*s) for s in reversed(self.sites())]
        assert forward == list(reversed(backward))

    def test_empirical_rate_near_probability(self):
        plan = FaultPlan(seed=0, io_transient=0.2)
        n = 4000
        hits = sum(
            plan.io_fault(0, "load", "x", b, 1) == "transient"
            for b in range(n))
        assert 0.15 < hits / n < 0.25

    def test_permanent_dominates_and_repeats(self):
        plan = FaultPlan(seed=0, io_transient=1.0, io_permanent=1.0)
        for attempt in (1, 2, 3):
            assert plan.io_fault(0, "load", "x", 0, attempt) == "permanent"

    def test_transient_rekeyed_per_attempt(self):
        plan = FaultPlan(seed=0, io_transient=0.5)
        fates = {plan.io_fault(0, "load", "x", 0, k) for k in range(1, 40)}
        assert fates == {None, "transient"}  # retries eventually pass

    def test_peer_fault_rekeyed_per_occurrence(self):
        plan = FaultPlan(seed=0, peer_drop=0.5)
        fates = {plan.peer_fault(0, 1, "fetch", "x", 0, occ)
                 for occ in range(40)}
        assert fates == {None, ("drop", 0.0)}  # retransmits eventually pass

    def test_peer_delay_carries_configured_seconds(self):
        plan = FaultPlan(seed=0, peer_delay=1.0, peer_delay_s=0.125)
        assert plan.peer_fault(0, 1, "fetch", "x", 0, 0) == ("delay", 0.125)

    def test_task_fault_deterministic(self):
        plan = FaultPlan(seed=5, task_crash=0.5)
        draws = [plan.task_fault(0, "t", k) for k in range(20)]
        assert draws == [plan.task_fault(0, "t", k) for k in range(20)]
        assert any(draws) and not all(draws)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_s=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)

    def test_exponential_growth_and_cap(self):
        p = RetryPolicy(backoff_s=0.01, multiplier=2.0, max_backoff_s=0.05,
                        jitter=0.0)
        assert p.delay(1) == pytest.approx(0.01)
        assert p.delay(2) == pytest.approx(0.02)
        assert p.delay(3) == pytest.approx(0.04)
        assert p.delay(4) == pytest.approx(0.05)  # capped
        assert p.delay(10) == pytest.approx(0.05)

    def test_jitter_bounds(self):
        import random
        p = RetryPolicy(backoff_s=0.1, multiplier=1.0, jitter=0.5)
        rng = random.Random(0)
        delays = [p.delay(1, rng) for _ in range(200)]
        assert all(0.05 <= d <= 0.15 for d in delays)
        assert max(delays) > 0.12 and min(delays) < 0.08  # jitter is live


class TestFaultInjector:
    def test_counts_and_traces_injections(self):
        metrics = MetricsRegistry()
        tracer = Tracer()
        inj = FaultInjector(FaultPlan(seed=0, io_transient=1.0), node=0,
                            metrics=metrics, tracer=tracer)
        assert inj.io_fault("load", "x", 0, 1) == "transient"
        assert inj.io_fault("load", "x", 1, 1) == "transient"
        snap = metrics.as_dict()
        assert snap["faults_injected"] == 2
        assert snap["faults_injected_by_label"] == {"io_transient": 2}
        assert [e.name for e in tracer.events() if e.cat == "fault"] == \
               ["io_transient", "io_transient"]

    def test_peer_occurrence_counter_advances(self):
        plan = FaultPlan(seed=0, peer_drop=0.5)
        inj = FaultInjector(plan, node=0)
        # The injector must feed an incrementing occurrence into the plan:
        # repeated sends of the same message re-draw rather than repeating.
        fates = [inj.peer_fault(1, "fetch", "x", 0) for _ in range(40)]
        expect = [plan.peer_fault(0, 1, "fetch", "x", 0, occ)
                  for occ in range(40)]
        assert fates == expect
        assert len(set(map(bool, fates))) == 2

    def test_no_injection_no_count(self):
        metrics = MetricsRegistry()
        inj = FaultInjector(FaultPlan(seed=0), node=0, metrics=metrics)
        assert inj.io_fault("load", "x", 0, 1) is None
        assert not inj.task_fault("t", 1)
        assert "faults_injected" not in metrics.as_dict()
