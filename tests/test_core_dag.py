"""Tests for task specs and the derived dependency DAG."""

import pytest

from repro.core.dag import TaskDAG
from repro.core.errors import SchedulingError
from repro.core.task import TaskSpec, task


def noop(ins, outs, meta):
    pass


class TestTaskSpec:
    def test_validation(self):
        with pytest.raises(SchedulingError):
            task("", noop, [], ["x"])
        with pytest.raises(SchedulingError):
            task("t", noop, ["a"], [])  # no outputs
        with pytest.raises(SchedulingError):
            task("t", noop, ["a"], ["a"])  # immutability
        with pytest.raises(SchedulingError):
            task("t", noop, [], ["x", "x"])  # dup outputs
        with pytest.raises(SchedulingError):
            task("t", noop, [], ["x"], flops=-1)

    def test_meta_carried(self):
        t = task("t", noop, [], ["x"], flops=10, color="red")
        assert t.meta == {"color": "red"}
        assert t.flops == 10


def spmv_like_tasks():
    """x1_uv = A_uv * x0_v; x1_u = sum_v x1_uv (2x2 grid)."""
    tasks = []
    for u in range(2):
        for v in range(2):
            tasks.append(task(f"mult_{u}{v}", noop,
                              [f"A_{u}{v}", f"x0_{v}"], [f"xi_{u}{v}"]))
    for u in range(2):
        tasks.append(task(f"sum_{u}", noop,
                          [f"xi_{u}0", f"xi_{u}1"], [f"x1_{u}"]))
    initial = [f"A_{u}{v}" for u in range(2) for v in range(2)] + ["x0_0", "x0_1"]
    return tasks, initial


class TestTaskDAG:
    def test_derived_dependencies(self):
        tasks, initial = spmv_like_tasks()
        dag = TaskDAG(tasks, initial)
        assert dag.preds["sum_0"] == {"mult_00", "mult_01"}
        assert dag.succs["mult_00"] == {"sum_0"}
        assert dag.preds["mult_00"] == set()

    def test_ready_and_completion_flow(self):
        tasks, initial = spmv_like_tasks()
        dag = TaskDAG(tasks, initial)
        assert sorted(dag.ready_tasks()) == [
            "mult_00", "mult_01", "mult_10", "mult_11"]
        assert dag.mark_complete("mult_00") == []
        newly = dag.mark_complete("mult_01")
        assert newly == ["sum_0"]
        dag.mark_complete("mult_10")
        dag.mark_complete("mult_11")
        dag.mark_complete("sum_0")
        assert not dag.done
        dag.mark_complete("sum_1")
        assert dag.done

    def test_double_completion_rejected(self):
        tasks, initial = spmv_like_tasks()
        dag = TaskDAG(tasks, initial)
        dag.mark_complete("mult_00")
        with pytest.raises(SchedulingError, match="twice"):
            dag.mark_complete("mult_00")

    def test_premature_completion_rejected(self):
        tasks, initial = spmv_like_tasks()
        dag = TaskDAG(tasks, initial)
        with pytest.raises(SchedulingError, match="before its inputs"):
            dag.mark_complete("sum_0")

    def test_unknown_input_rejected(self):
        with pytest.raises(SchedulingError, match="nothing"):
            TaskDAG([task("t", noop, ["ghost"], ["x"])], initial_arrays=[])

    def test_two_producers_rejected(self):
        with pytest.raises(SchedulingError, match="immutable"):
            TaskDAG(
                [task("a", noop, [], ["x"]), task("b", noop, [], ["x"])],
                initial_arrays=[],
            )

    def test_task_writing_initial_array_rejected(self):
        with pytest.raises(SchedulingError, match="initial"):
            TaskDAG([task("a", noop, [], ["x"])], initial_arrays=["x"])

    def test_cycle_detection(self):
        cyc = [
            task("a", noop, ["y"], ["x"]),
            task("b", noop, ["x"], ["y"]),
        ]
        with pytest.raises(SchedulingError, match="cycle"):
            TaskDAG(cyc, initial_arrays=[])

    def test_duplicate_task_names_rejected(self):
        with pytest.raises(SchedulingError, match="duplicate"):
            TaskDAG(
                [task("a", noop, [], ["x"]), task("a", noop, [], ["y"])],
                initial_arrays=[],
            )

    def test_topological_order_is_deterministic_and_valid(self):
        tasks, initial = spmv_like_tasks()
        dag = TaskDAG(tasks, initial)
        order = dag.topological_order()
        assert order == dag.topological_order()
        pos = {n: i for i, n in enumerate(order)}
        for name, preds in dag.preds.items():
            for p in preds:
                assert pos[p] < pos[name]

    def test_critical_path(self):
        tasks, initial = spmv_like_tasks()
        dag = TaskDAG(tasks, initial)
        assert dag.critical_path_length() == 2  # mult -> sum
        chain = [
            task("t0", noop, [], ["c0"]),
            task("t1", noop, ["c0"], ["c1"]),
            task("t2", noop, ["c1"], ["c2"]),
        ]
        assert TaskDAG(chain, []).critical_path_length() == 3

    def test_consumers_of(self):
        tasks, initial = spmv_like_tasks()
        dag = TaskDAG(tasks, initial)
        assert dag.consumers_of("x0_0") == ["mult_00", "mult_10"]
