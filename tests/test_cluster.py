"""Tests for hardware specs and the simulated machine."""

import pytest

from repro.cluster import SimCluster, carver_ssd_testbed, hopper
from repro.cluster.spec import (
    ClusterSpec,
    FilesystemSpec,
    InterconnectSpec,
    IONodeSpec,
    NodeSpec,
    SSDSpec,
)
from repro.sim import Environment
from repro.sim.trace import TraceRecorder
from repro.util import GB
from repro.util.rng import RngTree


class TestSpecs:
    def test_carver_matches_paper_constants(self):
        spec = carver_ssd_testbed()
        assert spec.compute_nodes == 40
        assert spec.io_nodes == 10
        assert spec.node.cores == 8
        # 10 I/O nodes x 2 cards x 1 GB/s = 20 GB/s hardware peak.
        assert spec.peak_storage_bytes_per_s == pytest.approx(20 * GB)
        # Deliverable ~ 18.6 GB/s (93% efficiency, observed 18.5-18.7).
        assert 18.0 * GB < spec.deliverable_storage_bytes_per_s < 19.0 * GB
        # QDR 4X = 32 Gb/s = 4 GB/s per port.
        assert spec.interconnect.port_bytes_per_s == pytest.approx(4 * GB)

    def test_hopper_matches_paper_constants(self):
        spec = hopper()
        assert spec.node.cores == 24
        assert spec.peak_storage_bytes_per_s == 0.0
        assert spec.total_cores == 6384 * 24

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            NodeSpec("bad", cores=0, clock_hz=1e9, dram_bytes=1,
                     spmv_flops_per_core=1e9, nic_bytes_per_s=1e9)
        with pytest.raises(ValueError):
            SSDSpec("bad", capacity_bytes=0, read_bytes_per_s=1, write_bytes_per_s=1)
        with pytest.raises(ValueError):
            FilesystemSpec(efficiency=0.0)
        with pytest.raises(ValueError):
            FilesystemSpec(jitter_cv=-0.1)
        with pytest.raises(ValueError):
            InterconnectSpec("bad", port_bytes_per_s=0, latency_s=0)
        card = SSDSpec("ok", capacity_bytes=1, read_bytes_per_s=1, write_bytes_per_s=1)
        with pytest.raises(ValueError):
            IONodeSpec(cards=0, card=card, nic_bytes_per_s=1e9)

    def test_cluster_requires_io_spec_when_io_nodes(self):
        node = NodeSpec("n", cores=1, clock_hz=1e9, dram_bytes=1,
                        spmv_flops_per_core=1e9, nic_bytes_per_s=1e9)
        ic = InterconnectSpec("ic", port_bytes_per_s=1e9, latency_s=0.0)
        with pytest.raises(ValueError):
            ClusterSpec("c", compute_nodes=1, node=node, interconnect=ic, io_nodes=2)

    def test_io_node_nic_caps_read_bw(self):
        card = SSDSpec("fast", capacity_bytes=GB, read_bytes_per_s=10 * GB,
                       write_bytes_per_s=GB)
        ion = IONodeSpec(cards=2, card=card, nic_bytes_per_s=4 * GB)
        assert ion.read_bytes_per_s == pytest.approx(4 * GB)


def make_cluster(n=2, jitter=0.0):
    env = Environment()
    spec = carver_ssd_testbed()
    spec = ClusterSpec(
        name=spec.name,
        compute_nodes=spec.compute_nodes,
        node=spec.node,
        interconnect=spec.interconnect,
        io_nodes=spec.io_nodes,
        io_node=spec.io_node,
        filesystem=FilesystemSpec(jitter_cv=jitter, open_latency_s=0.0),
    )
    cluster = SimCluster(env, spec, rng=RngTree(1), nodes_in_use=n,
                         trace=TraceRecorder())
    return env, cluster


class TestSimCluster:
    def test_single_read_capped_by_client_bandwidth(self):
        env, cluster = make_cluster(n=1)
        ev = cluster.fs_read(0, 1.45 * GB)
        env.run(ev)
        # One client at its 1.45 GB/s cap: 1.45 GB takes ~1 s.
        assert env.now == pytest.approx(1.0, rel=1e-6)
        assert cluster.nodes[0].bytes_read == pytest.approx(1.45 * GB)

    def test_many_readers_hit_aggregate_ceiling(self):
        env, cluster = make_cluster(n=25)
        events = [cluster.fs_read(i, 1.0 * GB) for i in range(25)]
        env.run(env.all_of(events))
        # 25 clients want 25 x 1.45 = 36 GB/s; the contention-degraded
        # aggregate binds and is shared fairly.
        deliverable = (cluster.spec.peak_storage_bytes_per_s
                       * cluster.spec.filesystem.aggregate_efficiency(25))
        expected = 25 * GB / deliverable
        assert env.now == pytest.approx(expected, rel=1e-6)

    def test_few_readers_below_ceiling_scale_linearly(self):
        env, cluster = make_cluster(n=4)
        events = [cluster.fs_read(i, 1.45 * GB) for i in range(4)]
        env.run(env.all_of(events))
        assert env.now == pytest.approx(1.0, rel=1e-6)  # no contention

    def test_jitter_changes_duration_deterministically(self):
        env1, c1 = make_cluster(n=1, jitter=0.3)
        ev = c1.fs_read(0, GB)
        env1.run(ev)
        t1 = env1.now
        env2, c2 = make_cluster(n=1, jitter=0.3)
        ev = c2.fs_read(0, GB)
        env2.run(ev)
        assert t1 == pytest.approx(env2.now)  # same seed, same jitter
        assert t1 != pytest.approx(GB / c1.spec.filesystem.client_bytes_per_s)

    def test_jitter_mean_is_approximately_unbiased(self):
        env, cluster = make_cluster(n=1, jitter=0.2)
        node = cluster.nodes[0]
        factors = [cluster._jitter(node) for _ in range(4000)]
        assert sum(factors) / len(factors) == pytest.approx(1.0, abs=0.02)

    def test_send_uses_fabric_bandwidth(self):
        env, cluster = make_cluster(n=2)
        ev = cluster.send(0, 1, 4 * GB)
        env.run(ev)
        assert env.now == pytest.approx(1.0, rel=1e-6)  # 4 GB at 4 GB/s
        assert cluster.nodes[0].bytes_sent == pytest.approx(4 * GB)

    def test_self_send_is_free(self):
        env, cluster = make_cluster(n=2)
        ev = cluster.send(1, 1, GB)
        env.run()
        assert ev.processed and env.now == 0.0

    def test_incast_shares_receiver_nic(self):
        env, cluster = make_cluster(n=5)
        events = [cluster.send(i, 0, 1 * GB) for i in range(1, 5)]
        env.run(env.all_of(events))
        # 4 senders into one 4 GB/s rx: 1 GB/s each -> 1 s... but each tx is
        # 4 GB/s so rx is the bottleneck: 4 GB total / 4 GB/s = 1 s.
        assert env.now == pytest.approx(1.0, rel=1e-6)

    def test_compute_occupies_cores(self):
        env, cluster = make_cluster(n=1)
        rate = cluster.spec.node.spmv_flops_per_core
        done = []

        def work(i):
            yield env.process(cluster.compute(0, rate))  # 1 core-second
            done.append((i, env.now))

        for i in range(16):
            env.process(work(i))
        env.run()
        # 16 one-second tasks on 8 cores: two waves.
        assert [t for _, t in done] == [1.0] * 8 + [2.0] * 8

    def test_compute_multicore_speedup(self):
        env, cluster = make_cluster(n=1)
        rate = cluster.spec.node.spmv_flops_per_core

        def work():
            yield env.process(cluster.compute(0, 8 * rate, cores=8))

        p = env.process(work())
        env.run(p)
        assert env.now == pytest.approx(1.0)  # node-wide: 8 cores in 1 s

    def test_compute_core_validation(self):
        env, cluster = make_cluster(n=1)
        with pytest.raises(ValueError):
            env.run(env.process(cluster.compute(0, 1e9, cores=9)))

    def test_fs_read_without_storage_raises(self):
        env = Environment()
        cluster = SimCluster(env, hopper(), nodes_in_use=1)
        with pytest.raises(RuntimeError):
            cluster.fs_read(0, GB)

    def test_trace_records_io_and_compute(self):
        env, cluster = make_cluster(n=1)

        def run():
            yield cluster.fs_read(0, GB, label="blk")
            yield env.process(cluster.compute(0, 1e9, label="spmv"))

        env.run(env.process(run()))
        assert cluster.trace.count(kind="io") == 1
        assert cluster.trace.count(kind="compute") == 1

    def test_nodes_in_use_bounds(self):
        env = Environment()
        with pytest.raises(ValueError):
            SimCluster(env, carver_ssd_testbed(), nodes_in_use=41)

    def test_open_latency_defers_flow(self):
        env = Environment()
        spec = carver_ssd_testbed()
        cluster = SimCluster(env, spec, nodes_in_use=1, rng=RngTree(0))
        # Zero out jitter influence by measuring relative to latency.
        ev = cluster.fs_read(0, 0.0)
        env.run()
        assert ev.processed
        assert env.now >= spec.filesystem.open_latency_s
