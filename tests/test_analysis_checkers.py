"""Dynamic half of repro.analysis: lock order, ticket lifecycle, DAG checks."""

import threading

import numpy as np
import pytest

from repro.analysis.dagcheck import DagValidationError, validate_tasks
from repro.analysis.lockorder import LockOrderRecorder, LockOrderViolation
from repro.analysis.tickets import TicketAuditor, TicketLeakError
from repro.core.engine import DOoCEngine, Program
from repro.core.errors import SchedulingError
from repro.core.interval import Interval
from repro.core.storage import LocalStore
from repro.core.task import task
from repro.datacutter.runtime import ThreadedRuntime


# -- lock-order recorder -----------------------------------------------------


def test_nested_acquisition_in_one_order_is_fine():
    rec = LockOrderRecorder()
    a = rec.wrap(threading.Lock(), "A")
    b = rec.wrap(threading.Lock(), "B")
    for _ in range(3):
        with a, b:
            pass
    assert rec.edges() == [("A", "B")]
    rec.check()  # no cycle


def test_inverted_acquisition_across_threads_names_the_cycle():
    # Thread 1 takes A then B; thread 2 takes B then A.  The interleaving
    # chosen here never deadlocks (the threads run sequentially), but the
    # ordering cycle is still recorded — exactly the bug class the checker
    # exists to catch before the unlucky schedule does.
    rec = LockOrderRecorder()
    a = rec.wrap(threading.Lock(), "instance-A.cond")
    b = rec.wrap(threading.Lock(), "instance-B.cond")

    def forward():
        with a, b:
            pass

    def backward():
        with b, a:
            pass

    for body in (forward, backward):
        t = threading.Thread(target=body)
        t.start()
        t.join()

    with pytest.raises(LockOrderViolation) as info:
        rec.check()
    message = str(info.value)
    assert "instance-A.cond" in message and "instance-B.cond" in message
    assert "held while taking" in message
    # the cycle itself is machine-readable on the exception
    assert set(info.value.cycle) == {"instance-A.cond", "instance-B.cond"}


def test_condition_wrapping_supports_wait_and_notify():
    rec = LockOrderRecorder()
    cond = rec.wrap_condition(threading.Condition(), "C")
    ready = []

    def waiter():
        with cond:
            while not ready:
                cond.wait(0.05)

    t = threading.Thread(target=waiter)
    t.start()
    with cond:
        ready.append(True)
        cond.notify_all()
    t.join(5)
    assert not t.is_alive()
    rec.check()


def test_runtime_wraps_instance_conditions_when_recorder_given():
    from repro.datacutter.filters import Filter
    from repro.datacutter.layout import Layout

    class Src(Filter):
        outputs = ("out",)

        def process(self, ctx):
            pass

    class Sink(Filter):
        inputs = ("in",)

        def process(self, ctx):
            from repro.datacutter.buffers import END_OF_STREAM

            while ctx.read("in") is not END_OF_STREAM:
                pass

    layout = Layout("wrap-test")
    layout.add_filter("src", Src)
    layout.add_filter("sink", Sink)
    layout.connect("src", "out", "sink", "in")
    rec = LockOrderRecorder()
    runtime = ThreadedRuntime(layout, lock_recorder=rec)
    names = {inst.cond.name
             for insts in runtime.instances.values() for inst in insts}
    assert names == {"src#0.cond", "sink#0.cond"}
    runtime.run(timeout=30)
    rec.check()  # single-lock protocol: the graph must stay edge-free
    assert rec.edges() == []


# -- ticket auditor ----------------------------------------------------------


def _store_with_written_block(nbytes=1 << 16):
    from repro.core.array import ArrayDesc

    store = LocalStore(0, nbytes)
    desc = ArrayDesc("x", length=8, dtype="float64", block_elems=8)
    store.create_array(desc)
    return store, desc


def test_auditor_names_leaked_ticket():
    store, desc = _store_with_written_block()
    auditor = TicketAuditor()
    store.auditor = auditor
    ticket, effects = store.request_write(Interval("x", 0, 0, 8))
    assert ticket.granted
    with pytest.raises(TicketLeakError) as info:
        auditor.assert_clean()
    message = str(info.value)
    assert f"ticket {ticket.tid}" in message
    assert "write x[0:8]" in message
    assert info.value.leaked == [ticket]


def test_auditor_clean_after_release():
    store, desc = _store_with_written_block()
    auditor = TicketAuditor()
    store.auditor = auditor
    ticket, _ = store.request_write(Interval("x", 0, 0, 8))
    ticket.data[:] = 1.0
    store.release(ticket)
    auditor.assert_clean()
    assert auditor.granted_total == auditor.released_total == 1


def test_auditor_counts_abandonment_as_release():
    store, desc = _store_with_written_block()
    auditor = TicketAuditor()
    store.auditor = auditor
    ticket, _ = store.request_write(Interval("x", 0, 0, 8))
    store.abandon_write(ticket)
    auditor.assert_clean()


# -- DAG validation ----------------------------------------------------------


def test_validate_tasks_accepts_a_clean_chain():
    validate_tasks(
        [task("a", None, ["x"], ["y"]), task("b", None, ["y"], ["z"])],
        initial_arrays={"x"},
    )


def test_validate_tasks_names_the_cycle_path():
    tasks = [
        task("t1", None, ["c"], ["a"]),
        task("t2", None, ["a"], ["b"]),
        task("t3", None, ["b"], ["c"]),
    ]
    with pytest.raises(DagValidationError, match=r"t1 -> t2 -> t3 -> t1"):
        validate_tasks(tasks, initial_arrays=set())


def test_validate_tasks_rejects_double_writer():
    tasks = [
        task("t1", None, ["x"], ["y"]),
        task("t2", None, ["x"], ["y"]),
    ]
    with pytest.raises(DagValidationError, match="write-once"):
        validate_tasks(tasks, initial_arrays={"x"})


def test_validate_tasks_rejects_read_of_never_written_array():
    with pytest.raises(DagValidationError, match="never be satisfied"):
        validate_tasks([task("t", None, ["ghost"], ["y"])],
                       initial_arrays=set())


def test_validate_tasks_rejects_duplicate_names():
    tasks = [task("t", None, ["x"], ["y"]), task("t", None, ["x"], ["z"])]
    with pytest.raises(DagValidationError, match="duplicate task name"):
        validate_tasks(tasks, initial_arrays={"x"})


def test_dag_validation_error_is_a_scheduling_error():
    # pytest.raises(SchedulingError) in older tests must keep matching.
    assert issubclass(DagValidationError, SchedulingError)


def test_taskdag_cycle_message_names_the_path():
    from repro.core.dag import TaskDAG

    tasks = [task("t1", None, ["b"], ["a"]), task("t2", None, ["a"], ["b"])]
    with pytest.raises(SchedulingError, match=r"t1 -> t2 -> t1"):
        TaskDAG(tasks, initial_arrays=set())


# -- engine integration ------------------------------------------------------


def _square_program():
    p = Program("checkers-smoke")
    x = np.arange(64, dtype=np.float64)
    p.initial_array("x", x, home=0)
    p.array("y", 64)

    def square(inputs, outputs, *rest):
        outputs["y"][:] = inputs["x"] ** 2

    p.add_task("square", square, ["x"], ["y"])
    return p, x


def test_engine_run_is_green_under_checkers(protocol_checkers):
    p, x = _square_program()
    engine = DOoCEngine(n_nodes=2, workers_per_node=2)
    assert engine.protocol_checkers
    engine.run(p, timeout=60)
    assert np.allclose(engine.fetch("y"), x**2)
    for store in engine.stores.values():
        assert store.auditor is not None
        store.auditor.assert_clean()


def test_engine_validates_dag_before_threads_start(protocol_checkers):
    p = Program("cyclic")
    p.array("a", 8)
    p.array("b", 8)
    p.add_task("t1", None, ["b"], ["a"])
    p.add_task("t2", None, ["a"], ["b"])
    engine = DOoCEngine(n_nodes=1)
    with pytest.raises(DagValidationError, match=r"t1 -> t2 -> t1"):
        engine.run(p, timeout=5)
    assert engine.stores == {}  # failed before any store was built


def test_engine_checkers_off_by_default(monkeypatch):
    monkeypatch.delenv("DOOC_CHECKERS", raising=False)
    engine = DOoCEngine(n_nodes=1)
    assert not engine.protocol_checkers
    p, x = _square_program()
    engine.run(p, timeout=60)
    for store in engine.stores.values():
        assert store.auditor is None


def test_engine_explicit_opt_in_overrides_env(monkeypatch):
    monkeypatch.delenv("DOOC_CHECKERS", raising=False)
    engine = DOoCEngine(n_nodes=1, protocol_checkers=True)
    assert engine.protocol_checkers
    p, x = _square_program()
    engine.run(p, timeout=60)
    for store in engine.stores.values():
        store.auditor.assert_clean()
