"""Tests for units, RNG trees, and online statistics."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import (
    GB,
    GiB,
    OnlineStats,
    Percentiles,
    RngTree,
    format_bytes,
    format_rate,
    format_seconds,
    parse_bytes,
    spawn,
)
from repro.util.units import gbit_to_bytes


class TestUnits:
    def test_round_trip_parse_format(self):
        assert parse_bytes("4 GB") == 4 * GB
        assert parse_bytes("24GiB") == 24 * GiB
        assert parse_bytes("1.5 gb") == int(1.5 * GB)
        assert parse_bytes(1024) == 1024
        assert parse_bytes(10.7) == 10

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_bytes("ten GB")
        with pytest.raises(ValueError):
            parse_bytes("5 parsecs")

    def test_format_bytes_decimal_and_binary(self):
        assert format_bytes(20 * GB) == "20.00 GB"
        assert format_bytes(24 * GiB, binary=True) == "24.00 GiB"
        assert format_bytes(512) == "512 B"

    def test_format_rate(self):
        assert format_rate(18.5 * GB) == "18.50 GB/s"

    def test_format_seconds_ranges(self):
        assert format_seconds(5e-7).endswith("us")
        assert format_seconds(0.005).endswith("ms")
        assert format_seconds(42.0) == "42.00 s"
        assert format_seconds(600.0) == "10.0 min"
        assert format_seconds(7200.0) == "2.00 h"
        assert format_seconds(-42.0) == "-42.00 s"

    def test_qdr_infiniband_is_4_gbytes(self):
        assert gbit_to_bytes(32.0) == pytest.approx(4 * GB)


class TestRng:
    def test_same_path_same_stream(self):
        a = spawn(7, "gpfs", 3)
        b = spawn(7, "gpfs", 3)
        assert np.array_equal(a.random(16), b.random(16))

    def test_different_paths_diverge(self):
        a = spawn(7, "gpfs", 3)
        b = spawn(7, "gpfs", 4)
        assert not np.array_equal(a.random(16), b.random(16))

    def test_different_roots_diverge(self):
        a = spawn(7, "x")
        b = spawn(8, "x")
        assert not np.array_equal(a.random(16), b.random(16))

    def test_subtree_is_stable(self):
        t = RngTree(5)
        s1 = t.subtree("testbed").child("node", 0).random(4)
        s2 = t.subtree("testbed").child("node", 0).random(4)
        assert np.array_equal(s1, s2)

    def test_subtree_independent_of_sibling_order(self):
        t = RngTree(5)
        before = t.subtree("b").child("x").random(4)
        _ = t.subtree("a")  # creating another subtree must not disturb "b"
        after = t.subtree("b").child("x").random(4)
        assert np.array_equal(before, after)


class TestOnlineStats:
    def test_empty_stats(self):
        s = OnlineStats()
        assert s.n == 0
        assert math.isnan(s.mean)
        assert s.variance == 0.0

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        xs = rng.normal(10.0, 3.0, size=500)
        s = OnlineStats()
        for x in xs:
            s.add(float(x))
        assert s.mean == pytest.approx(float(np.mean(xs)))
        assert s.variance == pytest.approx(float(np.var(xs, ddof=1)))
        assert s.min == pytest.approx(float(xs.min()))
        assert s.max == pytest.approx(float(xs.max()))

    @given(
        st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=0, max_size=50),
        st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=0, max_size=50),
    )
    @settings(max_examples=100, deadline=None)
    def test_merge_equals_sequential(self, left, right):
        merged = OnlineStats()
        for x in left:
            merged.add(x)
        other = OnlineStats()
        for x in right:
            other.add(x)
        merged.merge(other)

        seq = OnlineStats()
        for x in left + right:
            seq.add(x)

        assert merged.n == seq.n
        if seq.n:
            assert merged.mean == pytest.approx(seq.mean, rel=1e-9, abs=1e-6)
            assert merged.variance == pytest.approx(seq.variance, rel=1e-6, abs=1e-3)


class TestPercentiles:
    def test_quantiles(self):
        p = Percentiles()
        for x in [1, 2, 3, 4, 5]:
            p.add(x)
        assert p.median == 3.0
        assert p.quantile(0.0) == 1.0
        assert p.quantile(1.0) == 5.0
        assert p.quantile(0.25) == 2.0

    def test_interpolation(self):
        p = Percentiles(samples=[0.0, 10.0])
        assert p.quantile(0.3) == pytest.approx(3.0)

    def test_errors(self):
        p = Percentiles()
        with pytest.raises(ValueError):
            p.quantile(0.5)
        p.add(1.0)
        with pytest.raises(ValueError):
            p.quantile(1.5)
