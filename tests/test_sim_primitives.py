"""Unit tests for Resource / Store / Container / Barrier."""

import pytest

from repro.sim import Barrier, Container, Environment, Mutex, Resource, Store
from repro.sim.kernel import SimulationError


def test_resource_serializes_capacity_one():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def worker(name, hold):
        req = yield res.request()
        log.append(("start", name, env.now))
        yield env.timeout(hold)
        res.release(req)
        log.append(("end", name, env.now))

    env.process(worker("a", 2.0))
    env.process(worker("b", 3.0))
    env.run()
    assert log == [
        ("start", "a", 0.0),
        ("end", "a", 2.0),
        ("start", "b", 2.0),
        ("end", "b", 5.0),
    ]


def test_resource_parallel_within_capacity():
    env = Environment()
    res = Resource(env, capacity=3)
    starts = []

    def worker(i):
        req = yield res.request()
        starts.append((i, env.now))
        yield env.timeout(1.0)
        res.release(req)

    for i in range(6):
        env.process(worker(i))
    env.run()
    assert [t for _, t in starts] == [0.0, 0.0, 0.0, 1.0, 1.0, 1.0]


def test_resource_fifo_no_small_request_overtaking():
    env = Environment()
    res = Resource(env, capacity=4)
    order = []

    def worker(name, amount, delay):
        yield env.timeout(delay)
        req = yield res.request(amount)
        order.append(name)
        yield env.timeout(10.0)
        res.release(req)

    env.process(worker("big_first", 3, 0.0))
    env.process(worker("bigger_blocked", 4, 0.1))   # must wait for big_first
    env.process(worker("small_later", 1, 0.2))      # fits now, but FIFO says no
    env.run()
    assert order == ["big_first", "bigger_blocked", "small_later"]


def test_resource_request_validation():
    env = Environment()
    res = Resource(env, capacity=2)
    with pytest.raises(ValueError):
        res.request(0)
    with pytest.raises(ValueError):
        res.request(3)
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_release_unknown_request_is_error():
    env = Environment()
    res = Resource(env, capacity=1)
    req = res.request()
    env.run()
    res.release(req.value)
    with pytest.raises(SimulationError):
        res.release(req.value)


def test_mutex_context_manager_style():
    env = Environment()
    lock = Mutex(env)
    inside = []

    def proc(i):
        req = yield lock.request()
        with req:
            inside.append((i, "in", env.now))
            yield env.timeout(1.0)
        inside.append((i, "out", env.now))

    env.process(proc(0))
    env.process(proc(1))
    env.run()
    assert inside == [(0, "in", 0.0), (0, "out", 1.0), (1, "in", 1.0), (1, "out", 2.0)]


def test_store_fifo_and_blocking_get():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append((item, env.now))

    def producer():
        yield env.timeout(1.0)
        yield store.put("x")
        yield env.timeout(1.0)
        yield store.put("y")
        yield store.put("z")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [("x", 1.0), ("y", 2.0), ("z", 2.0)]


def test_store_bounded_blocks_producer():
    env = Environment()
    store = Store(env, capacity=1)
    times = []

    def producer():
        yield store.put(1)
        times.append(("put1", env.now))
        yield store.put(2)
        times.append(("put2", env.now))

    def consumer():
        yield env.timeout(5.0)
        yield store.get()

    env.process(producer())
    env.process(consumer())
    env.run()
    assert times == [("put1", 0.0), ("put2", 5.0)]


def test_container_levels_and_blocking():
    env = Environment()
    tank = Container(env, capacity=10.0, init=4.0)
    log = []

    def drainer():
        yield tank.get(6.0)  # blocks until level >= 6
        log.append(("got", env.now, tank.level))

    def filler():
        yield env.timeout(2.0)
        yield tank.put(3.0)

    env.process(drainer())
    env.process(filler())
    env.run()
    assert log == [("got", 2.0, 1.0)]


def test_container_put_blocks_at_capacity():
    env = Environment()
    tank = Container(env, capacity=5.0, init=5.0)
    log = []

    def putter():
        yield tank.put(2.0)
        log.append(env.now)

    def getter():
        yield env.timeout(3.0)
        yield tank.get(4.0)

    env.process(putter())
    env.process(getter())
    env.run()
    assert log == [3.0]
    assert tank.level == 3.0


def test_container_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=0.0)
    with pytest.raises(ValueError):
        Container(env, capacity=1.0, init=2.0)
    tank = Container(env, capacity=1.0)
    with pytest.raises(ValueError):
        tank.get(0.0)
    with pytest.raises(ValueError):
        tank.put(2.0)


def test_barrier_releases_all_at_once_and_reuses():
    env = Environment()
    bar = Barrier(env, parties=3)
    releases = []

    def party(i, delay):
        yield env.timeout(delay)
        gen = yield bar.wait()
        releases.append((i, env.now, gen))
        yield env.timeout(1.0)
        gen = yield bar.wait()
        releases.append((i, env.now, gen))

    env.process(party(0, 1.0))
    env.process(party(1, 2.0))
    env.process(party(2, 3.0))
    env.run()
    first = [r for r in releases if r[2] == 0]
    second = [r for r in releases if r[2] == 1]
    assert all(t == 3.0 for _, t, _ in first)
    assert all(t == 4.0 for _, t, _ in second)
    assert len(first) == len(second) == 3


def test_barrier_callback_runs_once_per_generation():
    env = Environment()
    fired = []
    bar = Barrier(env, parties=2, on_release=fired.append)

    def party():
        yield bar.wait()

    env.process(party())
    env.process(party())
    env.run()
    assert fired == [0]
