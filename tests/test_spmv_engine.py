"""End-to-end: iterated SpMV through the DOoC engine on real files/threads."""

import numpy as np
import pytest

from repro.core import DOoCEngine
from repro.spmv.csr import CSRBlock
from repro.spmv.generator import gap_uniform_csr
from repro.spmv.partition import GridPartition, column_owner
from repro.spmv.program import build_iterated_spmv
from repro.spmv.reference import (
    iterated_spmv_reference,
    loads_back_and_forth_plan,
    loads_regular_plan,
)


def make_problem(n=60, k=3, seed=0, density_per_row=6.0):
    rng = np.random.default_rng(seed)
    p = GridPartition(n, k)
    from repro.spmv.generator import choose_gap_parameter
    d = choose_gap_parameter(n, density_per_row)
    import scipy.sparse as sp
    global_m = gap_uniform_csr(n, n, d, rng)
    blocks = p.split_matrix(global_m)
    x0 = rng.normal(size=n)
    return global_m, p, blocks, x0


class TestCorrectness:
    @pytest.mark.parametrize("policy", ["simple", "interleaved"])
    def test_single_node_matches_reference(self, tmp_path, policy):
        global_m, p, blocks, x0 = make_problem()
        result = build_iterated_spmv(
            blocks, p.split_vector(x0), iterations=3, n_nodes=1, policy=policy)
        eng = DOoCEngine(n_nodes=1, workers_per_node=2, scratch_dir=tmp_path)
        eng.run(result.program, timeout=120)
        got = result.fetch_final(eng)
        want = iterated_spmv_reference(global_m, x0, 3)
        np.testing.assert_allclose(got, want, rtol=1e-9)

    @pytest.mark.parametrize("policy", ["simple", "interleaved"])
    def test_three_nodes_matches_reference(self, tmp_path, policy):
        global_m, p, blocks, x0 = make_problem(n=90, k=3, seed=1)
        result = build_iterated_spmv(
            blocks, p.split_vector(x0), iterations=2, n_nodes=3, policy=policy)
        eng = DOoCEngine(n_nodes=3, workers_per_node=2, scratch_dir=tmp_path)
        report = eng.run(result.program, timeout=180)
        got = result.fetch_final(eng)
        want = iterated_spmv_reference(global_m, x0, 2)
        np.testing.assert_allclose(got, want, rtol=1e-9)
        # Vectors крест columns: remote fetches must have happened.
        assert report.total_remote_fetches > 0

    def test_single_iteration_identity_blocks(self, tmp_path):
        # A = I partitioned 2x2: x1 must equal x0 exactly.
        import scipy.sparse as sp
        n, k = 16, 2
        p = GridPartition(n, k)
        blocks = p.split_matrix(CSRBlock.from_scipy(sp.identity(n, format="csr")))
        x0 = np.arange(n, dtype=float)
        result = build_iterated_spmv(blocks, p.split_vector(x0), iterations=1,
                                     n_nodes=1)
        eng = DOoCEngine(n_nodes=1, scratch_dir=tmp_path)
        eng.run(result.program, timeout=60)
        np.testing.assert_array_equal(result.fetch_final(eng), x0)


class TestFig5LoadCounts:
    """The back-and-forth schedule must emerge from the local scheduler."""

    def run_fig5(self, tmp_path, iterations, k=3):
        """One node owning a full k x k grid, memory for ~1 sub-matrix."""
        global_m, p, blocks, x0 = make_problem(n=30 * k, k=k, seed=2)
        result = build_iterated_spmv(
            blocks, p.split_vector(x0), iterations=iterations, n_nodes=1,
            policy="simple")
        a_bytes = max(
            len(__import__("repro.spmv.csrfile", fromlist=["serialize_csr"])
                .serialize_csr(b)) for b in blocks.values())
        # Budget: one sub-matrix + generous room for the (small) vectors.
        vec_bytes = 8 * p.n * (k + 2) * (iterations + 1)
        eng = DOoCEngine(
            n_nodes=1, workers_per_node=1,
            memory_budget_per_node=int(a_bytes * 1.5) + vec_bytes,
            scratch_dir=tmp_path,
        )
        report = eng.run(result.program, timeout=300)
        got = result.fetch_final(eng)
        want = iterated_spmv_reference(global_m, x0, iterations)
        np.testing.assert_allclose(got, want, rtol=1e-9)
        # Matrix loads: count loads of A_* arrays only. Store stats count all
        # loads; vectors spill too under this budget, so use per-array drops
        # via the load ledger below.
        return report

    def test_matrix_loads_saved_versus_regular_plan(self, tmp_path):
        iters = 3
        report = self.run_fig5(tmp_path, iterations=iters)
        k_local = 9  # all 9 sub-matrices on the single node
        # First-touch loads happen from disk; with LIFO+residency ordering
        # at least one sub-matrix per iteration transition is reused, so
        # total loads stay below the naive plan.
        regular = loads_regular_plan(k_local, iters)
        assert report.store_stats[0].loads < regular + 1  # sanity ceiling

    def test_back_and_forth_emerges_on_three_nodes(self, tmp_path):
        """Fig. 5's exact setting: 3 nodes, each owning one grid column,
        memory for one sub-matrix; per-node *matrix* loads must track the
        back-and-forth count (3 first iteration, ~2 after), not 3/iter."""
        iterations, k = 3, 3
        # Dense-ish 50x50 blocks (~16 KB serialized) dwarf the 400 B
        # vectors, so the budget below truly fits only one sub-matrix.
        global_m, p, blocks, x0 = make_problem(n=150, k=k, seed=3,
                                               density_per_row=20.0)
        result = build_iterated_spmv(
            blocks, p.split_vector(x0), iterations=iterations, n_nodes=k,
            policy="simple", owner=column_owner(k, k))
        from repro.spmv.csrfile import serialize_csr
        a_bytes = max(len(serialize_csr(b)) for b in blocks.values())
        eng = DOoCEngine(
            n_nodes=k, workers_per_node=1,
            memory_budget_per_node=int(a_bytes * 1.5) + 3000,
            scratch_dir=tmp_path,
        )
        report = eng.run(result.program, timeout=300)
        np.testing.assert_allclose(
            result.fetch_final(eng),
            iterated_spmv_reference(global_m, x0, iterations), rtol=1e-9)
        matrix_loads = sum(
            count
            for stats in report.store_stats.values()
            for array, count in stats.loads_by_array.items()
            if array.startswith("A_")
        )
        naive = 3 * loads_regular_plan(k, iterations)            # 27
        back_and_forth = 3 * loads_back_and_forth_plan(k, iterations)  # 21
        # Scheduling races can cost an occasional extra load, but the
        # reordering must beat the naive plan and track the Fig. 5b count.
        assert matrix_loads < naive
        assert matrix_loads >= back_and_forth - 3
        assert matrix_loads <= back_and_forth + 3
