"""Incremental & asynchronous iteration: tracker, dropout, frontiers.

Covers the per-block :class:`ConvergenceTracker` (freeze / thaw /
period-2 limit cycles), the incremental Jacobi drive (bit-identical to
sync while strictly reducing tasks and disk reads), bounded-staleness
async Jacobi, sparse-frontier SpMV, the incremental
``run_iterated_spmv`` early exit, the DES testbed's ``WorksetModel``
mirror (including dropout-aware node-kill recovery), and the bench
harness's baseline-free convergence gate.
"""

import importlib.util
import pathlib

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg

from repro.bench import (
    SCHEMA,
    check_convergence_invariants,
    check_regression,
    pinned_convergence_workload,
)
from repro.core.convergence import ConvergenceTracker
from repro.faults import FaultPlan
from repro.models.testbed import WorksetModel
from repro.obs.metrics import MetricsRegistry
from repro.solvers import jacobi_solve
from repro.spmv.csr import CSRBlock
from repro.spmv.ooc_operator import OutOfCoreMatrix
from repro.spmv.partition import GridPartition
from repro.spmv.program import run_iterated_spmv
from repro.testbed import run_testbed_spmv

EXAMPLES = pathlib.Path(__file__).resolve().parents[1] / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def staggered_system(n=120, k=3, dom=(1e6, 50.0, 12.0), density=0.05, seed=9):
    """Block-lower-triangular system whose partitions converge at wildly
    different rates: partition 0 (dominance 1e6) goes stationary in a
    handful of sweeps, partition k-1 takes the longest — so the workset
    shrinks in stages."""
    rng = np.random.default_rng(seed)
    sizes = [n // k] * k
    rows = []
    for u in range(k):
        row = []
        for v in range(k):
            nr, nc = sizes[u], sizes[v]
            if v > u:
                row.append(sp.csr_matrix((nr, nc)))
            elif v < u:
                row.append(sp.random(nr, nc, density=density,
                                     random_state=rng, format="csr"))
            else:
                diag = sp.random(nr, nc, density=density, random_state=rng,
                                 format="csr").tolil()
                rowsum = np.abs(diag).sum(axis=1).A.ravel()
                diag.setdiag(rowsum + dom[u])
                row.append(diag.tocsr())
        rows.append(row)
    a = sp.csr_matrix(sp.bmat(rows, format="csr"))
    return a, rng.standard_normal(n)


def make_operator(a, k, scratch, policy="simple"):
    blocks = GridPartition(a.shape[0], k).split_matrix(CSRBlock.from_scipy(a))
    return OutOfCoreMatrix(blocks, n_nodes=1, scratch_dir=scratch,
                           policy=policy)


def sweep_totals(op):
    tasks = sum(e["tasks"] for e in op.sweep_log)
    disk = sum(e["disk_bytes_read"] for e in op.sweep_log)
    return tasks, disk


# -- the tracker -------------------------------------------------------------


class _StubTracer:
    def __init__(self):
        self.instants = []
        self.counters = []

    def instant(self, node, thread, cat, name, **kw):
        self.instants.append((cat, name, kw))

    def counter(self, node, thread, cat, name, value, **kw):
        self.counters.append((cat, name, value, kw))


def parts(*vectors):
    return {v: np.asarray(x, dtype=np.float64) for v, x in enumerate(vectors)}


class TestConvergenceTracker:
    def test_validation(self):
        with pytest.raises(ValueError):
            ConvergenceTracker(0)
        with pytest.raises(ValueError):
            ConvergenceTracker(2, tol=-1e-9)

    def test_bitwise_freeze_shrinks_workset(self):
        t = ConvergenceTracker(2)
        rec = t.observe(parts([1.0], [2.0]), parts([1.0], [3.0]),
                        tasks_scheduled=4)
        assert rec.newly_frozen == (0,) and rec.reentered == ()
        assert t.frozen == {0} and t.active() == [1]
        assert not t.fixpoint
        rec = t.observe(parts([1.0], [3.0]), parts([1.0], [3.0]),
                        tasks_scheduled=2)
        assert rec.newly_frozen == (1,)
        assert t.fixpoint and t.report.fixpoint_sweep == 2

    def test_thaw_reenters_moved_partition(self):
        t = ConvergenceTracker(1)
        t.observe(parts([5.0]), parts([5.0]))
        assert t.frozen == {0}
        rec = t.observe(parts([5.0]), parts([6.0]))
        assert rec.reentered == (0,)
        assert t.frozen == frozenset() and t.active() == [0]
        # The thawed partition is back in the next sweep's workset, so the
        # dropout history is no longer monotone.
        t.observe(parts([6.0]), parts([7.0]))
        assert not t.report.monotone_dropout()

    def test_period2_limit_cycle_freezes_both_phases(self):
        a, b = [1.0, 2.0], [1.0, 2.0 + 2**-50]
        t = ConvergenceTracker(1)
        t.observe(parts(a), parts(b))       # a -> b
        assert t.frozen == frozenset()
        rec = t.observe(parts(b), parts(a))  # b -> a == two sweeps ago
        assert rec.newly_frozen == (0,)
        phases = t.phases(0)
        assert len(phases) == 2
        assert np.array_equal(phases[0], a) and np.array_equal(phases[1], b)
        # Both cycle values keep the partition frozen...
        t.observe(parts(a), parts(b))
        t.observe(parts(b), parts(a))
        assert t.frozen == {0}
        # ...but a third value thaws it.
        rec = t.observe(parts(a), parts([9.0, 9.0]))
        assert rec.reentered == (0,) and t.phases(0) == ()

    def test_tolerance_freeze_is_norm_based(self):
        t = ConvergenceTracker(1, tol=1e-3)
        rec = t.observe(parts([100.0]), parts([100.0 + 1e-2]))
        assert rec.newly_frozen == (0,)  # relative update 1e-4 < tol

    def test_report_accessors(self):
        t = ConvergenceTracker(2)
        t.observe(parts([0.0], [0.0]), parts([1.0], [1.0]),
                  tasks_scheduled=4)
        t.observe(parts([1.0], [1.0]), parts([1.0], [2.0]),
                  tasks_scheduled=4)
        t.observe(parts([1.0], [2.0]), parts([1.0], [2.0]),
                  tasks_scheduled=2, aux_tasks=1)
        rep = t.report
        assert rep.tasks_per_sweep() == [4, 4, 2]
        assert rep.total_tasks() == 11
        assert rep.workset_sizes() == [2, 2, 1]
        assert rep.first_freeze_sweep() == 2
        assert rep.monotone_dropout()
        assert rep.fixpoint_sweep == 3

    def test_metrics_counters(self):
        m = MetricsRegistry()
        t = ConvergenceTracker(2, metrics=m)
        t.observe(parts([1.0], [0.0]), parts([1.0], [1.0]),
                  tasks_scheduled=4)
        t.observe(parts([1.0], [1.0]), parts([2.0], [1.0]),
                  tasks_scheduled=3)
        assert m.get("sweeps") == 2
        assert m.get("blocks_converged") == 2
        assert m.get("blocks_reentered") == 1
        assert m.get("workset_tasks") == 7

    def test_trace_events_emitted(self):
        tr = _StubTracer()
        t = ConvergenceTracker(1, tracer=tr)
        t.observe(parts([1.0]), parts([1.0]))
        names = [(cat, name) for cat, name, _ in tr.instants]
        assert ("converge", "block_converged") in names
        assert ("converge", "fixpoint") in names
        assert tr.counters[0][:3] == ("converge", "workset_size", 0)
        t.observe(parts([1.0]), parts([2.0]))
        names = [(cat, name) for cat, name, _ in tr.instants]
        assert ("converge", "block_reentered") in names


# -- incremental Jacobi ------------------------------------------------------


@pytest.fixture(scope="module")
def staggered():
    return staggered_system()


class TestIncrementalJacobi:
    @pytest.mark.parametrize("policy", ["simple", "interleaved"])
    def test_bit_identical_with_strictly_less_work(self, staggered, tmp_path,
                                                   policy):
        a, b = staggered
        op_sync = make_operator(a, 3, tmp_path / "sync", policy=policy)
        sync = jacobi_solve(op_sync, b, tol=1e-30, max_iterations=120)
        t_sync, d_sync = sweep_totals(op_sync)

        op_inc = make_operator(a, 3, tmp_path / "inc", policy=policy)
        inc = jacobi_solve(op_inc, b, tol=1e-30, max_iterations=120,
                           mode="incremental")
        t_inc, d_inc = sweep_totals(op_inc)

        # Dropout is free: same bits, same sweep count...
        assert np.array_equal(sync.x, inc.x)
        assert sync.iterations == inc.iterations
        assert inc.fixpoint
        # ...and strictly cheaper.
        assert t_inc < t_sync
        assert d_inc < d_sync

    def test_workset_report_shows_staged_dropout(self, staggered, tmp_path):
        a, b = staggered
        op = make_operator(a, 3, tmp_path)
        res = jacobi_solve(op, b, tol=1e-30, max_iterations=120,
                           mode="incremental")
        rep = res.convergence
        assert rep is not None
        first = rep.first_freeze_sweep()
        assert first is not None and first < res.iterations
        sizes = rep.workset_sizes()
        assert rep.monotone_dropout()
        assert sizes[0] == 3 and min(sizes) < 3
        # Per-sweep task counts shrink with the workset.
        tasks = rep.tasks_per_sweep()
        assert tasks[-1] < tasks[0]

    def test_converging_run_matches_direct_solve(self, tmp_path):
        mod = load_example("markov_chain")
        n = 90
        rng = np.random.default_rng(0)
        p = mod.random_transition_matrix(n, rng)
        system = sp.csr_matrix(sp.identity(n) - 0.85 * p.T)
        b = np.full(n, 0.15 / n)
        reference = scipy.sparse.linalg.spsolve(sp.csc_matrix(system), b)
        op = make_operator(system, 3, tmp_path)
        res = jacobi_solve(op, b, tol=1e-10, max_iterations=300,
                           mode="incremental")
        assert res.converged
        np.testing.assert_allclose(res.x, reference, rtol=1e-6, atol=1e-12)

    def test_incremental_needs_workset_operator(self):
        class Dense:
            n = 4

            def matvec(self, x):
                return x

            def diagonal(self):
                return np.ones(4)

        with pytest.raises(ValueError, match="workset-capable"):
            jacobi_solve(Dense(), np.ones(4), mode="incremental")


class TestAsyncJacobi:
    def test_lands_inside_documented_bound(self, staggered, tmp_path):
        a, b = staggered
        tol = 1e-10
        op = make_operator(a, 3, tmp_path)
        res = jacobi_solve(op, b, tol=tol, max_iterations=100, mode="async",
                           staleness=2, seed=1)
        assert res.converged
        assert res.residual_norm <= tol * np.linalg.norm(b)

    def test_staleness_zero_degenerates_to_sync_bitwise(self, staggered,
                                                        tmp_path):
        a, b = staggered
        op_s = make_operator(a, 3, tmp_path / "s")
        sync = jacobi_solve(op_s, b, tol=1e-10, max_iterations=100)
        op_a = make_operator(a, 3, tmp_path / "a")
        asy = jacobi_solve(op_a, b, tol=1e-10, max_iterations=100,
                           mode="async", staleness=0, seed=7)
        assert np.array_equal(sync.x, asy.x)
        assert sync.iterations == asy.iterations

    def test_parameter_validation(self, staggered, tmp_path):
        a, b = staggered
        op = make_operator(a, 3, tmp_path)
        with pytest.raises(ValueError):
            jacobi_solve(op, b, mode="async", staleness=-1)
        with pytest.raises(ValueError):
            jacobi_solve(op, b, mode="chaotic")


# -- sparse frontiers --------------------------------------------------------


class TestFrontierMatvec:
    def test_zero_columns_skipped_result_identical(self, tmp_path):
        a, _ = staggered_system(seed=3)
        a = sp.csr_matrix(abs(a))
        op_full = make_operator(a, 3, tmp_path / "full")
        op_frontier = make_operator(a, 3, tmp_path / "frontier")
        x = np.zeros(a.shape[0])
        x[: a.shape[0] // 3] = np.abs(
            np.random.default_rng(5).standard_normal(a.shape[0] // 3))
        full = op_full.matvec(x)
        sparse = op_frontier.matvec(x, frontier=True)
        np.testing.assert_array_equal(full, sparse)
        # Only partition 0 carried inputs, so the frontier sweep scheduled
        # strictly fewer tasks and read strictly fewer bytes.
        assert len(op_frontier.last_sweep["active"]) == 1
        assert op_frontier.last_sweep["tasks"] < op_full.last_sweep["tasks"]
        assert (op_frontier.last_sweep["disk_bytes_read"]
                < op_full.last_sweep["disk_bytes_read"])

    def test_sweep_log_records_mode(self, tmp_path):
        a, _ = staggered_system(seed=3)
        op = make_operator(a, 3, tmp_path)
        op.matvec(np.ones(a.shape[0]))
        op.matvec(np.ones(a.shape[0]), frontier=True)
        modes = [e["mode"] for e in op.sweep_log]
        assert modes == ["full", "frontier"]


class TestGraphBFSFixpoint:
    def test_bfs_stops_at_frontier_fixpoint(self, tmp_path):
        """Regression for the example re-running full sweeps after the
        frontier went stationary: exactly eccentricity + 1 expansions
        (the +1 is the sweep that *detects* the fixpoint)."""
        mod = load_example("graph_bfs")
        rng = np.random.default_rng(8)
        adj = mod.random_undirected_adjacency(120, 5.0, rng)
        op = make_operator(sp.csr_matrix(adj), 3, tmp_path)
        dist = mod.ooc_bfs_levels(op, 0)
        assert op.matvec_count == int(dist.max()) + 1

    def test_disconnected_component_never_expanded(self, tmp_path):
        """Two disjoint cliques: BFS from clique A must terminate without
        sweeping the graph diameter's worth of empty frontiers, and the
        unreachable clique stays at -1."""
        mod = load_example("graph_bfs")
        n = 90
        blocks = [np.ones((n // 2, n // 2))] * 2
        adj = sp.csr_matrix(sp.block_diag(blocks))
        adj.setdiag(0)
        adj.eliminate_zeros()
        op = make_operator(sp.csr_matrix(adj), 3, tmp_path)
        dist = mod.ooc_bfs_levels(op, 0)
        assert (dist[: n // 2] >= 0).all()
        assert (dist[n // 2:] == -1).all()
        assert op.matvec_count == 2  # one level + the fixpoint sweep


# -- incremental run_iterated_spmv -------------------------------------------


def block_matrix(n, k, fill):
    s = n // k
    rows = []
    for u in range(k):
        row = []
        for v in range(k):
            b = fill(u, v)
            row.append(b if b is not None else sp.csr_matrix((s, s)))
        rows.append(row)
    return sp.csr_matrix(sp.bmat(rows, format="csr"))


class TestIncrementalIteratedSpMV:
    n, k = 90, 3

    @pytest.fixture(scope="class")
    def x0_parts(self):
        x0 = np.random.default_rng(3).standard_normal(self.n)
        return GridPartition(self.n, self.k).split_vector(x0)

    def split(self, m):
        return GridPartition(self.n, self.k).split_matrix(
            CSRBlock.from_scipy(m))

    def test_nilpotent_chain_exits_early_bit_identical(self, x0_parts):
        """Strictly block-lower-triangular A is nilpotent: every power
        iteration hits exact zero within k sweeps, so the incremental run
        must stop there while still reporting the requested T sweeps."""
        rng = np.random.default_rng(11)
        m = block_matrix(self.n, self.k,
                         lambda u, v: sp.random(self.n // self.k,
                                                self.n // self.k,
                                                density=0.1, random_state=rng,
                                                format="csr")
                         if v < u else None)
        blocks = self.split(m)
        for t in (2, 3, 50):
            bulk = run_iterated_spmv(blocks, x0_parts, t, policy="simple")
            inc = run_iterated_spmv(blocks, x0_parts, t, policy="simple",
                                    incremental=True)
            assert np.array_equal(bulk.join(), inc.join()), f"T={t}"
            assert inc.iterations == t
        assert inc.fixpoint
        assert len(inc.convergence.sweeps) < 50

    @pytest.mark.parametrize("t", [6, 7, 8, 9])
    def test_period2_cycle_parity_corrected(self, x0_parts, t):
        """A block-swap permutation cycles with exact period 2; the early
        exit must return the phase matching T's parity bit-for-bit."""
        s = self.n // self.k
        eye = sp.identity(s, format="csr")
        m = block_matrix(self.n, self.k,
                         lambda u, v: eye
                         if (u, v) in ((0, 1), (1, 0), (2, 2)) else None)
        blocks = self.split(m)
        bulk = run_iterated_spmv(blocks, x0_parts, t, policy="interleaved")
        inc = run_iterated_spmv(blocks, x0_parts, t, policy="interleaved",
                                incremental=True)
        assert np.array_equal(bulk.join(), inc.join())
        assert inc.fixpoint
        assert len(inc.convergence.sweeps) <= 4


# -- DES testbed mirror ------------------------------------------------------


class TestWorksetModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorksetModel(rhos=())
        with pytest.raises(ValueError):
            WorksetModel(rhos=(0.0,))
        with pytest.raises(ValueError):
            WorksetModel(rhos=(1.5,))
        with pytest.raises(ValueError):
            WorksetModel(tol=0.0)
        with pytest.raises(ValueError):
            WorksetModel(tol=1.0)

    def test_freeze_sweep_geometry(self):
        # rho**s <= tol first at s = ceil(log(tol) / log(rho)).
        assert WorksetModel(rhos=(0.5,), tol=1e-6).freeze_sweep(0) == 20
        assert WorksetModel(rhos=(0.1,), tol=1e-6).freeze_sweep(0) == 6
        assert WorksetModel(rhos=(1.0,), tol=1e-6).freeze_sweep(0) is None

    def test_active_columns_shrink_monotonically(self):
        ws = WorksetModel(rhos=(0.05, 0.2, 0.9), tol=1e-3)
        sizes = [len(ws.active_columns(s, 6)) for s in range(80)]
        assert sizes[0] == 6
        assert all(b <= a for a, b in zip(sizes, sizes[1:]))
        assert sizes[-1] == 0
        fx = ws.fixpoint_sweep(6)
        assert len(ws.active_columns(fx, 6)) == 0
        assert len(ws.active_columns(fx - 1, 6)) > 0

    def test_nonconverging_column_pins_the_fixpoint(self):
        ws = WorksetModel(rhos=(0.1, 1.0), tol=1e-6)
        assert ws.fixpoint_sweep(2) is None
        assert ws.active_columns(10**6, 2) == [1]


class TestTestbedWorkset:
    #: freezes columns j%3==0 at sweep 3, j%3==1 at sweep 5, j%3==2 never
    #: inside the default 4-iteration run
    WS = WorksetModel(rhos=(0.05, 0.2, 0.9), tol=1e-3)

    def test_dropout_reduces_time_and_disk(self):
        base = run_testbed_spmv(4, "simple", seed=0)
        inc = run_testbed_spmv(4, "simple", seed=0, workset=self.WS)
        assert inc.blocks_skipped > 0
        assert inc.iterations_run == base.iterations_run
        assert inc.time_s < base.time_s
        assert inc.disk_bytes_read < base.disk_bytes_read

    def test_interleaved_policy_supports_dropout(self):
        base = run_testbed_spmv(4, "interleaved", seed=0)
        inc = run_testbed_spmv(4, "interleaved", seed=0, workset=self.WS)
        assert inc.blocks_skipped > 0
        assert inc.time_s < base.time_s

    def test_never_converging_model_changes_nothing(self):
        base = run_testbed_spmv(4, "simple", seed=0)
        same = run_testbed_spmv(4, "simple", seed=0,
                                workset=WorksetModel(rhos=(1.0,)))
        assert same.blocks_skipped == 0
        assert same.iterations_run == base.iterations_run
        assert same.time_s == pytest.approx(base.time_s)

    def test_killed_node_skips_converged_reconstruction(self):
        """A buddy taking over a dead node re-reads only the blocks the
        workset will still touch — converged (dropped) columns are never
        reconstructed."""
        kill = FaultPlan(node_kill=((1, 3),))
        plain = run_testbed_spmv(4, "simple", seed=0, faults=kill)
        inc = run_testbed_spmv(4, "simple", seed=0, faults=kill,
                               workset=self.WS)
        assert plain.nodes_lost == 1 and inc.nodes_lost == 1
        # At the kill sweep (it=3) columns j%3==0 are frozen: 3 of 5 grid
        # columns remain -> 15 of the 25 per-node files need re-reading.
        assert plain.blocks_reconstructed == 25
        assert inc.blocks_reconstructed == 15
        assert inc.time_s < plain.time_s


# -- the bench convergence gate ----------------------------------------------


def conv_report(verdicts=None, mode="quick"):
    """A fabricated convergence-only report in the documented shape."""
    base = {
        "sync_matches_reference": True,
        "incremental_bit_identical": True,
        "same_iterations": True,
        "tasks_strictly_decrease": True,
        "disk_bytes_strictly_decrease": True,
        "dropout_monotone": True,
        "dropout_after_first_freeze": True,
        "async_within_bound": True,
    }
    base.update(verdicts or {})
    return {
        "schema": SCHEMA,
        "tag": "t",
        "mode": mode,
        "data_plane": "zerocopy",
        "workloads": {},
        "codec_sweep": {},
        "convergence": {
            "workload": pinned_convergence_workload(quick=True).config(),
            "sync": {"iterations": 10, "tasks": 90, "disk_bytes_read": 900},
            "incremental": {"iterations": 10, "tasks": 60,
                            "disk_bytes_read": 600, "first_freeze_sweep": 4},
            "async": {"rounds": 12, "residual_norm": 1e-9, "bound": 1e-7},
            "verdicts": base,
        },
        "totals": {"wall_seconds": 0.0, "tasks": 0,
                   "tasks_per_second": 0.0, "bytes_copied": 0},
    }


def workload_baseline():
    return {
        "schema": SCHEMA,
        "tag": "baseline",
        "mode": "quick",
        "data_plane": "zerocopy",
        "workloads": {
            "out_of_core": {"wall_seconds": 1.0, "bytes_copied": 0,
                            "bit_identical": True},
        },
        "totals": {"wall_seconds": 1.0, "tasks": 1,
                   "tasks_per_second": 1.0, "bytes_copied": 0},
    }


class TestConvergenceGate:
    def test_pinned_workload_is_stable(self):
        for quick in (True, False):
            a = pinned_convergence_workload(quick=quick)
            b = pinned_convergence_workload(quick=quick)
            assert a.config() == b.config()
        quick = pinned_convergence_workload(quick=True)
        full = pinned_convergence_workload(quick=False)
        assert quick.n < full.n and quick.k < full.k

    def test_report_without_section_passes(self):
        assert check_convergence_invariants({}) == []
        assert check_convergence_invariants({"workloads": {}}) == []

    def test_all_verdicts_true_passes(self):
        assert check_convergence_invariants(conv_report()) == []

    def test_any_false_verdict_fails(self):
        failures = check_convergence_invariants(
            conv_report({"incremental_bit_identical": False}))
        assert len(failures) == 1
        assert "incremental_bit_identical" in failures[0]

    def test_check_regression_gates_convergence_only_reports(self):
        """The CI convergence leg checks a workload-free report against
        the committed baseline: invariants are enforced, the workload
        comparison is skipped."""
        baseline = workload_baseline()
        assert check_regression(conv_report(), baseline) == []
        failures = check_regression(
            conv_report({"tasks_strictly_decrease": False}), baseline)
        assert any("tasks_strictly_decrease" in f for f in failures)

    def test_full_report_still_checks_convergence(self):
        current = workload_baseline()
        current["convergence"] = conv_report(
            {"async_within_bound": False})["convergence"]
        failures = check_regression(current, workload_baseline())
        assert any("async_within_bound" in f for f in failures)
