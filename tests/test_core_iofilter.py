"""Tests for scratch-directory block I/O and the I/O filter."""

import numpy as np
import pytest

from repro.core.array import ArrayDesc
from repro.core.errors import StorageError
from repro.core.iofilter import (
    IOFilter,
    array_path,
    block_offset,
    delete_array_file,
    discover_arrays,
    read_array,
    read_block,
    write_array,
    write_block,
)
from repro.datacutter import DataBuffer, END_OF_STREAM, Filter, Layout, ThreadedRuntime


def desc(name="a", length=100, block=40):
    return ArrayDesc(name, length=length, block_elems=block)


class TestBlockIO:
    def test_write_read_round_trip(self, tmp_path):
        d = desc()
        data = np.arange(100, dtype=float)
        write_array(tmp_path, d, data)
        np.testing.assert_array_equal(read_array(tmp_path, d), data)

    def test_block_offsets(self, tmp_path):
        d = desc(length=100, block=40)
        assert block_offset(d, 0) == 0
        assert block_offset(d, 1) == 40 * 8
        assert block_offset(d, 2) == 80 * 8
        with pytest.raises(StorageError):
            block_offset(d, 3)

    def test_out_of_order_block_writes(self, tmp_path):
        d = desc(length=100, block=40)
        write_block(tmp_path, d, 2, np.full(20, 2.0))
        write_block(tmp_path, d, 0, np.full(40, 0.0))
        write_block(tmp_path, d, 1, np.full(40, 1.0))
        np.testing.assert_array_equal(
            read_block(tmp_path, d, 1), np.full(40, 1.0))
        np.testing.assert_array_equal(
            read_block(tmp_path, d, 2), np.full(20, 2.0))

    def test_shape_validation(self, tmp_path):
        d = desc()
        with pytest.raises(StorageError):
            write_block(tmp_path, d, 0, np.zeros(7))
        with pytest.raises(StorageError):
            write_array(tmp_path, d, np.zeros(99))

    def test_short_read_detected(self, tmp_path):
        d = desc(length=100, block=40)
        write_block(tmp_path, d, 0, np.zeros(40))
        with pytest.raises(StorageError, match="short read"):
            read_block(tmp_path, d, 2)

    def test_name_mangling_round_trips(self, tmp_path):
        d = ArrayDesc("dir/like\\name", length=10, block_elems=10)
        write_array(tmp_path, d, np.arange(10.0))
        assert discover_arrays(tmp_path) == ["dir/like\\name"]
        np.testing.assert_array_equal(read_array(tmp_path, d), np.arange(10.0))

    def test_delete_and_discover(self, tmp_path):
        d = desc("x")
        write_array(tmp_path, d, np.zeros(100))
        assert discover_arrays(tmp_path) == ["x"]
        delete_array_file(tmp_path, "x")
        assert discover_arrays(tmp_path) == []
        delete_array_file(tmp_path, "x")  # idempotent

    def test_discover_missing_dir(self, tmp_path):
        assert discover_arrays(tmp_path / "nope") == []


class _Driver(Filter):
    """Feeds commands to an IOFilter and records replies."""

    inputs = ("rep",)
    outputs = ("cmd",)

    def __init__(self, commands, replies):
        self.commands = commands
        self.replies = replies

    def process(self, ctx):
        for cmd in self.commands:
            ctx.write("cmd", DataBuffer(cmd))
        ctx.close("cmd")
        while True:
            buf = ctx.read("rep")
            if buf is END_OF_STREAM:
                return
            self.replies.append(buf.payload)


class TestIOFilter:
    def test_load_store_unlink_protocol(self, tmp_path):
        d = desc(length=80, block=40)
        replies = []
        commands = [
            {"op": "store", "desc": d, "block": 0,
             "data": np.full(40, 5.0), "token": "t1"},
            {"op": "load", "desc": d, "block": 0, "token": "t2"},
            {"op": "unlink", "desc": d, "block": -1, "token": "t3"},
        ]
        layout = Layout("io")
        layout.add_filter("drv", lambda: _Driver(commands, replies))
        layout.add_filter("io", lambda: IOFilter(tmp_path))
        layout.connect("drv", "cmd", "io", "in")
        layout.connect("io", "out", "drv", "rep")
        ThreadedRuntime(layout).run(timeout=30)
        assert [r["op"] for r in replies] == ["stored", "loaded", "unlinked"]
        np.testing.assert_array_equal(replies[1]["data"], np.full(40, 5.0))
        assert [r["token"] for r in replies] == ["t1", "t2", "t3"]
        assert not array_path(tmp_path, d.name).exists()

    def test_unknown_op_fails(self, tmp_path):
        d = desc()
        replies = []
        layout = Layout("bad")
        layout.add_filter("drv", lambda: _Driver(
            [{"op": "format", "desc": d, "block": 0}], replies))
        layout.add_filter("io", lambda: IOFilter(tmp_path))
        layout.connect("drv", "cmd", "io", "in")
        layout.connect("io", "out", "drv", "rep")
        with pytest.raises(Exception, match="unknown I/O op"):
            ThreadedRuntime(layout).run(timeout=30)
