"""Tests for scratch-directory block I/O and the I/O filter."""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.array import ArrayDesc
from repro.core.errors import BlockMissingError, StorageError
from repro.core.iofilter import (
    IOFilter,
    array_path,
    block_offset,
    delete_array_file,
    discover_arrays,
    escape_name,
    read_array,
    read_block,
    unescape_name,
    write_array,
    write_block,
)
from repro.datacutter import DataBuffer, END_OF_STREAM, Filter, Layout, ThreadedRuntime
from repro.faults import FaultInjector, FaultPlan, RetryPolicy


def desc(name="a", length=100, block=40):
    return ArrayDesc(name, length=length, block_elems=block)


class TestBlockIO:
    def test_write_read_round_trip(self, tmp_path):
        d = desc()
        data = np.arange(100, dtype=float)
        write_array(tmp_path, d, data)
        np.testing.assert_array_equal(read_array(tmp_path, d), data)

    def test_block_offsets(self, tmp_path):
        d = desc(length=100, block=40)
        assert block_offset(d, 0) == 0
        assert block_offset(d, 1) == 40 * 8
        assert block_offset(d, 2) == 80 * 8
        with pytest.raises(StorageError):
            block_offset(d, 3)

    def test_out_of_order_block_writes(self, tmp_path):
        d = desc(length=100, block=40)
        write_block(tmp_path, d, 2, np.full(20, 2.0))
        write_block(tmp_path, d, 0, np.full(40, 0.0))
        write_block(tmp_path, d, 1, np.full(40, 1.0))
        np.testing.assert_array_equal(
            read_block(tmp_path, d, 1), np.full(40, 1.0))
        np.testing.assert_array_equal(
            read_block(tmp_path, d, 2), np.full(20, 2.0))

    def test_shape_validation(self, tmp_path):
        d = desc()
        with pytest.raises(StorageError):
            write_block(tmp_path, d, 0, np.zeros(7))
        with pytest.raises(StorageError):
            write_array(tmp_path, d, np.zeros(99))

    def test_never_written_block_is_a_missing_block(self, tmp_path):
        # Seek past EOF means the block was never written — a
        # reconstructable miss, not corruption (it used to masquerade as
        # the same "short read" StorageError as a torn file).
        d = desc(length=100, block=40)
        write_block(tmp_path, d, 0, np.zeros(40))
        with pytest.raises(BlockMissingError, match="never written"):
            read_block(tmp_path, d, 2)
        with pytest.raises(BlockMissingError, match="no backing file"):
            read_block(tmp_path, desc("ghost"), 0)

    def test_short_read_detected(self, tmp_path):
        # A file truncated *mid-block* is corruption, not a missing block.
        d = desc(length=100, block=40)
        write_block(tmp_path, d, 0, np.zeros(40))
        path = array_path(tmp_path, d.name)
        path.write_bytes(path.read_bytes()[:100])
        with pytest.raises(StorageError, match="short read") as ei:
            read_block(tmp_path, d, 0)
        assert not isinstance(ei.value, BlockMissingError)

    def test_name_mangling_round_trips(self, tmp_path):
        d = ArrayDesc("dir/like\\name", length=10, block_elems=10)
        write_array(tmp_path, d, np.arange(10.0))
        assert discover_arrays(tmp_path) == ["dir/like\\name"]
        np.testing.assert_array_equal(read_array(tmp_path, d), np.arange(10.0))

    def test_delete_and_discover(self, tmp_path):
        d = desc("x")
        write_array(tmp_path, d, np.zeros(100))
        assert discover_arrays(tmp_path) == ["x"]
        delete_array_file(tmp_path, "x")
        assert discover_arrays(tmp_path) == []
        delete_array_file(tmp_path, "x")  # idempotent

    def test_discover_missing_dir(self, tmp_path):
        assert discover_arrays(tmp_path / "nope") == []

    def test_concurrent_first_writes_do_not_zero_each_other(self, tmp_path):
        """Regression: two threads writing different blocks of a *new*
        file concurrently.  The old ``open(path, "wb")`` creation path
        truncated the file, so whichever writer opened second could zero
        the other's block.  ``os.open(O_CREAT | O_RDWR)`` never truncates."""
        d = desc(length=80, block=40)
        want0, want1 = np.full(40, 1.0), np.full(40, 2.0)
        for _round_no in range(50):
            delete_array_file(tmp_path, d.name)
            barrier = threading.Barrier(2)
            errors = []

            def writer(block, data):
                try:
                    barrier.wait()
                    write_block(tmp_path, d, block, data)
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [threading.Thread(target=writer, args=(0, want0)),
                       threading.Thread(target=writer, args=(1, want1))]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            np.testing.assert_array_equal(read_block(tmp_path, d, 0), want0)
            np.testing.assert_array_equal(read_block(tmp_path, d, 1), want1)


class TestNameMangling:
    @given(name=st.text(
        alphabet=st.characters(codec="utf-8",
                               exclude_characters="\x00"),
        min_size=1, max_size=60))
    @settings(max_examples=200, deadline=None)
    def test_escape_round_trips(self, name):
        assert unescape_name(escape_name(name)) == name

    @given(name=st.lists(
        st.sampled_from(["%", "/", "\\", "%2F", "%25", "%5C", "a"]),
        min_size=1, max_size=12).map("".join))
    @settings(max_examples=200, deadline=None)
    def test_adversarial_names_round_trip_and_stay_flat(self, name):
        safe = escape_name(name)
        assert "/" not in safe and "\\" not in safe
        assert unescape_name(safe) == name

    def test_no_collisions_between_literal_and_escaped(self):
        """Regression: escaping ``/`` before ``%`` mapped "a/b" and
        "a%2Fb" to the same file name."""
        names = ["a/b", "a%2Fb", "a%252Fb", "a\\b", "a%5Cb", "%", "%25"]
        escaped = [escape_name(n) for n in names]
        assert len(set(escaped)) == len(names)
        for n, s in zip(names, escaped, strict=True):
            assert unescape_name(s) == n


class _Driver(Filter):
    """Feeds commands to an IOFilter and records replies."""

    inputs = ("rep",)
    outputs = ("cmd",)

    def __init__(self, commands, replies):
        self.commands = commands
        self.replies = replies

    def process(self, ctx):
        for cmd in self.commands:
            ctx.write("cmd", DataBuffer(cmd))
        ctx.close("cmd")
        while True:
            buf = ctx.read("rep")
            if buf is END_OF_STREAM:
                return
            self.replies.append(buf.payload)


class TestIOFilter:
    def test_load_store_unlink_protocol(self, tmp_path):
        d = desc(length=80, block=40)
        replies = []
        commands = [
            {"op": "store", "desc": d, "block": 0,
             "data": np.full(40, 5.0), "token": "t1"},
            {"op": "load", "desc": d, "block": 0, "token": "t2"},
            {"op": "unlink", "desc": d, "block": -1, "token": "t3"},
        ]
        layout = Layout("io")
        layout.add_filter("drv", lambda: _Driver(commands, replies))
        layout.add_filter("io", lambda: IOFilter(tmp_path))
        layout.connect("drv", "cmd", "io", "in")
        layout.connect("io", "out", "drv", "rep")
        ThreadedRuntime(layout).run(timeout=30)
        assert [r["op"] for r in replies] == ["stored", "loaded", "unlinked"]
        np.testing.assert_array_equal(replies[1]["data"], np.full(40, 5.0))
        assert [r["token"] for r in replies] == ["t1", "t2", "t3"]
        assert not array_path(tmp_path, d.name).exists()

    def test_exhausted_retries_reply_io_error_and_filter_survives(
            self, tmp_path):
        """A failing load must produce a structured ``io_error`` reply
        (carrying the correlation token) and leave the filter alive for
        subsequent commands — not kill the filter thread."""
        d = desc(length=80, block=40)
        replies = []
        commands = [
            {"op": "load", "desc": d, "block": 0, "token": "t-dead"},
            {"op": "store", "desc": d, "block": 1,
             "data": np.full(40, 7.0), "token": "t-after"},
        ]
        layout = Layout("io")
        layout.add_filter("drv", lambda: _Driver(commands, replies))
        layout.add_filter("io", lambda: IOFilter(
            tmp_path, retry=RetryPolicy(attempts=2, backoff_s=0.0)))
        layout.connect("drv", "cmd", "io", "in")
        layout.connect("io", "out", "drv", "rep")
        ThreadedRuntime(layout).run(timeout=30)
        assert [r["op"] for r in replies] == ["io_error", "stored"]
        err = replies[0]
        assert err["failed_op"] == "load"
        assert err["token"] == "t-dead"
        assert err["block"] == 0
        assert "error" in err

    def test_injected_transient_fault_retried_to_success(self, tmp_path):
        from repro.obs import MetricsRegistry
        d = desc(length=40, block=40)
        write_array(tmp_path, d, np.arange(40.0))
        metrics = MetricsRegistry()
        plan = FaultPlan(seed=0, io_transient=1.0)

        class OneShot(FaultInjector):
            """Injects exactly one transient fault, then goes quiet."""

            def io_fault(self, op, array, block, attempt):
                return super().io_fault(op, array, block, attempt) \
                    if attempt == 0 else None

        replies = []
        layout = Layout("io")
        layout.add_filter("drv", lambda: _Driver(
            [{"op": "load", "desc": d, "block": 0, "token": "t"}], replies))
        layout.add_filter("io", lambda: IOFilter(
            tmp_path, retry=RetryPolicy(attempts=3, backoff_s=0.0),
            injector=OneShot(plan, 0, metrics=metrics), metrics=metrics))
        layout.connect("drv", "cmd", "io", "in")
        layout.connect("io", "out", "drv", "rep")
        ThreadedRuntime(layout).run(timeout=30)
        assert [r["op"] for r in replies] == ["loaded"]
        np.testing.assert_array_equal(replies[0]["data"], np.arange(40.0))
        snap = metrics.as_dict()
        assert snap["io_retries"] == 1
        assert snap["faults_injected_by_label"] == {"io_transient": 1}

    def test_unknown_op_fails(self, tmp_path):
        d = desc()
        replies = []
        layout = Layout("bad")
        layout.add_filter("drv", lambda: _Driver(
            [{"op": "format", "desc": d, "block": 0}], replies))
        layout.add_filter("io", lambda: IOFilter(tmp_path))
        layout.connect("drv", "cmd", "io", "in")
        layout.connect("io", "out", "drv", "rep")
        with pytest.raises(Exception, match="unknown I/O op"):
            ThreadedRuntime(layout).run(timeout=30)
