"""Tests for CSR blocks, the binary CRS format, generators, and partitioning."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spmv.csr import CSRBlock, CSRError
from repro.spmv.csrfile import (
    csr_nbytes,
    deserialize_csr,
    peek_csr_header,
    read_csr_file,
    serialize_csr,
    write_csr_file,
)
from repro.spmv.generator import (
    choose_gap_parameter,
    expected_nnz,
    gap_uniform_csr,
    symmetric_test_matrix,
)
from repro.spmv.partition import GridPartition, block_owner, column_owner, split_bounds
from repro.spmv.reference import (
    iterated_spmv_blocked_reference,
    iterated_spmv_reference,
    loads_back_and_forth_plan,
    loads_regular_plan,
)


def random_csr(rng, nrows=20, ncols=30, density=0.2):
    m = sp.random(nrows, ncols, density=density, random_state=np.random.RandomState(
        int(rng.integers(0, 2**31))), format="csr")
    return CSRBlock.from_scipy(m)


class TestCSRBlock:
    def test_round_trip_scipy(self):
        rng = np.random.default_rng(0)
        b = random_csr(rng)
        np.testing.assert_allclose(b.to_dense(), b.to_scipy().toarray())

    def test_matvec_matches_python_kernel(self):
        rng = np.random.default_rng(1)
        b = random_csr(rng)
        x = rng.normal(size=b.ncols)
        np.testing.assert_allclose(b.matvec(x), b.matvec_python(x))

    def test_matvec_out_parameter(self):
        rng = np.random.default_rng(2)
        b = random_csr(rng)
        x = rng.normal(size=b.ncols)
        out = np.zeros(b.nrows)
        result = b.matvec(x, out=out)
        assert result is out
        np.testing.assert_allclose(out, b.matvec(x))

    def test_matvec_shape_checks(self):
        b = CSRBlock.empty(3, 4)
        with pytest.raises(CSRError):
            b.matvec(np.zeros(5))
        with pytest.raises(CSRError):
            b.matvec(np.zeros(4), out=np.zeros(2))

    def test_flop_count(self):
        rng = np.random.default_rng(3)
        b = random_csr(rng)
        assert b.matvec_flops == 2 * b.nnz

    def test_validation(self):
        with pytest.raises(CSRError):
            CSRBlock(2, 2, np.array([0, 1]), np.array([0]), np.array([1.0]))
        with pytest.raises(CSRError):
            CSRBlock(1, 2, np.array([1, 1]), np.zeros(0, int), np.zeros(0))
        with pytest.raises(CSRError):
            CSRBlock(1, 2, np.array([0, 1]), np.array([5]), np.array([1.0]))
        with pytest.raises(CSRError):
            CSRBlock(1, 2, np.array([0, 2]), np.array([0]), np.array([1.0]))

    def test_empty(self):
        b = CSRBlock.empty(3, 4)
        assert b.nnz == 0
        np.testing.assert_array_equal(b.matvec(np.ones(4)), np.zeros(3))


class TestCSRFile:
    def test_serialize_round_trip(self):
        rng = np.random.default_rng(4)
        b = random_csr(rng)
        raw = serialize_csr(b)
        assert len(raw) == csr_nbytes(b.nrows, b.nnz)
        b2 = deserialize_csr(raw)
        assert b2.shape == b.shape
        np.testing.assert_array_equal(b2.indptr, b.indptr)
        np.testing.assert_array_equal(b2.indices, b.indices)
        np.testing.assert_allclose(b2.values, b.values)

    def test_deserialize_from_uint8_array(self):
        rng = np.random.default_rng(5)
        b = random_csr(rng)
        arr = np.frombuffer(serialize_csr(b), dtype=np.uint8)
        b2 = deserialize_csr(arr)
        np.testing.assert_allclose(b2.to_dense(), b.to_dense())

    def test_file_round_trip(self, tmp_path):
        rng = np.random.default_rng(6)
        b = random_csr(rng)
        path = tmp_path / "A_0_0.bin"
        nbytes = write_csr_file(path, b)
        assert path.stat().st_size == nbytes
        b2 = read_csr_file(path)
        np.testing.assert_allclose(b2.to_dense(), b.to_dense())

    def test_peek_header(self, tmp_path):
        rng = np.random.default_rng(7)
        b = random_csr(rng)
        path = tmp_path / "A.bin"
        write_csr_file(path, b)
        assert peek_csr_header(path) == (b.nrows, b.ncols, b.nnz)

    def test_bad_magic_rejected(self):
        with pytest.raises(CSRError, match="magic"):
            deserialize_csr(b"NOTACSR0" + b"\x00" * 64)

    def test_truncated_rejected(self):
        rng = np.random.default_rng(8)
        b = random_csr(rng)
        raw = serialize_csr(b)
        with pytest.raises(CSRError):
            deserialize_csr(raw[: len(raw) // 2])
        with pytest.raises(CSRError):
            deserialize_csr(raw[:4])


class TestGapUniformGenerator:
    def test_rows_strictly_increasing_and_in_range(self):
        rng = np.random.default_rng(9)
        b = gap_uniform_csr(50, 200, d=5.0, rng=rng)
        for i in range(b.nrows):
            cols = b.indices[b.indptr[i]:b.indptr[i + 1]]
            assert np.all(np.diff(cols) >= 1)
            if cols.size:
                assert 0 <= cols[0] and cols[-1] < 200

    def test_density_close_to_target(self):
        rng = np.random.default_rng(10)
        ncols, target = 1000, 50.0
        d = choose_gap_parameter(ncols, target)
        b = gap_uniform_csr(200, ncols, d, rng)
        per_row = b.nnz / b.nrows
        assert per_row == pytest.approx(target, rel=0.15)
        assert expected_nnz(200, ncols, d) == pytest.approx(b.nnz, rel=0.15)

    def test_gap_distribution_is_uniform_ish(self):
        rng = np.random.default_rng(11)
        d = 4.0
        b = gap_uniform_csr(400, 2000, d, rng)
        gaps = []
        for i in range(b.nrows):
            cols = b.indices[b.indptr[i]:b.indptr[i + 1]]
            gaps.extend(np.diff(cols))
        gaps = np.array(gaps)
        assert gaps.min() >= 1 and gaps.max() <= 8
        # Uniform [1, 8]: mean 4.5.
        assert gaps.mean() == pytest.approx(4.5, rel=0.05)

    def test_reproducible(self):
        a = gap_uniform_csr(20, 50, 3.0, np.random.default_rng(42))
        b = gap_uniform_csr(20, 50, 3.0, np.random.default_rng(42))
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_allclose(a.values, b.values)

    def test_values_modes(self):
        ones = gap_uniform_csr(5, 20, 2.0, np.random.default_rng(0), values="ones")
        assert np.all(ones.values == 1.0)
        with pytest.raises(ValueError):
            gap_uniform_csr(5, 20, 2.0, np.random.default_rng(0), values="junk")

    def test_parameter_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            gap_uniform_csr(5, 0, 2.0, rng)
        with pytest.raises(ValueError):
            gap_uniform_csr(5, 10, 0.2, rng)
        with pytest.raises(ValueError):
            choose_gap_parameter(10, 0)
        with pytest.raises(ValueError):
            choose_gap_parameter(10, 20)

    @given(st.integers(1, 30), st.integers(1, 100),
           st.floats(min_value=0.5, max_value=20.0))
    @settings(max_examples=50, deadline=None)
    def test_property_valid_csr_for_any_params(self, nrows, ncols, d):
        b = gap_uniform_csr(nrows, ncols, d, np.random.default_rng(0))
        assert b.nrows == nrows and b.ncols == ncols  # validated in __post_init__

    def test_symmetric_matrix_is_symmetric(self):
        b = symmetric_test_matrix(64, 8.0, np.random.default_rng(12), diag_shift=20.0)
        dense = b.to_dense()
        np.testing.assert_allclose(dense, dense.T)
        # Diagonally-shifted: positive definite.
        eigs = np.linalg.eigvalsh(dense)
        assert eigs.min() > 0


class TestPartition:
    def test_split_bounds(self):
        np.testing.assert_array_equal(split_bounds(10, 2), [0, 5, 10])
        np.testing.assert_array_equal(split_bounds(10, 3), [0, 3, 6, 10])
        with pytest.raises(ValueError):
            split_bounds(2, 3)
        with pytest.raises(ValueError):
            split_bounds(10, 0)

    def test_split_and_join_vector(self):
        p = GridPartition(10, 3)
        x = np.arange(10.0)
        parts = p.split_vector(x)
        assert [len(parts[u]) for u in range(3)] == [3, 3, 4]
        np.testing.assert_array_equal(p.join_vector(parts), x)

    def test_split_matrix_blocks_recompose(self):
        rng = np.random.default_rng(13)
        n, k = 24, 3
        m = random_csr(rng, n, n, density=0.3)
        p = GridPartition(n, k)
        blocks = p.split_matrix(m)
        dense = np.zeros((n, n))
        b = p.bounds
        for (u, v), blk in blocks.items():
            dense[b[u]:b[u + 1], b[v]:b[v + 1]] = blk.to_dense()
        np.testing.assert_allclose(dense, m.to_dense())

    def test_blocked_spmv_matches_global(self):
        rng = np.random.default_rng(14)
        n, k = 30, 3
        m = random_csr(rng, n, n, density=0.2)
        p = GridPartition(n, k)
        blocks = p.split_matrix(m)
        x0 = rng.normal(size=n)
        ref = iterated_spmv_reference(m, x0, 3)
        blk = iterated_spmv_blocked_reference(blocks, p, x0, 3)
        np.testing.assert_allclose(blk, ref, rtol=1e-10)

    def test_generate_submatrices_shapes(self):
        p = GridPartition(100, 4)
        blocks = p.generate_submatrices(
            3.0, lambda u, v: np.random.default_rng(u * 10 + v))
        assert len(blocks) == 16
        for (u, v), b in blocks.items():
            assert b.shape == (p.part_length(u), p.part_length(v))

    def test_column_owner(self):
        owner = column_owner(6, 3)
        assert [owner(0, v) for v in range(6)] == [0, 0, 1, 1, 2, 2]
        with pytest.raises(ValueError):
            column_owner(5, 3)

    def test_block_owner(self):
        owner = block_owner(4, 4)  # 2x2 node grid, 2x2 blocks each
        assert owner(0, 0) == 0 and owner(0, 3) == 1
        assert owner(3, 0) == 2 and owner(3, 3) == 3
        with pytest.raises(ValueError):
            block_owner(4, 3)
        with pytest.raises(ValueError):
            block_owner(5, 4)


class TestLoadCountModels:
    def test_paper_numbers_3x3(self):
        # Fig. 5: per node with 3 sub-matrices, 2 iterations.
        assert loads_regular_plan(3, 2) == 6
        assert loads_back_and_forth_plan(3, 2) == 5  # 3 + 2

    def test_growth(self):
        assert loads_regular_plan(5, 4) == 20
        assert loads_back_and_forth_plan(5, 4) == 5 + 3 * 4
        assert loads_back_and_forth_plan(1, 100) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            loads_regular_plan(0, 1)
        with pytest.raises(ValueError):
            loads_back_and_forth_plan(1, 0)
