"""The multi-tenant job service: admission, quotas, deadlines,
preemption, retry, drain, and the stale-resource sweeper.

Unit tests drive the pure decision logic (admission, fair share) with
plain data; integration tests run a real JobManager over real engine
runs; the soak test at the bottom pushes 16+ concurrent clients through
every lifecycle path at once and asserts that *every* job converges on a
structured terminal state — never a hang, never a generic StallError.
"""

import os
import threading
import time
from pathlib import Path

import pytest

from repro.core.errors import StallError
from repro.faults import FaultPlan, RetryPolicy, job_fault_plan
from repro.server import (
    JobManager,
    JobSpec,
    JobState,
    ServerConfig,
    TenantQuota,
    estimate_working_set,
)
from repro.server.admission import AdmissionDecision, admit, fair_share_order
from repro.server.jobs import JobRecord
from repro.server.sweep import pid_alive, sweep


def _shm_litter():
    return [f for f in os.listdir("/dev/shm") if f.startswith("dooc-")]


def _spec(**kw):
    kw.setdefault("tenant", "t")
    kw.setdefault("kind", "cg")
    kw.setdefault("n", 64)
    kw.setdefault("parts", 2)
    kw.setdefault("iterations", 8)
    return JobSpec(**kw)


SMALL_ENGINE = {"memory_budget_per_node": 32 * 2**20}


def _manager(**kw):
    kw.setdefault("memory_budget", 8 * 2**20)
    kw.setdefault("max_concurrent", 2)
    kw.setdefault("engine", SMALL_ENGINE)
    return JobManager(ServerConfig(**kw)).start()


class TestJobSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            _spec(kind="laplace")
        with pytest.raises(ValueError, match="tenant"):
            _spec(tenant="")
        with pytest.raises(ValueError, match="deadline_s"):
            _spec(deadline_s=0.0)
        with pytest.raises(ValueError, match="parts"):
            _spec(parts=40)

    def test_from_json_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="working_set_byes"):
            JobSpec.from_json({"tenant": "t", "kind": "cg",
                               "working_set_byes": 1})

    def test_roundtrip(self):
        spec = _spec(deadline_s=2.5)
        assert JobSpec.from_json(spec.to_json()) == spec

    def test_working_set_estimator(self):
        small = estimate_working_set(_spec(n=64))
        big = estimate_working_set(_spec(n=4096))
        assert 0 < small < big
        lanczos = estimate_working_set(_spec(kind="lanczos", n=4096,
                                             iterations=64))
        assert lanczos > big  # the Krylov basis is accounted for
        declared = _spec(working_set_bytes=123)
        assert declared.working_set == 123


class TestAdmission:
    QUOTA = TenantQuota(max_running=2, max_queued=3, weight=1.0)

    def _admit(self, spec, **kw):
        kw.setdefault("budget", 2**20)
        kw.setdefault("queue_len", 0)
        kw.setdefault("max_queue", 10)
        kw.setdefault("tenant_queued", 0)
        kw.setdefault("quota", self.QUOTA)
        return admit(spec, **kw)

    def test_oversized_job_named_impossible(self):
        d = self._admit(_spec(working_set_bytes=2**21))
        assert not d.accepted
        assert "can never be scheduled" in d.reason

    def test_queue_saturation_sheds_load(self):
        d = self._admit(_spec(working_set_bytes=1), queue_len=10)
        assert not d.accepted and "load shedding" in d.reason

    def test_tenant_quota(self):
        d = self._admit(_spec(working_set_bytes=1), tenant_queued=3)
        assert not d.accepted and "quota exhausted" in d.reason

    def test_draining_refuses(self):
        d = self._admit(_spec(working_set_bytes=1), draining=True)
        assert not d.accepted and "draining" in d.reason

    def test_accepts_when_room(self):
        assert self._admit(_spec(working_set_bytes=1)).accepted

    def test_decision_constructors(self):
        assert AdmissionDecision.ok().accepted
        assert AdmissionDecision.rejected("x").reason == "x"


class TestFairShare:
    def _rec(self, rid, tenant, submitted, not_before=0.0):
        r = JobRecord(id=rid, spec=_spec(tenant=tenant))
        r.submitted_at = submitted
        r.not_before = not_before
        return r

    def test_weight_beats_arrival_order(self):
        quotas = {"vip": TenantQuota(weight=4.0),
                  "bulk": TenantQuota(weight=1.0)}
        queued = [self._rec("a", "bulk", 1.0), self._rec("b", "vip", 2.0)]
        order = fair_share_order(queued, [], quotas, TenantQuota(), now=10.0)
        assert [r.id for r in order] == ["b", "a"]

    def test_running_share_decays_priority(self):
        quotas = {"vip": TenantQuota(weight=2.0),
                  "bulk": TenantQuota(weight=1.9)}
        running = self._rec("r", "vip", 0.0)
        running.state = JobState.RUNNING
        queued = [self._rec("a", "vip", 1.0), self._rec("b", "bulk", 2.0)]
        order = fair_share_order(queued, [running], quotas, TenantQuota(),
                                 now=10.0)
        # vip's 2.0/(1+1)=1.0 now loses to bulk's idle 1.9/1
        assert [r.id for r in order] == ["b", "a"]

    def test_backoff_sorts_last(self):
        queued = [self._rec("a", "t", 1.0, not_before=99.0),
                  self._rec("b", "t", 2.0)]
        order = fair_share_order(queued, [], {}, TenantQuota(), now=10.0)
        assert [r.id for r in order] == ["b", "a"]


class TestJobFaultPlan:
    def test_derivation_is_deterministic_and_distinct(self):
        base = FaultPlan(seed=7, io_transient=0.5)
        a1 = job_fault_plan(base, "j1", 1)
        assert a1 == job_fault_plan(base, "j1", 1)
        assert a1.seed != job_fault_plan(base, "j1", 2).seed
        assert a1.seed != job_fault_plan(base, "j2", 1).seed
        assert a1.io_transient == 0.5  # probabilities carried over
        with pytest.raises(ValueError):
            job_fault_plan(base, "j1", 0)


class TestJobManager:
    def test_happy_path_all_kinds(self):
        mgr = _manager()
        try:
            recs = [mgr.submit(_spec(kind=k, iterations=6))
                    for k in ("spmv", "jacobi", "cg", "lanczos")]
            for rec in recs:
                assert rec.done_event.wait(120), rec.state
                assert rec.state == JobState.DONE, (rec.state, rec.outcome)
                assert rec.outcome["digest"]
                events = [e["event"] for e in rec.events]
                assert events[0] == "job_submit"
                assert events[-1] == "job_done"
        finally:
            mgr.drain(timeout=10)
        assert _shm_litter() == []

    def test_rejection_is_structured(self):
        mgr = _manager()
        try:
            rec = mgr.submit(_spec(working_set_bytes=10**12))
            assert rec.state == JobState.REJECTED
            assert rec.terminal and rec.done_event.is_set()
            assert "can never be scheduled" in rec.outcome["reason"]
            assert mgr.metrics.get("jobs_rejected") == 1
        finally:
            mgr.drain(timeout=5)

    def test_deadline_exceeded_is_structured(self):
        mgr = _manager()
        try:
            rec = mgr.submit(_spec(kind="spmv", n=96, iterations=5000,
                                   checkpoint_every=10, deadline_s=0.8))
            assert rec.done_event.wait(60)
            assert rec.state == JobState.DEADLINE_EXCEEDED, rec.outcome
            assert rec.outcome["reason"] == "deadline exceeded"
        finally:
            mgr.drain(timeout=10)

    def test_queued_job_past_deadline_never_starts(self):
        # One slot, a long runner in it, and a queued job whose deadline
        # expires while it waits: the supervisor must finalize it.
        mgr = _manager(max_concurrent=1)
        try:
            hog = mgr.submit(_spec(kind="spmv", n=96, iterations=600,
                                   checkpoint_every=2))
            rec = mgr.submit(_spec(deadline_s=0.3))
            assert rec.done_event.wait(30)
            assert rec.state == JobState.DEADLINE_EXCEEDED
            assert "before start" in rec.outcome["reason"]
            mgr.cancel(hog.id)
        finally:
            mgr.drain(timeout=10)

    def test_client_cancel_queued_and_running(self):
        mgr = _manager(max_concurrent=1)
        try:
            running = mgr.submit(_spec(kind="spmv", n=96, iterations=600,
                                       checkpoint_every=2))
            queued = mgr.submit(_spec())
            assert mgr.cancel(queued.id)
            assert queued.state == JobState.CANCELLED
            t0 = time.monotonic()
            while running.state != JobState.RUNNING \
                    and time.monotonic() - t0 < 20:
                time.sleep(0.02)
            assert mgr.cancel(running.id)
            assert running.done_event.wait(30)
            assert running.state == JobState.CANCELLED
            assert not mgr.cancel(running.id)  # already terminal
            assert not mgr.cancel("ghost")
        finally:
            mgr.drain(timeout=10)

    def test_retry_with_backoff_then_done(self):
        # io_transient=1.0 guarantees the first attempts die; the derived
        # per-attempt seed re-draws, so with a fresh plan per attempt the
        # job eventually... never succeeds at p=1.0 — instead use a plan
        # that the *job-level* retry must absorb: kill node 0 mid-run.
        mgr = _manager(
            faults=FaultPlan(seed=11, node_kill=((0, 3),)),
            retry=RetryPolicy(attempts=3, backoff_s=0.05, multiplier=2.0,
                              max_backoff_s=0.2, jitter=0.0))
        try:
            rec = mgr.submit(_spec(kind="spmv", n=96, iterations=40,
                                   checkpoint_every=5))
            assert rec.done_event.wait(120)
            # Single-node runs cannot survive node 0 dying, so every
            # attempt fails the same way: structured FAILED, attempts
            # exhausted, with the retry trail in the event log.
            assert rec.state == JobState.FAILED, (rec.state, rec.outcome)
            assert rec.attempts == 3
            retries = [e for e in rec.events if e["event"] == "job_retry"]
            assert len(retries) == 2
            assert retries[0]["backoff_s"] == pytest.approx(0.05)
            assert retries[1]["backoff_s"] == pytest.approx(0.10)
        finally:
            mgr.drain(timeout=10)
        assert _shm_litter() == []

    def test_preemption_resumes_bit_identically(self):
        big = 3 * 2**20
        mgr = _manager(
            memory_budget=8 * 2**20,
            quotas={"vip": TenantQuota(max_running=2, weight=4.0),
                    "bulk": TenantQuota(max_running=2, weight=1.0)})
        try:
            victims = [
                mgr.submit(_spec(tenant="bulk", kind="spmv", n=96,
                                 iterations=300, checkpoint_every=2,
                                 working_set_bytes=big))
                for _ in range(2)
            ]
            t0 = time.monotonic()
            while mgr.stats()["running"] < 2 and time.monotonic() - t0 < 30:
                time.sleep(0.02)
            time.sleep(1.0)  # let the victims pass a checkpoint boundary
            vip = mgr.submit(_spec(tenant="vip", working_set_bytes=big))
            assert vip.done_event.wait(90)
            assert vip.state == JobState.DONE, (vip.state, vip.outcome)
            preempted = [r for r in victims if r.preemptions > 0]
            assert preempted, "no victim was preempted"
            for rec in victims:
                assert rec.done_event.wait(180)
                assert rec.state == JobState.DONE, (rec.state, rec.outcome)
            ref = mgr.submit(_spec(tenant="vip", kind="spmv", n=96,
                                   iterations=300, checkpoint_every=2))
            assert ref.done_event.wait(180) and ref.state == JobState.DONE
            for rec in preempted:
                assert rec.outcome["digest"] == ref.outcome["digest"]
                assert rec.outcome["restored_from"] is not None
                events = [e["event"] for e in rec.events]
                assert "job_preempt" in events and "job_resume" in events
        finally:
            mgr.drain(timeout=15)
        assert _shm_litter() == []

    def test_equal_weight_jobs_never_preempt(self):
        big = 3 * 2**20
        mgr = _manager(memory_budget=8 * 2**20, max_concurrent=2)
        try:
            a = mgr.submit(_spec(kind="spmv", n=96, iterations=150,
                                 checkpoint_every=2, working_set_bytes=big))
            b = mgr.submit(_spec(kind="spmv", n=96, iterations=150,
                                 checkpoint_every=2, working_set_bytes=big))
            c = mgr.submit(_spec(working_set_bytes=big))  # must wait
            for rec in (a, b, c):
                assert rec.done_event.wait(120)
                assert rec.state == JobState.DONE
            assert a.preemptions == b.preemptions == 0
        finally:
            mgr.drain(timeout=10)

    def test_drain_checkpoints_running_jobs(self):
        mgr = _manager(max_concurrent=1)
        rec = mgr.submit(_spec(kind="spmv", n=96, iterations=600,
                               checkpoint_every=2))
        t0 = time.monotonic()
        while rec.state != JobState.RUNNING and time.monotonic() - t0 < 20:
            time.sleep(0.02)
        queued = mgr.submit(_spec())
        manifest = mgr.drain(timeout=30)
        assert rec.state == JobState.PREEMPTED
        assert rec.id in manifest["preempted"]
        assert queued.id in manifest["queued"]
        assert manifest["undrained"] == []
        assert (mgr.work_dir / "drain.json").exists()
        assert (mgr.work_dir / rec.id / "ckpt").is_dir()
        late = mgr.submit(_spec())
        assert late.state == JobState.REJECTED
        assert "draining" in late.outcome["reason"]
        assert _shm_litter() == []


class TestSweeper:
    def test_pid_alive(self):
        assert pid_alive(os.getpid())
        assert not pid_alive(-1)

    def test_sweep_reclaims_only_dead_owners(self, tmp_path):
        shm = tmp_path / "shm"
        tmp = tmp_path / "tmp"
        shm.mkdir()
        tmp.mkdir()
        # dead-owner litter (pid 2**22-ish is unused on CI runners; use a
        # spawned-and-exited child to be certain)
        import subprocess
        import sys
        child = subprocess.run([sys.executable, "-c", "print('x')"],
                               capture_output=True)
        assert child.returncode == 0
        dead = 4194000
        while pid_alive(dead):
            dead -= 1
        (shm / f"dooc-seg-{dead}-e1r1-0").write_bytes(b"x")
        (shm / f"dooc-seg-{os.getpid()}-e1r1-0").write_bytes(b"x")
        (shm / "unrelated").write_bytes(b"x")
        (tmp / f"dooc-{dead}-abc").mkdir()
        (tmp / f"dooc-{os.getpid()}-abc").mkdir()
        (tmp / "keepme").mkdir()

        report = sweep(shm_dir=shm, tmp_dir=tmp, dry_run=True)
        assert len(report["segments"]) == 1
        assert len(report["scratch_dirs"]) == 1
        assert (shm / f"dooc-seg-{dead}-e1r1-0").exists()  # dry run

        report = sweep(shm_dir=shm, tmp_dir=tmp)
        assert not (shm / f"dooc-seg-{dead}-e1r1-0").exists()
        assert not (tmp / f"dooc-{dead}-abc").exists()
        # live-owner and unrelated entries untouched
        assert (shm / f"dooc-seg-{os.getpid()}-e1r1-0").exists()
        assert (tmp / f"dooc-{os.getpid()}-abc").is_dir()
        assert (shm / "unrelated").exists()
        assert (tmp / "keepme").is_dir()


class TestSoak:
    def test_sixteen_concurrent_clients_all_structured(self, tmp_path):
        """16 clients x mixed fates: done, rejected (admission + quota),
        deadline-exceeded, cancelled, preempted-then-done, fault-retried.
        Every record must reach a structured terminal state and the
        server must drain to a clean /dev/shm."""
        mgr = JobManager(ServerConfig(
            memory_budget=10 * 2**20,
            max_queue=10,
            max_concurrent=3,
            engine=SMALL_ENGINE,
            quotas={"vip": TenantQuota(max_running=2, max_queued=4,
                                       weight=4.0),
                    "bulk": TenantQuota(max_running=3, max_queued=4,
                                        weight=1.0),
                    "greedy": TenantQuota(max_running=1, max_queued=1,
                                          weight=1.0)},
            faults=FaultPlan(seed=23, io_transient=0.005),
            retry=RetryPolicy(attempts=3, backoff_s=0.05, multiplier=2.0,
                              max_backoff_s=0.2, jitter=0.0),
            work_dir=tmp_path / "jobs",
        )).start()
        big = 3 * 2**20
        records = []
        lock = threading.Lock()

        def client(i):
            if i == 0:      # impossible working set
                rec = mgr.submit(_spec(tenant="bulk",
                                       working_set_bytes=10**12))
            elif i == 1:    # deadline that must expire
                rec = mgr.submit(_spec(tenant="bulk", kind="spmv", n=96,
                                       iterations=5000, checkpoint_every=10,
                                       deadline_s=0.8))
            elif i == 2:    # submitted then cancelled by its client
                rec = mgr.submit(_spec(tenant="bulk", kind="spmv", n=96,
                                       iterations=400, checkpoint_every=2))
                time.sleep(0.5)
                mgr.cancel(rec.id)
            elif i in (3, 4):  # heavy bulk jobs — preemption victims
                rec = mgr.submit(_spec(tenant="bulk", kind="spmv", n=96,
                                       iterations=300, checkpoint_every=2,
                                       working_set_bytes=big))
            elif i == 5:    # the heavier tenant that provokes preemption
                time.sleep(2.0)
                rec = mgr.submit(_spec(tenant="vip",
                                       working_set_bytes=big))
            elif i in (6, 7):  # greedy tenant: second one over quota
                rec = mgr.submit(_spec(tenant="greedy", seed=i))
            else:           # a spread of ordinary jobs across kinds
                kind = ("spmv", "jacobi", "cg", "lanczos")[i % 4]
                rec = mgr.submit(_spec(tenant=("vip", "bulk")[i % 2],
                                       kind=kind, seed=i, iterations=6))
            with lock:
                records.append((i, rec))

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert len(records) == 16

        try:
            for i, rec in records:
                if rec.terminal:
                    continue
                assert rec.done_event.wait(240), \
                    f"client {i} job {rec.id} stuck in {rec.state}"
            states = {rec.state for _, rec in records}
            assert states <= JobState.TERMINAL
            by_client = dict(records)
            assert by_client[0].state == JobState.REJECTED
            assert by_client[1].state == JobState.DEADLINE_EXCEEDED
            assert by_client[2].state == JobState.CANCELLED
            assert by_client[5].state == JobState.DONE
            # no outcome is a watchdog stall
            for _, rec in records:
                assert "StallError" != rec.outcome.get("error_type"), \
                    (rec.id, rec.outcome)
        finally:
            manifest = mgr.drain(timeout=30)
        assert manifest["undrained"] == []
        assert _shm_litter() == []
