"""Zero-copy data-plane invariants: frozen views, generations, planes.

The zero-copy plane is only sound because of a chain of invariants —
sealed buffers are frozen, read grants hand out non-writable views,
seal generations fence the decoded-operand cache, and the ticket
auditor rejects any writable read view.  Each link is pinned here, plus
the ``DOOC_DATA_PLANE=legacy`` escape hatch that restores the old
copying behavior for A/B benchmarking.
"""

import numpy as np
import pytest

from repro.analysis import TicketAuditor, WritableReadViewError
from repro.core.array import ArrayDesc
from repro.core.engine import DOoCEngine, default_worker_count
from repro.core.errors import DoocError
from repro.core.interval import Interval, whole_array, whole_block
from repro.core.iofilter import read_block, write_block
from repro.core.opcache import DATA_PLANE_ENV, DecodedOperandCache
from repro.core.storage import LocalStore, Permission, Ticket
from repro.spmv.generator import choose_gap_parameter, gap_uniform_csr
from repro.spmv.partition import GridPartition
from repro.spmv.program import build_iterated_spmv
from repro.spmv.reference import iterated_spmv_reference


def desc(name="a", length=100, block=50, dtype="float64"):
    return ArrayDesc(name, length=length, block_elems=block, dtype=dtype)


def effects_of_kind(effects, kind):
    return [e for e in effects if e.kind == kind]


def write_whole_array(store, d, value_fn=lambda i: float(i)):
    """Write and release every block of d, serving spills synchronously."""
    for iv in whole_array(d):
        ticket, effects = store.request_write(iv)
        while not ticket.granted:
            spills = effects_of_kind(effects, "spill")
            assert spills, "write grant is stuck without a pending spill"
            effects = [
                e
                for s in spills
                for e in store.on_spilled(s.array, s.block)
            ]
        ticket.data[:] = [value_fn(i) for i in range(iv.lo, iv.hi)]
        store.release(ticket)


class TestFrozenBuffers:
    def test_sealed_buffer_is_frozen_and_read_views_inherit(self):
        d = desc()
        store = LocalStore(0, memory_budget=10**6)
        store.create_array(d)
        write_whole_array(store, d)
        st = store._blocks[("a", 0)]
        assert not st.data.flags.writeable
        ticket, effects = store.request_read(whole_block(d, 0))
        assert effects_of_kind(effects, "grant_read")
        assert not ticket.data.flags.writeable
        with pytest.raises(ValueError):
            ticket.data[0] = 99.0
        store.release(ticket)

    def test_loaded_block_is_frozen(self):
        # Budget fits one 400 B block: writing block 1 spills block 0,
        # and reading block 0 back spills block 1 then loads from
        # "disk".  The reloaded buffer must come back frozen too.
        d = desc(length=100, block=50)
        store = LocalStore(0, memory_budget=500)
        store.create_array(d)
        write_whole_array(store, d)
        ticket, effects = store.request_read(whole_block(d, 0))
        for _ in range(10):
            if ticket.granted:
                break
            nxt = []
            for e in effects:
                if e.kind == "spill":
                    nxt.extend(store.on_spilled(e.array, e.block))
                elif e.kind == "load":
                    nxt.extend(store.on_loaded(
                        e.array, e.block, np.arange(50, dtype=np.float64)))
            effects = nxt
        assert ticket.granted
        assert not ticket.data.flags.writeable
        store.release(ticket)

    def test_read_block_returns_readonly_view(self, tmp_path):
        d = desc(length=8, block=8)
        write_block(tmp_path, d, 0, np.arange(8, dtype=np.float64))
        out = read_block(tmp_path, d, 0)
        np.testing.assert_array_equal(out, np.arange(8, dtype=np.float64))
        assert not out.flags.writeable
        with pytest.raises(ValueError):
            out[0] = 1.0


class TestSealGenerations:
    def test_read_tickets_are_stamped_with_the_generation(self):
        d = desc()
        store = LocalStore(0, memory_budget=10**6)
        store.create_array(d)
        write_whole_array(store, d)
        ticket, _ = store.request_read(whole_block(d, 0))
        assert ticket.generation == store._blocks[("a", 0)].generation
        store.release(ticket)

    def test_reclaim_bumps_generation_and_invalidates_opcache(self):
        # Budget fits one 400 B block, so writing block 1 spill-drops
        # block 0: the reclaim must bump its generation and purge any
        # cache entry decoded from the array.
        d = desc(length=100, block=50)
        store = LocalStore(0, memory_budget=500)
        store.create_array(d)
        cache = DecodedOperandCache(1 << 20)
        store.opcache = cache
        cache.put("a", (0,), "decoded", 16)
        assert cache.get("a", (0,)) == "decoded"
        write_whole_array(store, d)
        assert store._blocks[("a", 0)].generation >= 1
        assert len(cache) == 0
        assert cache.invalidations == 1
        assert cache.get("a", (0,)) is None

    def test_delete_array_invalidates_opcache(self):
        d = desc(length=50, block=50)
        store = LocalStore(0, memory_budget=10**6)
        store.create_array(d)
        cache = DecodedOperandCache(1 << 20)
        store.opcache = cache
        write_whole_array(store, d)
        cache.put("a", (0,), "decoded", 16)
        store.delete_array("a")
        assert len(cache) == 0


class TestAuditor:
    def _read_ticket(self, writable):
        t = Ticket(1, Interval("a", 0, 0, 4), Permission.READ)
        data = np.zeros(4)
        data.flags.writeable = writable
        t.data = data
        t.granted = True
        return t

    def test_writable_read_view_rejected(self):
        auditor = TicketAuditor()
        with pytest.raises(WritableReadViewError):
            auditor.note_granted(0, self._read_ticket(writable=True))

    def test_frozen_read_view_accepted(self):
        auditor = TicketAuditor()
        auditor.note_granted(0, self._read_ticket(writable=False))
        assert auditor.granted_total == 1

    def test_audited_store_round_trip_is_clean(self):
        d = desc()
        store = LocalStore(0, memory_budget=10**6)
        store.auditor = TicketAuditor()
        store.create_array(d)
        write_whole_array(store, d)
        ticket, _ = store.request_read(whole_block(d, 0))
        store.release(ticket)
        store.auditor.assert_clean()


class TestWorkerPoolConfig:
    def test_workers_alias_sets_pool_size(self):
        eng = DOoCEngine(n_nodes=1, workers=3)
        try:
            assert eng.workers_per_node == 3
        finally:
            eng.cleanup()

    def test_default_is_cpu_aware(self):
        eng = DOoCEngine(n_nodes=1)
        try:
            assert eng.workers_per_node == default_worker_count()
            assert 2 <= eng.workers_per_node <= 8
        finally:
            eng.cleanup()

    def test_both_spellings_rejected(self):
        with pytest.raises(DoocError):
            DOoCEngine(n_nodes=1, workers=2, workers_per_node=2)

    def test_zero_workers_rejected(self):
        with pytest.raises(DoocError):
            DOoCEngine(n_nodes=1, workers_per_node=0)

    def test_negative_opcache_budget_rejected(self):
        with pytest.raises(DoocError):
            DOoCEngine(n_nodes=1, opcache_bytes=-1)


def make_problem(n=64, k=2, seed=7, density_per_row=6.0):
    rng = np.random.default_rng(seed)
    p = GridPartition(n, k)
    d = choose_gap_parameter(n, density_per_row)
    global_m = gap_uniform_csr(n, n, d, rng)
    return global_m, p, p.split_matrix(global_m), rng.normal(size=n)


class TestDataPlanesEndToEnd:
    """The same two-node SpMV under both planes: copies vs no copies."""

    def _run(self, tmp_path, iterations=3):
        global_m, p, blocks, x0 = make_problem()
        result = build_iterated_spmv(
            blocks, p.split_vector(x0), iterations=iterations, n_nodes=2)
        eng = DOoCEngine(n_nodes=2, workers_per_node=2, scratch_dir=tmp_path)
        try:
            report = eng.run(result.program, timeout=120)
            got = result.fetch_final(eng)
        finally:
            eng.cleanup()
        want = iterated_spmv_reference(global_m, x0, iterations)
        np.testing.assert_allclose(got, want, rtol=1e-9)
        return report

    @staticmethod
    def _total(report, name):
        return sum(per.get(name, 0) for per in report.metrics.values())

    def test_zerocopy_plane_copies_nothing_and_caches_decodes(self, tmp_path):
        report = self._run(tmp_path)
        # Single-block arrays end to end: loads, peer serves and task
        # inputs are all served as views, so the deterministic copy
        # counter stays at zero.
        assert self._total(report, "bytes_copied") == 0
        # Each sub-matrix is decoded once, then hit on every later task.
        assert self._total(report, "opcache_hits") > 0

    def test_legacy_plane_restores_copies_and_disables_cache(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv(DATA_PLANE_ENV, "legacy")
        report = self._run(tmp_path)
        assert self._total(report, "bytes_copied") > 0
        assert self._total(report, "opcache_hits") == 0
        assert self._total(report, "opcache_misses") == 0


class TestOpcacheConcurrentPut:
    """Accounting under racing put()s of the same key must not drift.

    Two workers that miss on the same operand both decode and both
    put() — the second insert must replace the first and subtract its
    size, or ``in_use`` creeps up until the cache stops accepting
    entries it has room for.
    """

    def test_racing_reinserts_keep_in_use_exact(self):
        import threading

        cache = DecodedOperandCache(budget_bytes=10_000)
        keys = [("a", (1,)), ("b", (2,)), ("c", (3,))]
        stop = threading.Event()
        errors = []

        def hammer(seed):
            rng = np.random.default_rng(seed)
            try:
                while not stop.is_set():
                    array, gens = keys[rng.integers(len(keys))]
                    cache.put(array, gens, object(),
                              int(rng.integers(1, 2_000)))
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(s,))
                   for s in range(4)]
        for t in threads:
            t.start()
        import time
        time.sleep(0.3)
        stop.set()
        for t in threads:
            t.join()
        assert not errors
        with cache._lock:
            exact = sum(nbytes for _, nbytes in cache._entries.values())
        assert cache.in_use == exact
        assert 0 <= cache.in_use <= cache.budget
        # Re-inserting every key at a known size converges exactly.
        for array, gens in keys:
            cache.put(array, gens, object(), 100)
        assert cache.in_use == 100 * len(keys)
        cache.clear()
        assert cache.in_use == 0


class TestAvailableCpus:
    """The worker default must honor affinity masks, not just cpu_count."""

    def test_affinity_mask_preferred(self, monkeypatch):
        import os

        from repro.core.engine import _available_cpus

        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1, 2},
                            raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        assert _available_cpus() == 3
        assert default_worker_count() == 3

    def test_cpu_count_fallback_when_no_affinity(self, monkeypatch):
        import os

        from repro.core.engine import _available_cpus

        def boom(pid):
            raise AttributeError("no sched_getaffinity here")

        monkeypatch.setattr(os, "sched_getaffinity", boom, raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 6)
        assert _available_cpus() == 6
        assert default_worker_count() == 6

    def test_bounds_still_apply(self, monkeypatch):
        import os

        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0},
                            raising=False)
        assert default_worker_count() == 2  # floor: compute/copy overlap
        monkeypatch.setattr(os, "sched_getaffinity",
                            lambda pid: set(range(32)), raising=False)
        assert default_worker_count() == 8  # cap: glue-code contention
