"""Integration tests: full DOoC engine runs on real threads and real files."""

import numpy as np
import pytest

from repro.core import DOoCEngine, DoocError, Program
from repro.core.task import TaskSpec


def scale_fn(factor):
    def fn(ins, outs, meta):
        (in_name,) = list(ins)
        (out_name,) = list(outs)
        outs[out_name][:] = ins[in_name] * factor
    return fn


def add_fn(ins, outs, meta):
    (out_name,) = list(outs)
    total = None
    for arr in ins.values():
        total = arr.astype(float) if total is None else total + arr
    outs[out_name][:] = total


class TestSingleNode:
    def test_one_task_round_trip(self, tmp_path):
        prog = Program("p", default_block_elems=64)
        x = np.arange(100, dtype=float)
        prog.initial_array("x", x)
        prog.array("y", 100)
        prog.add_task("scale", scale_fn(3.0), ["x"], ["y"])
        eng = DOoCEngine(n_nodes=1, workers_per_node=2, scratch_dir=tmp_path)
        report = eng.run(prog, timeout=60)
        np.testing.assert_allclose(eng.fetch("y"), 3.0 * x)
        assert report.assignment == {"scale": 0}

    def test_chain_of_tasks(self, tmp_path):
        prog = Program("chain", default_block_elems=64)
        x = np.ones(50)
        prog.initial_array("a0", x)
        for i in range(5):
            prog.array(f"a{i+1}", 50)
            prog.add_task(f"t{i}", scale_fn(2.0), [f"a{i}"], [f"a{i+1}"])
        eng = DOoCEngine(n_nodes=1, scratch_dir=tmp_path)
        eng.run(prog, timeout=60)
        np.testing.assert_allclose(eng.fetch("a5"), 32.0 * x)

    def test_diamond_dependency(self, tmp_path):
        prog = Program("diamond", default_block_elems=64)
        prog.initial_array("x", np.full(10, 1.0))
        prog.array("l", 10)
        prog.array("r", 10)
        prog.array("out", 10)
        prog.add_task("left", scale_fn(2.0), ["x"], ["l"])
        prog.add_task("right", scale_fn(3.0), ["x"], ["r"])
        prog.add_task("join", add_fn, ["l", "r"], ["out"])
        eng = DOoCEngine(n_nodes=1, workers_per_node=2, scratch_dir=tmp_path)
        eng.run(prog, timeout=60)
        np.testing.assert_allclose(eng.fetch("out"), np.full(10, 5.0))

    def test_multi_block_arrays(self, tmp_path):
        prog = Program("blocks", default_block_elems=16)  # 7 blocks
        x = np.arange(100, dtype=float)
        prog.initial_array("x", x)
        prog.array("y", 100, block_elems=16)
        prog.add_task("scale", scale_fn(-1.0), ["x"], ["y"])
        eng = DOoCEngine(n_nodes=1, scratch_dir=tmp_path)
        eng.run(prog, timeout=60)
        np.testing.assert_allclose(eng.fetch("y"), -x)

    def test_out_of_core_spills_under_tiny_budget(self, tmp_path):
        # 8 arrays of 32 KiB with a 64 KiB budget: must spill/load.
        n = 4096
        prog = Program("ooc", default_block_elems=n)
        x = np.arange(n, dtype=float)
        prog.initial_array("a0", x)
        for i in range(8):
            prog.array(f"a{i+1}", n)
            prog.add_task(f"t{i}", scale_fn(1.0), [f"a{i}"], [f"a{i+1}"])
        eng = DOoCEngine(
            n_nodes=1, workers_per_node=1,
            memory_budget_per_node=64 * 1024 + 1024,
            scratch_dir=tmp_path,
        )
        report = eng.run(prog, timeout=120)
        np.testing.assert_allclose(eng.fetch("a8"), x)
        assert report.total_spills > 0
        assert report.store_stats[0].loads > 0

    def test_fetch_unknown_array_rejected(self, tmp_path):
        prog = Program("p", default_block_elems=64)
        prog.initial_array("x", np.ones(4))
        prog.array("y", 4)
        prog.add_task("t", scale_fn(1.0), ["x"], ["y"])
        eng = DOoCEngine(n_nodes=1, scratch_dir=tmp_path)
        eng.run(prog, timeout=60)
        with pytest.raises(DoocError, match="unknown array"):
            eng.fetch("ghost")

    def test_task_error_propagates(self, tmp_path):
        def boom(ins, outs, meta):
            raise ValueError("bad kernel")

        prog = Program("err", default_block_elems=64)
        prog.initial_array("x", np.ones(4))
        prog.array("y", 4)
        prog.add_task("t", boom, ["x"], ["y"])
        eng = DOoCEngine(n_nodes=1, scratch_dir=tmp_path)
        with pytest.raises(Exception):
            eng.run(prog, timeout=60)


class TestMultiNode:
    def test_cross_node_fetch(self, tmp_path):
        """Producer on node 0, consumer pulled to node 1 by data affinity."""
        def head_sum(ins, outs, meta):
            outs["y"][:] = ins["x"] + ins["big1"][:32]

        prog = Program("cross", default_block_elems=64)
        prog.initial_array("x", np.full(32, 2.0), home=0)
        prog.initial_array("big1", np.ones(4096), home=1)  # anchor node 1
        prog.array("y", 32)
        prog.add_task("consume", head_sum, ["x", "big1"], ["y"])
        # consume reads x (node 0, 256 B) and big1 (node 1, 32 KB):
        # affinity places it on node 1, forcing a remote fetch of x.
        eng = DOoCEngine(n_nodes=2, scratch_dir=tmp_path)
        report = eng.run(prog, timeout=60)
        assert report.assignment["consume"] == 1
        assert report.total_remote_fetches >= 1
        np.testing.assert_allclose(eng.fetch("y"), np.full(32, 3.0))

    def test_parallel_independent_tasks_spread(self, tmp_path):
        prog = Program("spread", default_block_elems=64)
        for i in range(4):
            prog.initial_array(f"x{i}", np.full(16, float(i)), home=i % 2)
            prog.array(f"y{i}", 16)
            prog.add_task(f"t{i}", scale_fn(10.0), [f"x{i}"], [f"y{i}"])
        eng = DOoCEngine(n_nodes=2, scratch_dir=tmp_path)
        report = eng.run(prog, timeout=60)
        assert {report.assignment[f"t{i}"] for i in range(4)} == {0, 1}
        for i in range(4):
            np.testing.assert_allclose(eng.fetch(f"y{i}"), np.full(16, 10.0 * i))

    def test_reduction_across_nodes(self, tmp_path):
        """partials on 3 nodes, summed on one: the SpMV reduce pattern."""
        prog = Program("reduce", default_block_elems=64)
        n = 128
        expected = np.zeros(n)
        for i in range(3):
            data = np.full(n, float(i + 1))
            expected += data
            prog.initial_array(f"p{i}", data, home=i)
        prog.array("total", n)
        prog.add_task("sum", add_fn, ["p0", "p1", "p2"], ["total"])
        eng = DOoCEngine(n_nodes=3, scratch_dir=tmp_path)
        report = eng.run(prog, timeout=60)
        np.testing.assert_allclose(eng.fetch("total"), expected)
        # Two of the three inputs had to cross nodes.
        assert report.total_remote_fetches >= 2

    def test_deterministic_results_across_seeds(self, tmp_path):
        """The directory RNG must not affect results."""
        def build():
            prog = Program("det", default_block_elems=32)
            prog.initial_array("a", np.arange(64, dtype=float), home=0)
            prog.initial_array("b", np.arange(64, dtype=float) * 2, home=1)
            prog.array("s", 64)
            prog.add_task("sum", add_fn, ["a", "b"], ["s"])
            return prog

        out = []
        for seed in [0, 1]:
            eng = DOoCEngine(n_nodes=2, scratch_dir=tmp_path / str(seed),
                             rng_seed=seed)
            eng.run(build(), timeout=60)
            out.append(eng.fetch("s"))
        np.testing.assert_array_equal(out[0], out[1])


class TestSplitTasks:
    @staticmethod
    def _range_splitter(parent, parts):
        """Split a 1-in/1-out elementwise task into row ranges."""
        out = parent.outputs[0]
        length = parent.meta["length"]
        bounds = np.linspace(0, length, parts + 1).astype(int)
        subs = []
        for k in range(parts):
            lo, hi = int(bounds[k]), int(bounds[k + 1])
            if lo == hi:
                continue
            subs.append(TaskSpec(
                name=f"{parent.name}#{k}",
                fn=parent.fn,
                inputs=parent.inputs,
                outputs=parent.outputs,
                meta={"parent": parent.name,
                      "out_ranges": {out: (lo, hi)},
                      "length": length},
            ))
        return subs

    def test_split_task_fills_workers(self, tmp_path):
        n = 256

        def ranged_scale(ins, outs, meta):
            (out_name,) = list(outs)
            lo, hi = meta.get("out_ranges", {}).get(out_name, (0, n))
            outs[out_name][:] = ins["x"][lo:hi] * 5.0

        prog = Program("split", default_block_elems=32)
        prog.initial_array("x", np.arange(n, dtype=float))
        prog.array("y", n, block_elems=32)
        prog.add_task("scale", ranged_scale, ["x"], ["y"],
                      splittable=True, splitter=self._range_splitter, length=n)
        eng = DOoCEngine(n_nodes=1, workers_per_node=4, scratch_dir=tmp_path)
        eng.run(prog, timeout=60)
        np.testing.assert_allclose(eng.fetch("y"), np.arange(n) * 5.0)


class TestIteratedPattern:
    def test_iterated_axpy_like_chain_multi_node(self, tmp_path):
        """An iterated per-part update with cross-part mixing: the shape of
        iterated SpMV without the matrix."""
        parts, n, iters = 2, 64, 3
        prog = Program("iter", default_block_elems=64)
        vals = {}
        for p in range(parts):
            data = np.full(n, float(p + 1))
            vals[p] = data
            prog.initial_array(f"x0_{p}", data, home=p)
        for i in range(1, iters + 1):
            prev = {p: vals[p] for p in range(parts)}
            for p in range(parts):
                prog.array(f"x{i}_{p}", n)
                prog.add_task(
                    f"mix_{i}_{p}", add_fn,
                    [f"x{i-1}_{q}" for q in range(parts)],
                    [f"x{i}_{p}"],
                )
                vals[p] = sum(prev.values())
        eng = DOoCEngine(n_nodes=2, workers_per_node=2, scratch_dir=tmp_path)
        eng.run(prog, timeout=120)
        for p in range(parts):
            np.testing.assert_allclose(eng.fetch(f"x{iters}_{p}"), vals[p])


class TestValidation:
    def test_duplicate_array_rejected(self):
        prog = Program("p")
        prog.array("x", 10)
        with pytest.raises(DoocError, match="twice"):
            prog.array("x", 10)

    def test_task_undeclared_array_rejected(self):
        prog = Program("p")
        with pytest.raises(DoocError, match="undeclared"):
            prog.add_task("t", None, ["ghost"], [])

    def test_initial_array_must_be_1d(self):
        prog = Program("p")
        with pytest.raises(DoocError, match="1-D"):
            prog.initial_array("m", np.zeros((2, 2)))

    def test_bad_home_rejected_at_run(self, tmp_path):
        prog = Program("p", default_block_elems=8)
        prog.initial_array("x", np.ones(4), home=7)
        prog.array("y", 4)
        prog.add_task("t", scale_fn(1.0), ["x"], ["y"])
        eng = DOoCEngine(n_nodes=2, scratch_dir=tmp_path)
        with pytest.raises(DoocError, match="homed on node"):
            eng.run(prog)

    def test_engine_param_validation(self):
        with pytest.raises(DoocError):
            DOoCEngine(n_nodes=0)
        with pytest.raises(DoocError):
            DOoCEngine(workers_per_node=0)
