"""Property-based tests across modules: counting, serialization, DES
determinism, dataflow fuzz."""

import itertools

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ci.ho_basis import ho_states_up_to, minimal_quanta
from repro.ci.mscheme import SpeciesCounter
from repro.datacutter import (
    END_OF_STREAM,
    DataBuffer,
    DistributionPolicy,
    Filter,
    Layout,
    ThreadedRuntime,
)
from repro.sim import Environment, FlowNetwork, Link
from repro.spmv.csr import CSRBlock
from repro.spmv.csrfile import deserialize_csr, serialize_csr
from repro.util.rng import spawn


# ---------------------------------------------------------------------------
# M-scheme counting vs brute force over random parameters
# ---------------------------------------------------------------------------

@given(
    particles=st.integers(1, 3),
    extra_quanta=st.integers(0, 2),
)
@settings(max_examples=15, deadline=None)
def test_species_counter_totals_match_combinatorics(particles, extra_quanta):
    """Summing the DP grid over all (q, m) must equal C(#states, particles)
    restricted to q <= max_quanta — verified by direct enumeration."""
    max_quanta = minimal_quanta(particles) + extra_quanta
    counter = SpeciesCounter(particles, max_quanta)
    states = ho_states_up_to(max_quanta)
    brute = 0
    for combo in itertools.combinations(states, particles):
        if sum(s.quanta for s in combo) <= max_quanta:
            brute += 1
    total = int(counter.counts_matrix().sum())
    assert total == brute


# ---------------------------------------------------------------------------
# CSR serialization round-trip over random matrices
# ---------------------------------------------------------------------------

@st.composite
def csr_blocks(draw):
    nrows = draw(st.integers(0, 12))
    ncols = draw(st.integers(1, 12))
    rows = []
    indptr = [0]
    for _ in range(nrows):
        cols = draw(st.lists(st.integers(0, ncols - 1), unique=True,
                             max_size=ncols))
        cols.sort()
        rows.extend(cols)
        indptr.append(len(rows))
    values = draw(st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        min_size=len(rows), max_size=len(rows)))
    return CSRBlock(
        nrows=nrows, ncols=ncols,
        indptr=np.array(indptr, dtype=np.int64),
        indices=np.array(rows, dtype=np.int64),
        values=np.array(values, dtype=np.float64),
    )


@given(csr_blocks())
@settings(max_examples=100, deadline=None)
def test_csr_serialize_round_trip(block):
    back = deserialize_csr(serialize_csr(block))
    assert back.shape == block.shape
    np.testing.assert_array_equal(back.indptr, block.indptr)
    np.testing.assert_array_equal(back.indices, block.indices)
    np.testing.assert_array_equal(back.values, block.values)


# ---------------------------------------------------------------------------
# DES determinism: same seed -> identical completion schedule
# ---------------------------------------------------------------------------

@given(seed=st.integers(0, 1000), n_flows=st.integers(1, 10))
@settings(max_examples=40, deadline=None)
def test_flow_network_schedule_is_deterministic(seed, n_flows):
    def schedule():
        env = Environment()
        net = FlowNetwork(env)
        shared = Link("shared", 10.0)
        rng = spawn(seed, "flows")
        log = []

        def go(i, delay, size):
            yield env.timeout(delay)
            yield net.transfer([shared], size)
            log.append((i, env.now))

        for i in range(n_flows):
            env.process(go(i, float(rng.uniform(0, 5)),
                           float(rng.uniform(1, 100))))
        env.run()
        return log

    assert schedule() == schedule()


# ---------------------------------------------------------------------------
# DataCutter fuzz: random pipelines must conserve items
# ---------------------------------------------------------------------------

class _Src(Filter):
    outputs = ("out",)

    def __init__(self, items):
        self.items = items

    def process(self, ctx):
        for x in self.items:
            ctx.write("out", DataBuffer(x, {"key": x % 7}))


class _Pass(Filter):
    inputs = ("in",)
    outputs = ("out",)

    def process(self, ctx):
        while True:
            buf = ctx.read("in")
            if buf is END_OF_STREAM:
                return
            ctx.write("out", buf)


class _Sink(Filter):
    inputs = ("in",)

    def __init__(self, out):
        self.out = out

    def process(self, ctx):
        while True:
            buf = ctx.read("in")
            if buf is END_OF_STREAM:
                return
            self.out.append(buf.payload)


@given(
    n_items=st.integers(0, 60),
    stage_instances=st.lists(st.integers(1, 4), min_size=1, max_size=3),
    capacity=st.integers(1, 8),
    policy=st.sampled_from([DistributionPolicy.ROUND_ROBIN,
                            DistributionPolicy.HASH]),
)
@settings(max_examples=25, deadline=None)
def test_random_pipelines_conserve_items(n_items, stage_instances, capacity,
                                         policy):
    sink: list = []
    layout = Layout("fuzz")
    layout.add_filter("src", lambda: _Src(list(range(n_items))))
    prev = "src"
    for si, inst in enumerate(stage_instances):
        name = f"s{si}"
        layout.add_filter(name, _Pass, instances=inst, replicable=True)
        layout.connect(prev, "out", name, "in", capacity=capacity,
                       policy=policy, hash_key="key" if
                       policy is DistributionPolicy.HASH else None)
        prev = name
    layout.add_filter("sink", lambda: _Sink(sink))
    layout.connect(prev, "out", "sink", "in", capacity=capacity)
    ThreadedRuntime(layout).run(timeout=60)
    assert sorted(sink) == list(range(n_items))
