"""Cooperative cancellation of engine runs, and the two-engine fix.

The cancel protocol must preserve the wind-down invariant: storage
filters drain only after every worker everywhere is idle.  So a
cancelled run is certified exactly as hard as a completed one — ticket
audits clean, leases released, /dev/shm empty — and it must *never*
surface as a watchdog ``StallError``.
"""

import os
import threading
import time

import numpy as np
import pytest

from repro.core.cancel import CancelToken
from repro.core.engine import DOoCEngine, Program
from repro.core.errors import RunCancelled


def _shm_litter():
    return [f for f in os.listdir("/dev/shm") if f.startswith("dooc-")]


def slow_fn(delay):
    def fn(ins, outs, meta):
        time.sleep(delay)
        (name, out), = outs.items()
        src = next(iter(ins.values()))
        out[:] = src
    return fn


def copy_fn(ins, outs, meta):
    (name, out), = outs.items()
    out[:] = next(iter(ins.values()))


def _chain_program(n_tasks, n=256, delay=0.0, name="chain"):
    prog = Program(name, default_block_elems=n)
    prog.initial_array("a0", np.arange(n, dtype=float))
    fn = slow_fn(delay) if delay else copy_fn
    for i in range(n_tasks):
        prog.array(f"a{i + 1}", n)
        prog.add_task(f"t{i}", fn, [f"a{i}"], [f"a{i + 1}"])
    return prog


def _cancel_after(token, delay):
    t = threading.Timer(delay, token.cancel, kwargs={"reason": "test"})
    t.start()
    return t


class TestCancelToken:
    def test_first_cancel_wins(self):
        tok = CancelToken()
        assert not tok.cancelled
        assert tok.cancel("first") is True
        assert tok.cancel("second") is False
        assert tok.cancelled
        assert tok.reason == "first"

    def test_wait(self):
        tok = CancelToken()
        assert tok.wait(0.01) is False
        tok.cancel()
        assert tok.wait(0.01) is True
        assert tok.reason == "cancelled"


class TestEngineCancellation:
    def test_pre_cancelled_token_runs_nothing(self, tmp_path,
                                              protocol_checkers):
        tok = CancelToken()
        tok.cancel("before start")
        eng = DOoCEngine(n_nodes=1, scratch_dir=tmp_path)
        try:
            with pytest.raises(RunCancelled, match="before start"):
                eng.run(_chain_program(4), timeout=30, cancel=tok)
        finally:
            eng.cleanup()
        assert _shm_litter() == []

    def test_cancel_during_execution(self, tmp_path, protocol_checkers):
        # 60 tasks x 30 ms >> the 0.15 s cancel point: the run must stop
        # long before it would finish, with a clean audit.
        tok = CancelToken()
        eng = DOoCEngine(n_nodes=2, workers_per_node=1,
                         scratch_dir=tmp_path)
        timer = _cancel_after(tok, 0.15)
        t0 = time.monotonic()
        try:
            with pytest.raises(RunCancelled, match="test"):
                eng.run(_chain_program(60, delay=0.03), timeout=60,
                        cancel=tok)
        finally:
            timer.cancel()
            eng.cleanup()
        assert time.monotonic() - t0 < 10.0  # cancelled, not timed out
        assert _shm_litter() == []

    def test_cancel_during_spill_pressure(self, tmp_path,
                                          protocol_checkers):
        # A 64 KiB budget forces constant spill/load traffic around the
        # cancel point (the storage filter must still drain cleanly).
        n = 4096
        tok = CancelToken()
        eng = DOoCEngine(n_nodes=1, workers_per_node=1,
                         memory_budget_per_node=64 * 1024 + 1024,
                         scratch_dir=tmp_path)
        timer = _cancel_after(tok, 0.05)
        try:
            with pytest.raises(RunCancelled):
                eng.run(_chain_program(40, n=n, delay=0.01, name="spill"),
                        timeout=120, cancel=tok)
        finally:
            timer.cancel()
            eng.cleanup()
        assert _shm_litter() == []

    def test_cancelled_flag_after_completion_is_harmless(self, tmp_path):
        # A token set *after* the DAG completed must not fail the run.
        tok = CancelToken()
        eng = DOoCEngine(n_nodes=1, scratch_dir=tmp_path)
        try:
            eng.run(_chain_program(3), timeout=30, cancel=tok)
            tok.cancel("too late")
            np.testing.assert_allclose(eng.fetch("a3"),
                                       np.arange(256, dtype=float))
        finally:
            eng.cleanup()

    def test_run_without_token_unaffected(self, tmp_path):
        eng = DOoCEngine(n_nodes=1, scratch_dir=tmp_path)
        try:
            report = eng.run(_chain_program(3), timeout=30)
            assert report.wall_seconds > 0
            np.testing.assert_allclose(eng.fetch("a3"),
                                       np.arange(256, dtype=float))
        finally:
            eng.cleanup()

    def test_cancel_process_plane(self, tmp_path, protocol_checkers):
        tok = CancelToken()
        eng = DOoCEngine(n_nodes=1, workers_per_node=1,
                         worker_plane="process", scratch_dir=tmp_path)
        timer = _cancel_after(tok, 0.2)
        try:
            with pytest.raises(RunCancelled):
                eng.run(_chain_program(60, delay=0.03, name="proc"),
                        timeout=120, cancel=tok)
        finally:
            timer.cancel()
            eng.cleanup()
        assert _shm_litter() == []


class TestTwoEnginesOneProcess:
    def test_concurrent_engines_do_not_collide(self, tmp_path,
                                               protocol_checkers):
        """Two engines in one process used to race on /dev/shm segment
        names (both derived them from the pid alone); the instance-id +
        run-seq tag makes concurrent runs disjoint."""
        results: dict[int, np.ndarray] = {}
        errors: list[BaseException] = []

        def drive(idx):
            eng = DOoCEngine(n_nodes=2, workers_per_node=2,
                             scratch_dir=tmp_path / f"e{idx}")
            try:
                for rep in range(2):  # exercise the run-seq part too
                    eng.run(_chain_program(12, name=f"p{idx}-{rep}"),
                            timeout=60)
                results[idx] = eng.fetch("a12")
            except BaseException as exc:  # noqa: BLE001 - collected
                errors.append(exc)
            finally:
                eng.cleanup()

        threads = [threading.Thread(target=drive, args=(i,))
                   for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors
        want = np.arange(256, dtype=float)
        np.testing.assert_allclose(results[0], want)
        np.testing.assert_allclose(results[1], want)
        assert _shm_litter() == []

    def test_engine_segment_tags_are_unique(self):
        e1 = DOoCEngine(n_nodes=1)
        e2 = DOoCEngine(n_nodes=1)
        try:
            assert e1._engine_id != e2._engine_id
        finally:
            e1.cleanup()
            e2.cleanup()
