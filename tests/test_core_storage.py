"""Unit tests for the DOoC storage layer state machine."""

import numpy as np
import pytest

from repro.core.array import ArrayDesc
from repro.core.errors import ImmutabilityError, StorageError, UnknownArrayError
from repro.core.interval import Interval, intervals_for_range, whole_array, whole_block
from repro.core.storage import LocalStore


def desc(name="a", length=100, block=50, dtype="float64"):
    return ArrayDesc(name, length=length, block_elems=block, dtype=dtype)


class TestArrayDesc:
    def test_block_geometry(self):
        d = desc(length=100, block=30)
        assert d.n_blocks == 4
        assert d.block_bounds(0) == (0, 30)
        assert d.block_bounds(3) == (90, 100)  # short tail block
        assert d.block_length(3) == 10
        assert d.block_nbytes(3) == 80
        assert d.block_of(89) == 2
        assert d.block_of(90) == 3

    def test_validation(self):
        with pytest.raises(StorageError):
            ArrayDesc("", length=1)
        with pytest.raises(StorageError):
            ArrayDesc("x", length=0)
        with pytest.raises(StorageError):
            ArrayDesc("x", length=1, block_elems=0)
        with pytest.raises(TypeError):
            ArrayDesc("x", length=1, dtype="not-a-dtype")
        d = desc()
        with pytest.raises(StorageError):
            d.block_bounds(2)
        with pytest.raises(StorageError):
            d.block_of(100)


class TestIntervals:
    def test_whole_block_and_array(self):
        d = desc(length=100, block=30)
        iv = whole_block(d, 3)
        assert (iv.lo, iv.hi) == (90, 100)
        assert len(whole_array(d)) == 4

    def test_interval_cannot_span_blocks(self):
        d = desc(length=100, block=30)
        bad = Interval("a", 0, 10, 40)
        with pytest.raises(StorageError, match="escapes block"):
            bad.validate_against(d)

    def test_intervals_for_range_splits_on_blocks(self):
        d = desc(length=100, block=30)
        ivs = intervals_for_range(d, 25, 95)
        assert [(iv.block, iv.lo, iv.hi) for iv in ivs] == [
            (0, 25, 30),
            (1, 30, 60),
            (2, 60, 90),
            (3, 90, 95),
        ]

    def test_intervals_for_range_validation(self):
        d = desc()
        with pytest.raises(StorageError):
            intervals_for_range(d, 10, 10)
        with pytest.raises(StorageError):
            intervals_for_range(d, 0, 101)

    def test_empty_interval_rejected(self):
        with pytest.raises(StorageError):
            Interval("a", 0, 5, 5)

    def test_local_slice(self):
        d = desc(length=100, block=30)
        iv = Interval("a", 1, 35, 50)
        assert iv.local_slice(d) == slice(5, 20)


def effects_of_kind(effects, kind):
    return [e for e in effects if e.kind == kind]


def write_whole_array(store, d, value_fn=lambda i: float(i)):
    """Helper: write and release every block of d through the store.

    Serves any spill effects synchronously so grants queued behind memory
    reclamation are delivered.
    """
    for iv in whole_array(d):
        ticket, effects = store.request_write(iv)
        while not ticket.granted:
            spills = effects_of_kind(effects, "spill")
            assert spills, "write grant is stuck without a pending spill"
            effects = [
                e
                for s in spills
                for e in store.on_spilled(s.array, s.block)
            ]
        ticket.data[:] = [value_fn(i) for i in range(iv.lo, iv.hi)]
        store.release(ticket)


class TestWriteOnceSemantics:
    def test_write_then_read_round_trip(self):
        d = desc()
        store = LocalStore(0, memory_budget=10**6)
        store.create_array(d)
        write_whole_array(store, d)
        iv = whole_block(d, 1)
        ticket, effects = store.request_read(iv)
        [grant] = effects_of_kind(effects, "grant_read")
        assert grant.ticket is ticket
        np.testing.assert_allclose(ticket.data, np.arange(50, 100, dtype=float))
        store.release(ticket)

    def test_read_view_is_read_only(self):
        d = desc()
        store = LocalStore(0, memory_budget=10**6)
        store.create_array(d)
        write_whole_array(store, d)
        ticket, _ = store.request_read(whole_block(d, 0))
        with pytest.raises(ValueError):
            ticket.data[0] = 99.0

    def test_double_write_same_range_rejected(self):
        d = desc()
        store = LocalStore(0, memory_budget=10**6)
        store.create_array(d)
        iv = Interval("a", 0, 0, 10)
        t, _ = store.request_write(iv)
        t.data[:] = 1.0
        store.release(t)
        with pytest.raises(ImmutabilityError):
            store.request_write(Interval("a", 0, 5, 15))

    def test_concurrent_overlapping_write_tickets_rejected(self):
        d = desc()
        store = LocalStore(0, memory_budget=10**6)
        store.create_array(d)
        store.request_write(Interval("a", 0, 0, 10))
        with pytest.raises(ImmutabilityError):
            store.request_write(Interval("a", 0, 9, 20))

    def test_disjoint_writes_to_same_block_allowed(self):
        d = desc()
        store = LocalStore(0, memory_budget=10**6)
        store.create_array(d)
        t1, _ = store.request_write(Interval("a", 0, 0, 25))
        t2, _ = store.request_write(Interval("a", 0, 25, 50))
        t1.data[:] = 1.0
        t2.data[:] = 2.0
        store.release(t1)
        store.release(t2)
        ticket, effects = store.request_read(whole_block(d, 0))
        assert effects_of_kind(effects, "grant_read")
        assert float(ticket.data[0]) == 1.0 and float(ticket.data[49]) == 2.0

    def test_write_to_sealed_block_rejected(self):
        d = desc(length=10, block=10)
        store = LocalStore(0, memory_budget=10**6)
        store.create_array(d)
        write_whole_array(store, d)
        with pytest.raises(ImmutabilityError):
            store.request_write(Interval("a", 0, 0, 1))

    def test_read_before_write_blocks_until_release(self):
        d = desc(length=10, block=10)
        store = LocalStore(0, memory_budget=10**6)
        store.create_array(d)
        iv = whole_block(d, 0)
        rt, effects = store.request_read(iv)
        assert effects == []  # not granted yet
        wt, _ = store.request_write(iv)
        wt.data[:] = 7.0
        effects = store.release(wt)
        [grant] = effects_of_kind(effects, "grant_read")
        assert grant.ticket is rt
        assert float(rt.data[3]) == 7.0

    def test_partial_write_release_grants_covered_reads_only(self):
        d = desc(length=10, block=10)
        store = LocalStore(0, memory_budget=10**6)
        store.create_array(d)
        r_lo, e = store.request_read(Interval("a", 0, 0, 5))
        assert e == []
        r_hi, e = store.request_read(Interval("a", 0, 5, 10))
        assert e == []
        w, _ = store.request_write(Interval("a", 0, 0, 5))
        w.data[:] = 1.0
        effects = store.release(w)
        grants = effects_of_kind(effects, "grant_read")
        assert [g.ticket for g in grants] == [r_lo]  # r_hi still waiting

    def test_release_twice_rejected(self):
        d = desc()
        store = LocalStore(0, memory_budget=10**6)
        store.create_array(d)
        t, _ = store.request_write(Interval("a", 0, 0, 10))
        store.release(t)
        with pytest.raises(StorageError, match="twice"):
            store.release(t)

    def test_release_before_grant_rejected(self):
        d = desc(length=10, block=10)
        store = LocalStore(0, memory_budget=10**6)
        store.create_array(d)
        rt, _ = store.request_read(whole_block(d, 0))  # blocked on write
        with pytest.raises(StorageError, match="before being granted"):
            store.release(rt)

    def test_unknown_array_rejected(self):
        store = LocalStore(0, memory_budget=10**6)
        with pytest.raises(UnknownArrayError):
            store.request_read(Interval("ghost", 0, 0, 1))

    def test_duplicate_create_rejected(self):
        store = LocalStore(0, memory_budget=10**6)
        store.create_array(desc())
        with pytest.raises(StorageError, match="already exists"):
            store.create_array(desc())


class TestOutOfCore:
    """Loads, spills, eviction, prefetch."""

    def make(self, budget_blocks=2, n_blocks=4):
        # Each block: 50 float64 = 400 bytes.
        d = desc(length=50 * n_blocks, block=50)
        store = LocalStore(0, memory_budget=400 * budget_blocks)
        store.register_on_disk(d)
        return d, store

    def load_reply(self, store, effects, d):
        """Serve every 'load' effect with synthetic data; returns new effects."""
        out = []
        for e in effects_of_kind(effects, "load"):
            lo, hi = d.block_bounds(e.block)
            out += store.on_loaded(e.array, e.block, np.arange(lo, hi, dtype=float))
        return out

    def test_read_triggers_load(self):
        d, store = self.make()
        ticket, effects = store.request_read(whole_block(d, 2))
        [load] = effects_of_kind(effects, "load")
        assert (load.array, load.block) == ("a", 2)
        effects = self.load_reply(store, effects, d)
        [grant] = effects_of_kind(effects, "grant_read")
        assert grant.ticket is ticket
        np.testing.assert_allclose(ticket.data, np.arange(100, 150, dtype=float))
        assert store.stats.loads == 1

    def test_second_read_is_a_hit(self):
        d, store = self.make()
        t1, effects = store.request_read(whole_block(d, 0))
        self.load_reply(store, effects, d)
        store.release(t1)
        t2, effects = store.request_read(whole_block(d, 0))
        assert effects_of_kind(effects, "grant_read")
        assert store.stats.read_hits == 1
        assert store.stats.loads == 1

    def test_lru_eviction_of_clean_blocks(self):
        d, store = self.make(budget_blocks=2)
        # Touch blocks 0, 1 (fills budget), then 2 -> evicts 0 (LRU).
        for b in [0, 1]:
            t, effects = store.request_read(whole_block(d, b))
            self.load_reply(store, effects, d)
            store.release(t)
        t, effects = store.request_read(whole_block(d, 2))
        drops = effects_of_kind(effects, "drop")
        assert [(e.array, e.block) for e in drops] == [("a", 0)]
        assert store.stats.drops == 1
        assert store.in_use <= store.budget

    def test_lru_order_respects_recency(self):
        d, store = self.make(budget_blocks=2)
        for b in [0, 1]:
            t, effects = store.request_read(whole_block(d, b))
            self.load_reply(store, effects, d)
            store.release(t)
        # Touch 0 again so 1 becomes LRU.
        t, effects = store.request_read(whole_block(d, 0))
        assert effects_of_kind(effects, "grant_read")
        store.release(t)
        _, effects = store.request_read(whole_block(d, 2))
        [drop] = effects_of_kind(effects, "drop")
        assert drop.block == 1

    def test_pinned_blocks_never_evicted(self):
        d, store = self.make(budget_blocks=2)
        t0, effects = store.request_read(whole_block(d, 0))
        self.load_reply(store, effects, d)  # keep t0 granted, not released
        t1, effects = store.request_read(whole_block(d, 1))
        self.load_reply(store, effects, d)
        # Budget full, both pinned: next read must queue, no drops.
        t2, effects = store.request_read(whole_block(d, 2))
        assert effects_of_kind(effects, "drop") == []
        assert effects_of_kind(effects, "load") == []
        # Releasing one lets the queued load proceed.
        effects = store.release(t0)
        [load] = effects_of_kind(effects, "load")
        assert load.block == 2

    def test_dirty_block_spilled_before_drop(self):
        # Array created locally (not on disk): eviction must spill first.
        n_blocks = 3
        d = desc(length=50 * n_blocks, block=50)
        store = LocalStore(0, memory_budget=400 * 2)
        store.create_array(d)
        write_whole_array(store, d)  # 3rd write triggers reclaim of block 0
        assert store.stats.spills >= 1
        assert store.stats.bytes_spilled >= 400

    def test_spilled_block_reloadable(self):
        n_blocks = 3
        d = desc(length=150, block=50)
        store = LocalStore(0, memory_budget=800)
        store.create_array(d)
        # Manually drive: write blocks 0 and 1 (fills budget).
        for b in [0, 1]:
            t, _ = store.request_write(whole_block(d, b))
            t.data[:] = float(b)
            store.release(t)
        # Write block 2: must spill block 0 first.
        t2, effects = store.request_write(whole_block(d, 2))
        [spill] = effects_of_kind(effects, "spill")
        assert spill.block == 0
        assert effects_of_kind(effects, "grant_write") == []  # queued
        effects = store.on_spilled("a", 0)
        [grant] = effects_of_kind(effects, "grant_write")
        assert grant.ticket is t2
        t2.data[:] = 2.0
        store.release(t2)
        # Read block 0 back: memory is full, so an LRU spill (block 1)
        # precedes the load.
        rt, effects = store.request_read(whole_block(d, 0))
        [spill] = effects_of_kind(effects, "spill")
        assert spill.block == 1
        effects = store.on_spilled("a", 1)
        [load] = effects_of_kind(effects, "load")
        assert load.block == 0
        effects = store.on_loaded("a", 0, np.full(50, 0.0))
        [grant] = effects_of_kind(effects, "grant_read")
        assert grant.ticket is rt

    def test_prefetch_loads_without_pinning(self):
        d, store = self.make()
        effects = store.prefetch(whole_block(d, 1))
        [load] = effects_of_kind(effects, "load")
        effects = self.load_reply(store, effects, d)
        assert effects_of_kind(effects, "grant_read") == []
        # Now a read is a hit.
        _, effects = store.request_read(whole_block(d, 1))
        assert effects_of_kind(effects, "grant_read")
        assert store.stats.read_hits == 1

    def test_prefetch_idempotent_while_loading(self):
        d, store = self.make()
        e1 = store.prefetch(whole_block(d, 1))
        assert effects_of_kind(e1, "load")
        assert store.prefetch(whole_block(d, 1)) == []

    def test_prefetch_of_unwritten_local_array_is_noop(self):
        d = desc()
        store = LocalStore(0, memory_budget=10**6)
        store.create_array(d)
        assert store.prefetch(whole_block(d, 0)) == []

    def test_read_during_spill_keeps_block(self):
        d = desc(length=150, block=50)
        store = LocalStore(0, memory_budget=800)
        store.create_array(d)
        for b in [0, 1]:
            t, _ = store.request_write(whole_block(d, b))
            t.data[:] = float(b)
            store.release(t)
        t2, effects = store.request_write(whole_block(d, 2))
        [spill] = effects_of_kind(effects, "spill")
        # While block 0 is spilling, a reader shows up.
        rt, e = store.request_read(whole_block(d, 0))
        assert e == []
        effects = store.on_spilled("a", 0)
        kinds = {e.kind for e in effects}
        # Block stays resident for the reader; the queued write allocation
        # stays queued (budget still full).
        assert "grant_read" in kinds
        assert "drop" not in kinds

    def test_availability_map(self):
        d, store = self.make()
        t, effects = store.request_read(whole_block(d, 0))
        self.load_reply(store, effects, d)
        amap = store.availability_map()
        assert amap[("a", 0)] is True
        assert amap.get(("a", 1), False) is False

    def test_resident_arrays(self):
        d = desc(length=50, block=50, name="v")
        store = LocalStore(0, memory_budget=10**6)
        store.create_array(d)
        assert store.resident_arrays() == set()
        write_whole_array(store, d)
        assert store.resident_arrays() == {"v"}

    def test_delete_array_frees_memory(self):
        d, store = self.make()
        t, effects = store.request_read(whole_block(d, 0))
        self.load_reply(store, effects, d)
        store.release(t)
        used = store.in_use
        assert used > 0
        store.delete_array("a")
        assert store.in_use == 0
        assert not store.has_array("a")

    def test_delete_pinned_array_rejected(self):
        d, store = self.make()
        t, effects = store.request_read(whole_block(d, 0))
        self.load_reply(store, effects, d)
        with pytest.raises(StorageError, match="in use"):
            store.delete_array("a")


class TestRemoteArrays:
    def test_read_remote_triggers_fetch(self):
        d = desc(name="r", length=50, block=50)
        store = LocalStore(1, memory_budget=10**6)
        store.register_remote(d)
        ticket, effects = store.request_read(whole_block(d, 0))
        [fetch] = effects_of_kind(effects, "fetch_remote")
        assert (fetch.array, fetch.block) == ("r", 0)
        effects = store.on_remote_data("r", 0, np.full(50, 3.0))
        [grant] = effects_of_kind(effects, "grant_read")
        assert grant.ticket is ticket
        assert store.stats.remote_fetches == 1

    def test_cached_remote_block_dropped_not_spilled(self):
        d = desc(name="r", length=100, block=50)
        local = desc(name="l", length=100, block=50)
        store = LocalStore(1, memory_budget=800)
        store.register_remote(d)
        store.register_on_disk(local)
        t, effects = store.request_read(whole_block(d, 0))
        store.on_remote_data("r", 0, np.zeros(50))
        store.release(t)
        t, effects = store.request_read(whole_block(d, 1))
        store.on_remote_data("r", 1, np.zeros(50))
        store.release(t)
        # Budget full of remote blocks; a local load must DROP (not spill) one.
        _, effects = store.request_read(whole_block(local, 0))
        assert effects_of_kind(effects, "spill") == []
        assert [e.array for e in effects_of_kind(effects, "drop")] == ["r"]

    def test_write_to_remote_array_rejected(self):
        d = desc(name="r")
        store = LocalStore(1, memory_budget=10**6)
        store.register_remote(d)
        with pytest.raises(StorageError, match="remote-homed"):
            store.request_write(whole_block(d, 0))


class TestBudgetInvariants:
    def test_in_use_never_negative_and_bounded_by_budget_when_unpinned(self):
        d = desc(length=500, block=50)
        store = LocalStore(0, memory_budget=400 * 3)
        store.register_on_disk(d)
        rng = np.random.default_rng(0)
        for _ in range(100):
            b = int(rng.integers(0, d.n_blocks))
            t, effects = store.request_read(whole_block(d, b))
            for e in effects:
                if e.kind == "load":
                    lo, hi = d.block_bounds(e.block)
                    store.on_loaded(e.array, e.block, np.arange(lo, hi, dtype=float))
            assert store.in_use >= 0
            store.release(t)
            assert store.in_use <= store.budget
