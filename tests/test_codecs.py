"""Codec pipeline: registry, chunk container, engine/checkpoint/bench wiring.

Covers the compressed round-trip story end to end: codecs invert exactly
(per dtype, including partial blocks), torn/truncated/bit-flipped chunk
files surface as clean StorageErrors (never a garbage decode), solver
results stay bit-identical per codec with fewer bytes read off disk, and
checkpoint/restart across a codec change is refused by name.
"""

import os

import numpy as np
import pytest

from repro.core import DOoCEngine, Program
from repro.core.array import ArrayDesc
from repro.core.codecs import (
    CODEC_ENV,
    Codec,
    RawCodec,
    ShuffleZlibCodec,
    ZlibCodec,
    available_codecs,
    get_codec,
    register_codec,
    resolve_codec,
)
from repro.core.errors import (
    BlockMissingError,
    CodecError,
    CodecMismatchError,
    RecoveryError,
    StorageError,
    UnknownCodecError,
)
from repro.core.iofilter import (
    chunk_dir,
    chunk_path,
    pack_chunk,
    read_array,
    read_block,
    read_block_into,
    write_array,
    write_block,
)
from repro.obs import MetricsRegistry
from repro.recovery.checkpoint import CheckpointManager


def desc(name="a", length=100, block=40, dtype="float64", codec=None):
    return ArrayDesc(name, length=length, block_elems=block, dtype=dtype,
                     codec=codec)


class TestRegistry:
    def test_builtins_registered(self):
        assert {"raw", "zlib", "shuffle-zlib"} <= set(available_codecs())

    def test_unknown_codec_raises(self):
        with pytest.raises(UnknownCodecError):
            get_codec("snappy")

    def test_duplicate_registration_refused(self):
        with pytest.raises(CodecError):
            register_codec(RawCodec())
        register_codec(RawCodec(), replace=True)  # explicit replace is fine

    def test_desc_validates_codec(self):
        with pytest.raises(UnknownCodecError):
            desc(codec="snappy")

    def test_plugging_in_a_codec(self):
        class Xor(Codec):
            name = "test-xor"

            def encode(self, data, itemsize=1):
                return bytes(b ^ 0x5A for b in memoryview(data).cast("B"))

            def decode_into(self, payload, out, itemsize=1):
                decoded = bytes(b ^ 0x5A for b in memoryview(payload))
                if len(decoded) != len(out):
                    raise CodecError("length mismatch")
                out[:] = decoded

        register_codec(Xor(), replace=True)
        try:
            c = get_codec("test-xor")
            assert c.decode(c.encode(b"hello"), 5) == b"hello"
        finally:
            from repro.core import codecs
            codecs._REGISTRY.pop("test-xor", None)


class TestResolve:
    def test_explicit_beats_environment(self, monkeypatch):
        monkeypatch.setenv(CODEC_ENV, "zlib")
        assert resolve_codec("raw") == "raw"

    def test_environment_sampled(self, monkeypatch):
        monkeypatch.setenv(CODEC_ENV, "zlib")
        assert resolve_codec() == "zlib"
        monkeypatch.delenv(CODEC_ENV)
        assert resolve_codec() == "raw"
        monkeypatch.setenv(CODEC_ENV, "")
        assert resolve_codec() == "raw"

    def test_junk_environment_raises(self, monkeypatch):
        monkeypatch.setenv(CODEC_ENV, "snappy")
        with pytest.raises(UnknownCodecError):
            resolve_codec()

    def test_engine_snapshots_at_construction(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CODEC_ENV, "zlib")
        eng = DOoCEngine(n_nodes=1, scratch_dir=tmp_path)
        monkeypatch.setenv(CODEC_ENV, "shuffle-zlib")
        assert eng.codec == "zlib"  # construction-time snapshot holds
        eng.cleanup()

    def test_engine_explicit_codec_beats_environment(self, monkeypatch,
                                                     tmp_path):
        monkeypatch.setenv(CODEC_ENV, "zlib")
        eng = DOoCEngine(n_nodes=1, scratch_dir=tmp_path, codec="raw")
        assert eng.codec == "raw"
        eng.cleanup()


class TestRoundTrips:
    @pytest.mark.parametrize("codec", ["raw", "zlib", "shuffle-zlib"])
    @pytest.mark.parametrize("dtype", ["float64", "int32", "uint8"])
    def test_codec_inverts_exactly(self, codec, dtype):
        rng = np.random.default_rng(7)
        data = (rng.integers(0, 250, size=999).astype(dtype)
                if dtype != "float64" else rng.standard_normal(999))
        raw = data.tobytes()
        c = get_codec(codec)
        itemsize = data.dtype.itemsize
        assert c.decode(c.encode(raw, itemsize), len(raw), itemsize) == raw

    @pytest.mark.parametrize("codec", ["zlib", "shuffle-zlib"])
    def test_block_files_round_trip_with_partial_last_block(self, codec,
                                                            tmp_path):
        d = desc(length=100, block=40, codec=codec)  # last block = 20 elems
        data = np.sin(np.arange(100.0))
        write_array(tmp_path, d, data)
        assert chunk_dir(tmp_path, "a").is_dir()
        np.testing.assert_array_equal(read_array(tmp_path, d), data)
        out = np.empty(20)
        read_block_into(tmp_path, d, 2, out)
        np.testing.assert_array_equal(out, data[80:])

    def test_compressed_blocks_readable_without_desc_codec(self, tmp_path):
        # Readers self-describe from the chunk header: a desc that lost
        # its codec stamp (or carries a different one) still reads fine.
        d = desc(codec="zlib")
        data = np.arange(100.0)
        write_array(tmp_path, d, data)
        np.testing.assert_array_equal(
            read_array(tmp_path, desc(codec=None)), data)

    def test_shuffle_groups_byte_planes(self):
        data = np.arange(8, dtype="<f8").tobytes()
        shuffled = ShuffleZlibCodec._shuffle(memoryview(data), 8)
        # plane k holds byte k of every element
        assert shuffled[:8] == bytes(data[i * 8] for i in range(8))
        out = bytearray(len(data))
        ShuffleZlibCodec._unshuffle_into(shuffled, memoryview(out), 8)
        assert bytes(out) == data

    def test_shuffle_rejects_misaligned(self):
        with pytest.raises(CodecError):
            ShuffleZlibCodec().encode(b"12345", 8)

    def test_compressible_data_actually_shrinks(self, tmp_path):
        d = desc(length=5000, block=5000, codec="zlib")
        write_array(tmp_path, d, np.zeros(5000))
        assert chunk_path(tmp_path, "a", 0).stat().st_size < 5000 * 8 // 10


class TestCorruption:
    """Torn/truncated/bit-flipped compressed blocks -> clean errors."""

    def _seed(self, tmp_path, codec="zlib"):
        d = desc(length=80, block=40, codec=codec)
        write_array(tmp_path, d, np.arange(80.0))
        return d, chunk_path(tmp_path, "a", 0)

    def test_truncated_chunk_is_storage_error(self, tmp_path):
        d, p = self._seed(tmp_path)
        p.write_bytes(p.read_bytes()[:-7])
        with pytest.raises(StorageError, match="truncated"):
            read_block(tmp_path, d, 0)

    def test_bit_flip_fails_checksum(self, tmp_path):
        d, p = self._seed(tmp_path)
        blob = bytearray(p.read_bytes())
        blob[-1] ^= 0xFF
        p.write_bytes(bytes(blob))
        with pytest.raises(StorageError, match="checksum mismatch"):
            read_block(tmp_path, d, 0)

    def test_bad_magic_rejected(self, tmp_path):
        d, p = self._seed(tmp_path)
        blob = bytearray(p.read_bytes())
        blob[:8] = b"NOTCHUNK"
        p.write_bytes(bytes(blob))
        with pytest.raises(StorageError, match="bad chunk magic"):
            read_block(tmp_path, d, 0)

    def test_corrupt_payload_never_garbage_decodes(self, tmp_path):
        # Valid framing + CRC over a *wrong* payload: the codec's own
        # length/eof verification still refuses to install bytes.
        d = desc(length=40, block=40, codec="zlib")
        blob = pack_chunk("zlib", np.arange(20.0).tobytes(), 8)
        chunk_dir(tmp_path, "a").mkdir()
        chunk_path(tmp_path, "a", 0).write_bytes(blob)
        with pytest.raises(StorageError):
            read_block(tmp_path, d, 0)

    def test_missing_chunk_is_block_missing(self, tmp_path):
        d = desc(length=80, block=40, codec="zlib")
        write_block(tmp_path, d, 0, np.arange(40.0))  # block 1 never lands
        with pytest.raises(BlockMissingError, match="never written"):
            read_block(tmp_path, d, 1)

    def test_decode_into_same_taxonomy(self, tmp_path):
        d, p = self._seed(tmp_path)
        p.write_bytes(p.read_bytes()[:-7])
        out = np.empty(40)
        with pytest.raises(StorageError, match="truncated"):
            read_block_into(tmp_path, d, 0, out)
        chunk_path(tmp_path, "a", 1).unlink()
        with pytest.raises(BlockMissingError):
            read_block_into(tmp_path, d, 1, out)


def _spmv_like_program(seed=3):
    """A small multi-block pipeline with spill-sized arrays."""
    rng = np.random.default_rng(seed)
    prog = Program("codec-e2e", default_block_elems=256)
    # Low-entropy payload (16 distinct values): compressible on disk while
    # the scale chain below still produces non-trivial float64 bit patterns.
    x = rng.integers(0, 16, size=1024).astype("float64")

    def fn(factor):
        def run(ins, outs, meta):
            (i,) = list(ins)
            (o,) = list(outs)
            outs[o][:] = ins[i] * factor
        return run

    prog.initial_array("a0", x)
    for i in range(6):
        prog.array(f"a{i+1}", 1024)
        prog.add_task(f"t{i}", fn(1.0 + i / 7.0), [f"a{i}"], [f"a{i+1}"])
    return prog, x


class TestEngineEndToEnd:
    @pytest.mark.parametrize("codec", ["zlib", "shuffle-zlib"])
    def test_bit_identical_across_codecs(self, codec, tmp_path):
        prog_raw, x = _spmv_like_program()
        eng = DOoCEngine(n_nodes=1, scratch_dir=tmp_path / "raw",
                         memory_budget_per_node=64 * 2**10,
                         data_plane="zerocopy", codec="raw")
        try:
            report_raw = eng.run(prog_raw, timeout=60)
            want = eng.fetch("a6")
        finally:
            eng.cleanup()
        copies_raw = sum(m.get("bytes_copied", 0)
                         for m in report_raw.metrics.values())

        prog_c, _ = _spmv_like_program()
        eng = DOoCEngine(n_nodes=1, scratch_dir=tmp_path / codec,
                         memory_budget_per_node=64 * 2**10,
                         data_plane="zerocopy", codec=codec)
        try:
            report = eng.run(prog_c, timeout=60)
            got = eng.fetch("a6")
        finally:
            eng.cleanup()
        assert np.array_equal(got, want)  # bit-identical, not allclose
        metrics = report.metrics
        # Decode lands straight in the pooled segment: the only copies are
        # the engine's deterministic gather/scatter ones, identical to raw.
        assert sum(m.get("bytes_copied", 0)
                   for m in metrics.values()) == copies_raw
        disk = sum(m.get("disk_bytes_read", 0) for m in metrics.values())
        logical = sum(m.get("logical_bytes_read", 0)
                      for m in metrics.values())
        assert 0 < disk < logical  # compression took bytes off the read path

    def test_compressed_spills_write_chunk_dirs(self, tmp_path):
        prog, _ = _spmv_like_program()
        eng = DOoCEngine(n_nodes=1, scratch_dir=tmp_path,
                         memory_budget_per_node=64 * 2**10,
                         data_plane="zerocopy", codec="zlib")
        try:
            eng.run(prog, timeout=60)
        finally:
            eng.cleanup()
        dirs = list(tmp_path.glob("**/*.arrc"))
        assert dirs, "compressed run should have produced chunk directories"

    def test_process_plane_decodes_into_segments(self, tmp_path):
        prog, _ = _spmv_like_program()
        eng = DOoCEngine(n_nodes=1, scratch_dir=tmp_path,
                         memory_budget_per_node=64 * 2**10,
                         worker_plane="process",
                         data_plane="zerocopy", codec="zlib")
        try:
            report = eng.run(prog, timeout=120)
            got = eng.fetch("a6")
        finally:
            eng.cleanup()
        assert got.shape == (1024,)
        disk = sum(m.get("disk_bytes_read", 0)
                   for m in report.metrics.values())
        logical = sum(m.get("logical_bytes_read", 0)
                      for m in report.metrics.values())
        assert 0 < disk < logical


class TestCheckpointCodecs:
    def test_round_trip_compressed(self, tmp_path):
        mgr = CheckpointManager(tmp_path, codec="zlib")
        arrays = {"x": np.arange(100.0), "it": np.array([7])}
        mgr.save(3, arrays, extra={"k": 1})
        ckpt = mgr.load(3)
        np.testing.assert_array_equal(ckpt.arrays["x"], arrays["x"])
        assert ckpt.extra == {"k": 1}

    def test_restore_across_codec_change_refused(self, tmp_path):
        CheckpointManager(tmp_path, codec="zlib").save(1, {"x": np.ones(4)})
        mgr = CheckpointManager(tmp_path, codec="raw")
        with pytest.raises(CodecMismatchError, match="zlib"):
            mgr.load(1)
        # load_latest must surface the refusal, not silently skip to None
        with pytest.raises(CodecMismatchError):
            mgr.load_latest()

    def test_pre_codec_manifests_still_load(self, tmp_path):
        # A manifest whose entries lack the codec key is raw by definition.
        import json
        mgr = CheckpointManager(tmp_path, codec="raw")
        mgr.save(1, {"x": np.arange(8.0)})
        mpath = tmp_path / "ckpt-00000001.ckpt"
        manifest = json.loads(mpath.read_text())
        for entry in manifest["blocks"].values():
            del entry["codec"], entry["raw_nbytes"]
        mpath.write_text(json.dumps(manifest))
        np.testing.assert_array_equal(mgr.load(1).arrays["x"],
                                      np.arange(8.0))

    def test_corrupt_compressed_payload_rejected(self, tmp_path):
        mgr = CheckpointManager(tmp_path, codec="zlib")
        mgr.save(1, {"x": np.zeros(100)})
        blk = next(tmp_path.glob("ckpt-00000001-*.blk"))
        payload = bytearray(blk.read_bytes())
        payload[len(payload) // 2] ^= 0x40
        blk.write_bytes(bytes(payload))
        with pytest.raises(RecoveryError):
            mgr.load(1)


class TestPruneExactness:
    """After prune, the directory holds exactly the referenced payloads."""

    @staticmethod
    def _payloads(path):
        return sorted(p.name for p in path.glob("ckpt-*-*.blk"))

    def _referenced(self, mgr):
        return sorted(mgr._referenced_payloads())

    def test_steady_state_is_exact(self, tmp_path):
        mgr = CheckpointManager(tmp_path, keep=2)
        for step in range(6):
            mgr.save(step, {"x": np.full(10, float(step)),
                            "y": np.zeros(4)})
        assert mgr.steps() == [4, 5]
        assert self._payloads(tmp_path) == self._referenced(mgr)

    def test_corrupt_manifest_payloads_not_orphaned(self, tmp_path):
        # The bug: pruning a manifest that no longer parses used to skip
        # its payloads, leaking them forever.
        mgr = CheckpointManager(tmp_path, keep=1)
        mgr.save(0, {"x": np.zeros(10)})
        (tmp_path / "ckpt-00000000.ckpt").write_text("{ not json")
        mgr.save(1, {"x": np.ones(10)})
        mgr.save(2, {"x": np.full(10, 2.0)})
        assert self._payloads(tmp_path) == self._referenced(mgr)
        assert not list(tmp_path.glob("ckpt-00000000-*.blk"))

    def test_crashed_save_payloads_swept(self, tmp_path):
        # Payloads written by a save that died before its manifest landed
        # are unreferenced; the next prune collects them.
        mgr = CheckpointManager(tmp_path, keep=1)
        mgr.save(0, {"x": np.zeros(10)})
        (tmp_path / "ckpt-00000000-orphan.blk").write_bytes(b"abandoned")
        mgr.save(1, {"x": np.ones(10)})
        mgr.save(2, {"x": np.full(10, 2.0)})
        assert self._payloads(tmp_path) == self._referenced(mgr)

    def test_surviving_manifests_keep_their_payloads(self, tmp_path):
        mgr = CheckpointManager(tmp_path, keep=3)
        for step in range(4):
            mgr.save(step, {"x": np.full(6, float(step))})
        for step in mgr.steps():
            ckpt = mgr.load(step)
            np.testing.assert_array_equal(ckpt.arrays["x"],
                                          np.full(6, float(step)))


class TestSeedWriteChurn:
    """Seeding an array must not rewrite the file once per block."""

    def test_raw_seed_is_one_rename_one_fsync(self, tmp_path, monkeypatch):
        counts = {"replace": 0, "fsync": 0}
        real_replace, real_fsync = os.replace, os.fsync

        def counting_replace(*a, **k):
            counts["replace"] += 1
            return real_replace(*a, **k)

        def counting_fsync(*a, **k):
            counts["fsync"] += 1
            return real_fsync(*a, **k)

        monkeypatch.setattr(os, "replace", counting_replace)
        monkeypatch.setattr(os, "fsync", counting_fsync)
        d = desc(length=1000, block=100)  # 10 blocks
        write_array(tmp_path, d, np.arange(1000.0))
        # One whole-file atomic write — not one rename+fsync per block
        # re-splicing an ever-growing file (O(blocks x file size)).
        assert counts["replace"] == 1
        assert counts["fsync"] == 1
        np.testing.assert_array_equal(read_array(tmp_path, d),
                                      np.arange(1000.0))

    def test_compressed_seed_is_one_write_per_block(self, tmp_path,
                                                    monkeypatch):
        counts = {"replace": 0}
        real_replace = os.replace

        def counting_replace(*a, **k):
            counts["replace"] += 1
            return real_replace(*a, **k)

        monkeypatch.setattr(os, "replace", counting_replace)
        d = desc(length=1000, block=100, codec="zlib")
        write_array(tmp_path, d, np.arange(1000.0))
        assert counts["replace"] == 10  # one small chunk file per block

    def test_block_writes_still_splice(self, tmp_path):
        d = desc(length=100, block=40)
        write_block(tmp_path, d, 1, np.ones(40))
        write_block(tmp_path, d, 0, np.zeros(40))
        np.testing.assert_array_equal(read_block(tmp_path, d, 1),
                                      np.ones(40))


class TestMetrics:
    def test_disk_vs_logical_accounting(self, tmp_path):
        d = desc(length=1000, block=1000, codec="zlib")
        m = MetricsRegistry()
        write_array(tmp_path, d, np.zeros(1000), metrics=m)
        read_array(tmp_path, d, metrics=m)
        assert m.get("logical_bytes_read") == 8000
        assert 0 < m.get("disk_bytes_read") < 8000
        assert 0 < m.get("disk_bytes_written") < m.get(
            "logical_bytes_written") == 8000


class TestTestbedCodecModel:
    def test_effective_bandwidth_composition(self):
        from repro.models.testbed import CodecBandwidthModel
        m = CodecBandwidthModel("z", ratio=2.0, decode_bytes_per_s=2e9)
        # 1 GB/s disk: t = 1/(2*1e9) + 1/(2e9) = 1e-9 -> 1 GB/s effective
        assert m.effective_read_bandwidth(1e9) == pytest.approx(1e9)
        # raw on the same disk is just the disk
        raw = CodecBandwidthModel()
        assert raw.effective_read_bandwidth(1e9) == pytest.approx(1e9)

    def test_compression_wins_when_disk_is_slow(self):
        from repro.models.testbed import CODEC_MODELS
        slow_disk = 0.05e9  # 50 MB/s spinning disk
        assert (CODEC_MODELS["zlib"].effective_read_bandwidth(slow_disk)
                > CODEC_MODELS["raw"].effective_read_bandwidth(slow_disk))

    def test_testbed_row_reports_codec(self):
        from repro.testbed.app import run_testbed_spmv
        raw = run_testbed_spmv(4, "interleaved")
        z = run_testbed_spmv(4, "interleaved", codec="zlib")
        assert raw.codec == "raw" and z.codec == "zlib"
        assert z.disk_bytes_read < raw.disk_bytes_read
        with pytest.raises(ValueError, match="unknown codec model"):
            run_testbed_spmv(4, "interleaved", codec="snappy")


class TestLintDOOC007:
    def test_flags_direct_compression_imports(self):
        from repro.analysis.lint import lint_source
        src = "import zlib\nfrom lzma import compress\nimport bz2.util\n"
        codes = [v.code for v in lint_source(src, "src/repro/core/foo.py")]
        assert codes.count("DOOC007") == 3

    def test_codecs_home_exempt(self):
        from repro.analysis.lint import lint_source
        violations = lint_source(
            "import zlib\n", "src/repro/core/codecs.py")
        assert not [v for v in violations if v.code == "DOOC007"]

    def test_tree_is_clean(self):
        # The source tree routes all compression through repro.core.codecs.
        from pathlib import Path

        from repro.analysis.lint import lint_paths
        src = Path(__file__).resolve().parents[1] / "src"
        violations = [v for v in lint_paths([src])
                      if v.code == "DOOC007"]
        assert violations == []
