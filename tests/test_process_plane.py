"""The multi-process worker plane: shared-memory segments, envelopes,
crash cleanup.

Everything here runs the real engine with ``worker_plane="process"`` —
real forked workers, real /dev/shm segments — and asserts the plane
preserves the thread plane's contracts: bit-identical results, zero
deterministic copies for single-span operands, frozen input buffers
across the process boundary, and (the part threads get for free) no
leaked segments after any run, including one whose worker was SIGKILLed
mid-task.
"""

import os
import signal
from pathlib import Path

import numpy as np
import pytest

from repro.core import DOoCEngine, DoocError, Program, StorageError
from repro.core.shm import (
    BlockHandle,
    SegmentLeakError,
    SegmentPool,
    attach_view,
    dev_shm_segments,
)
from repro.spmv.generator import choose_gap_parameter, gap_uniform_csr
from repro.spmv.partition import GridPartition
from repro.spmv.program import build_iterated_spmv
from repro.spmv.reference import iterated_spmv_reference


def _total(report, name):
    return sum(per.get(name, 0) for per in report.metrics.values())


def scale_fn(ins, outs, meta):
    (in_name,) = list(ins)
    (out_name,) = list(outs)
    outs[out_name][:] = ins[in_name] * 2.0


def write_input_fn(ins, outs, meta):
    ins["x"][:] = 0.0  # must raise: sealed buffers are frozen everywhere


def crash_once_fn(ins, outs, meta):
    """SIGKILL this worker process on the first attempt, then compute."""
    flag = Path(meta["crash_flag"])
    if not flag.exists():
        flag.write_text("x")
        os.kill(os.getpid(), signal.SIGKILL)
    outs["y"][:] = ins["x"] * 2.0


def _chain_program(n=64, links=3, block_elems=64):
    prog = Program("chain", default_block_elems=block_elems)
    x = np.arange(n, dtype=float)
    prog.initial_array("a0", x)
    for i in range(links):
        prog.array(f"a{i+1}", n)
        prog.add_task(f"t{i}", scale_fn, [f"a{i}"], [f"a{i+1}"])
    return prog, x * 2.0 ** links


# -- SegmentPool / BlockHandle unit behavior ---------------------------------


class TestSegmentPool:
    def test_allocate_free_unlinks(self):
        pool = SegmentPool(tag="t1")
        name = pool.allocate(64)
        assert name in dev_shm_segments()
        pool.free(name)
        assert name not in dev_shm_segments()
        pool.close()

    def test_lease_defers_unlink_until_release(self):
        pool = SegmentPool(tag="t2")
        name = pool.allocate(64)
        pool.lease(name)
        pool.free(name)
        # Freed but leased: the name must survive (an in-flight task may
        # still attach by name).
        assert name in dev_shm_segments()
        pool.release(name)
        assert name not in dev_shm_segments()
        pool.close()

    def test_release_underflow_rejected(self):
        pool = SegmentPool(tag="t3")
        name = pool.allocate(8)
        with pytest.raises(StorageError, match="underflow"):
            pool.release(name)
        pool.close()

    def test_assert_clean_names_leaked_leases(self):
        pool = SegmentPool(tag="t4")
        name = pool.allocate(8)
        pool.lease(name)
        with pytest.raises(SegmentLeakError, match=name):
            pool.assert_clean()
        pool.release(name)
        pool.assert_clean()
        pool.close()

    def test_close_is_idempotent_and_unlinks_everything(self):
        pool = SegmentPool(tag="t5")
        names = [pool.allocate(16) for _ in range(3)]
        pool.close()
        pool.close()
        for name in names:
            assert name not in dev_shm_segments()

    def test_attach_view_is_readonly_by_default(self):
        pool = SegmentPool(tag="t6")
        name = pool.allocate(8 * 8)
        out = pool.ndarray(name, 8, "float64")
        out[:] = np.arange(8.0)
        handle = BlockHandle(segment=name, offset=0, count=8, dtype="float64")
        view = attach_view(handle)
        np.testing.assert_array_equal(view, np.arange(8.0))
        with pytest.raises(ValueError):
            view[:] = 0.0
        del view, out
        pool.close()


# -- engine construction -----------------------------------------------------


class TestEngineConfig:
    def test_unknown_worker_plane_rejected(self):
        with pytest.raises(DoocError, match="worker_plane"):
            DOoCEngine(n_nodes=1, worker_plane="fiber")

    def test_process_plane_refuses_legacy_data_plane(self):
        with pytest.raises(DoocError, match="zero-copy"):
            DOoCEngine(n_nodes=1, worker_plane="process", data_plane="legacy")


# -- end-to-end behavior ------------------------------------------------------


class TestProcessPlaneEndToEnd:
    def _spmv(self, tmp_path, worker_plane, n=64, k=2, iterations=3):
        rng = np.random.default_rng(7)
        p = GridPartition(n, k)
        d = choose_gap_parameter(n, 6.0)
        global_m = gap_uniform_csr(n, n, d, rng)
        x0 = rng.normal(size=n)
        result = build_iterated_spmv(
            p.split_matrix(global_m), p.split_vector(x0),
            iterations=iterations, n_nodes=2)
        eng = DOoCEngine(n_nodes=2, workers_per_node=2,
                         scratch_dir=tmp_path / worker_plane,
                         worker_plane=worker_plane)
        try:
            report = eng.run(result.program, timeout=120)
            got = result.fetch_final(eng)
        finally:
            eng.cleanup()
        want = iterated_spmv_reference(global_m, x0, iterations)
        np.testing.assert_allclose(got, want, rtol=1e-9)
        return report, got

    def test_bit_identical_to_thread_plane_and_zero_copies(self, tmp_path):
        thread_report, thread_x = self._spmv(tmp_path, "thread")
        process_report, process_x = self._spmv(tmp_path, "process")
        # Bit-identity, not closeness: both planes run the same kernels
        # over the same (shared or heap) sealed bytes.
        np.testing.assert_array_equal(thread_x, process_x)
        # Single-block arrays end to end: handles cover whole spans, so
        # the process plane introduces no new deterministic copies.
        assert _total(process_report, "bytes_copied") == 0
        # Per-process operand caches hit once each sub-matrix is decoded.
        assert _total(process_report, "opcache_hits") > 0
        assert _total(process_report, "process_plane_fallbacks", ) == 0
        assert dev_shm_segments() == []

    def test_out_of_core_run_stays_zero_copy(self, tmp_path):
        # 8 x 32 KiB arrays through a ~64 KiB budget: spills and segment
        # reloads, with readinto landing file bytes straight in shm.
        n = 4096
        prog = Program("ooc", default_block_elems=n)
        x = np.arange(n, dtype=float)
        prog.initial_array("a0", x)
        for i in range(8):
            prog.array(f"a{i+1}", n)
            prog.add_task(f"t{i}", scale_fn, [f"a{i}"], [f"a{i+1}"])
        eng = DOoCEngine(n_nodes=1, workers_per_node=1,
                         memory_budget_per_node=64 * 1024 + 1024,
                         scratch_dir=tmp_path, worker_plane="process")
        try:
            report = eng.run(prog, timeout=120)
            np.testing.assert_array_equal(eng.fetch("a8"), x * 256.0)
        finally:
            eng.cleanup()
        assert report.total_spills > 0
        assert _total(report, "bytes_copied") == 0
        assert dev_shm_segments() == []

    def test_segments_unlinked_after_normal_teardown(self, tmp_path):
        prog, want = _chain_program()
        eng = DOoCEngine(n_nodes=1, workers_per_node=2,
                         scratch_dir=tmp_path, worker_plane="process")
        try:
            eng.run(prog, timeout=60)
            # The run's finally already unlinked every segment and audited
            # the leases; fetch still reads the sealed views.
            assert dev_shm_segments() == []
            assert eng._segment_pool.lease_counts() == {}
            np.testing.assert_array_equal(eng.fetch("a3"), want)
        finally:
            eng.cleanup()

    def test_multiple_runs_reuse_one_engine(self, tmp_path):
        eng = DOoCEngine(n_nodes=1, workers_per_node=2,
                         scratch_dir=tmp_path, worker_plane="process")
        try:
            for _ in range(3):
                prog, want = _chain_program()
                eng.run(prog, timeout=60)
                np.testing.assert_array_equal(eng.fetch("a3"), want)
        finally:
            eng.cleanup()
        assert dev_shm_segments() == []


class TestFrozenAcrossProcesses:
    def test_child_writing_an_input_fails_the_task(self, tmp_path):
        prog = Program("frozen", default_block_elems=64)
        prog.initial_array("x", np.ones(64))
        prog.array("y", 64)
        prog.add_task("bad", write_input_fn, ["x"], ["y"])
        eng = DOoCEngine(n_nodes=1, workers_per_node=1,
                         scratch_dir=tmp_path, worker_plane="process")
        try:
            with pytest.raises(Exception, match="read-only"):
                eng.run(prog, timeout=60)
        finally:
            eng.cleanup()
        # Even the failed run must not leak /dev/shm entries.
        assert dev_shm_segments() == []


class TestWorkerCrashRecovery:
    def test_sigkilled_worker_is_respawned_and_task_retried(self, tmp_path):
        prog = Program("crashy", default_block_elems=64)
        x = np.arange(64, dtype=float)
        prog.initial_array("x", x)
        prog.array("y", 64)
        prog.add_task("boom", crash_once_fn, ["x"], ["y"],
                      crash_flag=str(tmp_path / "crashed.flag"))
        eng = DOoCEngine(n_nodes=1, workers_per_node=1,
                         scratch_dir=tmp_path / "scratch",
                         worker_plane="process")
        try:
            report = eng.run(prog, timeout=120)
            np.testing.assert_array_equal(eng.fetch("y"), x * 2.0)
        finally:
            eng.cleanup()
        assert _total(report, "worker_crashes") >= 1
        assert eng._proc_pool is None or eng._proc_pool.respawns >= 1
        # The crashed child died holding attachments; the parent owns the
        # lease lifecycle, so nothing survives in /dev/shm.
        assert dev_shm_segments() == []


class TestInlineFallback:
    def test_unpicklable_task_falls_back_to_inline(self, tmp_path):
        captured = []

        def closure_fn(ins, outs, meta):  # local def: cannot pickle
            captured.append(True)
            outs["y"][:] = ins["x"] + 1.0

        prog = Program("inline", default_block_elems=64)
        prog.initial_array("x", np.zeros(64))
        prog.array("y", 64)
        prog.add_task("t", closure_fn, ["x"], ["y"])
        eng = DOoCEngine(n_nodes=1, workers_per_node=1,
                         scratch_dir=tmp_path, worker_plane="process")
        try:
            report = eng.run(prog, timeout=60)
            np.testing.assert_array_equal(eng.fetch("y"), np.ones(64))
        finally:
            eng.cleanup()
        assert captured  # ran in-process
        assert _total(report, "process_plane_fallbacks") >= 1
        assert dev_shm_segments() == []
