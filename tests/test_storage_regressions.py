"""Regression tests for the storage/scheduler state-leak and liveness
bugs fixed alongside the observability layer:

* ``LocalStore.release`` used to leave emptied ``_write_tickets`` entries
  behind forever (one dead dict key per written block);
* ``LocalStore.delete_array`` mutated block state *before* validating,
  so a failed delete corrupted residency accounting;
* ``LocalSchedulerCore.forget_prefetch`` existed but was never called —
  an evicted prefetched block stayed in the scheduler's ``_prefetched``
  set and was never re-warmed;
* prefetches the store declines are now counted (``prefetch_dropped``).
"""

import numpy as np
import pytest

from repro.core import DOoCEngine, Program
from repro.core.engine import _LocalSchedulerFilter, _StorageFilter
from repro.core.errors import StorageError
from repro.core.interval import Interval, whole_block
from repro.core.storage import LocalStore


def desc(name="a", length=100, block=50, dtype="float64"):
    from repro.core.array import ArrayDesc
    return ArrayDesc(name, length=length, block_elems=block, dtype=dtype)


def grant_of(effects, kind="grant_write"):
    (e,) = [e for e in effects if e.kind == kind]
    return e.ticket


class TestWriteTicketLeak:
    def test_release_drops_emptied_entry(self):
        store = LocalStore(0, memory_budget=1 << 20)
        d = desc()
        store.create_array(d)
        t, eff = store.request_write(whole_block(d, 0))
        grant_of(eff).data[:] = 1.0
        store.release(t)
        assert store._write_tickets == {}

    def test_partial_release_keeps_live_entry(self):
        store = LocalStore(0, memory_budget=1 << 20)
        d = desc()
        store.create_array(d)
        t1, e1 = store.request_write(Interval("a", 0, 0, 20))
        t2, e2 = store.request_write(Interval("a", 0, 20, 50))
        grant_of(e1).data[:] = 1.0
        grant_of(e2).data[:] = 2.0
        store.release(t1)
        assert list(store._write_tickets[("a", 0)]) == [t2]
        store.release(t2)
        assert store._write_tickets == {}

    def test_engine_run_leaves_no_ticket_entries(self, tmp_path):
        prog = Program("leak", default_block_elems=32)
        x = np.arange(96, dtype=float)
        prog.initial_array("x", x)
        for i in range(3):
            prog.array(f"y{i}", 96)

            def fn(ins, outs, meta, i=i):
                (out,) = list(outs)
                outs[out][:] = ins["x"] * (i + 1)

            prog.add_task(f"t{i}", fn, ["x"], [f"y{i}"])
        eng = DOoCEngine(n_nodes=2, scratch_dir=tmp_path)
        eng.run(prog, timeout=60)
        for node, store in eng.stores.items():
            assert store._write_tickets == {}, f"leak on node {node}"


class TestDeleteArrayAtomicity:
    def _store_with_pinned_tail(self):
        """Array 'a' with block 0 resident+sealed and block 1 pinned."""
        store = LocalStore(0, memory_budget=1 << 20)
        d = desc()
        store.create_array(d)
        for b in (0, 1):
            t, eff = store.request_write(whole_block(d, b))
            grant_of(eff).data[:] = float(b)
            store.release(t)
        t_pin, eff = store.request_read(whole_block(d, 1))
        assert grant_of(eff, "grant_read") is t_pin
        return store, t_pin

    def test_failed_delete_leaves_state_untouched(self):
        store, t_pin = self._store_with_pinned_tail()
        in_use = store.in_use
        avail = store.availability_map()
        with pytest.raises(StorageError, match="in use"):
            store.delete_array("a")
        # The failing validation hit block 1; block 0 must be intact.
        assert store.has_array("a")
        assert store.in_use == in_use
        assert store.availability_map() == avail
        assert store.peek_block("a", 0) is not None
        np.testing.assert_allclose(store.peek_block("a", 0), 0.0)

    def test_delete_succeeds_after_release(self):
        store, t_pin = self._store_with_pinned_tail()
        store.release(t_pin)
        effects = store.delete_array("a")
        assert {e.kind for e in effects} <= {"drop"}
        assert not store.has_array("a")
        assert store.in_use == 0

    def test_retried_delete_is_not_poisoned(self):
        # Pre-fix, the failed attempt deleted block 0's state, so the
        # retry (after unpinning) underflowed in_use / raised KeyError.
        store, t_pin = self._store_with_pinned_tail()
        with pytest.raises(StorageError):
            store.delete_array("a")
        store.release(t_pin)
        store.delete_array("a")
        assert store.in_use == 0
        assert store._blocks == {}


class TestPrefetchDroppedMetric:
    def test_prefetch_without_headroom_is_counted(self):
        d = desc(length=100, block=50)  # two 400-byte blocks, budget for one
        store = LocalStore(0, memory_budget=500)
        store.create_array(d)

        def absorb(effects):
            for e in effects:
                if e.kind == "spill":
                    absorb(store.on_spilled(e.array, e.block))
                elif e.kind == "load":
                    absorb(store.on_loaded(e.array, e.block, np.zeros(50)))

        for b in (0, 1):
            t, eff = store.request_write(whole_block(d, b))
            absorb(eff)
            assert t.granted
            t.data[:] = float(b)
            absorb(store.release(t))
        # Pin block 0 (re-loaded from its spilled copy); block 1 goes to disk.
        t_pin, eff = store.request_read(whole_block(d, 0))
        absorb(eff)
        assert t_pin.granted
        assert store.block_on_disk("a", 1)
        assert store.peek_block("a", 1) is None  # on disk, not resident
        before = store.metrics.get("prefetch_dropped")
        assert store.prefetch(whole_block(d, 1)) == []  # no headroom: dropped
        assert store.metrics.get("prefetch_dropped") == before + 1
        assert store.stats.prefetch_dropped == before + 1  # compat view


class _RecordingCtx:
    """Just enough FilterContext to capture ``_execute`` writes."""

    instance = 0

    def __init__(self):
        self.writes = []

    def write(self, port, buf):
        self.writes.append((port, buf.payload))


class TestForgetPrefetchWiring:
    def test_scheduler_core_forgets(self):
        from repro.core.local_scheduler import LocalSchedulerCore
        from repro.core.task import TaskSpec

        core = LocalSchedulerCore(0, prefetch_depth=2)
        core.add_ready(TaskSpec("t", lambda *a: None, ("a",), ("y",)))
        plan = core.prefetch_plan(frozenset(), {"a": 8, "y": 8})
        assert plan == ["a"]
        # Still marked: would not be planned again...
        assert core.prefetch_plan(frozenset(), {"a": 8, "y": 8}) == []
        # ...until the storage reports the block was dropped.
        core.forget_prefetch("a")
        assert core.prefetch_plan(frozenset(), {"a": 8, "y": 8}) == ["a"]

    def test_storage_filter_forwards_drop(self):
        from repro.core.storage import Effect

        store = LocalStore(0, memory_budget=1 << 20)
        filt = _StorageFilter(0, 1, store, directory=None, descs={})
        ctx = _RecordingCtx()
        filt._execute(ctx, [Effect("drop", "a", 0)])
        assert ("rep_lsched", {"op": "dropped", "array": "a"}) in ctx.writes

    def test_lsched_filter_rearms_on_dropped_note(self):
        from repro.core.task import TaskSpec

        filt = _LocalSchedulerFilter(0, workers=1, nbytes={"a": 8, "y": 8})
        filt.core.add_ready(TaskSpec("t", lambda *a: None, ("a",), ("y",)))
        assert filt.core.prefetch_plan(frozenset(), filt.nbytes) == ["a"]
        filt._on_storage_note({"op": "dropped", "array": "a"})
        assert filt.core.prefetch_plan(frozenset(), filt.nbytes) == ["a"]


class TestPumpAllocsBehaviour:
    def _queue_writes(self, store, descs):
        tickets = {}

        def absorb(effects):
            for e in effects:
                if e.kind in ("grant_read", "grant_write"):
                    tickets[e.ticket.interval.array] = e.ticket
                elif e.kind == "spill":
                    absorb(store.on_spilled(e.array, e.block))

        for d in descs:
            t, eff = store.request_write(whole_block(d, 0))
            absorb(eff)
        return tickets, absorb

    def test_small_alloc_overtakes_blocked_large(self):
        # budget 1000 B; p1 (500) and p2 (300) stay pinned by writers.
        # 'blocker' (200) tops the store up, then 'large' (400) and
        # 'small' (150) queue.  Releasing blocker leaves 800 B pinned:
        # large can never fit, small can — it must overtake.
        sizes = {"p1": 500, "p2": 300, "blocker": 200,
                 "large": 400, "small": 150}
        descs = {name: desc(name, length=nb, block=nb, dtype="uint8")
                 for name, nb in sizes.items()}
        store = LocalStore(0, memory_budget=1000)
        for d in descs.values():
            store.create_array(d)
        tickets, absorb = self._queue_writes(store, list(descs.values()))
        assert set(tickets) == {"p1", "p2", "blocker"}
        assert store.alloc_queue_depth == 2
        tickets["blocker"].data[:] = 1
        absorb(store.release(tickets["blocker"]))
        # FIFO would stall small behind the forever-blocked large.
        assert "small" in tickets
        assert "large" not in tickets
        assert store.alloc_queue_depth == 1
        # large is admitted once a pin actually frees.
        tickets["p1"].data[:] = 1
        absorb(store.release(tickets["p1"]))
        assert "large" in tickets
        assert store.alloc_queue_depth == 0

    def test_fifo_preserved_between_equals(self):
        store = LocalStore(0, memory_budget=800)
        blocker = desc("blocker", length=100, block=100)
        q1 = desc("q1", length=50, block=50)
        q2 = desc("q2", length=50, block=50)
        store.create_array(blocker)
        store.create_array(q1)
        store.create_array(q2)
        tickets, absorb = self._queue_writes(store, [blocker, q1, q2])
        assert set(tickets) == {"blocker"}
        tickets["blocker"].data[:] = 1.0
        absorb(store.release(tickets["blocker"]))
        # Both were granted, in FIFO order of their ticket ids.
        assert tickets["q1"].tid < tickets["q2"].tid
        assert store.alloc_queue_depth == 0

    def test_deep_queue_drains_completely(self):
        depth = 64
        descs = [desc(f"q{i}", length=16, block=16) for i in range(depth)]
        store = LocalStore(0, memory_budget=16 * 8)
        for d in descs:
            store.create_array(d)
        granted = []

        def absorb(effects):
            for e in effects:
                if e.kind == "grant_write":
                    granted.append(e.ticket)
                elif e.kind == "spill":
                    absorb(store.on_spilled(e.array, e.block))

        for d in descs:
            t, eff = store.request_write(whole_block(d, 0))
            absorb(eff)
        assert store.metrics.maximum("alloc_queue_depth") >= depth - 1
        done = 0
        while granted:
            t = granted.pop(0)
            t.data[:] = float(done)
            absorb(store.release(t))
            done += 1
        assert done == depth
        assert store.alloc_queue_depth == 0
        assert store._write_tickets == {}
