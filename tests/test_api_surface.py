"""Direct tests for smaller public-API surfaces found by the audit."""

import numpy as np
import pytest

from repro.ci.mscheme import MSchemeSpace
from repro.ci.nnz import estimate_total_nnz
from repro.core.array import ArrayDesc
from repro.core.local_scheduler import LocalSchedulerCore
from repro.core.storage import LocalStore
from repro.core.task import task
from repro.datacutter import Filter, Layout
from repro.lanczos.basis import DiskBasis
from repro.sim import Environment, FlowNetwork, Link, Resource
from repro.spmv.partition import GridPartition
from repro.testbed import simulated_gantt
from repro.util.rng import spawn


def noop(ins, outs, meta):
    pass


class TestSimSurfaces:
    def test_link_utilization(self):
        env = Environment()
        net = FlowNetwork(env)
        link = Link("l", 100.0)
        assert net.link_utilization(link) == 0.0
        net.transfer([link], 1000.0)
        assert net.link_utilization(link) == pytest.approx(1.0)
        env.run()
        assert net.link_utilization(link) == 0.0

    def test_resource_queue_length(self):
        env = Environment()
        res = Resource(env, capacity=1)
        res.request()
        res.request()
        res.request()
        env.run()
        assert res.queue_length == 2  # one granted, two waiting

    def test_process_is_alive_and_active_process(self):
        env = Environment()
        seen = []

        def proc():
            seen.append(env.active_process)
            yield env.timeout(1.0)

        p = env.process(proc())
        assert p.is_alive
        env.run()
        assert not p.is_alive
        assert seen == [p]
        assert env.active_process is None


class TestLayoutSurfaces:
    def test_inbound_outbound_streams(self):
        class F(Filter):
            inputs = ("in",)
            outputs = ("out",)

            def process(self, ctx):
                pass

        layout = Layout("t")
        layout.add_filter("a", F)
        layout.add_filter("b", F)
        layout.connect("a", "out", "b", "in", name="s1")
        assert [s.name for s in layout.outbound_streams("a")] == ["s1"]
        assert [s.name for s in layout.inbound_streams("b")] == ["s1"]
        assert layout.inbound_streams("a") == []


class TestStorageSurfaces:
    def test_headroom_is_remote_block_on_disk(self):
        d = ArrayDesc("a", length=10, block_elems=10)
        r = ArrayDesc("r", length=10, block_elems=10)
        store = LocalStore(0, memory_budget=1000)
        store.register_on_disk(d)
        store.register_remote(r)
        assert store.headroom == 1000
        assert store.is_remote("r") and not store.is_remote("a")
        assert store.block_on_disk("a", 0) and not store.block_on_disk("r", 0)

    def test_abandon_pending_allocs(self):
        d = ArrayDesc("a", length=20, block_elems=10)
        store = LocalStore(0, memory_budget=80)  # one block
        store.register_on_disk(d)
        t0, e0 = store.request_read(
            __import__("repro.core.interval", fromlist=["whole_block"])
            .whole_block(d, 0))
        # Second read cannot fit until the first load lands AND is evicted;
        # it queues as a demand.
        t1, e1 = store.request_read(
            __import__("repro.core.interval", fromlist=["whole_block"])
            .whole_block(d, 1))
        assert len(store._alloc_queue) == 1
        store.abandon_pending_allocs()
        assert len(store._alloc_queue) == 0


class TestSchedulerSurfaces:
    def test_pending_tasks_listing(self):
        ls = LocalSchedulerCore(0)
        a = task("a", noop, [], ["x"])
        ls.add_ready(a)
        assert [t.name for t in ls.pending_tasks()] == ["a"]


class TestPartitionSurfaces:
    def test_coords_and_part_range(self):
        p = GridPartition(10, 2)
        assert list(p.coords()) == [(0, 0), (0, 1), (1, 0), (1, 1)]
        assert p.part_range(0) == (0, 5)
        assert p.part_range(1) == (5, 10)
        with pytest.raises(ValueError):
            p.part_range(2)
        assert p.part_length(1) == 5


class TestCiSurfaces:
    def test_estimate_total_nnz(self):
        space = MSchemeSpace(2, 2, 0, 0)  # dimension 1, diagonal only
        total, err = estimate_total_nnz(space, 3, spawn(0, "nnz"))
        assert total == pytest.approx(1.0)  # only the diagonal entry
        assert err == 0.0

    def test_estimate_total_nnz_with_given_dimension(self):
        space = MSchemeSpace(2, 2, 2, 0)
        d = space.dimension()
        total, _ = estimate_total_nnz(space, 5, spawn(1, "nnz"), dimension=d)
        assert total > d  # more than one entry per row


class TestBasisSurfaces:
    def test_disk_basis_cleanup(self, tmp_path):
        store = DiskBasis(8, scratch_dir=tmp_path)
        store.append(np.ones(8))
        store.append(np.zeros(8))
        assert len(list(tmp_path.glob("*.arr"))) == 2
        store.cleanup()
        assert list(tmp_path.glob("*.arr")) == []
        store.cleanup()  # idempotent


class TestGanttSurface:
    def test_simulated_gantt_renders(self):
        art = simulated_gantt(1, "simple", seed=0, until_s=20, width=40)
        assert "simple policy" in art
        assert "n0" in art
        assert "=" in art  # filesystem reads appear
