"""Coverage for smaller surfaces: CLI, filter placement/context, engine
variants (multi-block vectors, several I/O filters), determinism."""

import numpy as np
import pytest

from repro.__main__ import main as cli_main
from repro.core import DOoCEngine
from repro.datacutter import END_OF_STREAM, Filter, Layout, ThreadedRuntime
from repro.spmv.generator import choose_gap_parameter, gap_uniform_csr
from repro.spmv.partition import GridPartition
from repro.spmv.program import build_iterated_spmv
from repro.spmv.reference import iterated_spmv_reference


class TestCLI:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out and "fig7" in out

    def test_unknown_experiment(self, capsys):
        assert cli_main(["table99"]) == 2

    def test_fig1_runs(self, capsys):
        assert cli_main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "memory hierarchy" in out
        assert "regenerated" in out

    def test_table4_with_nodes(self, capsys):
        assert cli_main(["table4", "--nodes", "1", "--seed", "0"]) == 0
        assert "Table IV" in capsys.readouterr().out


class TestFilterContext:
    def test_placement_and_identity_visible_to_filters(self):
        seen = []

        class Probe(Filter):
            def process(self, ctx):
                seen.append((ctx.name, ctx.instance, ctx.instances, ctx.node))

        layout = Layout("ctx")
        layout.add_filter("probe", Probe, instances=3, replicable=True,
                          placement=[5, 6, 7])
        ThreadedRuntime(layout).run(timeout=20)
        assert sorted(seen) == [
            ("probe", 0, 3, 5), ("probe", 1, 3, 6), ("probe", 2, 3, 7)]

    def test_placement_length_mismatch_rejected(self):
        from repro.datacutter import LayoutError

        layout = Layout("bad")
        with pytest.raises(LayoutError, match="placement"):
            layout.add_filter("f", Filter, instances=2, replicable=True,
                              placement=[0])

    def test_stop_requested_visible_after_failure(self):
        saw_stop = []

        class Boom(Filter):
            def process(self, ctx):
                raise RuntimeError("x")

        class Watcher(Filter):
            inputs = ("in",)

            def process(self, ctx):
                while not ctx.stop_requested:
                    try:
                        buf = ctx.read("in", timeout=0.05)
                    except TimeoutError:
                        continue
                    if buf is END_OF_STREAM:
                        break
                saw_stop.append(True)

        layout = Layout("stop")
        layout.add_filter("b", Boom)
        layout.add_filter("w", Watcher)
        with pytest.raises(Exception):
            ThreadedRuntime(layout).run(timeout=20)
        assert saw_stop == [True]


def spmv_problem(n=120, k=3, seed=0):
    rng = np.random.default_rng(seed)
    p = GridPartition(n, k)
    m = gap_uniform_csr(n, n, choose_gap_parameter(n, 8.0), rng)
    return m, p, p.split_matrix(m), rng.normal(size=n)


class TestEngineVariants:
    def test_multi_block_vectors_end_to_end(self, tmp_path):
        """Vector arrays split across several storage blocks exercise the
        worker's gather/scatter path."""
        m, p, blocks, x0 = spmv_problem()
        result = build_iterated_spmv(
            blocks, p.split_vector(x0), iterations=2, n_nodes=1,
            vector_block_elems=16)  # 40-row parts -> 3 blocks each
        eng = DOoCEngine(n_nodes=1, workers_per_node=2, scratch_dir=tmp_path)
        eng.run(result.program, timeout=120)
        np.testing.assert_allclose(
            result.fetch_final(eng), iterated_spmv_reference(m, x0, 2),
            rtol=1e-9)

    def test_multiple_io_filters(self, tmp_path):
        m, p, blocks, x0 = spmv_problem(seed=1)
        result = build_iterated_spmv(blocks, p.split_vector(x0),
                                     iterations=2, n_nodes=1)
        eng = DOoCEngine(n_nodes=1, workers_per_node=2,
                         io_filters_per_node=3, scratch_dir=tmp_path)
        eng.run(result.program, timeout=120)
        np.testing.assert_allclose(
            result.fetch_final(eng), iterated_spmv_reference(m, x0, 2),
            rtol=1e-9)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_results_identical_across_worker_counts(self, tmp_path, workers):
        """Scheduling nondeterminism must never change numerics."""
        m, p, blocks, x0 = spmv_problem(seed=2)
        result = build_iterated_spmv(blocks, p.split_vector(x0),
                                     iterations=2, n_nodes=1)
        eng = DOoCEngine(n_nodes=1, workers_per_node=workers,
                         scratch_dir=tmp_path / str(workers))
        eng.run(result.program, timeout=120)
        np.testing.assert_allclose(
            result.fetch_final(eng), iterated_spmv_reference(m, x0, 2),
            rtol=1e-9)

    def test_prefetch_depth_zero(self, tmp_path):
        m, p, blocks, x0 = spmv_problem(seed=3)
        result = build_iterated_spmv(blocks, p.split_vector(x0),
                                     iterations=1, n_nodes=1)
        eng = DOoCEngine(n_nodes=1, prefetch_depth=0, scratch_dir=tmp_path)
        eng.run(result.program, timeout=120)
        np.testing.assert_allclose(
            result.fetch_final(eng), iterated_spmv_reference(m, x0, 1),
            rtol=1e-9)
