"""Tests for the Section VI extensions: colocated SSDs and energy."""

import pytest

from repro.cluster.spec import carver_colocated_ssd
from repro.experiments import extensions, run_experiment
from repro.models.energy import PowerModel, hopper_energy, testbed_energy
from repro.ci.cases import TABLE1_CASES
from repro.testbed import TestbedParams, run_testbed_spmv
from repro.util.units import GB


class TestColocatedSpec:
    def test_spec_shape(self):
        spec = carver_colocated_ssd()
        assert spec.io_nodes == 0
        assert spec.node.local_ssd_bytes_per_s == pytest.approx(2 * GB)
        assert spec.peak_storage_bytes_per_s == 0.0

    def test_single_node_reads_at_local_speed(self):
        row = run_testbed_spmv(
            1, "interleaved", seed=0,
            spec=carver_colocated_ssd(compute_nodes=1),
            params=TestbedParams(jitter_cv0=0.0, jitter_cv_per_node=0.0),
        )
        # 0.41 TB at 2 GB/s: ~205 s, vs ~283 s through the shared client.
        assert row.time_s == pytest.approx(0.4096e12 / 2e9, rel=0.1)
        assert row.read_bw_bytes_per_s == pytest.approx(2 * GB, rel=0.1)

    def test_no_plateau(self):
        """Per-node bandwidth is constant: GFlop/s scale linearly."""
        params = TestbedParams(jitter_cv0=0.0, jitter_cv_per_node=0.0)
        g1 = run_testbed_spmv(1, "interleaved", seed=0,
                              spec=carver_colocated_ssd(compute_nodes=1),
                              params=params).gflops
        g9 = run_testbed_spmv(9, "interleaved", seed=0,
                              spec=carver_colocated_ssd(compute_nodes=9),
                              params=params).gflops
        assert g9 == pytest.approx(9 * g1, rel=0.10)

    def test_colocated_beats_shared_everywhere(self):
        rows = extensions.run_colocated(node_counts=(1, 4), seed=0)
        for row in rows:
            assert row.colocated.time_s < row.shared.time_s
        text = extensions.render_colocated(rows)
        assert "VI-A" in text


class TestEnergy:
    def test_testbed_energy_accounting(self):
        row = run_testbed_spmv(4, "interleaved", seed=0)
        sep = testbed_energy(row)
        power = PowerModel()
        expected_watts = 4 * power.compute_node_w + 10 * power.io_node_w
        assert sep.powered_watts == pytest.approx(expected_watts)
        assert sep.kwh == pytest.approx(
            expected_watts * row.time_s / 4 / 3.6e6)

    def test_colocated_energy_drops_io_fleet(self):
        row = run_testbed_spmv(4, "interleaved", seed=0)
        sep = testbed_energy(row)
        col = testbed_energy(row, colocated=True)
        assert col.powered_watts < sep.powered_watts

    def test_hopper_energy(self):
        e = hopper_energy(TABLE1_CASES[0])
        assert e.powered_watts == pytest.approx(12 * 350)  # ceil(276/24)=12
        assert e.kwh > 0

    def test_power_model_validation(self):
        with pytest.raises(ValueError):
            PowerModel(compute_node_w=0)

    def test_energy_experiment_runs(self):
        cmp_, text = run_experiment("energy", node_counts=(4,), seed=0)
        assert len(cmp_.testbed) == 1
        assert "kWh/iter" in text
