"""Lint half of repro.analysis: rules, suppressions, CLI, clean tree.

Each seeded snippet carries exactly the defect its rule code describes;
tests assert the exact (code, line, col) so rule drift is caught, plus a
smoke test that the shipped tree itself lints clean (the CI gate).
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.cli import main as lint_main
from repro.analysis.lint import (
    DEFAULT_PATH_RELAXATIONS,
    RULES,
    Violation,
    lint_file,
    lint_paths,
    lint_source,
)

REPO = Path(__file__).resolve().parent.parent


def codes(violations):
    return [(v.code, v.line, v.col) for v in violations]


# -- DOOC001: ticket leaks ---------------------------------------------------


def test_dooc001_unguarded_request_flags():
    src = (
        "def leaky(store, iv):\n"
        "    ticket, effects = store.request_read(iv)\n"
        "    return effects\n"
    )
    assert codes(lint_source(src)) == [("DOOC001", 2, 4)]


def test_dooc001_try_with_releasing_finally_is_clean():
    src = (
        "def fine(store, iv, run):\n"
        "    held = []\n"
        "    try:\n"
        "        ticket, effects = store.request_read(iv)\n"
        "        held.append(ticket)\n"
        "    finally:\n"
        "        for t in held:\n"
        "            run(store.release(t))\n"
    )
    assert lint_source(src) == []


def test_dooc001_tag_handoff_is_clean():
    # Event-driven sites hand the ticket to the reply path via .tag — the
    # storage filter owns the release from then on.
    src = (
        "def handoff(store, iv, msg):\n"
        "    ticket, effects = store.request_write(iv)\n"
        "    ticket.tag = msg\n"
        "    return effects\n"
    )
    assert lint_source(src) == []


def test_dooc001_write_requests_are_covered_too():
    src = (
        "def leaky(store, iv):\n"
        "    ticket, effects = store.request_write(iv)\n"
        "    return effects\n"
    )
    assert codes(lint_source(src)) == [("DOOC001", 2, 4)]


# -- DOOC002: dropped Effect lists -------------------------------------------


def test_dooc002_dropped_release_effects_flag():
    src = (
        "def driver(store, ticket):\n"
        "    store.release(ticket)\n"
    )
    assert codes(lint_source(src)) == [("DOOC002", 2, 4)]


def test_dooc002_consumed_effects_are_clean():
    src = (
        "def driver(store, ticket):\n"
        "    effects = store.release(ticket)\n"
        "    return effects\n"
    )
    assert lint_source(src) == []


def test_dooc002_simpy_style_release_not_flagged():
    # DES-testbed Resource.release() returns None; only store-like
    # receivers carry the effect-list contract.
    src = (
        "def done(self, req):\n"
        "    self.resource.release(req)\n"
    )
    assert lint_source(src) == []


def test_dooc002_dropped_prefetch_flags():
    src = (
        "def warm(store, iv):\n"
        "    store.prefetch(iv)\n"
    )
    assert codes(lint_source(src)) == [("DOOC002", 2, 4)]


# -- DOOC003: blocking calls under a lock ------------------------------------


def test_dooc003_sleep_under_lock_flags():
    src = (
        "import time\n"
        "def poll(self):\n"
        "    with self._lock:\n"
        "        time.sleep(0.1)\n"
    )
    assert codes(lint_source(src)) == [("DOOC003", 4, 8)]


def test_dooc003_untimed_wait_under_lock_flags():
    src = (
        "def park(self):\n"
        "    with self.cond:\n"
        "        self.cond.wait()\n"
    )
    assert codes(lint_source(src)) == [("DOOC003", 3, 8)]


def test_dooc003_timed_wait_is_clean():
    src = (
        "def park(self):\n"
        "    with self.cond:\n"
        "        self.cond.wait(0.05)\n"
    )
    assert lint_source(src) == []


def test_dooc003_sleep_outside_lock_is_clean():
    src = (
        "import time\n"
        "def backoff(self):\n"
        "    time.sleep(0.1)\n"
    )
    assert lint_source(src) == []


# -- DOOC004: trace-event vocabulary -----------------------------------------


def test_dooc004_unknown_event_name_flags():
    src = (
        "def note(tracer):\n"
        '    tracer.instant(0, "lane", "cat", "totally_unknown_event")\n'
    )
    assert codes(lint_source(src)) == [("DOOC004", 2, 37)]


def test_dooc004_vocabulary_event_is_clean():
    src = (
        "def note(tracer):\n"
        '    tracer.instant(0, "lane", "cat", "spill")\n'
    )
    assert lint_source(src) == []


# -- DOOC000 + framework -----------------------------------------------------


# -- DOOC005: non-atomic durable writes --------------------------------------


def test_dooc005_bare_open_on_ckpt_flags():
    src = (
        "def save(path, data):\n"
        "    with open(str(path) + '.ckpt', 'wb') as fh:\n"
        "        fh.write(data)\n"
    )
    assert codes(lint_source(src, select=["DOOC005"])) == [("DOOC005", 2, 9)]


def test_dooc005_write_bytes_on_blk_flags():
    src = (
        "from pathlib import Path\n"
        "def save(path, data):\n"
        "    Path(str(path) + '.blk').write_bytes(data)\n"
    )
    assert codes(lint_source(src, select=["DOOC005"])) == [("DOOC005", 3, 4)]


def test_dooc005_reads_and_nondurable_writes_are_clean():
    src = (
        "from pathlib import Path\n"
        "def roundtrip(path, data):\n"
        "    with open(str(path) + '.ckpt', 'rb') as fh:\n"
        "        old = fh.read()\n"
        "    Path('notes.txt').write_text('hi')\n"
        "    return old\n"
    )
    assert lint_source(src, select=["DOOC005"]) == []


def test_dooc005_atomic_write_implementation_is_exempt():
    src = (
        "import os, tempfile\n"
        "def atomic_write(path, data):\n"
        "    fd, tmp = tempfile.mkstemp(dir='.')\n"
        "    with os.fdopen(fd, 'wb') as fh:\n"
        "        fh.write(data)\n"
        "        os.fsync(fh.fileno())\n"
        "    os.replace(tmp, str(path) + '.blk')\n"
    )
    assert lint_source(src, select=["DOOC005"]) == []


def test_dooc005_relaxed_under_tests_dir(tmp_path):
    torn = (
        "def torn(path):\n"
        "    with open(str(path) + '.blk', 'wb') as fh:\n"
        "        fh.write(b'half')\n"
    )
    test_file = tmp_path / "tests" / "test_torn.py"
    test_file.parent.mkdir()
    test_file.write_text(torn)
    assert lint_file(test_file) == []  # crash-injection tests tear on purpose
    assert codes(lint_file(test_file, strict=True)) == [("DOOC005", 2, 9)]
    assert "DOOC005" in DEFAULT_PATH_RELAXATIONS["tests"]


def test_unparseable_file_reports_dooc000():
    vs = lint_source("def broken(:\n")
    assert [v.code for v in vs] == ["DOOC000"]


def test_noqa_suppresses_named_code():
    src = (
        "def leaky(store, iv):\n"
        "    ticket, effects = store.request_read(iv)  # dooc: noqa[DOOC001]\n"
        "    return effects\n"
    )
    assert lint_source(src) == []


def test_noqa_bare_suppresses_everything_on_the_line():
    src = (
        "def driver(store, ticket):\n"
        "    store.release(ticket)  # dooc: noqa\n"
    )
    assert lint_source(src) == []


def test_noqa_for_other_code_does_not_suppress():
    src = (
        "def driver(store, ticket):\n"
        "    store.release(ticket)  # dooc: noqa[DOOC001]\n"
    )
    assert [v.code for v in lint_source(src)] == ["DOOC002"]


def test_select_restricts_rules():
    src = (
        "def leaky(store, iv):\n"
        "    ticket, effects = store.request_read(iv)\n"
        "    store.prefetch(iv)\n"
    )
    assert [v.code for v in lint_source(src, select=["DOOC002"])] == ["DOOC002"]


def test_unknown_code_rejected():
    with pytest.raises(ValueError, match="DOOC999"):
        lint_source("x = 1\n", select=["DOOC999"])


def test_registry_has_the_documented_rules():
    assert set(RULES) == {"DOOC001", "DOOC002", "DOOC003", "DOOC004",
                          "DOOC005", "DOOC006", "DOOC007", "DOOC013"}


# -- DOOC006: raw shared-memory construction ---------------------------------


def test_dooc006_raw_shared_memory_flags():
    src = (
        "from multiprocessing import shared_memory\n"
        "def grab():\n"
        "    return shared_memory.SharedMemory(name='x', create=True, "
        "size=64)\n"
    )
    assert codes(lint_source(src)) == [("DOOC006", 3, 11)]


def test_dooc006_bare_name_call_flags():
    src = (
        "from multiprocessing.shared_memory import SharedMemory\n"
        "shm = SharedMemory(name='x')\n"
    )
    assert codes(lint_source(src)) == [("DOOC006", 2, 6)]


def test_dooc006_pool_module_is_exempt():
    src = "shm = shared_memory.SharedMemory(name='x', create=True, size=8)\n"
    assert lint_source(src, path="src/repro/core/shm.py") == []
    assert codes(lint_source(src, path="src/repro/core/engine.py")) == [
        ("DOOC006", 1, 6)]


def test_dooc006_segment_pool_usage_is_clean():
    src = (
        "from repro.core.shm import SegmentPool, attach_view\n"
        "def ok(pool, handle):\n"
        "    name = pool.allocate(4096)\n"
        "    return name, attach_view(handle)\n"
    )
    assert lint_source(src) == []


def test_violation_render_and_json_roundtrip():
    v = Violation("DOOC001", "a.py", 3, 4, "leaked ticket")
    assert v.render() == "a.py:3:4: DOOC001 leaked ticket"
    assert v.to_json()["code"] == "DOOC001"


def test_path_relaxations_apply_to_tests_dir(tmp_path):
    leaky = (
        "def leaky(store, iv):\n"
        "    ticket, effects = store.request_read(iv)\n"
    )
    test_file = tmp_path / "tests" / "test_x.py"
    test_file.parent.mkdir()
    test_file.write_text(leaky)
    assert lint_file(test_file) == []          # DOOC001 relaxed under tests/
    assert codes(lint_file(test_file, strict=True)) == [("DOOC001", 2, 4)]
    assert "DOOC001" in DEFAULT_PATH_RELAXATIONS["tests"]


# -- the shipped tree is the ultimate fixture --------------------------------


def test_shipped_src_tree_is_clean():
    assert lint_paths([REPO / "src"]) == []


def test_shipped_tests_and_benchmarks_are_clean():
    assert lint_paths([REPO / "tests", REPO / "benchmarks",
                       REPO / "examples"]) == []


# -- CLI ---------------------------------------------------------------------


def test_cli_exit_zero_on_clean_tree():
    assert lint_main([str(REPO / "src" / "repro" / "analysis")]) == 0


def test_cli_flags_seeded_file_with_json(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "def leaky(store, iv):\n"
        "    ticket, effects = store.request_read(iv)\n"
    )
    rc = lint_main(["--json", str(bad)])
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    assert [v["code"] for v in payload["violations"]] == ["DOOC001"]
    assert payload["files"] == 1
    assert payload["wall_time_s"] >= 0
    assert payload["deep"] is False


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("DOOC001", "DOOC002", "DOOC003", "DOOC004"):
        assert code in out


def test_module_entry_point_runs():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint",
         str(REPO / "src" / "repro" / "analysis")],
        capture_output=True, text=True,
        cwd=REPO, env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stderr
