"""The HTTP surface: routing, status codes, long-poll, drain."""

import json
import threading
import urllib.request

import pytest

from repro.server.client import JobClient, ServerError
from repro.server.http import DoocJobServer
from repro.server.jobs import JobSpec, JobState
from repro.server.manager import ServerConfig


@pytest.fixture
def server(tmp_path):
    srv = DoocJobServer(("127.0.0.1", 0), ServerConfig(
        memory_budget=8 * 2**20,
        max_concurrent=2,
        engine={"memory_budget_per_node": 32 * 2**20},
        work_dir=tmp_path / "jobs",
    )).start()
    thread = threading.Thread(target=srv.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    try:
        yield srv
    finally:
        srv.drain(timeout=15)
        srv.server_close()
        thread.join(timeout=10)


@pytest.fixture
def client(server):
    return JobClient(f"http://127.0.0.1:{server.port}")


def _spec(**kw):
    kw.setdefault("tenant", "t")
    kw.setdefault("kind", "jacobi")
    kw.setdefault("n", 64)
    kw.setdefault("parts", 2)
    kw.setdefault("iterations", 6)
    return JobSpec(**kw)


class TestRoutes:
    def test_healthz_and_stats(self, client):
        assert client.healthy()
        stats = client.stats()
        assert stats["memory_budget"] == 8 * 2**20
        assert "metrics" in stats

    def test_submit_longpoll_trace(self, client):
        rec = client.submit(_spec())
        assert rec["state"] in ("queued", "running")
        final = client.status(rec["id"], wait=60)
        assert final["state"] == "done"
        assert final["outcome"]["digest"]
        assert final["spec"]["kind"] == "jacobi"  # verbose record
        trace = client.trace(rec["id"])
        assert [e["event"] for e in trace["events"]] == \
            ["job_submit", "job_start", "job_done"]

    def test_rejection_is_429_with_reason(self, server, client):
        rec = client.submit(_spec(working_set_bytes=10**12))
        assert rec["state"] == "rejected"
        assert "can never be scheduled" in rec["outcome"]["reason"]
        # and the transport-level code really is 429
        body = json.dumps(_spec(working_set_bytes=10**12).to_json())
        req = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/jobs",
            data=body.encode(), headers={"Content-Type": "application/json"},
            method="POST")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=10)
        assert err.value.code == 429

    def test_bad_spec_is_400(self, client):
        with pytest.raises(ServerError) as err:
            client._request("POST", "/jobs", {"tenant": "t", "kind": "cg",
                                              "bogus_field": 1})
        assert err.value.status == 400
        assert "bogus_field" in err.value.payload["error"]

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServerError) as err:
            client.status("ghost")
        assert err.value.status == 404

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServerError) as err:
            client._request("GET", "/nope")
        assert err.value.status == 404

    def test_cancel_running_then_conflict(self, client):
        rec = client.submit(_spec(kind="spmv", n=96, iterations=400,
                                  checkpoint_every=2))
        cancelled = client.cancel(rec["id"])
        assert cancelled["id"] == rec["id"]
        final = client.wait_terminal(rec["id"], timeout=30)
        assert final["state"] == "cancelled"
        with pytest.raises(ServerError) as err:
            client.cancel(rec["id"])
        assert err.value.status == 409

    def test_jobs_listing(self, client):
        a = client.submit(_spec())
        b = client.submit(_spec(working_set_bytes=10**12))
        ids = {r["id"] for r in client.jobs()}
        assert {a["id"], b["id"]} <= ids

    def test_drain_endpoint(self, server, client):
        rec = client.submit(_spec(kind="spmv", n=96, iterations=400,
                                  checkpoint_every=2))
        assert client.drain()["draining"] is True
        # the server drains in the background; wait for the manifest
        deadline = threading.Event()
        for _ in range(200):
            if server.drain_manifest is not None:
                break
            deadline.wait(0.1)
        assert server.drain_manifest is not None
        assert server.drain_manifest["undrained"] == []
        assert server.manager.get(rec["id"]).state in (
            JobState.PREEMPTED, JobState.DONE)
