"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import Environment, Event, Interrupt, SimulationError
from repro.sim.kernel import AllOf


def test_timeout_ordering_and_values():
    env = Environment()
    log = []

    def proc(name, delay):
        got = yield env.timeout(delay, value=delay * 10)
        log.append((env.now, name, got))

    env.process(proc("a", 3.0))
    env.process(proc("b", 1.0))
    env.process(proc("c", 2.0))
    env.run()
    assert log == [(1.0, "b", 10.0), (2.0, "c", 20.0), (3.0, "a", 30.0)]


def test_tie_break_is_fifo_deterministic():
    env = Environment()
    order = []

    def proc(i):
        yield env.timeout(5.0)
        order.append(i)

    for i in range(10):
        env.process(proc(i))
    env.run()
    assert order == list(range(10))


def test_process_return_value_propagates():
    env = Environment()

    def child():
        yield env.timeout(2.0)
        return 42

    def parent():
        value = yield env.process(child())
        return value + 1

    p = env.process(parent())
    assert env.run(p) == 43
    assert env.now == 2.0


def test_waiting_on_already_processed_event():
    env = Environment()
    ev = env.event()
    ev.succeed("x")
    env.run()  # processes ev
    results = []

    def proc():
        got = yield ev
        results.append((env.now, got))

    env.process(proc())
    env.run()
    assert results == [(0.0, "x")]


def test_failed_event_raises_in_process():
    env = Environment()

    def proc():
        ev = env.event()
        ev.fail(ValueError("boom"))
        try:
            yield ev
        except ValueError as exc:
            return f"caught {exc}"

    p = env.process(proc())
    assert env.run(p) == "caught boom"


def test_unhandled_process_failure_surfaces():
    env = Environment()

    def proc():
        yield env.timeout(1.0)
        raise RuntimeError("unhandled")

    env.process(proc())
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(100.0)
        except Interrupt as intr:
            log.append((env.now, intr.cause))

    def attacker(target):
        yield env.timeout(4.0)
        target.interrupt("preempted")

    v = env.process(victim())
    env.process(attacker(v))
    env.run()
    assert log == [(4.0, "preempted")]


def test_interrupt_finished_process_is_error():
    env = Environment()

    def quick():
        yield env.timeout(1.0)

    p = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_all_of_collects_values_in_order():
    env = Environment()

    def proc():
        evs = [env.timeout(3.0, "a"), env.timeout(1.0, "b"), env.timeout(2.0, "c")]
        values = yield env.all_of(evs)
        return values

    p = env.process(proc())
    assert env.run(p) == ["a", "b", "c"]
    assert env.now == 3.0


def test_any_of_returns_first():
    env = Environment()

    def proc():
        fast = env.timeout(1.0, "fast")
        slow = env.timeout(5.0, "slow")
        winner, value = yield env.any_of([fast, slow])
        assert winner is fast
        return value

    p = env.process(proc())
    assert env.run(p) == "fast"
    assert env.now == 1.0


def test_all_of_empty_fires_immediately():
    env = Environment()

    def proc():
        values = yield AllOf(env, [])
        return values

    p = env.process(proc())
    assert env.run(p) == []
    assert env.now == 0.0


def test_run_until_time_stops_clock_exactly():
    env = Environment()
    env.process(iter_timeouts(env))
    env.run(until=2.5)
    assert env.now == 2.5


def iter_timeouts(env):
    for _ in range(10):
        yield env.timeout(1.0)


def test_run_until_past_deadline_rejected():
    env = Environment()
    env.run(until=5.0)
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_yielding_non_event_is_an_error():
    env = Environment()

    def bad():
        yield 3

    env.process(bad())
    with pytest.raises(SimulationError, match="must yield Events"):
        env.run()


def test_deadlock_detection_when_awaiting_event():
    env = Environment()

    def stuck():
        yield env.event()  # never triggered

    p = env.process(stuck())
    with pytest.raises(SimulationError, match="dry"):
        env.run(p)
