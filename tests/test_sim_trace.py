"""Tests for the interval trace recorder and ASCII Gantt rendering."""

import pytest

from repro.sim.trace import Interval, TraceRecorder, render_gantt


def test_busy_time_merges_overlaps():
    tr = TraceRecorder()
    tr.interval("n0", "io", "a", 0.0, 5.0)
    tr.interval("n0", "io", "b", 3.0, 8.0)   # overlaps -> union [0, 8)
    tr.interval("n0", "io", "c", 10.0, 12.0)
    assert tr.busy_time(lane="n0", kind="io") == pytest.approx(10.0)


def test_busy_time_filters_by_kind_and_lane():
    tr = TraceRecorder()
    tr.interval("n0", "io", "a", 0.0, 4.0)
    tr.interval("n0", "compute", "b", 0.0, 2.0)
    tr.interval("n1", "io", "c", 0.0, 1.0)
    # Union semantics across lanes: [0,4) U [0,1) = [0,4).
    assert tr.busy_time(kind="io") == pytest.approx(4.0)
    assert tr.busy_time(lane="n0") == pytest.approx(4.0)
    assert tr.busy_time(lane="n1", kind="compute") == 0.0


def test_counts_and_lanes():
    tr = TraceRecorder()
    tr.interval("n1", "load", "A00", 0.0, 1.0)
    tr.interval("n0", "load", "A01", 0.0, 1.0)
    tr.interval("n0", "mult", "x00", 1.0, 2.0)
    assert tr.lanes() == ["n0", "n1"]
    assert tr.count(kind="load") == 2
    assert tr.count(lane="n0") == 2


def test_invalid_interval_rejected():
    tr = TraceRecorder()
    with pytest.raises(ValueError):
        tr.interval("n0", "io", "bad", 5.0, 1.0)


def test_disabled_recorder_is_noop():
    tr = TraceRecorder(enabled=False)
    tr.interval("n0", "io", "a", 0.0, 1.0)
    tr.point("n0", "sync", "s", 0.5)
    assert tr.intervals == [] and tr.points == []


def test_makespan():
    tr = TraceRecorder()
    assert tr.makespan() == 0.0
    tr.interval("n0", "io", "a", 1.0, 9.0)
    tr.interval("n1", "io", "b", 0.0, 4.0)
    assert tr.makespan() == 9.0


def test_render_gantt_has_one_row_per_lane():
    ivs = [
        Interval("P1", "load", "L(A00)", 0.0, 2.0),
        Interval("P1", "mult", "x00", 2.0, 3.0),
        Interval("P2", "load", "L(A10)", 0.0, 2.0),
    ]
    art = render_gantt(ivs, width=40)
    lines = art.splitlines()
    assert len(lines) == 3  # header + 2 lanes
    assert lines[1].startswith("P1")
    assert "l" in lines[1] and "m" in lines[1]
    assert "m" not in lines[2]


def test_render_gantt_empty():
    assert render_gantt([]) == "(empty trace)"


def test_render_gantt_glyph_override():
    ivs = [Interval("P1", "load", "L", 0.0, 1.0)]
    art = render_gantt(ivs, kind_glyphs={"load": "L"})
    assert "L" in art
