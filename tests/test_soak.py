"""Soak tests: the engine under sustained pressure must neither deadlock
nor corrupt results."""

import numpy as np
import pytest

from repro.core import DOoCEngine
from repro.spmv.csrfile import serialize_csr
from repro.spmv.generator import choose_gap_parameter, gap_uniform_csr
from repro.spmv.partition import GridPartition
from repro.spmv.program import build_iterated_spmv
from repro.spmv.reference import iterated_spmv_reference


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_tight_memory_many_iterations(tmp_path, seed):
    """5 iterations, 2 nodes, 2 workers each, budget ~2 sub-matrices:
    heavy churn of loads, spills, remote fetches, and GC."""
    n, k, iters = 200, 4, 5
    rng = np.random.default_rng(seed)
    p = GridPartition(n, k)
    m = gap_uniform_csr(n, n, choose_gap_parameter(n, 25.0), rng)
    blocks = p.split_matrix(m)
    x0 = rng.normal(size=n)
    result = build_iterated_spmv(
        blocks, p.split_vector(x0), iterations=iters, n_nodes=2,
        policy="interleaved")
    a_bytes = max(len(serialize_csr(b)) for b in blocks.values())
    eng = DOoCEngine(
        n_nodes=2, workers_per_node=2,
        memory_budget_per_node=2 * a_bytes + 40 * n,
        scratch_dir=tmp_path, gc_arrays=True,
    )
    report = eng.run(result.program, timeout=300)
    np.testing.assert_allclose(
        result.fetch_final(eng), iterated_spmv_reference(m, x0, iters),
        rtol=1e-8)
    # The run must genuinely have exercised the out-of-core machinery.
    assert report.total_loads > k * k  # matrices reloaded across iterations


def test_many_small_tasks_throughput(tmp_path):
    """A wide, shallow DAG: 60 independent tasks over 3 nodes, 3 workers
    each — exercises the dispatch path more than the storage path."""
    from repro.core import Program

    def bump(ins, outs, meta):
        (out,) = list(outs)
        (inp,) = list(ins)
        outs[out][:] = ins[inp] + meta["delta"]

    prog = Program("wide", default_block_elems=256)
    for i in range(60):
        prog.initial_array(f"x{i}", np.full(256, float(i)), home=i % 3)
        prog.array(f"y{i}", 256)
        prog.add_task(f"t{i}", bump, [f"x{i}"], [f"y{i}"], delta=0.5)
    eng = DOoCEngine(n_nodes=3, workers_per_node=3, scratch_dir=tmp_path)
    report = eng.run(prog, timeout=120)
    for i in range(60):
        np.testing.assert_allclose(eng.fetch(f"y{i}"), np.full(256, i + 0.5))
    # Affinity kept every task local: no remote fetches at all.
    assert report.total_remote_fetches == 0
