"""Failure injection: errors must surface, never hang the runtime."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DOoCEngine, Program
from repro.datacutter import (
    END_OF_STREAM,
    DataBuffer,
    Filter,
    FilterError,
    Layout,
    ThreadedRuntime,
)
from repro.sim import Environment, FlowNetwork, Interrupt, Link, Resource
from repro.util.rng import spawn


class TestDataCutterFailures:
    def test_error_in_init_surfaces(self):
        class BadInit(Filter):
            def init(self, ctx):
                raise RuntimeError("init failed")

            def process(self, ctx):
                pass

        layout = Layout("l")
        layout.add_filter("f", BadInit)
        with pytest.raises(FilterError) as exc:
            ThreadedRuntime(layout).run(timeout=20)
        assert "init failed" in repr(exc.value.cause)

    def test_error_in_finalize_surfaces(self):
        class BadFinalize(Filter):
            def process(self, ctx):
                pass

            def finalize(self, ctx):
                raise RuntimeError("finalize failed")

        layout = Layout("l")
        layout.add_filter("f", BadFinalize)
        with pytest.raises(FilterError):
            ThreadedRuntime(layout).run(timeout=20)

    def test_consumer_crash_does_not_hang_many_producers(self):
        class Src(Filter):
            outputs = ("out",)

            def process(self, ctx):
                for i in range(10_000):
                    ctx.write("out", DataBuffer(i))

        class CrashSoon(Filter):
            inputs = ("in",)

            def process(self, ctx):
                for _ in range(3):
                    ctx.read("in")
                raise ValueError("dead consumer")

        layout = Layout("l")
        layout.add_filter("src", Src, instances=3, replicable=True)
        layout.add_filter("dst", CrashSoon)
        layout.connect("src", "out", "dst", "in", capacity=2)
        with pytest.raises(FilterError):
            ThreadedRuntime(layout).run(timeout=30)

    def test_blocked_reader_unblocks_on_peer_crash(self):
        class Quiet(Filter):
            outputs = ("out",)

            def process(self, ctx):
                raise RuntimeError("producer died before writing")

        class Reader(Filter):
            inputs = ("in",)

            def process(self, ctx):
                ctx.read("in")  # would block forever without EOS-on-crash

        layout = Layout("l")
        layout.add_filter("p", Quiet)
        layout.add_filter("r", Reader)
        layout.connect("p", "out", "r", "in")
        with pytest.raises(FilterError):
            ThreadedRuntime(layout).run(timeout=30)


class TestEngineFailures:
    def test_worker_crash_multi_node_does_not_hang(self, tmp_path):
        def boom(ins, outs, meta):
            raise ValueError("kernel exploded")

        def ok(ins, outs, meta):
            outs["b"][:] = ins["x"]

        prog = Program("crash", default_block_elems=64)
        prog.initial_array("x", np.ones(64), home=0)
        prog.array("a", 64)
        prog.array("b", 64)
        prog.add_task("bad", boom, ["x"], ["a"])
        prog.add_task("good", ok, ["x"], ["b"])
        eng = DOoCEngine(n_nodes=2, scratch_dir=tmp_path)
        with pytest.raises(Exception):
            eng.run(prog, timeout=60)

    def test_missing_scratch_file_detected(self, tmp_path):
        prog = Program("missing", default_block_elems=8)
        prog.initial_from_scratch("ghost", 8, home=0)
        prog.array("y", 8)
        prog.add_task("t", lambda i, o, m: None, ["ghost"], ["y"])
        eng = DOoCEngine(n_nodes=1, scratch_dir=tmp_path)
        with pytest.raises(Exception, match="no backing file"):
            eng.run(prog, timeout=30)


class TestSimFailures:
    def test_interrupt_during_resource_wait_keeps_resource_sane(self):
        env = Environment()
        res = Resource(env, capacity=1)
        outcome = []

        def holder():
            req = yield res.request()
            yield env.timeout(10.0)
            res.release(req)

        def waiter():
            try:
                yield res.request()
            except Interrupt:
                outcome.append("interrupted")

        def attacker(target):
            yield env.timeout(1.0)
            target.interrupt()

        env.process(holder())
        w = env.process(waiter())
        env.process(attacker(w))
        env.run()
        assert outcome == ["interrupted"]
        # NOTE: the interrupted waiter's queued request remains in the FIFO
        # (it is granted at t=10 with nobody listening).  The resource
        # accounting itself must stay consistent:
        assert res.in_use <= res.capacity

    def test_failed_transfer_size_rejected_before_any_state_change(self):
        env = Environment()
        net = FlowNetwork(env)
        link = Link("l", 10.0)
        with pytest.raises(ValueError):
            net.transfer([link], -5)
        assert net.active_flow_count() == 0

    @given(seed=st.integers(0, 200))
    @settings(max_examples=30, deadline=None)
    def test_flow_network_conserves_bytes(self, seed):
        """Whatever the interleaving, completed bytes equal offered bytes."""
        env = Environment()
        net = FlowNetwork(env)
        links = [Link(f"l{i}", float(10 ** (i % 3))) for i in range(3)]
        rng = spawn(seed, "conserve")
        total = 0.0

        def go(delay, size, route):
            yield env.timeout(delay)
            yield net.transfer(route, size)

        for _ in range(12):
            size = float(rng.uniform(0.1, 50.0))
            total += size
            route = [links[i] for i in sorted(
                rng.choice(3, size=int(rng.integers(1, 4)), replace=False))]
            env.process(go(float(rng.uniform(0, 3)), size, route))
        env.run()
        assert net.bytes_completed == pytest.approx(total, rel=1e-9)
        assert net.active_flow_count() == 0
