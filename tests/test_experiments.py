"""Tests for the experiment runners and report rendering."""

import pytest

from repro.ci.cases import TABLE1_CASES
from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments import fig6, fig7, table1, table2, table34
from repro.experiments.report import ascii_chart, format_table, ratio


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbbb"], [[1, 2.5], ["xyz", 0.0001]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        widths = {len(l) for l in lines[1:]}
        assert len(widths) == 1  # all rows equally wide

    def test_ratio(self):
        assert ratio(2.0, 1.0) == "2.00x"
        assert ratio(0.0, 0.0) == "n/a"
        assert ratio(1.0, 0.0) == "inf"

    def test_ascii_chart_places_markers(self):
        chart = ascii_chart({"a": [(0, 1), (10, 100)]}, logy=True,
                            width=20, height=5)
        assert chart.count("a") >= 3  # 2 points + legend

    def test_ascii_chart_rejects_nonpositive_log(self):
        with pytest.raises(ValueError):
            ascii_chart({"a": [(0, 0.0)]}, logy=True)

    def test_ascii_chart_empty(self):
        assert ascii_chart({}) == "(no data)"


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "fig1", "table1", "table2", "table3", "table4",
            "fig34", "fig5", "fig6", "fig7", "colocated", "energy",
        }

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("table9")

    def test_fig1_runs(self):
        results, text = run_experiment("fig1")
        assert "latency" in text
        assert len(results) == 5


class TestTable1:
    def test_small_run(self):
        rows = table1.run(cases=TABLE1_CASES[:1], nnz_samples=5, seed=0)
        [row] = rows
        assert row.dimension == pytest.approx(4.66e7, rel=0.005)
        assert row.nnz_estimate > row.dimension  # > 1 nonzero per row
        text = table1.render(rows)
        assert "test276" in text

    def test_deterministic(self):
        a = table1.run(cases=TABLE1_CASES[:1], nnz_samples=3, seed=5)
        b = table1.run(cases=TABLE1_CASES[:1], nnz_samples=3, seed=5)
        assert a[0].nnz_estimate == b[0].nnz_estimate


class TestTable2:
    def test_rows_and_render(self):
        rows = table2.run()
        assert len(rows) == 4
        assert all(r.t_total_s == pytest.approx(r.published_t_total_s, rel=0.3)
                   for r in rows)
        text = table2.render(rows)
        assert "test18336" in text and "86%" in text


class TestTable34:
    def test_small_sweep_simple(self):
        rows = table34.run("simple", node_counts=(1, 4), seed=0)
        assert [r.measured.nodes for r in rows] == [1, 4]
        text = table34.render(rows, "simple")
        assert "Table III" in text

    def test_small_sweep_interleaved(self):
        rows = table34.run("interleaved", node_counts=(1,), seed=0)
        text = table34.render(rows, "interleaved")
        assert "Table IV" in text
        # 1-node interleaved: fully overlapped, near the paper's 0%.
        assert rows[0].measured.non_overlapped_fraction < 0.05


class TestFig6:
    def test_relative_times_exceed_one(self):
        points = fig6.run(node_counts=(1,), seed=0)
        assert len(points) == 2  # both policies
        for p in points:
            # A single node cannot reach 20 GB/s: far above the bound.
            assert p.relative_time > 5
            assert p.published_relative_time > 5
        text = fig6.render(points)
        assert "t/opt" in text


class TestFig7:
    def test_crossover_shape(self):
        result = fig7.run(node_counts=(9,), seed=0)
        # 9-node testbed cost comparable to (slightly below) test1128.
        (dim, cpuh) = result.testbed_points[0]
        hopper_1128 = result.hopper_points[1][1]
        assert cpuh == pytest.approx(hopper_1128, rel=0.35)
        # The star undercuts the comparable Hopper run (the paper's claim).
        assert result.star_saving_vs_hopper > 0.15
        text = fig7.render(result)
        assert "star" in text


class TestFig34:
    def test_command_and_dependency_counts(self):
        from repro.experiments import fig34

        result = fig34.run(k=3, iterations=2)
        # The paper: "9 sub-matrix sub-vector multiplications and 6
        # sub-vector additions are necessary at each iteration".
        assert result.multiplies_per_iteration == 9
        assert result.pairwise_additions_per_iteration == 6
        # Every mult of iteration 2 depends on exactly one sum of iter 1.
        for dst, srcs in result.dag.preds.items():
            if dst.startswith("mult_2_"):
                assert len(srcs) == 1 and next(iter(srcs)).startswith("sum_1_")
        assert result.dag.critical_path_length() == 4
        text = fig34.render(result)
        assert "Fig. 3" in text and "Fig. 4" in text

    def test_registry_integration(self):
        _, text = run_experiment("fig34")
        assert "9 multiplies" in text
