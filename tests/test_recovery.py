"""Permanent node-loss recovery: detection, lineage replay, checkpoint/restart.

Covers the whole recovery stack: the heartbeat state machine, the minimal
reconstruction planner, crash-atomic writes (with injected mid-write
crashes), directory eviction, engine-level node-kill soaks asserting
bit-identical results, named ``NodeLostError`` failure paths, and resumed
solver drives that must reproduce an uninterrupted run byte for byte.

The kill placement is seeded from ``DOOC_FAULT_SEED`` so CI's seed matrix
drives different corpses and death points through the same assertions.
"""

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.core import DOoCEngine, Program
from repro.core.array import ArrayDesc
from repro.core.dag import TaskDAG
from repro.core.directory import DirectoryClient, LookupFailed
from repro.core.errors import (
    DoocError,
    NodeLostError,
    RecoveryError,
    StallError,
)
from repro.core.iofilter import read_block, write_block
from repro.core.task import TaskSpec
from repro.faults.plan import FaultPlan
from repro.recovery import (
    ALIVE,
    DEAD,
    SUSPECT,
    CheckpointManager,
    LineageLog,
    MembershipConfig,
    MembershipTracker,
    plan_reconstruction,
    restore_rng,
    rng_state,
)
from repro.util.atomicio import atomic_write

FAULT_SEED = int(os.environ.get("DOOC_FAULT_SEED", "0"))

#: tight detector so kill tests resolve in well under a second
FAST_DETECT = MembershipConfig(heartbeat_s=0.02, suspect_after_s=0.1,
                               dead_after_s=0.25)


# -- membership state machine ------------------------------------------------


class TestMembership:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            MembershipConfig(heartbeat_s=0.0)
        with pytest.raises(ValueError):
            MembershipConfig(heartbeat_s=0.2, suspect_after_s=0.1,
                             dead_after_s=1.0)
        with pytest.raises(ValueError):
            MembershipConfig(heartbeat_s=0.05, suspect_after_s=0.5,
                             dead_after_s=0.5)
        assert MembershipConfig().poll_s == MembershipConfig().heartbeat_s

    def test_silence_escalates_alive_suspect_dead(self):
        t = MembershipTracker(2, MembershipConfig(0.05, 0.4, 1.2))
        t.beat(0, 0.0)
        t.beat(1, 0.0)
        assert t.check(0.3) == []
        assert t.check(0.5) == [(0, SUSPECT), (1, SUSPECT)]
        t.beat(0, 0.6)  # node 0 recovers; node 1 stays silent
        assert t.state(0) == ALIVE
        t.beat(0, 1.2)  # node 0 keeps beating
        assert t.check(1.3) == [(1, DEAD)]
        assert t.dead_nodes() == [1]
        assert t.quarantined() == [1]

    def test_one_poll_can_fire_both_transitions(self):
        t = MembershipTracker(1, MembershipConfig(0.05, 0.4, 1.2))
        t.beat(0, 0.0)
        assert t.check(5.0) == [(0, SUSPECT), (0, DEAD)]

    def test_dead_is_absorbing(self):
        t = MembershipTracker(1, MembershipConfig(0.05, 0.4, 1.2))
        t.beat(0, 0.0)
        t.check(5.0)
        assert t.beat(0, 5.1) is None  # the zombie's late beat is ignored
        assert t.state(0) == DEAD
        assert t.check(10.0) == []

    def test_suspect_recovery_reported_once(self):
        t = MembershipTracker(1, MembershipConfig(0.05, 0.4, 1.2))
        t.beat(0, 0.0)
        t.check(0.5)
        assert t.state(0) == SUSPECT
        assert t.beat(0, 0.6) == ALIVE
        assert t.beat(0, 0.7) is None

    def test_snapshot_and_validation(self):
        t = MembershipTracker(2, MembershipConfig(0.05, 0.4, 1.2))
        t.beat(0, 1.0)
        snap = t.snapshot(1.5)
        assert snap[0] == {"state": ALIVE, "silent_s": 0.5}
        with pytest.raises(ValueError):
            t.beat(7, 0.0)
        with pytest.raises(ValueError):
            MembershipTracker(0)


# -- lineage planner ---------------------------------------------------------


def chain_dag():
    """a --t1--> b --t2--> c, plus an unrelated d --t3--> e."""
    tasks = [
        TaskSpec("t1", None, ("a",), ("b",)),
        TaskSpec("t2", None, ("b",), ("c",)),
        TaskSpec("t3", None, ("d",), ("e",)),
    ]
    return TaskDAG(tasks, ["a", "d"])


class TestReconstructionPlan:
    def test_initial_arrays_reseed_not_replay(self):
        dag = chain_dag()
        plan = plan_reconstruction(dag, {"a": 0, "b": 1, "c": 1, "d": 1,
                                         "e": 1}, {}, 0)
        assert plan.reseed == ["a"]
        assert plan.replay == []
        assert plan.lost_arrays == ["a"]

    def test_completed_producer_of_needed_array_replays(self):
        dag = chain_dag()
        dag.mark_complete("t1")  # b exists, c does not: t2 still needs b
        plan = plan_reconstruction(
            dag, {"a": 1, "b": 0, "c": 1, "d": 1, "e": 1},
            {"t2": 1}, 0)
        assert plan.replay == ["t1"]
        assert plan.reseed == []

    def test_fully_consumed_intermediate_stays_dead(self):
        dag = chain_dag()
        dag.mark_complete("t1")
        dag.mark_complete("t2")  # b's only consumer completed: b unneeded...
        plan = plan_reconstruction(
            dag, {"a": 1, "b": 0, "c": 1, "d": 1, "e": 1}, {}, 0)
        assert plan.replay == []  # ...so nothing replays — minimal set

    def test_terminal_result_is_always_needed(self):
        dag = chain_dag()
        dag.mark_complete("t1")
        dag.mark_complete("t2")
        plan = plan_reconstruction(
            dag, {"a": 1, "b": 1, "c": 0, "d": 1, "e": 1}, {}, 0)
        assert plan.replay == ["t2"]  # c has no consumer: the caller will fetch

    def test_transitive_closure_through_collected_inputs(self):
        dag = chain_dag()
        dag.mark_complete("t1")
        dag.mark_complete("t2")
        # c lost with node 0; b was garbage-collected cluster-wide, so
        # replaying t2 pulls t1 back in, in topological order.
        plan = plan_reconstruction(
            dag, {"a": 1, "b": 1, "c": 0, "d": 1, "e": 1}, {}, 0,
            collected={"b"})
        assert plan.replay == ["t1", "t2"]

    def test_incomplete_tasks_reassign(self):
        dag = chain_dag()
        plan = plan_reconstruction(
            dag, {"a": 1, "b": 1, "c": 1, "d": 1, "e": 1},
            {"t1": 0, "t3": 1}, 0)
        assert plan.reassign == ["t1"]

    def test_lost_blocks_counted(self):
        dag = chain_dag()
        descs = {"a": ArrayDesc("a", length=100, block_elems=30)}
        plan = plan_reconstruction(
            dag, {"a": 0, "b": 1, "c": 1, "d": 1, "e": 1}, {}, 0,
            descs=descs)
        assert plan.lost_blocks == 4


class TestLineageLog:
    def test_roundtrip(self, tmp_path):
        log = LineageLog(tmp_path / "lineage.jsonl")
        log.record("task", name="t1", node=0, inputs=["a"], outputs=["b"])
        log.record("complete", name="t1")
        log.sync()
        log.close()
        records = LineageLog.read(tmp_path / "lineage.jsonl")
        assert [r["kind"] for r in records] == ["task", "complete"]
        assert records[0]["outputs"] == ["b"]
        log.close()  # idempotent


# -- crash-atomic writes -----------------------------------------------------


class TestAtomicWrite:
    def test_full_replace(self, tmp_path):
        p = tmp_path / "x.blk"
        atomic_write(p, b"one")
        atomic_write(p, b"two")
        assert p.read_bytes() == b"two"

    def test_offset_splice_and_padding(self, tmp_path):
        p = tmp_path / "x.blk"
        atomic_write(p, b"zz", offset=4)  # seek-past-end zero-pads
        assert p.read_bytes() == b"\x00\x00\x00\x00zz"
        atomic_write(p, b"AB", offset=1)
        assert p.read_bytes() == b"\x00AB\x00zz"
        with pytest.raises(ValueError):
            atomic_write(p, b"x", offset=-1)

    def test_crash_before_rename_leaves_old_content(self, tmp_path,
                                                    monkeypatch):
        p = tmp_path / "x.blk"
        atomic_write(p, b"good")

        def dying_replace(src, dst):
            raise OSError("simulated crash at the rename barrier")

        monkeypatch.setattr("repro.util.atomicio.os.replace", dying_replace)
        with pytest.raises(OSError, match="simulated crash"):
            atomic_write(p, b"half-written garbage")
        monkeypatch.undo()
        assert p.read_bytes() == b"good"  # reader never sees a torn file
        assert list(tmp_path.iterdir()) == [p]  # temp file cleaned up

    def test_block_write_is_crash_atomic(self, tmp_path, monkeypatch):
        """Regression: a block spill that dies mid-write must not poison
        the array file a later recovery reads back."""
        desc = ArrayDesc("a", length=8, block_elems=4)
        first = np.arange(4, dtype=np.float64)
        write_block(tmp_path, desc, 0, first)

        def dying_replace(src, dst):
            raise OSError("power loss")

        monkeypatch.setattr("repro.util.atomicio.os.replace", dying_replace)
        with pytest.raises(OSError, match="power loss"):
            write_block(tmp_path, desc, 1, np.ones(4))
        monkeypatch.undo()
        np.testing.assert_array_equal(read_block(tmp_path, desc, 0), first)


# -- directory eviction ------------------------------------------------------


class TestDirectoryEviction:
    def test_probes_skip_evicted_peers(self):
        d = DirectoryClient(0, 6, np.random.default_rng(FAULT_SEED))
        d.evict(3)
        d.evict(5)
        assert d.start_lookup("a", 0) is None
        probed = set()
        for _ in range(3):  # the three live peers: 1, 2, 4
            peer = d.next_probe("a", 0)
            probed.add(peer)
            d.probe_miss("a", 0)
        assert probed == {1, 2, 4}

    def test_walk_bounded_by_live_peers(self):
        n = 6
        d = DirectoryClient(0, n, np.random.default_rng(FAULT_SEED))
        d.evict(1)
        d.start_lookup("a", 0)
        probes = 0
        with pytest.raises(LookupFailed):
            while True:
                d.next_probe("a", 0)
                probes += 1
                d.probe_miss("a", 0)
        n_live = n - 1  # one corpse
        assert probes <= n_live - 1

    def test_eviction_drops_cached_owner(self):
        d = DirectoryClient(0, 4, np.random.default_rng(0))
        d.start_lookup("a", 0)
        d.next_probe("a", 0)
        d.probe_hit("a", 0, owner=2)
        assert d.start_lookup("a", 0) == 2  # cached
        d.evict(2)
        assert d.start_lookup("a", 0) is None  # re-homed: walk again

    def test_in_flight_walk_fails_over_past_the_corpse(self):
        d = DirectoryClient(0, 4, np.random.default_rng(FAULT_SEED))
        d.start_lookup("a", 0)
        first = d.next_probe("a", 0)
        d.probe_miss("a", 0)
        dead = next(n for n in range(1, 4) if n != first)
        d.evict(dead)  # dies mid-walk
        remaining = set()
        while True:
            try:
                peer = d.next_probe("a", 0)
            except LookupFailed:
                break
            remaining.add(peer)
            d.probe_miss("a", 0)
        assert dead not in remaining

    def test_evict_validation(self):
        d = DirectoryClient(0, 4, np.random.default_rng(0))
        with pytest.raises(DoocError):
            d.evict(0)  # cannot evict self
        with pytest.raises(DoocError):
            d.evict(9)
        d.evict(1)
        d.evict(1)  # idempotent


# -- checkpoint manager ------------------------------------------------------


class TestCheckpointManager:
    def test_roundtrip_preserves_exact_floats(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        x = np.random.default_rng(0).standard_normal(64)
        mgr.save(3, {"x": x, "scalars": np.array([1e-17, np.pi])},
                 {"iteration": 3})
        ckpt = CheckpointManager(tmp_path).load(3)
        assert ckpt.step == 3
        assert ckpt.arrays["x"].tobytes() == x.tobytes()
        assert ckpt.extra == {"iteration": 3}

    def test_load_latest_falls_back_past_corrupt_manifest(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        mgr.save(1, {"x": np.ones(4)})
        mgr.save(2, {"x": np.full(4, 2.0)})
        # Tear the newest manifest the way a dying disk would.
        (tmp_path / "ckpt-00000002.ckpt").write_text('{"step": 2, "blo')
        ckpt = CheckpointManager(tmp_path).load_latest()
        assert ckpt is not None and ckpt.step == 1

    def test_checksum_mismatch_rejected(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        mgr.save(1, {"x": np.ones(4)})
        blk = next(tmp_path.glob("ckpt-00000001-*.blk"))
        blk.write_bytes(b"\x00" * blk.stat().st_size)  # silent bit rot
        with pytest.raises(RecoveryError, match="checksum"):
            CheckpointManager(tmp_path).load(1)
        assert CheckpointManager(tmp_path).load_latest() is None

    def test_prune_keeps_newest(self, tmp_path):
        mgr = CheckpointManager(tmp_path, keep=2)
        for step in (1, 2, 3, 4):
            mgr.save(step, {"x": np.full(2, float(step))})
        assert mgr.steps() == [3, 4]
        assert not list(tmp_path.glob("ckpt-00000001-*"))

    def test_empty_directory_means_fresh_start(self, tmp_path):
        assert CheckpointManager(tmp_path).load_latest() is None

    def test_rng_state_roundtrip(self):
        rng = np.random.default_rng(42)
        rng.standard_normal(10)
        resumed = restore_rng(rng_state(rng))
        np.testing.assert_array_equal(resumed.standard_normal(5),
                                      rng.standard_normal(5))

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, keep=0)
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path).save(-1, {})


# -- engine node-kill soak ---------------------------------------------------


def _square(ins, outs, meta):
    (o,) = list(outs)
    outs[o][:] = ins[meta["src"]] ** 2


def _cube(ins, outs, meta):
    (o,) = list(outs)
    outs[o][:] = ins[meta["src"]] ** 3


def _total(ins, outs, meta):
    (o,) = list(outs)
    outs[o][:] = 0.0
    for arr in ins.values():
        outs[o] += arr


def chain_program(n=2048, block=512, nodes=3, seed=0):
    """Per-node chains feeding one global sum — homes spread across nodes
    so any corpse takes live lineage with it."""
    prog = Program("recovery-chain")
    rng = np.random.default_rng(seed)
    for i in range(nodes):
        prog.initial_array(f"src{i}", rng.standard_normal(n),
                           home=i % nodes, block_elems=block)
        prog.array(f"sq{i}", n, block_elems=block)
        prog.array(f"cu{i}", n, block_elems=block)
        prog.add_task(f"square{i}", _square, [f"src{i}"], [f"sq{i}"],
                      src=f"src{i}")
        prog.add_task(f"cube{i}", _cube, [f"sq{i}"], [f"cu{i}"],
                      src=f"sq{i}")
    prog.array("out", n, block_elems=block)
    prog.add_task("sum", _total, [f"cu{i}" for i in range(nodes)], ["out"])
    return prog


def run_chain(tmp_path, tag, *, faults=None, gc=False, recovery=True,
              nodes=3):
    eng = DOoCEngine(
        n_nodes=nodes, scratch_dir=tmp_path / tag, gc_arrays=gc,
        faults=faults, membership=FAST_DETECT if faults else None,
        node_recovery=recovery, watchdog_quiet_s=5.0,
    )
    try:
        report = eng.run(chain_program(nodes=nodes), timeout=60.0)
        return eng.fetch("out").copy(), report
    finally:
        eng.cleanup()


class TestEngineNodeLoss:
    @pytest.mark.parametrize("gc", [False, True])
    def test_killed_node_run_is_bit_identical(self, tmp_path, gc):
        kill_node = FAULT_SEED % 3
        kill_at = FAULT_SEED % 2 + 1
        clean, _ = run_chain(tmp_path, f"clean-{gc}", gc=gc)
        faults = FaultPlan(node_kill=((kill_node, kill_at),))
        survived, report = run_chain(tmp_path, f"killed-{gc}", gc=gc,
                                     faults=faults)
        assert survived.tobytes() == clean.tobytes()
        engine = report.metrics.get(-1, {})
        assert engine.get("nodes_lost") == 1
        assert engine.get("tasks_replayed", 0) + \
            engine.get("tasks_reassigned", 0) >= 1

    def test_recovery_disabled_raises_named_node_loss(self, tmp_path):
        faults = FaultPlan(node_kill=((1, 1),))
        with pytest.raises(NodeLostError) as err:
            run_chain(tmp_path, "norec", faults=faults, recovery=False)
        assert err.value.node == 1
        assert err.value.lost_blocks > 0
        assert "node 1" in str(err.value)
        # Never reported as a generic stall/timeout: the corpse is named.
        assert isinstance(err.value, StallError)  # old catch sites still work

    def test_no_survivor_raises_node_loss(self, tmp_path):
        faults = FaultPlan(node_kill=((0, 1),))
        with pytest.raises(NodeLostError):
            run_chain(tmp_path, "lonely", faults=faults, nodes=1)

    def test_recovery_is_traced_and_counted(self, tmp_path):
        eng = DOoCEngine(
            n_nodes=3, scratch_dir=tmp_path, trace=True,
            faults=FaultPlan(node_kill=((1, 1),)), membership=FAST_DETECT,
        )
        try:
            report = eng.run(chain_program(), timeout=60.0)
        finally:
            eng.cleanup()
        names = {e.name for e in report.trace_events if e.cat == "recovery"}
        assert {"node_suspect", "node_dead", "node_evict",
                "reconstruct"} <= names
        engine = report.metrics.get(-1, {})
        assert engine.get("blocks_lost", 0) > 0
        assert engine.get("arrays_reseeded", 0) >= 1


# -- resumed solver drives ---------------------------------------------------


class DenseOperator:
    """In-core adapter so resume semantics are tested without the engine."""

    def __init__(self, m):
        self.m = np.asarray(m, dtype=np.float64)
        self.n = self.m.shape[0]

    def matvec(self, x):
        return self.m @ x

    def diagonal(self):
        return np.diag(self.m).copy()


def spd_matrix(n=48, seed=0, shift=30.0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    return (a + a.T) / 2 + shift * np.eye(n)


class TestSolverResume:
    def test_cg_resume_is_bit_identical(self, tmp_path):
        from repro.solvers import conjugate_gradient_solve
        m = spd_matrix()
        b = np.random.default_rng(1).standard_normal(48)
        straight = conjugate_gradient_solve(
            DenseOperator(m), b, tol=1e-30, max_iterations=30)
        conjugate_gradient_solve(
            DenseOperator(m), b, tol=1e-30, max_iterations=12,
            checkpoint_dir=tmp_path, checkpoint_every=4)
        resumed = conjugate_gradient_solve(
            DenseOperator(m), b, tol=1e-30, max_iterations=30,
            checkpoint_dir=tmp_path, resume=True)
        assert resumed.x.tobytes() == straight.x.tobytes()
        assert resumed.residual_history[-1] == straight.residual_history[-1]

    def test_jacobi_resume_is_bit_identical(self, tmp_path):
        from repro.solvers import jacobi_solve
        m = spd_matrix(shift=60.0)
        b = np.random.default_rng(2).standard_normal(48)
        straight = jacobi_solve(DenseOperator(m), b, tol=1e-30,
                                max_iterations=25)
        jacobi_solve(DenseOperator(m), b, tol=1e-30, max_iterations=11,
                     checkpoint_dir=tmp_path, checkpoint_every=5)
        resumed = jacobi_solve(DenseOperator(m), b, tol=1e-30,
                               max_iterations=25,
                               checkpoint_dir=tmp_path, resume=True)
        assert resumed.x.tobytes() == straight.x.tobytes()

    def test_lanczos_resume_with_disk_basis_is_bit_identical(self, tmp_path):
        from repro.lanczos import lanczos
        from repro.lanczos.basis import DiskBasis
        m = spd_matrix(n=40, seed=3)
        rng_seed = 4
        # The baseline must also stream through a DiskBasis: the two basis
        # stores orthogonalize with different summation orders.
        straight = lanczos(
            lambda v: m @ v, 40, k=20, n_eigenvalues=3, tol=0.0,
            rng=np.random.default_rng(rng_seed),
            basis=DiskBasis(40, scratch_dir=tmp_path / "straight"))
        lanczos(
            lambda v: m @ v, 40, k=8, n_eigenvalues=3, tol=0.0,
            rng=np.random.default_rng(rng_seed),
            basis=DiskBasis(40, scratch_dir=tmp_path / "resumable"),
            checkpoint_dir=tmp_path / "ckpt", checkpoint_every=4)
        resumed = lanczos(
            lambda v: m @ v, 40, k=20, n_eigenvalues=3, tol=0.0,
            basis=DiskBasis(40, scratch_dir=tmp_path / "resumable"),
            checkpoint_dir=tmp_path / "ckpt", resume=True)
        np.testing.assert_array_equal(resumed.eigenvalues,
                                      straight.eigenvalues)
        np.testing.assert_array_equal(resumed.alphas, straight.alphas)
        np.testing.assert_array_equal(resumed.betas, straight.betas)

    def test_lanczos_resume_needs_reattachable_basis(self, tmp_path):
        from repro.lanczos import lanczos
        from repro.lanczos.basis import DiskBasis
        m = spd_matrix(n=16, seed=5)
        lanczos(lambda v: m @ v, 16, k=6, n_eigenvalues=2, tol=0.0,
                rng=np.random.default_rng(0),
                basis=DiskBasis(16, scratch_dir=tmp_path / "b"),
                checkpoint_dir=tmp_path / "ckpt", checkpoint_every=3)
        with pytest.raises(RecoveryError, match="reattach"):
            lanczos(lambda v: m @ v, 16, k=8, n_eigenvalues=2,
                    checkpoint_dir=tmp_path / "ckpt", resume=True)

    def test_iterated_spmv_resume_is_bit_identical(self, tmp_path):
        from repro.spmv.generator import choose_gap_parameter, gap_uniform_csr
        from repro.spmv.partition import GridPartition
        from repro.spmv.program import run_iterated_spmv
        n, k = 256, 2
        rng = np.random.default_rng(6)
        p = GridPartition(n, k)
        blocks = p.split_matrix(
            gap_uniform_csr(n, n, choose_gap_parameter(n, 6.0), rng))
        x0 = p.split_vector(rng.standard_normal(n))
        straight = run_iterated_spmv(blocks, x0, 6, n_nodes=2,
                                     policy="interleaved")
        run_iterated_spmv(blocks, x0, 3, n_nodes=2, policy="interleaved",
                          checkpoint_dir=tmp_path, checkpoint_every=3)
        resumed = run_iterated_spmv(blocks, x0, 6, n_nodes=2,
                                    policy="interleaved",
                                    checkpoint_dir=tmp_path,
                                    checkpoint_every=3, resume=True)
        assert resumed.restored_from == 3
        assert resumed.join().tobytes() == straight.join().tobytes()


class TestKillThenResume:
    def test_process_killed_mid_solve_resumes_bit_identically(self, tmp_path):
        """The full restart story: a child process dies (os._exit — no
        cleanup, no atexit) mid-solve, and a fresh process finishes the
        solve from the newest intact checkpoint, matching an uninterrupted
        run byte for byte."""
        repo_src = Path(__file__).resolve().parent.parent / "src"
        script = textwrap.dedent("""
            import os, sys
            import numpy as np
            from repro.solvers import jacobi_solve

            class Op:
                def __init__(self, m):
                    self.m = m
                    self.n = m.shape[0]
                def matvec(self, x):
                    return self.m @ x
                def diagonal(self):
                    return np.diag(self.m).copy()

            rng = np.random.default_rng(0)
            a = rng.standard_normal((48, 48))
            m = (a + a.T) / 2 + 60.0 * np.eye(48)
            b = np.random.default_rng(2).standard_normal(48)

            def die_at(it, res):
                if it == 12:
                    os._exit(17)  # simulated power loss: no cleanup at all

            jacobi_solve(Op(m), b, tol=1e-30, max_iterations=25,
                         checkpoint_dir=sys.argv[1], checkpoint_every=5,
                         callback=die_at)
            os._exit(0)
        """)
        proc = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path)],
            env={**os.environ, "PYTHONPATH": str(repo_src)},
            capture_output=True, text=True, timeout=120)
        assert proc.returncode == 17, proc.stderr

        from repro.solvers import jacobi_solve
        m = spd_matrix(shift=60.0)
        b = np.random.default_rng(2).standard_normal(48)
        straight = jacobi_solve(DenseOperator(m), b, tol=1e-30,
                                max_iterations=25)
        resumed = jacobi_solve(DenseOperator(m), b, tol=1e-30,
                               max_iterations=25, checkpoint_dir=tmp_path,
                               resume=True)
        assert resumed.x.tobytes() == straight.x.tobytes()


# -- DES testbed mirror ------------------------------------------------------


class TestTestbedNodeKill:
    def test_kill_reconstructs_and_finishes(self):
        from repro.testbed import run_testbed_spmv
        base = run_testbed_spmv(4, "interleaved", seed=0)
        killed = run_testbed_spmv(
            4, "interleaved", seed=0,
            faults=FaultPlan(node_kill=((1, 1),)),
            checkpoint_every=2, detection_s=1.2)
        assert killed.nodes_lost == 1
        assert killed.blocks_reconstructed > 0
        assert killed.checkpoint_writes > 0
        assert killed.time_s > base.time_s
        assert killed.dimension == base.dimension

    def test_kill_under_simple_policy(self):
        from repro.testbed import run_testbed_spmv
        row = run_testbed_spmv(4, "simple", seed=1,
                               faults=FaultPlan(node_kill=((2, 0),)))
        assert row.nodes_lost == 1
        assert row.blocks_reconstructed > 0

    def test_reconstruction_penalty_model(self):
        from repro.models.testbed import (
            TestbedWorkload,
            reconstruction_penalty_seconds,
        )
        w = TestbedWorkload()
        penalty = reconstruction_penalty_seconds(w)
        assert penalty > 1.2  # detection window plus the re-read
        with pytest.raises(ValueError):
            reconstruction_penalty_seconds(w, detection_s=-1.0)
