"""Tests for the out-of-core Jacobi and CG solvers."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.solvers import conjugate_gradient_solve, jacobi_solve
from repro.spmv.csr import CSRBlock
from repro.spmv.generator import symmetric_test_matrix
from repro.spmv.ooc_operator import OutOfCoreMatrix
from repro.spmv.partition import GridPartition


class InCoreOperator:
    """Adapter so the solvers can be unit-tested without the engine."""

    def __init__(self, block: CSRBlock):
        self.block = block
        self.n = block.nrows

    def matvec(self, x):
        return self.block.matvec(x)

    def diagonal(self):
        return self.block.to_scipy().diagonal()


def spd_system(n=80, seed=0, shift=30.0):
    m = symmetric_test_matrix(n, 8.0, np.random.default_rng(seed),
                              diag_shift=shift)
    rng = np.random.default_rng(seed + 1)
    x_true = rng.standard_normal(n)
    b = m.matvec(x_true)
    return m, b, x_true


class TestJacobiInCore:
    def test_converges_on_dominant_system(self):
        m, b, x_true = spd_system()
        result = jacobi_solve(InCoreOperator(m), b, tol=1e-10,
                              max_iterations=500)
        assert result.converged
        np.testing.assert_allclose(result.x, x_true, rtol=1e-6, atol=1e-8)

    def test_residual_history_decreases(self):
        m, b, _ = spd_system()
        result = jacobi_solve(InCoreOperator(m), b, tol=1e-8,
                              max_iterations=300)
        h = result.residual_history
        assert h[-1] < h[0]

    def test_non_convergence_reported(self):
        m, b, _ = spd_system(shift=30.0)
        result = jacobi_solve(InCoreOperator(m), b, tol=1e-14,
                              max_iterations=2)
        assert not result.converged
        assert result.iterations == 2

    def test_zero_diagonal_rejected(self):
        block = CSRBlock.from_scipy(sp.csr_matrix(
            np.array([[0.0, 1.0], [1.0, 2.0]])))
        with pytest.raises(ValueError, match="diagonal"):
            jacobi_solve(InCoreOperator(block), np.ones(2))

    def test_shape_validation(self):
        m, b, _ = spd_system()
        op = InCoreOperator(m)
        with pytest.raises(ValueError):
            jacobi_solve(op, b[:-1])
        with pytest.raises(ValueError):
            jacobi_solve(op, b, x0=np.zeros(3))
        with pytest.raises(ValueError):
            jacobi_solve(op, b, max_iterations=0)

    def test_callback_invoked(self):
        m, b, _ = spd_system()
        seen = []
        jacobi_solve(InCoreOperator(m), b, tol=1e-6, max_iterations=50,
                     callback=lambda it, res: seen.append((it, res)))
        assert seen and seen[0][0] == 1


class TestCGInCore:
    def test_converges_fast_on_spd(self):
        m, b, x_true = spd_system()
        result = conjugate_gradient_solve(InCoreOperator(m), b, tol=1e-12)
        assert result.converged
        np.testing.assert_allclose(result.x, x_true, rtol=1e-8, atol=1e-10)
        # CG beats Jacobi by a wide margin on the same system.
        jac = jacobi_solve(InCoreOperator(m), b, tol=1e-12,
                           max_iterations=2000)
        assert result.iterations < jac.iterations

    def test_warm_start(self):
        m, b, x_true = spd_system()
        cold = conjugate_gradient_solve(InCoreOperator(m), b, tol=1e-10)
        warm = conjugate_gradient_solve(
            InCoreOperator(m), b, x0=x_true + 1e-6, tol=1e-10)
        assert warm.iterations <= cold.iterations

    def test_indefinite_rejected(self):
        block = CSRBlock.from_scipy(sp.csr_matrix(
            np.array([[1.0, 0.0], [0.0, -1.0]])))
        with pytest.raises(ValueError, match="positive definite"):
            conjugate_gradient_solve(InCoreOperator(block),
                                     np.array([0.0, 1.0]))

    def test_validation(self):
        m, b, _ = spd_system()
        op = InCoreOperator(m)
        with pytest.raises(ValueError):
            conjugate_gradient_solve(op, b[:-1])
        with pytest.raises(ValueError):
            conjugate_gradient_solve(op, b, max_iterations=0)


class TestOutOfCore:
    @pytest.fixture
    def ooc(self, tmp_path):
        n, k = 90, 3
        m = symmetric_test_matrix(n, 8.0, np.random.default_rng(4),
                                  diag_shift=30.0)
        blocks = GridPartition(n, k).split_matrix(m)
        op = OutOfCoreMatrix(blocks, n_nodes=1, scratch_dir=tmp_path)
        return m, op

    def test_diagonal_matches(self, ooc):
        m, op = ooc
        np.testing.assert_allclose(op.diagonal(), m.to_scipy().diagonal())

    def test_jacobi_out_of_core(self, ooc):
        m, op = ooc
        rng = np.random.default_rng(5)
        x_true = rng.standard_normal(op.n)
        b = m.matvec(x_true)
        result = jacobi_solve(op, b, tol=1e-9, max_iterations=400)
        assert result.converged
        np.testing.assert_allclose(result.x, x_true, rtol=1e-5, atol=1e-7)
        assert op.matvec_count == result.iterations

    def test_cg_out_of_core_multi_node(self, tmp_path):
        n, k = 90, 3
        m = symmetric_test_matrix(n, 8.0, np.random.default_rng(6),
                                  diag_shift=30.0)
        blocks = GridPartition(n, k).split_matrix(m)
        op = OutOfCoreMatrix(blocks, n_nodes=3, scratch_dir=tmp_path)
        rng = np.random.default_rng(7)
        x_true = rng.standard_normal(n)
        b = m.matvec(x_true)
        result = conjugate_gradient_solve(op, b, tol=1e-10)
        assert result.converged
        np.testing.assert_allclose(result.x, x_true, rtol=1e-7, atol=1e-9)

    def test_gc_keeps_scratch_bounded(self, ooc, tmp_path):
        """With gc_arrays on (the default), per-iteration vectors are
        collected: the scratch directory does not accumulate files."""
        m, op = ooc
        b = m.matvec(np.ones(op.n))
        jacobi_solve(op, b, tol=1e-6, max_iterations=30)
        from repro.core.iofilter import discover_arrays
        files = discover_arrays(op.engine.node_scratch(0))
        # Matrix blocks persist; at most a handful of vector leftovers.
        vector_files = [f for f in files if not f.startswith("A_")]
        assert len(vector_files) <= 10


class TestGraphTraversal:
    def test_ooc_bfs_levels_match_networkx(self, tmp_path):
        """The examples/graph_bfs.py algorithm at test scale."""
        import importlib.util
        import pathlib

        import networkx as nx

        example = (pathlib.Path(__file__).resolve().parents[1]
                   / "examples" / "graph_bfs.py")
        spec = importlib.util.spec_from_file_location("graph_bfs", example)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)

        rng = np.random.default_rng(8)
        adj = mod.random_undirected_adjacency(120, 5.0, rng)
        blocks = GridPartition(120, 3).split_matrix(CSRBlock.from_scipy(adj))
        op = OutOfCoreMatrix(blocks, n_nodes=1, scratch_dir=tmp_path)
        dist = mod.ooc_bfs_levels(op, 0)

        graph = nx.from_scipy_sparse_array(adj)
        want = np.full(120, -1, dtype=np.int64)
        for node, level in nx.single_source_shortest_path_length(
                graph, 0).items():
            want[node] = level
        np.testing.assert_array_equal(dist, want)
