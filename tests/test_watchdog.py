"""Stall-watchdog tests: silence turns into a named diagnosis instead of
an opaque ``TimeoutError``."""

import threading
import time

import numpy as np
import pytest

from repro.core import DOoCEngine, Program
from repro.core.errors import DoocError, StallError
from repro.core.interval import whole_block
from repro.core.storage import LocalStore
from repro.obs import Diagnosis, StallWatchdog, Tracer


def desc(name="a", length=100, block=50, dtype="float64"):
    from repro.core.array import ArrayDesc
    return ArrayDesc(name, length=length, block_elems=block, dtype=dtype)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestDiagnosis:
    def _blocked_store(self):
        """A store with a read waiting on a range nobody ever wrote."""
        store = LocalStore(0, memory_budget=1 << 20)
        store.create_array(desc())
        ticket, effects = store.request_read(whole_block(desc(), 0))
        assert effects == []  # parked: the range was never written
        return store, ticket

    def test_diagnose_names_blocked_read(self):
        store, ticket = self._blocked_store()
        clock = FakeClock()
        dog = StallWatchdog(Tracer(clock=clock), quiet_s=1.0, log=False)
        dog.watch_store(0, store)
        diag = dog.diagnose()
        assert diag.blocked_tickets == [ticket.tid]
        text = diag.render()
        assert f"ticket {ticket.tid} awaiting a[0]" in text
        assert "read-before-write" in text

    def test_snapshot_covers_queue_and_writes(self):
        store = LocalStore(0, memory_budget=400)
        d = desc(dtype="uint8", length=400, block=400)
        store.create_array(d)
        e = desc("b", dtype="uint8", length=400, block=400)
        store.create_array(e)
        t1, _ = store.request_write(whole_block(d, 0))     # granted, pins all
        t2, _ = store.request_write(whole_block(e, 0))     # queued
        snap = store.debug_snapshot()
        assert snap["in_use"] == 400 and snap["budget"] == 400
        assert [w["granted"] for w in snap["write_tickets"]] == [True, False]
        assert [q["bytes"] for q in snap["alloc_queue"]] == [400]
        dog = StallWatchdog(Tracer(clock=FakeClock()), quiet_s=1.0, log=False)
        dog.watch_store(0, store)
        text = dog.diagnose().render()
        assert "awaiting grant" in text
        assert "queued allocations: 1" in text

    def test_snapshot_errors_are_tolerated(self):
        class Broken:
            def debug_snapshot(self):
                raise RuntimeError("torn read")

        dog = StallWatchdog(Tracer(clock=FakeClock()), quiet_s=1.0, log=False)
        dog.watch_store(0, Broken())
        diag = dog.diagnose()
        assert "torn read" in diag.nodes[0]["store_error"]
        assert "no runtime event" in diag.render().splitlines()[0]

    def test_render_without_sources(self):
        diag = Diagnosis(at=1.0, quiet_s=2.0)
        assert "no per-node state registered" in diag.render()


class TestWatchdogThread:
    def test_fires_once_per_stall(self):
        tracer = Tracer()
        tracer.instant(0, "x", "task", "task")  # heartbeat, then silence
        hits = []
        dog = StallWatchdog(tracer, quiet_s=0.05, poll_s=0.01,
                            on_stall=hits.append, log=False)
        with dog:
            time.sleep(0.3)
        assert len(hits) == 1  # same stall reported once, not per poll
        assert isinstance(hits[0], Diagnosis)
        assert dog.last_diagnosis is hits[0]

    def test_activity_resets_the_clock(self):
        tracer = Tracer()
        hits = []
        stop = threading.Event()

        def heartbeat():
            while not stop.is_set():
                tracer.instant(0, "x", "task", "task")
                time.sleep(0.01)

        dog = StallWatchdog(tracer, quiet_s=0.08, poll_s=0.01,
                            on_stall=hits.append, log=False)
        t = threading.Thread(target=heartbeat)
        t.start()
        with dog:
            time.sleep(0.25)
        stop.set()
        t.join()
        assert hits == []

    def test_new_stall_after_recovery_is_reported_again(self):
        tracer = Tracer()
        hits = []
        dog = StallWatchdog(tracer, quiet_s=0.05, poll_s=0.01,
                            on_stall=hits.append, log=False)
        with dog:
            tracer.instant(0, "x", "task", "task")
            time.sleep(0.15)          # first stall
            tracer.instant(0, "x", "task", "task")  # recovery
            time.sleep(0.15)          # second stall
        assert len(hits) == 2


class TestEngineStall:
    def test_injected_deadlock_yields_diagnosed_stall_error(self, tmp_path):
        # Read-holds-memory-that-the-write-needs: the task pins its 32 KiB
        # input while its 32 KiB output allocation queues behind it — with
        # a budget below two blocks the run can never make progress.
        n = 4096  # 32 KiB blocks
        prog = Program("wedge", default_block_elems=n)
        prog.initial_array("x", np.arange(n, dtype=float))
        prog.array("y", n)

        def copy(ins, outs, meta):
            outs["y"][:] = ins["x"]

        prog.add_task("copy", copy, ["x"], ["y"])
        eng = DOoCEngine(n_nodes=1, memory_budget_per_node=40_000,
                         scratch_dir=tmp_path, watchdog_quiet_s=0.3)
        with pytest.raises(StallError) as err:
            eng.run(prog, timeout=3)
        exc = err.value
        assert isinstance(exc, TimeoutError)  # old catch sites keep working
        assert isinstance(exc, DoocError)
        diag = exc.diagnosis
        assert diag is not None
        (node0,) = [n_ for n_ in diag.nodes if n_.get("node") == 0]
        blocked_writes = [w for w in node0["write_tickets"]
                          if not w["granted"]]
        assert [w["array"] for w in blocked_writes] == ["y"]
        assert node0["alloc_queue"], "queued allocation should be visible"
        text = str(exc)
        assert "stall watchdog" in text
        assert "y[0]" in text and "awaiting grant" in text

    def test_watchdog_can_be_disabled(self, tmp_path):
        prog = Program("ok", default_block_elems=64)
        prog.initial_array("x", np.ones(64))
        prog.array("y", 64)

        def copy(ins, outs, meta):
            outs["y"][:] = ins["x"]

        prog.add_task("copy", copy, ["x"], ["y"])
        eng = DOoCEngine(n_nodes=1, scratch_dir=tmp_path,
                         watchdog_quiet_s=None)
        report = eng.run(prog, timeout=60)
        assert report.diagnosis is None

    def test_healthy_run_reports_no_diagnosis(self, tmp_path):
        prog = Program("ok", default_block_elems=64)
        prog.initial_array("x", np.ones(64))
        prog.array("y", 64)

        def copy(ins, outs, meta):
            outs["y"][:] = ins["x"]

        prog.add_task("copy", copy, ["x"], ["y"])
        eng = DOoCEngine(n_nodes=1, scratch_dir=tmp_path)
        report = eng.run(prog, timeout=60)
        assert report.diagnosis is None
