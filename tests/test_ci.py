"""Tests for the configuration-interaction basis machinery (Table I).

Also hosts the CI *pipeline's* coverage-floor assertion (bottom of the
file): the coverage job points ``DOOC_COVERAGE_XML`` at its pytest-cov
report and re-runs just that test.
"""

import itertools
import os
import xml.etree.ElementTree as ET
from pathlib import Path

import numpy as np
import pytest

from repro.ci.cases import TABLE1_CASES, required_processors, triangular_processor_count
from repro.ci.ho_basis import (
    SPState,
    cumulative_states,
    ho_shell_states,
    ho_states_up_to,
    minimal_quanta,
    shell_size,
)
from repro.ci.mscheme import MSchemeSpace, SpeciesCounter
from repro.ci.nnz import count_row_connections, estimate_row_nnz


class TestHOBasis:
    def test_shell_sizes(self):
        for N in range(8):
            assert len(ho_shell_states(N)) == (N + 1) * (N + 2) == shell_size(N)

    def test_cumulative(self):
        for N in range(6):
            assert len(ho_states_up_to(N)) == cumulative_states(N)

    def test_state_quantum_numbers_valid(self):
        for s in ho_states_up_to(4):
            assert s.quanta == 2 * s.n + s.l
            assert s.jj in (2 * s.l - 1, 2 * s.l + 1)
            assert abs(s.mm) <= s.jj
            assert s.parity == (-1) ** s.l

    def test_invalid_states_rejected(self):
        with pytest.raises(ValueError):
            SPState(n=0, l=1, jj=5, mm=1)     # j not l +- 1/2
        with pytest.raises(ValueError):
            SPState(n=0, l=0, jj=1, mm=3)     # |m| > j
        with pytest.raises(ValueError):
            SPState(n=0, l=0, jj=1, mm=0)     # m parity
        with pytest.raises(ValueError):
            SPState(n=-1, l=0, jj=1, mm=1)

    def test_minimal_quanta_fills_shells(self):
        assert minimal_quanta(0) == 0
        assert minimal_quanta(2) == 0            # 0s holds 2
        assert minimal_quanta(3) == 1            # third nucleon in 0p
        assert minimal_quanta(5) == 3            # 0s^2 0p^3
        assert minimal_quanta(8) == 6            # 0s^2 0p^6
        assert minimal_quanta(9) == 6 + 2        # next in N=2


def brute_force_species_count(particles, max_quanta, quanta, mm):
    """Exhaustive determinant count for tiny spaces."""
    states = ho_states_up_to(max_quanta)
    count = 0
    for combo in itertools.combinations(range(len(states)), particles):
        q = sum(states[i].quanta for i in combo)
        m = sum(states[i].mm for i in combo)
        if q == quanta and m == mm:
            count += 1
    return count


class TestSpeciesCounter:
    def test_matches_brute_force_one_particle(self):
        c = SpeciesCounter(1, max_quanta=3)
        for q in range(4):
            for mm in range(-7, 8, 2):
                assert c.count(q, mm) == brute_force_species_count(1, 3, q, mm)

    def test_matches_brute_force_two_particles(self):
        c = SpeciesCounter(2, max_quanta=2)
        for q in range(3):
            for mm in range(-6, 7, 2):
                assert c.count(q, mm) == brute_force_species_count(2, 2, q, mm)

    def test_matches_brute_force_three_particles(self):
        c = SpeciesCounter(3, max_quanta=3)
        for q in range(1, 4):
            for mm in (-3, -1, 1, 3):
                assert c.count(q, mm) == brute_force_species_count(3, 3, q, mm)

    def test_zero_particles(self):
        c = SpeciesCounter(0, max_quanta=0)
        assert c.count(0, 0) == 1
        assert c.count(1, 0) == 0

    def test_below_pauli_minimum_rejected(self):
        with pytest.raises(ValueError, match="Pauli"):
            SpeciesCounter(3, max_quanta=0)  # 3 particles need 1 quantum

    def test_sampling_matches_counts(self):
        """Empirical frequencies of sampled determinants are uniform."""
        c = SpeciesCounter(2, max_quanta=1)
        q, mm = 1, 0
        total = c.count(q, mm)
        assert total > 1
        rng = np.random.default_rng(0)
        seen = {}
        draws = 200 * total
        for _ in range(draws):
            det = frozenset(c.sample(q, mm, rng))
            assert sum(s.quanta for s in det) == q
            assert sum(s.mm for s in det) == mm
            seen[det] = seen.get(det, 0) + 1
        assert len(seen) == total  # every determinant reachable
        freqs = np.array(list(seen.values())) / draws
        assert abs(freqs.mean() - 1.0 / total) < 1e-12
        assert freqs.max() / freqs.min() < 1.6  # roughly uniform

    def test_sampling_invalid_cell_rejected(self):
        c = SpeciesCounter(2, max_quanta=1)
        with pytest.raises(ValueError):
            c.sample(1, 99, np.random.default_rng(0))


class TestMSchemeSpace:
    def test_mj_parity_validation(self):
        with pytest.raises(ValueError):
            MSchemeSpace(2, 2, 2, mj2=1)   # even A needs even 2Mj
        with pytest.raises(ValueError):
            MSchemeSpace(2, 1, 2, mj2=0)   # odd A needs odd 2Mj

    def test_4he_nmax0(self):
        # 4He at Nmax=0: all four nucleons in the s-shell; a single state.
        space = MSchemeSpace(2, 2, 0, 0)
        assert space.dimension() == 1

    def test_dimension_brute_force_cross_check(self):
        """Tiny nucleus counted two ways."""
        space = MSchemeSpace(2, 1, 2, mj2=1)
        # Brute force over both species.
        states = ho_states_up_to(2 + minimal_quanta(2))
        count = 0
        minq = space.min_quanta
        for pc in itertools.combinations(range(len(states)), 2):
            for nc in itertools.combinations(range(len(states)), 1):
                q = sum(states[i].quanta for i in pc) + sum(
                    states[i].quanta for i in nc)
                m = sum(states[i].mm for i in pc) + sum(states[i].mm for i in nc)
                exc = q - minq
                if 0 <= exc <= 2 and exc % 2 == 0 and m == 1:
                    count += 1
        assert space.dimension() == count

    def test_both_parities_superset(self):
        space = MSchemeSpace(3, 3, 2, mj2=0)
        assert space.dimension(fixed_parity=False) > space.dimension()

    @pytest.mark.parametrize("case", TABLE1_CASES[:2], ids=lambda c: c.name)
    def test_table1_dimensions_match_published(self, case):
        """The headline Table-I check: exact D within published rounding."""
        d = case.space().dimension()
        assert d == pytest.approx(case.published_dimension, rel=0.005)

    def test_sampled_determinants_satisfy_constraints(self):
        space = MSchemeSpace(3, 3, 2, mj2=0)
        rng = np.random.default_rng(1)
        for _ in range(20):
            protons, neutrons = space.sample_determinant(rng)
            assert len(protons) == 3 and len(neutrons) == 3
            assert len(set(protons)) == 3 and len(set(neutrons)) == 3
            q = sum(s.quanta for s in protons) + sum(s.quanta for s in neutrons)
            m = sum(s.mm for s in protons) + sum(s.mm for s in neutrons)
            exc = q - space.min_quanta
            assert 0 <= exc <= 2 and exc % 2 == 0
            assert m == 0


def brute_force_row_connections(space, det_p, det_n):
    """Enumerate the full basis of a tiny space; count dets within two
    substitutions of (det_p, det_n)."""
    states = ho_states_up_to(space.nmax + space.min_quanta)
    minq = space.min_quanta
    p_set, n_set = frozenset(det_p), frozenset(det_n)
    count = 0
    for pc in itertools.combinations(states, space.protons):
        ps = frozenset(pc)
        dp = space.protons - len(ps & p_set)
        if dp > 2:
            continue
        for nc in itertools.combinations(states, space.neutrons):
            ns = frozenset(nc)
            dn = space.neutrons - len(ns & n_set)
            if dp + dn > 2:
                continue
            q = sum(s.quanta for s in pc) + sum(s.quanta for s in nc)
            m = sum(s.mm for s in pc) + sum(s.mm for s in nc)
            exc = q - minq
            if 0 <= exc <= space.nmax and exc % 2 == space.nmax % 2 and \
                    m == space.mj2:
                count += 1
    return count


class TestNnzEstimator:
    def test_row_count_matches_brute_force(self):
        """The combinatorial row counter against full enumeration."""
        space = MSchemeSpace(2, 1, 2, mj2=1)
        rng = np.random.default_rng(2)
        for _ in range(5):
            det_p, det_n = space.sample_determinant(rng)
            fast = count_row_connections(space, det_p, det_n)
            slow = brute_force_row_connections(space, det_p, det_n)
            assert fast == slow

    def test_row_count_matches_brute_force_heavier(self):
        space = MSchemeSpace(2, 2, 2, mj2=0)
        rng = np.random.default_rng(3)
        for _ in range(3):
            det_p, det_n = space.sample_determinant(rng)
            assert count_row_connections(space, det_p, det_n) == \
                brute_force_row_connections(space, det_p, det_n)

    def test_estimate_has_finite_error(self):
        space = MSchemeSpace(3, 3, 2, mj2=0)
        est = estimate_row_nnz(space, 10, np.random.default_rng(4))
        assert est.mean > 1
        assert est.std_error >= 0
        lo, hi = est.ci95
        assert lo <= est.mean <= hi

    def test_estimator_needs_two_samples(self):
        space = MSchemeSpace(2, 2, 0, 0)
        with pytest.raises(ValueError):
            estimate_row_nnz(space, 1, np.random.default_rng(0))


class TestProcessorModel:
    def test_triangular_counts(self):
        assert triangular_processor_count(1) == 1
        assert triangular_processor_count(250) == 253
        assert triangular_processor_count(277) == 300
        assert triangular_processor_count(276) == 276

    def test_published_np_are_triangular(self):
        for case in TABLE1_CASES:
            assert case.diag_processors * (case.diag_processors + 1) // 2 == \
                case.published_processors

    def test_local_sizes_match_published(self):
        for case in TABLE1_CASES:
            v_mb = case.v_local_bytes() / 1e6
            h_mb = case.h_local_bytes() / 1e6
            assert v_mb == pytest.approx(case.published_v_local_mb, rel=0.15)
            assert h_mb == pytest.approx(case.published_h_local_mb, rel=0.15)

    def test_required_processors_reasonable(self):
        for case in TABLE1_CASES:
            got = required_processors(case.published_dimension,
                                      case.published_nnz)
            # Within a couple of triangular steps of the published choice.
            assert got == pytest.approx(case.published_processors, rel=0.25)


class TestCoverageFloor:
    """Soft line-coverage floor for the CI coverage leg.

    Armed only when ``DOOC_COVERAGE_XML`` names an existing pytest-cov
    XML report (the tier-1 coverage job sets it after the instrumented
    run); everywhere else — including local machines without pytest-cov —
    the test skips.  The floor is deliberately soft: it catches a
    wholesale loss of coverage (a mis-wired ``--cov`` target, a silently
    skipped test tree), not incremental drift.
    """

    FLOOR = 0.60

    def test_coverage_floor(self):
        path = os.environ.get("DOOC_COVERAGE_XML", "")
        if not path or not Path(path).exists():
            pytest.skip("no coverage report (set DOOC_COVERAGE_XML)")
        root = ET.parse(path).getroot()
        rate = float(root.get("line-rate", 0.0))
        lines_valid = int(root.get("lines-valid", 0))
        assert lines_valid > 0, f"{path}: empty coverage report"
        assert rate >= self.FLOOR, (
            f"line coverage {rate:.1%} fell below the {self.FLOOR:.0%} "
            f"floor — check that --cov=repro still targets the package "
            f"and that no test tree is silently skipped")
