"""Chrome-trace (``chrome://tracing`` / Perfetto) export.

Converts :class:`~repro.obs.tracer.TraceEvent` lists into the Trace Event
Format JSON object form (``{"traceEvents": [...]}``): ``pid`` is the DOoC
node, ``tid`` the lane within the node, timestamps/durations are
microseconds.  Also provides the raw-event JSONL save/load pair used by
``python -m repro trace`` and a validator used by the tests.
"""

from __future__ import annotations

import json
from pathlib import Path
from collections.abc import Iterable

from repro.obs.tracer import SCHEMA_VERSION, TraceEvent

__all__ = [
    "to_chrome",
    "export_chrome_trace",
    "load_chrome_trace",
    "validate_chrome_trace",
    "save_events_jsonl",
    "load_events_jsonl",
    "normalize_chrome_trace",
]

_US = 1e6  # seconds -> microseconds

#: chrome phases we emit; "M" is metadata added by the exporter itself
_PHASES = {"X", "i", "C", "M"}


def _node_label(node: int) -> str:
    return "engine" if node < 0 else f"node{node}"


def to_chrome(events: Iterable[TraceEvent]) -> dict:
    """Build the Trace Event Format document for ``events``."""
    events = list(events)
    out: list[dict] = []
    seen_pids: dict[int, None] = {}
    for e in events:
        seen_pids.setdefault(e.node)
        rec = {
            "name": e.name,
            "cat": e.cat,
            "ph": e.ph,
            "ts": round(e.ts * _US, 3),
            "pid": e.node,
            "tid": e.lane,
        }
        if e.ph == "X":
            rec["dur"] = round(e.dur * _US, 3)
        if e.ph == "C":
            rec["args"] = {"value": e.args.get("value", 0)}
        elif e.args:
            rec["args"] = dict(e.args)
        if e.ph == "i":
            rec["s"] = "t"  # thread-scoped instant
        out.append(rec)
    meta = [
        {"name": "process_name", "ph": "M", "pid": pid,
         "args": {"name": _node_label(pid)}}
        for pid in sorted(seen_pids)
    ]
    return {
        "traceEvents": meta + out,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "schema_version": SCHEMA_VERSION},
    }


def export_chrome_trace(events: Iterable[TraceEvent],
                        path: str | Path) -> Path:
    """Write ``events`` as a Chrome-trace JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_chrome(events), indent=1))
    return path


def load_chrome_trace(path: str | Path) -> dict:
    return json.loads(Path(path).read_text())


def validate_chrome_trace(doc: dict) -> list[dict]:
    """Check Trace-Event-Format shape; returns the event list.

    Raises ``ValueError`` on the first structural problem — the test
    suite's guarantee that exported files actually open in a viewer.
    """
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("not a Chrome trace: missing 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    for i, rec in enumerate(events):
        if not isinstance(rec, dict):
            raise ValueError(f"event {i} is not an object")
        ph = rec.get("ph")
        if ph not in _PHASES:
            raise ValueError(f"event {i} has unknown phase {ph!r}")
        if "name" not in rec or "pid" not in rec:
            raise ValueError(f"event {i} lacks name/pid")
        if ph != "M":
            ts = rec.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise ValueError(f"event {i} has bad ts {ts!r}")
            if ph == "X" and not isinstance(rec.get("dur"), (int, float)):
                raise ValueError(f"event {i} is 'X' without numeric dur")
    return events


def normalize_chrome_trace(doc: dict) -> dict:
    """Timestamp-free form for golden-file comparison.

    Real timestamps vary run to run; replace each distinct ``ts`` with its
    rank and each ``dur`` with a presence marker, keeping names, phases,
    categories, pids, tids and args — the schema under test.
    """
    events = validate_chrome_trace(doc)
    stamps = sorted({rec["ts"] for rec in events if "ts" in rec})
    rank = {ts: i for i, ts in enumerate(stamps)}
    norm = []
    for rec in events:
        item = dict(rec)
        if "ts" in item:
            item["ts"] = rank[item["ts"]]
        if "dur" in item:
            item["dur"] = "<dur>"
        norm.append(item)
    return {
        "traceEvents": norm,
        "displayTimeUnit": doc.get("displayTimeUnit", "ms"),
        "otherData": doc.get("otherData", {}),
    }


# -- raw event persistence ----------------------------------------------------


def save_events_jsonl(events: Iterable[TraceEvent],
                      path: str | Path) -> Path:
    """One JSON object per line; the lossless on-disk form of a run trace."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        fh.write(json.dumps({"schema_version": SCHEMA_VERSION}) + "\n")
        for e in events:
            fh.write(json.dumps(e.to_json()) + "\n")
    return path


def load_events_jsonl(path: str | Path) -> list[TraceEvent]:
    events: list[TraceEvent] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            if "schema_version" in obj and "ts" not in obj:
                continue  # header line
            events.append(TraceEvent.from_json(obj))
    return events
