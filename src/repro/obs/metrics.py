"""Per-node metrics registry.

Supersedes the ad-hoc counter fields that used to live directly on
``StoreStats``: every runtime component increments named (optionally
labelled) counters on a :class:`MetricsRegistry`, and ``StoreStats``
remains as a *compatibility view* materialized from the registry (see
:mod:`repro.core.storage`).  Counters are monotonic; ``observe_max``
records high-watermark gauges (e.g. peak allocation-queue depth).
"""

from __future__ import annotations

import threading

__all__ = ["MetricsRegistry"]


class MetricsRegistry:
    """Named monotonic counters + high-watermark gauges, thread-safe.

    Labelled increments (``inc("loads", label="A_00")``) accumulate both
    the total and a per-label breakdown.
    """

    def __init__(self, node: int = -1):
        self.node = node
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._labeled: dict[str, dict[str, int]] = {}
        self._maxima: dict[str, float] = {}

    # -- writing --------------------------------------------------------------

    def inc(self, name: str, n: int = 1, *, label: str | None = None) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n
            if label is not None:
                per = self._labeled.setdefault(name, {})
                per[label] = per.get(label, 0) + n

    def observe_max(self, name: str, value: float) -> None:
        with self._lock:
            if value > self._maxima.get(name, float("-inf")):
                self._maxima[name] = value

    # -- reading --------------------------------------------------------------

    def get(self, name: str, default: int = 0) -> int:
        with self._lock:
            return self._counters.get(name, default)

    def labeled(self, name: str) -> dict[str, int]:
        with self._lock:
            return dict(self._labeled.get(name, {}))

    def maximum(self, name: str, default: float = 0.0) -> float:
        with self._lock:
            return self._maxima.get(name, default)

    def as_dict(self) -> dict:
        """Plain-data snapshot (reported in ``RunReport.metrics``)."""
        with self._lock:
            out: dict = dict(self._counters)
            for name, per in self._labeled.items():
                out[f"{name}_by_label"] = dict(per)
            for name, value in self._maxima.items():
                out[f"{name}_max"] = value
            return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MetricsRegistry(node={self.node}, {self.as_dict()!r})"
