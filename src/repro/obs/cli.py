"""``python -m repro trace`` — inspect and convert run traces.

    python -m repro trace run.trace.jsonl              # summary
    python -m repro trace run.trace.jsonl -o run.json  # -> chrome://tracing
    python -m repro trace run.json                     # summary of a Chrome trace

Accepts either the raw JSONL written by ``RunReport.save_trace`` or an
already-exported Chrome-trace JSON file.
"""

from __future__ import annotations

import argparse
import json
from collections import Counter
from pathlib import Path

from repro.obs.chrome import (
    export_chrome_trace,
    load_events_jsonl,
    validate_chrome_trace,
)
from repro.obs.tracer import TraceEvent


def _load(path: Path) -> list[TraceEvent]:
    with path.open() as fh:
        text_head = fh.read(512).lstrip()
    if text_head.startswith("{") and '"traceEvents"' in path.read_text():
        doc = json.loads(path.read_text())
        records = validate_chrome_trace(doc)
        events = []
        for rec in records:
            if rec.get("ph") == "M":
                continue
            events.append(TraceEvent(
                ts=rec["ts"] / 1e6, node=int(rec["pid"]),
                lane=str(rec.get("tid", "?")), cat=rec.get("cat", "?"),
                name=rec["name"], ph=rec["ph"],
                dur=rec.get("dur", 0.0) / 1e6, args=rec.get("args", {}),
            ))
        return events
    return load_events_jsonl(path)


def _summary(events: list[TraceEvent]) -> str:
    if not events:
        return "(empty trace)"
    lines = []
    t0 = min(e.ts for e in events)
    t1 = max(e.ts + e.dur for e in events)
    nodes = sorted({e.node for e in events})
    lines.append(
        f"{len(events)} events, {len(nodes)} node(s), "
        f"span {t1 - t0:.3f}s"
    )
    by_node: dict[int, Counter] = {}
    for e in events:
        by_node.setdefault(e.node, Counter())[f"{e.cat}.{e.name}"] += 1
    for node in nodes:
        label = "engine" if node < 0 else f"node{node}"
        counts = ", ".join(
            f"{name} x{n}" for name, n in sorted(by_node[node].items()))
        lines.append(f"  {label}: {counts}")
    busy: dict[str, float] = {}
    for e in events:
        if e.ph == "X":
            busy[f"{e.cat}.{e.name}"] = busy.get(f"{e.cat}.{e.name}", 0.0) + e.dur
    if busy:
        lines.append("busy time (summed spans):")
        for name, dur in sorted(busy.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {name:24s} {dur:9.3f}s")
    recovery = [e for e in events
                if e.cat == "recovery" and e.name != "heartbeat"]
    if recovery:
        lines.append("recovery timeline:")
        for e in sorted(recovery, key=lambda e: e.ts):
            detail = ", ".join(f"{k}={v}" for k, v in sorted(e.args.items()))
            lines.append(
                f"  {e.ts - t0:9.3f}s  {e.name:20s} {detail}".rstrip())
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Summarize a run trace or convert it for chrome://tracing.",
    )
    parser.add_argument("run", help="trace file: raw .jsonl or Chrome-trace .json")
    parser.add_argument(
        "-o", "--out", default=None,
        help="write a Chrome-trace JSON file here (open in chrome://tracing)")
    args = parser.parse_args(argv)
    path = Path(args.run)
    if not path.exists():
        parser.error(f"no such trace file: {path}")
    try:
        events = _load(path)
    except (json.JSONDecodeError, ValueError, KeyError) as exc:
        parser.error(f"cannot parse {path} as a trace: {exc}")
    print(_summary(events))
    if args.out:
        out = export_chrome_trace(events, args.out)
        print(f"chrome trace written to {out}")
    return 0
