"""Bridge from the DES testbed's interval traces to the obs event schema.

The simulator records :class:`repro.sim.trace.Interval` activities on
cluster lanes (``n3`` / ``io`` / ``compute`` ...); the threaded engine
records :class:`~repro.obs.tracer.TraceEvent` records.  This module maps
the former onto the latter so simulated and real runs export the *same*
Chrome-trace schema and can be compared side by side in one viewer.
"""

from __future__ import annotations

import re
from collections.abc import Iterable

from repro.obs.tracer import TraceEvent
from repro.sim.trace import Interval, Point, TraceRecorder

__all__ = ["events_from_sim_trace"]

_NODE_RE = re.compile(r"^n(\d+)$")

#: sim (kind, label) -> obs (cat, name); unmapped kinds pass through as
#: cat="sim" with the kind as the name.
_KIND_MAP = {
    "io": ("storage", "load"),
    "compute": ("task", "task"),
    "send": ("storage", "fetch_remote"),
    "recv": ("storage", "fetch_remote"),
}


def _node_of(lane: str) -> int:
    m = _NODE_RE.match(lane)
    return int(m.group(1)) if m else -1


def _convert_interval(iv: Interval) -> TraceEvent:
    cat, name = _KIND_MAP.get(iv.kind, ("sim", iv.kind))
    if iv.kind == "io" and iv.label == "prefetch":
        cat, name = "sched", "prefetch"
    return TraceEvent(
        ts=iv.start, node=_node_of(iv.lane), lane=iv.kind, cat=cat,
        name=name, ph="X", dur=iv.duration, args={"label": iv.label},
    )


def _convert_point(pt: Point) -> TraceEvent:
    return TraceEvent(
        ts=pt.time, node=_node_of(pt.lane), lane=pt.kind, cat="run",
        name="phase", ph="i", args={"label": pt.label},
    )


def events_from_sim_trace(trace: TraceRecorder) -> list[TraceEvent]:
    """Convert a simulation trace into schema events (sim timestamps)."""
    events: Iterable[TraceEvent] = (
        [_convert_interval(iv) for iv in trace.intervals]
        + [_convert_point(pt) for pt in trace.points]
    )
    return sorted(events, key=lambda e: (e.ts, e.node, e.lane))
