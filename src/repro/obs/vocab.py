"""The central trace-event vocabulary.

Every event name emitted through :class:`repro.obs.Tracer` must come from
this table — it is the single source of truth for the schema documented in
:mod:`repro.obs.tracer` and rendered by the Chrome exporter.  Keeping the
vocabulary in one place means dashboards, trace assertions and the stall
watchdog never chase a misspelled or undocumented event name.

The ``DOOC004`` lint rule (:mod:`repro.analysis.rules`) enforces this
mechanically: a string literal passed as the event name to
``Tracer.instant`` / ``complete`` / ``counter`` / ``span`` must be a key of
:data:`EVENTS`.  Dynamically computed names (e.g. the fault injector's
per-kind events) cannot be checked lexically and are exempt; register the
possible values here anyway so readers can find them.

To add a new event: add it to :data:`EVENTS` with its category and a
one-line meaning, then use the literal at the emit site.  The lint fails
until both halves agree.
"""

from __future__ import annotations

__all__ = ["EVENTS", "EVENT_NAMES", "is_known_event"]

#: name -> (category, phase, meaning).  Phases follow the Chrome trace
#: convention: "X" complete span, "i" instant, "C" counter.
EVENTS: dict[str, tuple[str, str, str]] = {
    # -- task lifecycle -----------------------------------------------------
    "task": ("task", "X", "one task body executing on a worker"),
    "dispatch": ("task", "i", "scheduler handed a task to a worker"),
    "grant_wait": ("task", "X", "worker waited for storage grants"),
    "task_failed": ("task", "i", "a task attempt failed on a worker"),
    "task_retry": ("task", "i", "scheduler re-queued a failed task"),
    "task_escalate": ("task", "i", "local retries exhausted; sent to gsched"),
    "task_reroute": ("task", "i", "gsched moved a task to another node"),
    # -- storage ------------------------------------------------------------
    "load": ("storage", "X", "block load: io_cmd write -> io_done"),
    "spill": ("storage", "X", "block spill: io_cmd write -> io_done"),
    "drop": ("storage", "i", "block dropped from memory"),
    "fetch_remote": ("storage", "X", "remote block fetch round trip"),
    "alloc_queue": ("storage", "C", "allocation queue depth"),
    "io_failed": ("storage", "i", "storage received an io_error reply"),
    "deny": ("storage", "i", "a blocked ticket was failed fast"),
    "fetch_retry": ("storage", "i", "unanswered peer fetch retransmitted"),
    "lookup_retry": ("storage", "i", "unanswered owner lookup retransmitted"),
    "lookup_restart": ("storage", "i", "owner walk exhausted and restarted"),
    "rehome": ("storage", "i", "an array's home moved (task reroute)"),
    "request_rejected": ("storage", "i", "read/write request refused"),
    # -- local scheduler ----------------------------------------------------
    "prefetch": ("sched", "i", "prefetch request issued"),
    "prefetch_dropped": ("sched", "i", "storage dropped a prefetch"),
    "stall_tick": ("sched", "i", "idle liveness tick on a node"),
    # -- I/O filters --------------------------------------------------------
    "read": ("io", "X", "raw disk read inside an I/O filter"),
    "write": ("io", "X", "raw disk write inside an I/O filter"),
    "unlink": ("io", "X", "scratch file removal inside an I/O filter"),
    "io_retry": ("io", "i", "I/O attempt failed; backing off to retry"),
    "io_error": ("io", "i", "I/O retries exhausted; error reply sent"),
    # -- fault injection (names are dynamic: one per FaultPlan kind) --------
    "io_transient": ("fault", "i", "injected transient I/O error"),
    "io_permanent": ("fault", "i", "injected permanent I/O error"),
    "peer_drop": ("fault", "i", "injected dropped peer message"),
    "peer_delay": ("fault", "i", "injected delayed peer message"),
    "task_crash": ("fault", "i", "injected worker task crash"),
    "node_kill": ("fault", "i", "injected permanent node death"),
    # -- membership & recovery ----------------------------------------------
    "heartbeat": ("recovery", "i", "local-scheduler liveness beacon to gsched"),
    "node_suspect": ("recovery", "i", "missed heartbeats; node quarantined"),
    "node_alive": ("recovery", "i", "a suspect node heartbeated again"),
    "node_dead": ("recovery", "i", "suspect escalated to dead; recovery runs"),
    "node_evict": ("recovery", "i", "storage applied a dead-node eviction"),
    "reconstruct": ("recovery", "i", "a lost array re-homed to a survivor"),
    "lineage_replay": ("recovery", "i", "completed producer task re-dispatched"),
    "task_reassign": ("recovery", "i", "incomplete task moved off a dead node"),
    "checkpoint_write": ("recovery", "i", "solver-state checkpoint written"),
    "checkpoint_restore": ("recovery", "i", "solver state restored from disk"),
    "checkpoint_reject": ("recovery", "i", "corrupt checkpoint skipped"),
    # -- incremental iteration (delta/workset) ------------------------------
    "block_converged": ("converge", "i", "a partition's iterate went "
                                         "stationary; it left the workset"),
    "block_reentered": ("converge", "i", "a frozen partition's iterate moved "
                                         "again; it rejoined the workset"),
    "workset_size": ("converge", "C", "partitions still active in the sweep"),
    "sweep_tasks": ("converge", "C", "engine tasks scheduled for one sweep"),
    "frontier_size": ("converge", "C", "vector blocks touched by the active "
                                       "frontier"),
    "fixpoint": ("converge", "i", "every partition stationary; iteration "
                                  "terminated early"),
    "async_round": ("converge", "i", "async-Jacobi round relaxed partitions "
                                     "against bounded-stale views"),
    # -- run-level ----------------------------------------------------------
    "phase": ("run", "i", "run-level milestone (start/end, sim phases)"),
    "run_cancel": ("run", "i", "cancel token seen; drain broadcast to nodes"),
    "cancel_drain": ("run", "i", "a node finished its in-flight work after "
                                 "a cancel and acknowledged the drain"),
    # -- job server (repro.server) -------------------------------------------
    "job_submit": ("job", "i", "server accepted a job submission"),
    "job_reject": ("job", "i", "admission control rejected a job"),
    "job_start": ("job", "i", "a queued job began executing"),
    "job_done": ("job", "i", "a job finished and published its result"),
    "job_failed": ("job", "i", "a job exhausted retries and failed"),
    "job_retry": ("job", "i", "a job died to a transient fault; backing off"),
    "job_cancelled": ("job", "i", "a job was cancelled by client or drain"),
    "job_deadline": ("job", "i", "a job overran its deadline; run cancelled"),
    "job_preempt": ("job", "i", "a running job was suspended to checkpoint"),
    "job_resume": ("job", "i", "a preempted job resumed from checkpoint"),
    "queue_depth": ("job", "C", "jobs waiting in the admission queue"),
}

#: the bare name set (what the lint rule checks membership against)
EVENT_NAMES: frozenset[str] = frozenset(EVENTS)


def is_known_event(name: str) -> bool:
    """Is ``name`` part of the stable trace vocabulary?"""
    return name in EVENT_NAMES
