"""Runtime observability: tracing, metrics, and the stall watchdog.

The paper's argument is about *when* blocks move (Fig. 5's back-and-forth
traversal, Table 3's load counts); this package makes that timeline a
first-class artefact of every run:

* :class:`Tracer` / :class:`TraceEvent` — low-overhead structured events
  in per-node ring buffers (same schema for the threaded engine and the
  DES testbed);
* :class:`MetricsRegistry` — named counters superseding the ad-hoc
  ``StoreStats`` fields (which remain as a compatibility view);
* :mod:`repro.obs.chrome` — ``chrome://tracing`` export, JSONL
  persistence, validation (``python -m repro trace <run>``);
* :class:`StallWatchdog` / :class:`Diagnosis` — turns a silent mid-run
  stall into a report naming blocked tickets, queued allocations and
  ready pools instead of a bare timeout.
"""

from repro.obs.bridge import events_from_sim_trace
from repro.obs.chrome import (
    export_chrome_trace,
    load_chrome_trace,
    load_events_jsonl,
    normalize_chrome_trace,
    save_events_jsonl,
    to_chrome,
    validate_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import SCHEMA_VERSION, TraceEvent, Tracer
from repro.obs.vocab import EVENT_NAMES, EVENTS, is_known_event
from repro.obs.watchdog import Diagnosis, StallWatchdog

__all__ = [
    "SCHEMA_VERSION",
    "TraceEvent",
    "Tracer",
    "EVENTS",
    "EVENT_NAMES",
    "is_known_event",
    "MetricsRegistry",
    "StallWatchdog",
    "Diagnosis",
    "to_chrome",
    "export_chrome_trace",
    "load_chrome_trace",
    "validate_chrome_trace",
    "normalize_chrome_trace",
    "save_events_jsonl",
    "load_events_jsonl",
    "events_from_sim_trace",
]
