"""Deadlock/stall watchdog.

``DOoCEngine.run(timeout=...)`` used to die with a bare ``TimeoutError``
when a run wedged — no indication of *what* was stuck.  The watchdog
monitors the tracer's heartbeat (every traced event updates
``Tracer.last_activity``, even with recording disabled); when no event has
landed for a configurable quiet period mid-run it assembles a
:class:`Diagnosis` from the live runtime state: blocked read waiters,
outstanding write tickets, queued allocations and memory pressure per
store, plus each node's scheduler ready pool.  The diagnosis is delivered
to a callback (the engine logs it and attaches it to the eventual timeout
error) rather than raising — a stall may still resolve.
"""

from __future__ import annotations

import sys
import threading
from dataclasses import dataclass, field
from collections.abc import Callable

from repro.obs.tracer import Tracer

__all__ = ["Diagnosis", "StallWatchdog"]


@dataclass
class Diagnosis:
    """Snapshot of why a run appears stuck."""

    at: float                 # tracer time of the diagnosis
    quiet_s: float            # silence that triggered it
    nodes: list[dict] = field(default_factory=list)
    #: node -> {"state": alive|suspect|dead, "silent_s": ...} from the
    #: failure detector, when membership tracking is on
    membership: dict[int, dict] | None = None

    @property
    def blocked_tickets(self) -> list[int]:
        """Ticket ids of every blocked read waiter, across nodes."""
        return [
            w["ticket"]
            for node in self.nodes
            for w in node.get("blocked_reads", [])
        ]

    def render(self) -> str:
        lines = [
            f"stall watchdog: no runtime event for {self.quiet_s:.2f}s "
            f"(t={self.at:.2f}s); per-node state:"
        ]
        if self.membership:
            # Lead with liveness: a DEAD node reframes every blocked-ticket
            # line below as "waiting on a corpse", not as a protocol bug.
            gone = {n: m for n, m in self.membership.items()
                    if m.get("state") != "alive"}
            for n, m in sorted(gone.items()):
                state = str(m.get("state", "?")).upper()
                lines.append(
                    f"  node {n} membership: {state} "
                    f"(silent {m.get('silent_s', '?')}s)"
                )
            if not gone:
                lines.append(
                    "  membership: all nodes heartbeating (stall is not a "
                    "node loss)"
                )
        for node in self.nodes:
            n = node.get("node", "?")
            lines.append(
                f"  node {n}: memory {node.get('in_use', '?')}/"
                f"{node.get('budget', '?')} bytes"
            )
            reads = node.get("blocked_reads", [])
            if reads:
                lines.append(f"    blocked read waiters ({len(reads)}):")
                for w in reads:
                    lines.append(
                        f"      ticket {w['ticket']} awaiting "
                        f"{w['array']}[{w['block']}] "
                        f"[{w['lo']}, {w['hi']}) — {w['why']}"
                    )
            writes = node.get("write_tickets", [])
            if writes:
                lines.append(f"    outstanding write tickets ({len(writes)}):")
                for w in writes:
                    state = "granted" if w["granted"] else "awaiting grant"
                    lines.append(
                        f"      ticket {w['ticket']} on "
                        f"{w['array']}[{w['block']}] ({state})"
                    )
            queue = node.get("alloc_queue", [])
            if queue:
                total = sum(q["bytes"] for q in queue)
                lines.append(
                    f"    queued allocations: {len(queue)} "
                    f"({total} bytes waiting for headroom)"
                )
            ready = node.get("ready_tasks", [])
            if ready:
                lines.append(
                    f"    scheduler ready pool ({len(ready)}): "
                    + ", ".join(ready[:8])
                    + (" ..." if len(ready) > 8 else "")
                )
            if node.get("inflight") is not None:
                lines.append(
                    f"    tasks in flight: {node['inflight']}, "
                    f"idle workers: {node.get('idle_workers', '?')}"
                )
            recovery = node.get("recovery")
            if recovery:
                lines.append(
                    "    recovery activity (node is retrying, not dead): "
                    + ", ".join(f"{k}={v}" for k, v in sorted(recovery.items()))
                )
        if len(lines) == 1:
            lines.append("  (no per-node state registered)")
        return "\n".join(lines)


class StallWatchdog:
    """Background monitor turning silence into a diagnosis.

    ``watch_store``/``watch_scheduler`` register best-effort snapshot
    sources: the runtime mutates them concurrently, so snapshot failures
    are tolerated (a torn read beats a silent timeout).
    """

    def __init__(self, tracer: Tracer, *, quiet_s: float = 10.0,
                 on_stall: Callable[[Diagnosis], None] | None = None,
                 poll_s: float | None = None,
                 log: bool = True):
        if quiet_s <= 0:
            raise ValueError("quiet_s must be positive")
        self.tracer = tracer
        self.quiet_s = quiet_s
        self.poll_s = poll_s if poll_s is not None else max(quiet_s / 4.0, 0.01)
        self.on_stall = on_stall
        self.log = log
        self.last_diagnosis: Diagnosis | None = None
        self._stores: dict[int, object] = {}
        self._schedulers: dict[int, Callable[[], dict]] = {}
        self._membership: Callable[[], dict] | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- registration ---------------------------------------------------------

    def watch_store(self, node: int, store: object) -> None:
        """Register a store exposing ``debug_snapshot() -> dict``."""
        self._stores[node] = store

    def watch_scheduler(self, node: int,
                        snapshot: Callable[[], dict]) -> None:
        """Register a per-node scheduler snapshot callable."""
        self._schedulers[node] = snapshot

    def watch_membership(self, snapshot: Callable[[], dict]) -> None:
        """Register the failure detector's per-node liveness snapshot.

        With this registered, a diagnosis separates "node 1 is DEAD, the
        cluster is reconstructing its blocks" from retry churn on a node
        that is slow but still heartbeating.
        """
        self._membership = snapshot

    # -- diagnosis ------------------------------------------------------------

    def diagnose(self) -> Diagnosis:
        """Assemble a diagnosis from the registered sources right now."""
        diag = Diagnosis(at=self.tracer.now(), quiet_s=self.quiet_s)
        if self._membership is not None:
            try:
                diag.membership = dict(self._membership())
            except Exception as exc:  # noqa: BLE001 - concurrent mutation
                diag.membership = {-1: {"state": f"error: {exc!r}"}}
        for node in sorted(set(self._stores) | set(self._schedulers)):
            entry: dict = {"node": node}
            store = self._stores.get(node)
            if store is not None:
                try:
                    entry.update(store.debug_snapshot())  # type: ignore[attr-defined]
                except Exception as exc:  # noqa: BLE001 - concurrent mutation
                    entry["store_error"] = repr(exc)
            snapshot = self._schedulers.get(node)
            if snapshot is not None:
                try:
                    entry.update(snapshot())
                except Exception as exc:  # noqa: BLE001
                    entry["scheduler_error"] = repr(exc)
            diag.nodes.append(entry)
        self.last_diagnosis = diag
        return diag

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("watchdog already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="obs-watchdog", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _run(self) -> None:
        reported_at = -1.0  # last_activity value we already diagnosed
        while not self._stop.wait(self.poll_s):
            last = self.tracer.last_activity
            if self.tracer.now() - last < self.quiet_s:
                continue
            if last == reported_at:
                continue  # still the same stall; one diagnosis is enough
            reported_at = last
            diag = self.diagnose()
            if self.log:
                print(diag.render(), file=sys.stderr)
            if self.on_stall is not None:
                try:
                    self.on_stall(diag)
                except Exception:  # noqa: BLE001 - callback must not kill us
                    pass

    def __enter__(self) -> StallWatchdog:
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
