"""Low-overhead runtime event tracing.

The engine is a web of threads (storage, I/O, scheduler, worker filters per
node) whose interesting behaviour is *temporal*: when blocks are loaded,
spilled and reused, when tasks wait for grants, when prefetches land or are
dropped.  :class:`Tracer` records that timeline as structured
:class:`TraceEvent` records in **per-node ring buffers** (bounded memory,
oldest events overwritten) guarded by per-node locks, so hot paths never
contend across nodes and never block on a consumer.

The same schema is emitted by the threaded engine (wall-clock timestamps)
and the DES testbed (simulated timestamps) — pass ``clock=lambda: env.now``
for the latter.  Export with :mod:`repro.obs.chrome` and open the result in
``chrome://tracing`` / Perfetto.

Event vocabulary (the stable schema; see docs/OBSERVABILITY.md):

======== =========== ==============================================
category name        meaning
======== =========== ==============================================
task     task        one task body executing on a worker (span)
task     dispatch    scheduler handed a task to a worker (instant)
task     grant_wait  worker waited for storage grants (span)
storage  load        block load: io_cmd write -> io_done (span)
storage  spill       block spill: io_cmd write -> io_done (span)
storage  drop        block dropped from memory (instant)
storage  fetch_remote remote block fetch round trip (span)
storage  alloc_queue allocation queue depth (counter)
sched    prefetch    prefetch request issued (instant)
sched    prefetch_dropped storage dropped a prefetch (instant)
sched    stall_tick  idle liveness tick on a node (instant)
io       read/write  raw disk time inside an I/O filter (span)
io       io_retry    I/O attempt failed; backing off to retry (instant)
io       io_error    I/O retries exhausted; error reply sent (instant)
task     task_failed a task attempt failed on a worker (instant)
task     task_retry  scheduler re-queued a failed task (instant)
task     task_escalate local retries exhausted; sent to gsched (instant)
task     task_reroute gsched moved a task to another node (instant)
storage  io_failed   storage received an io_error reply (instant)
storage  deny        a blocked ticket was failed fast (instant)
storage  fetch_retry unanswered peer fetch retransmitted (instant)
storage  lookup_retry unanswered owner lookup retransmitted (instant)
storage  lookup_restart owner walk exhausted and restarted (instant)
storage  rehome      an array's home moved (task reroute) (instant)
storage  request_rejected read/write request refused (instant)
fault    *           FaultPlan injection (kind in the name) (instant)
run      phase       run-level milestones (instant)
======== =========== ==============================================
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from collections.abc import Callable, Iterator
from typing import Any

__all__ = ["TraceEvent", "Tracer"]

#: schema version embedded in exports; bump on incompatible changes
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped runtime event.

    ``ph`` follows the Chrome trace phases: ``"X"`` complete (has ``dur``),
    ``"i"`` instant, ``"C"`` counter (value in ``args``).
    """

    ts: float            # seconds since the tracer's epoch
    node: int            # logical node (-1 = engine-global)
    lane: str            # thread-like lane within the node ("worker/0", "io/1", ...)
    cat: str             # "task" | "storage" | "sched" | "io" | "run"
    name: str            # event name from the schema vocabulary
    ph: str = "i"        # "X" | "i" | "C"
    dur: float = 0.0     # seconds; only meaningful for ph == "X"
    args: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        out: dict[str, Any] = {
            "ts": self.ts, "node": self.node, "lane": self.lane,
            "cat": self.cat, "name": self.name, "ph": self.ph,
        }
        if self.ph == "X":
            out["dur"] = self.dur
        if self.args:
            out["args"] = dict(self.args)
        return out

    @classmethod
    def from_json(cls, obj: dict) -> TraceEvent:
        return cls(
            ts=float(obj["ts"]), node=int(obj["node"]), lane=str(obj["lane"]),
            cat=str(obj["cat"]), name=str(obj["name"]), ph=str(obj.get("ph", "i")),
            dur=float(obj.get("dur", 0.0)), args=dict(obj.get("args", {})),
        )


class _NodeRing:
    """Bounded event buffer for one node, with its own lock."""

    __slots__ = ("lock", "events", "dropped")

    def __init__(self, capacity: int):
        self.lock = threading.Lock()
        self.events: deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0

    def append(self, event: TraceEvent) -> None:
        with self.lock:
            if len(self.events) == self.events.maxlen:
                self.dropped += 1
            self.events.append(event)


class Tracer:
    """Thread-safe event recorder with per-node ring buffers.

    ``enabled=False`` keeps every call-site unconditional while reducing
    each emit to a clock read + attribute store (the watchdog still sees
    activity); ring appends are skipped entirely.
    """

    def __init__(self, *, enabled: bool = True, capacity: int = 1 << 16,
                 clock: Callable[[], float] | None = None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.enabled = enabled
        self.capacity = capacity
        self._clock = clock or time.monotonic
        self._epoch = self._clock()
        self._rings: dict[int, _NodeRing] = {}
        self._rings_lock = threading.Lock()
        #: timestamp (tracer clock) of the most recent emit, even when
        #: disabled — the stall watchdog's heartbeat.
        self.last_activity = 0.0

    # -- clock ----------------------------------------------------------------

    def now(self) -> float:
        """Seconds since the tracer's epoch."""
        return self._clock() - self._epoch

    # -- emission -------------------------------------------------------------

    def _ring(self, node: int) -> _NodeRing:
        ring = self._rings.get(node)
        if ring is None:
            with self._rings_lock:
                ring = self._rings.setdefault(node, _NodeRing(self.capacity))
        return ring

    def emit(self, event: TraceEvent) -> None:
        self.last_activity = event.ts
        if not self.enabled:
            return
        self._ring(event.node).append(event)

    def instant(self, node: int, lane: str, cat: str, name: str, **args: Any) -> None:
        self.emit(TraceEvent(self.now(), node, lane, cat, name, "i", args=args))

    def counter(self, node: int, lane: str, cat: str, name: str,
                value: float, **args: Any) -> None:
        self.emit(TraceEvent(self.now(), node, lane, cat, name, "C",
                             args={"value": value, **args}))

    def complete(self, node: int, lane: str, cat: str, name: str,
                 start: float, *, end: float | None = None, **args: Any) -> None:
        """Record a finished span that began at tracer time ``start``."""
        end = self.now() if end is None else end
        self.emit(TraceEvent(start, node, lane, cat, name, "X",
                             dur=max(end - start, 0.0), args=args))

    @contextmanager
    def span(self, node: int, lane: str, cat: str, name: str,
             **args: Any) -> Iterator[None]:
        start = self.now()
        try:
            yield
        finally:
            self.complete(node, lane, cat, name, start, **args)

    # -- consumption ----------------------------------------------------------

    def events(self, node: int | None = None) -> list[TraceEvent]:
        """Snapshot of recorded events (all nodes by default), time-ordered."""
        out: list[TraceEvent] = []
        with self._rings_lock:
            rings = list(self._rings.items())
        for n, ring in rings:
            if node is not None and n != node:
                continue
            with ring.lock:
                out.extend(ring.events)
        out.sort(key=lambda e: (e.ts, e.node, e.lane))
        return out

    def drain(self) -> list[TraceEvent]:
        """Collect and clear every ring (thread-safe)."""
        out: list[TraceEvent] = []
        with self._rings_lock:
            rings = list(self._rings.values())
        for ring in rings:
            with ring.lock:
                out.extend(ring.events)
                ring.events.clear()
        out.sort(key=lambda e: (e.ts, e.node, e.lane))
        return out

    def dropped(self) -> dict[int, int]:
        """Events overwritten per node since construction (ring overflow)."""
        with self._rings_lock:
            return {n: r.dropped for n, r in self._rings.items() if r.dropped}

    def ingest(self, events: list[TraceEvent]) -> None:
        """Bulk-append externally produced events (e.g. the DES bridge)."""
        for e in events:
            self.emit(e)
