"""The local scheduler: per-node reorder + prefetch decision core.

The local scheduler "splits [tasks] to match the parallelism available on
the node", marks tasks ready once their predecessors finish, prefers ready
tasks "whose data input are available in memory", and "makes sure that
there are a given number of ready tasks whose data are in memory by
sending sufficient prefetch requests to the storage layer".

The preference order implemented here is what makes the back-and-forth
plan of Fig. 5(b) *emerge* rather than be programmed:

1. tasks with **every** input array resident come first;
2. then by resident input bytes (more reuse first);
3. ties broken **LIFO** on readiness: the task that became ready last runs
   first.  In iterated SpMV, the column processed last in iteration *i*
   produces its reduced vector last, so iteration *i+1* starts with the
   sub-matrix that is still in memory and traverses the columns backwards.

The class is pure: the engine and the DES testbed drive it with residency
snapshots and consume its decisions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from collections.abc import Mapping
from typing import AbstractSet

from repro.core.task import TaskSpec


@dataclass(frozen=True)
class _ReadyEntry:
    seq: int  # readiness order (monotonic)
    task: TaskSpec


class LocalSchedulerCore:
    """Decision core for one node."""

    def __init__(self, node: int, *, prefetch_depth: int = 2,
                 reorder: bool = True):
        if prefetch_depth < 0:
            raise ValueError("prefetch_depth must be >= 0")
        self.node = node
        self.prefetch_depth = prefetch_depth
        #: when False, tasks run in plain readiness (FIFO) order — the
        #: naive MPI-style plan of Fig. 5(a), kept as an ablation switch
        self.reorder = reorder
        self._seq = itertools.count()
        self._ready: dict[str, _ReadyEntry] = {}
        self._prefetched: set[str] = set()  # arrays already asked for

    # -- feeding ---------------------------------------------------------------

    def add_ready(self, task: TaskSpec) -> None:
        """A task assigned to this node became runnable."""
        if task.name in self._ready:
            raise ValueError(f"task {task.name!r} added ready twice")
        self._ready[task.name] = _ReadyEntry(next(self._seq), task)

    @property
    def ready_count(self) -> int:
        return len(self._ready)

    def pending_tasks(self) -> list[TaskSpec]:
        return [e.task for e in self._ready.values()]

    # -- decisions ---------------------------------------------------------------

    def _score(self, entry: _ReadyEntry, resident: AbstractSet[str],
               nbytes: Mapping[str, int]) -> tuple:
        t = entry.task
        res_bytes = sum(nbytes.get(a, 0) for a in t.inputs if a in resident)
        all_resident = all(a in resident for a in t.inputs)
        # Sort descending on each component: (all_resident, bytes, seq).
        return (all_resident, res_bytes, entry.seq)

    def rank(self, resident: AbstractSet[str],
             nbytes: Mapping[str, int]) -> list[TaskSpec]:
        """Ready tasks in execution-preference order."""
        if not self.reorder:
            entries = sorted(self._ready.values(), key=lambda e: e.seq)
            return [e.task for e in entries]
        entries = sorted(
            self._ready.values(),
            key=lambda e: self._score(e, resident, nbytes),
            reverse=True,
        )
        return [e.task for e in entries]

    def pick(self, resident: AbstractSet[str],
             nbytes: Mapping[str, int]) -> TaskSpec | None:
        """Choose and *claim* the next task to run (None when idle)."""
        ranked = self.rank(resident, nbytes)
        if not ranked:
            return None
        return self.claim(ranked[0].name)

    def claim(self, name: str) -> TaskSpec:
        """Remove a ready task from the pool (the caller will run it)."""
        entry = self._ready.pop(name)
        self._prefetched.difference_update(entry.task.inputs)
        return entry.task

    def reset_prefetch(self) -> None:
        """Forget all in-flight prefetch bookkeeping (stall recovery).

        Re-prefetching a block that is resident or already loading is a
        no-op in the storage layer, so this is always safe; it re-enables
        requests for prefetches the storage dropped under memory pressure.
        """
        self._prefetched.clear()

    def prefetch_plan(self, resident: AbstractSet[str],
                      nbytes: Mapping[str, int]) -> list[str]:
        """Arrays to warm for the next ``prefetch_depth`` preferred tasks.

        Already-resident and already-requested arrays are skipped; the
        caller should forward each name to the storage layer once.
        """
        plan: list[str] = []
        for t in self.rank(resident, nbytes)[: self.prefetch_depth]:
            for array in t.inputs:
                if array in resident or array in self._prefetched or array in plan:
                    continue
                plan.append(array)
        self._prefetched.update(plan)
        return plan

    def forget_prefetch(self, array: str) -> None:
        """Allow an array to be prefetched again (it was evicted)."""
        self._prefetched.discard(array)

    # -- splitting ---------------------------------------------------------------

    @staticmethod
    def split(task: TaskSpec, parts: int) -> list[TaskSpec]:
        """Split a splittable task into ``parts`` row-range subtasks.

        The task must carry ``meta['splitter']``: a callable
        ``(task, parts) -> list[TaskSpec]`` provided by the application
        (the middleware cannot know how to partition an arbitrary kernel's
        output).  Subtasks carry ``meta['parent']`` for completion
        accounting.
        """
        if parts <= 1 or not task.splittable:
            return [task]
        splitter = task.meta.get("splitter")
        if splitter is None:
            return [task]
        subtasks = splitter(task, parts)
        for sub in subtasks:
            if sub.meta.get("parent") != task.name:
                raise ValueError(
                    f"splitter for {task.name!r} must set meta['parent']"
                )
        return subtasks
