"""DOoC exception hierarchy."""


class DoocError(RuntimeError):
    """Base class for DOoC errors."""


class StorageError(DoocError):
    """Storage-layer protocol violation (bad interval, double release...)."""


class ImmutabilityError(StorageError):
    """Write-once semantics violated: a written range was written again."""


class UnknownArrayError(StorageError):
    """An operation referenced an array the storage layer has never seen."""


class IOFailedError(StorageError):
    """A block I/O operation failed permanently (retries exhausted).

    Raised on the consumer side when a blocked ticket is denied because
    the backing load/fetch could not be completed — the fail-fast
    alternative to a read waiter stalling forever behind a dead I/O path.
    """


class SchedulingError(DoocError):
    """Task-graph or scheduler inconsistency (cycles, unknown producers...)."""


class TaskFailedError(SchedulingError):
    """A task exhausted local re-execution attempts and node reroutes."""


class StallError(DoocError, TimeoutError):
    """A run timed out; carries the watchdog's stall diagnosis.

    Subclasses ``TimeoutError`` so callers that caught the engine's old
    bare timeout keep working; ``diagnosis`` (when a watchdog was active)
    names the blocked tickets, queued allocations and ready pools.
    """

    def __init__(self, message: str, diagnosis=None):
        super().__init__(message)
        self.diagnosis = diagnosis


class NodeLostError(StallError):
    """A node was declared permanently dead and the run could not recover.

    Carries the dead node's id and the number of array blocks homed there
    (the data lost with it).  Subclasses :class:`StallError` so callers
    treating a stalled run generically keep working, but a *dead* node is
    never reported as a generic stall — the failure detector's verdict and
    the lost-block count are in the message and on the attributes.
    """

    def __init__(self, message: str, diagnosis=None, *, node: int = -1,
                 lost_blocks: int = 0):
        super().__init__(message, diagnosis)
        self.node = node
        self.lost_blocks = lost_blocks


class RecoveryError(DoocError):
    """Checkpoint/restart or lineage machinery failed (corrupt manifest...)."""
