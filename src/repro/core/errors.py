"""DOoC exception hierarchy."""


class DoocError(RuntimeError):
    """Base class for DOoC errors."""


class StorageError(DoocError):
    """Storage-layer protocol violation (bad interval, double release...)."""


class ImmutabilityError(StorageError):
    """Write-once semantics violated: a written range was written again."""


class UnknownArrayError(StorageError):
    """An operation referenced an array the storage layer has never seen."""


class SchedulingError(DoocError):
    """Task-graph or scheduler inconsistency (cycles, unknown producers...)."""
