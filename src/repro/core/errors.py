"""DOoC exception hierarchy."""


class DoocError(RuntimeError):
    """Base class for DOoC errors."""


class StorageError(DoocError):
    """Storage-layer protocol violation (bad interval, double release...)."""


class ImmutabilityError(StorageError):
    """Write-once semantics violated: a written range was written again."""


class UnknownArrayError(StorageError):
    """An operation referenced an array the storage layer has never seen."""


class BlockMissingError(StorageError):
    """A read addressed a block that was never written to disk.

    Raised when the backing file (or chunk file) does not exist, or the
    block's offset lies past the end of the file — a *reconstructable*
    miss (sparse writes, a producer that never ran), categorically
    different from a torn or corrupt file: fault-tolerance retries are
    pointless (the bytes were never there) and lineage replay can
    regenerate the block, so the two must not share an error type.
    """


class CodecError(StorageError):
    """A compressed block payload failed to decode cleanly.

    Truncated, bit-flipped, or mis-framed payloads surface as this error
    (never as a silently garbage block): the codec pipeline length- and
    checksum-verifies every decode.
    """


class UnknownCodecError(CodecError):
    """A codec name (header, manifest, DOOC_CODEC) is not registered."""


class IOFailedError(StorageError):
    """A block I/O operation failed permanently (retries exhausted).

    Raised on the consumer side when a blocked ticket is denied because
    the backing load/fetch could not be completed — the fail-fast
    alternative to a read waiter stalling forever behind a dead I/O path.
    """


class SchedulingError(DoocError):
    """Task-graph or scheduler inconsistency (cycles, unknown producers...)."""


class TaskFailedError(SchedulingError):
    """A task exhausted local re-execution attempts and node reroutes."""


class StallError(DoocError, TimeoutError):
    """A run timed out; carries the watchdog's stall diagnosis.

    Subclasses ``TimeoutError`` so callers that caught the engine's old
    bare timeout keep working; ``diagnosis`` (when a watchdog was active)
    names the blocked tickets, queued allocations and ready pools.
    """

    def __init__(self, message: str, diagnosis=None):
        super().__init__(message)
        self.diagnosis = diagnosis


class NodeLostError(StallError):
    """A node was declared permanently dead and the run could not recover.

    Carries the dead node's id and the number of array blocks homed there
    (the data lost with it).  Subclasses :class:`StallError` so callers
    treating a stalled run generically keep working, but a *dead* node is
    never reported as a generic stall — the failure detector's verdict and
    the lost-block count are in the message and on the attributes.
    """

    def __init__(self, message: str, diagnosis=None, *, node: int = -1,
                 lost_blocks: int = 0):
        super().__init__(message, diagnosis)
        self.node = node
        self.lost_blocks = lost_blocks


class RunCancelled(DoocError):
    """A run was cooperatively cancelled through its :class:`CancelToken`.

    Not a failure: the engine drained in-flight tasks, released every
    ticket, spilled nothing torn, and left /dev/shm clean before raising.
    ``reason`` carries the canceller's stated motive (user cancel,
    deadline, preemption) so callers can map the cancellation onto their
    own terminal states without string-matching the message.
    """

    def __init__(self, message: str, *, reason: str = "cancelled"):
        super().__init__(message)
        self.reason = reason


class RecoveryError(DoocError):
    """Checkpoint/restart or lineage machinery failed (corrupt manifest...)."""


class CodecMismatchError(RecoveryError):
    """A checkpoint was written under a different codec than the restorer's.

    Restarting across a codec change is refused by name rather than
    risking a half-migrated checkpoint directory: re-encode explicitly
    (or restore with the original codec) instead.
    """
