"""The threaded out-of-core execution engine.

``DOoCEngine`` runs a :class:`Program` — global arrays plus tasks declaring
whole arrays as inputs/outputs — on an in-process "cluster" of logical
nodes.  The engine builds the paper's architecture (Fig. 2) as a DataCutter
layout:

* one **storage filter** per node owning a :class:`~repro.core.storage.LocalStore`
  over a per-node scratch directory, with complete peer-to-peer links to
  all other storage filters (random-peer directory lookups + block fetches);
* one or more **I/O filters** per node, so filesystem interaction is fully
  asynchronous;
* a **local scheduler filter** per node driving
  :class:`~repro.core.local_scheduler.LocalSchedulerCore` (splitting,
  data-aware reordering, prefetching);
* replicated **worker filters** per node executing task bodies on NumPy
  views granted by the storage layer;
* one **global scheduler filter** walking the derived task DAG and
  dispatching ready tasks to the node chosen by the affinity heuristic.

Nodes are threads sharing one address space; "remote" transfers are
real messages through the peer protocol (the payload copy is genuine), so
every protocol path of the paper executes, just without a physical wire.
"""

from __future__ import annotations

import itertools
import os
import shutil
import tempfile
import time
import weakref
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, NoReturn

import numpy as np

from repro.core.array import ArrayDesc
from repro.core.dag import TaskDAG
from repro.core.directory import DirectoryClient, LookupFailed
from repro.core.cancel import CancelToken
from repro.core.errors import (
    DoocError,
    IOFailedError,
    NodeLostError,
    RunCancelled,
    SchedulingError,
    StallError,
    StorageError,
    TaskFailedError,
)
from repro.core.global_scheduler import GlobalScheduler, failover_node
from repro.core.interval import (
    Interval,
    Permission,
    intervals_for_range,
    whole_array,
)
from repro.core.codecs import resolve_codec
from repro.core.iofilter import IOFilter, read_block, write_array
from repro.core.local_scheduler import LocalSchedulerCore
from repro.core.opcache import (
    OPERAND_CONTEXT_KEY,
    DecodedOperandCache,
    OperandContext,
    legacy_copy_plane,
    resolve_data_plane,
)
from repro.core.procplane import (
    EnvelopeUnpicklable,
    ProcessWorkerPool,
    WorkerProcessCrash,
    build_envelope,
)
from repro.core.shm import SegmentLeakError, SegmentPool
from repro.core.storage import Effect, LocalStore, StoreStats, Ticket
from repro.core.task import TaskSpec
from repro.datacutter.buffers import END_OF_STREAM, DataBuffer
from repro.datacutter.errors import FilterError, StreamClosedError
from repro.datacutter.filters import Filter, FilterContext
from repro.datacutter.layout import DistributionPolicy, Layout
from repro.datacutter.runtime import ThreadedRuntime
from repro.faults import FaultInjector, FaultPlan, InjectedTaskCrash, RetryPolicy
from repro.obs.metrics import MetricsRegistry
from repro.obs import (
    Diagnosis,
    StallWatchdog,
    TraceEvent,
    Tracer,
    export_chrome_trace,
    save_events_jsonl,
)
from repro.recovery.lineage import LineageLog, plan_reconstruction
from repro.recovery.membership import (
    DEAD,
    SUSPECT,
    MembershipConfig,
    MembershipTracker,
)
from repro.util.rng import RngTree

__all__ = ["Program", "DOoCEngine", "RunReport"]


# ---------------------------------------------------------------------------
# Program description
# ---------------------------------------------------------------------------


class Program:
    """A DOoC application: global arrays + tasks.

    Initial arrays carry data (seeded to a node's scratch directory before
    the run); derived arrays are produced by exactly one task each.
    """

    def __init__(self, name: str = "program", *, default_block_elems: int = 2**16):
        self.name = name
        self.default_block_elems = default_block_elems
        self.arrays: dict[str, ArrayDesc] = {}
        self.initial_data: dict[str, np.ndarray] = {}
        self.initial_home: dict[str, int] = {}
        self.tasks: list[TaskSpec] = []

    def array(
        self,
        name: str,
        length: int,
        *,
        dtype: str = "float64",
        block_elems: int | None = None,
    ) -> ArrayDesc:
        """Declare a derived array (to be produced by a task)."""
        if name in self.arrays:
            raise DoocError(f"array {name!r} declared twice")
        desc = ArrayDesc(name, length=length, dtype=dtype,
                         block_elems=block_elems or self.default_block_elems)
        self.arrays[name] = desc
        return desc

    def initial_array(
        self,
        name: str,
        data: np.ndarray,
        *,
        home: int = 0,
        block_elems: int | None = None,
    ) -> ArrayDesc:
        """Declare an input array with seed data, homed on ``home``."""
        data = np.asarray(data)
        if data.ndim != 1:
            raise DoocError(f"initial array {name!r} must be 1-D")
        desc = self.array(name, len(data), dtype=str(data.dtype),
                          block_elems=block_elems)
        self.initial_data[name] = data
        self.initial_home[name] = home
        return desc

    def initial_from_scratch(
        self,
        name: str,
        length: int,
        *,
        home: int = 0,
        dtype: str = "float64",
        block_elems: int | None = None,
    ) -> ArrayDesc:
        """Declare an input array whose backing file already exists in the
        home node's scratch directory (seeded by a previous run or by
        :func:`repro.core.iofilter.write_array`) — the paper's startup
        scan: "the storage looks for files in that directory"."""
        desc = self.array(name, length, dtype=dtype, block_elems=block_elems)
        self.initial_data[name] = None  # type: ignore[assignment]
        self.initial_home[name] = home
        return desc

    def add_task(
        self,
        name: str,
        fn,
        inputs: list[str] | tuple[str, ...],
        outputs: list[str] | tuple[str, ...],
        *,
        flops: float = 0.0,
        splittable: bool = False,
        **meta: Any,
    ) -> TaskSpec:
        for array in list(inputs) + list(outputs):
            if array not in self.arrays:
                raise DoocError(
                    f"task {name!r} references undeclared array {array!r}"
                )
        spec = TaskSpec(name=name, fn=fn, inputs=tuple(inputs),
                        outputs=tuple(outputs), flops=flops,
                        splittable=splittable, meta=dict(meta))
        self.tasks.append(spec)
        return spec

    def build_dag(self) -> TaskDAG:
        return TaskDAG(self.tasks, initial_arrays=set(self.initial_data))


# ---------------------------------------------------------------------------
# Filters
# ---------------------------------------------------------------------------


class _StorageFilter(Filter):
    """Per-node storage service: the event loop around LocalStore.

    Besides the fault-free protocol, this filter owns the node's peer-fault
    recovery: unanswered fetches and owner lookups are retransmitted after
    ``RETRANSMIT_S`` (a lost message must not strand a read waiter), and
    exhausted I/O retries arriving as ``io_error`` replies are turned into
    fail-fast ticket denials instead of stalls.  All of the recovery
    machinery is dormant — no clock reads, no timed waits — while the
    pending sets are empty, so fault-free runs pay nothing for it.
    """

    inputs = ("req", "io_done", "peer_in")

    #: read_any timeout while recovery work (delayed sends, unanswered
    #: fetches/lookups) is pending; the read blocks indefinitely otherwise
    RETRY_TICK_S = 0.05
    #: seconds before an unanswered fetch or lookup is retransmitted
    RETRANSMIT_S = 0.25

    def __init__(self, node: int, n_nodes: int, store: LocalStore,
                 directory: DirectoryClient, descs: dict[str, ArrayDesc],
                 tracer: Tracer | None = None,
                 injector: FaultInjector | None = None,
                 legacy_copies: bool | None = None):
        self.node = node
        self.n_nodes = n_nodes
        self.store = store
        self.directory = directory
        self.descs = descs
        self.tracer = tracer or Tracer(enabled=False)
        self.injector = injector
        #: legacy (copying) peer-serve path for A/B benchmarking; the
        #: zero-copy plane serves the sealed block's read-only view
        #: directly.  The engine threads its construction-time snapshot
        #: here; sampling the environment is only the fallback for direct
        #: construction, so a mid-run DOOC_DATA_PLANE flip can't leave
        #: this filter on a different plane than its peers.
        self.legacy_copies = (legacy_copy_plane() if legacy_copies is None
                              else bool(legacy_copies))
        self.outputs = ("rep_workers", "rep_lsched", "io_cmd") + tuple(
            f"peer_out_{j}" for j in range(n_nodes) if j != node
        )
        self._outstanding_io = 0
        self._draining = False
        self._io_closed = False
        #: set by the "die" op (injected node loss): the filter keeps its
        #: threads' streams flowing but does no protocol work — a corpse
        #: must exit orderly, never crash the shared runtime
        self._dead = False
        # array -> (home, on_disk) of recovery rehomes blocked on a pin
        self._recover_pending: dict[str, tuple[int, bool]] = {}
        # array -> blocks awaiting owner resolution
        self._awaiting_owner: dict[str, list[int]] = {}
        # arrays whose GC delete raced an in-flight pin; retried on release
        self._gc_pending: set[str] = set()
        # (op, array, block) -> tracer start time of the in-flight transfer
        self._io_started: dict[tuple[str, str, int], float] = {}
        self._last_queue_depth = 0
        # injected-delay holding pen: (due monotonic time, peer, payload)
        self._delayed: list[tuple[float, int, dict]] = []
        # (array, block) -> (retransmit deadline, owner) of in-flight fetches
        self._fetch_pending: dict[tuple[str, int], tuple[float, int]] = {}
        # array -> (retransmit deadline, probed peer) of in-flight lookups
        self._lookup_pending: dict[str, tuple[float, int]] = {}

    # -- helpers --------------------------------------------------------------

    def _peer_send(self, ctx: FilterContext, peer: int, payload: dict) -> None:
        try:
            ctx.write(f"peer_out_{peer}", DataBuffer(payload))
        except StreamClosedError:
            if not self._draining:
                raise  # only tolerable while winding down

    def _peer_write(self, ctx: FilterContext, peer: int, payload: dict) -> None:
        if peer in self.directory.evicted:
            return  # the peer is a declared corpse; nothing to say to it
        if self.injector is not None and not self._draining:
            fate = self.injector.peer_fault(
                peer, payload["op"], payload.get("array"),
                payload.get("block", -1))
            if fate is not None:
                kind, delay_s = fate
                if kind == "drop":
                    return
                self._delayed.append(
                    (time.monotonic() + delay_s, peer, payload))
                return
        self._peer_send(ctx, peer, payload)

    def _reply(self, ctx: FilterContext, tag, payload: dict) -> None:
        kind = tag[0]
        if kind == "worker":
            ctx.write("rep_workers", DataBuffer(payload, {"__dest__": tag[1]}))
        elif kind == "lsched":
            ctx.write("rep_lsched", DataBuffer(payload))
        elif kind == "peer":
            ticket: Ticket = payload["ticket"]
            iv = ticket.interval
            # Zero-copy serve: the granted view is read-only and the block
            # is sealed (write-once), so the peer may share the memory; it
            # stays alive through numpy's base reference even if this node
            # reclaims the buffer afterwards.
            data = np.asarray(ticket.data)
            if self.legacy_copies:
                self.store.metrics.inc("bytes_copied", int(data.nbytes))
                data = data.copy()
            self._peer_write(ctx, tag[1], {
                "op": "blockdata",
                "array": iv.array,
                "block": iv.block,
                "data": data,
            })
            # Served: release our local pin immediately.
            self._execute(ctx, self.store.release(ticket))
        else:  # pragma: no cover - defensive
            raise StorageError(f"unroutable grant tag {tag!r}")

    def _execute(self, ctx: FilterContext, effects: list[Effect]) -> None:
        for e in effects:
            if e.kind in ("load", "spill") and self._io_closed:
                # A release that raced the drain (worker and scheduler
                # streams merge unordered on `req`) pumped out fresh I/O
                # after the I/O filters were let go.  Nobody is waiting on
                # it — the DAG is complete — so drop it instead of writing
                # on the closed command stream.
                continue
            if e.kind == "load":
                self._outstanding_io += 1
                self._io_started[("load", e.array, e.block)] = self.tracer.now()
                ctx.write("io_cmd", DataBuffer(
                    {"op": "load", "desc": self.descs[e.array],
                     "block": e.block, "segment": e.segment}))
            elif e.kind == "spill":
                self._outstanding_io += 1
                self._io_started[("spill", e.array, e.block)] = self.tracer.now()
                ctx.write("io_cmd", DataBuffer(
                    {"op": "store", "desc": self.descs[e.array], "block": e.block,
                     "data": e.data}))
            elif e.kind == "drop":
                # Memory already reclaimed by the store; tell the local
                # scheduler so it can re-arm the array's prefetch (an
                # evicted-after-prefetch block otherwise sat invisible in
                # its `_prefetched` set until the stall recovery kicked in).
                self.tracer.instant(self.node, "storage", "storage", "drop",
                                    array=e.array, block=e.block)
                if not self._draining:
                    ctx.write("rep_lsched", DataBuffer(
                        {"op": "dropped", "array": e.array}))
            elif e.kind == "fetch_remote":
                self._io_started[("fetch", e.array, e.block)] = self.tracer.now()
                self._start_fetch(ctx, e.array, e.block)
            elif e.kind in ("grant_read", "grant_write"):
                assert e.ticket is not None
                self._reply(ctx, e.ticket.tag, {"op": "grant", "ticket": e.ticket})
            elif e.kind == "deny":
                assert e.ticket is not None
                tag = e.ticket.tag
                iv = e.ticket.interval
                self.tracer.instant(self.node, "storage", "storage", "deny",
                                    array=iv.array, block=iv.block,
                                    error=e.error)
                if tag[0] == "peer":
                    self._peer_write(ctx, tag[1], {
                        "op": "fetch_failed", "array": iv.array,
                        "block": iv.block, "error": e.error})
                elif tag[0] == "worker":
                    ctx.write("rep_workers", DataBuffer(
                        {"op": "error", "array": iv.array, "block": iv.block,
                         "error": e.error}, {"__dest__": tag[1]}))
                else:  # pragma: no cover - defensive
                    raise StorageError(f"unroutable deny tag {tag!r}")
            else:  # pragma: no cover - defensive
                raise StorageError(f"unknown effect {e.kind!r}")
        depth = self.store.alloc_queue_depth
        if depth != self._last_queue_depth:
            self._last_queue_depth = depth
            self.tracer.counter(self.node, "storage", "storage",
                                "alloc_queue", depth)

    def _end_io_span(self, name: str, key: tuple[str, str, int],
                     array: str, block: int) -> None:
        start = self._io_started.pop(key, None)
        if start is not None:
            self.tracer.complete(self.node, "storage", "storage", name,
                                 start, array=array, block=block)

    def _start_fetch(self, ctx: FilterContext, array: str, block: int) -> None:
        # The global map is partitioned, not replicated: this node does not
        # know where a remote array lives and must resolve the owner through
        # the random-peer walk (cached after the first resolution).
        cached = self.directory.start_lookup(array, 0)
        if cached is not None:
            self._send_fetch(ctx, cached, array, block)
            return
        pending = self._awaiting_owner.setdefault(array, [])
        pending.append(block)
        if len(pending) == 1:  # first block starts the walk
            self._probe_next(ctx, array)

    def _send_fetch(self, ctx: FilterContext, owner: int, array: str,
                    block: int) -> None:
        self._fetch_pending[(array, block)] = (
            time.monotonic() + self.RETRANSMIT_S, owner)
        self._peer_write(ctx, owner, {
            "op": "fetch", "array": array, "block": block, "from": self.node})

    def _probe_next(self, ctx: FilterContext, array: str) -> None:
        """Advance (or restart) the owner walk for ``array``."""
        try:
            peer = self.directory.next_probe(array, 0)
        except LookupFailed:
            # Every peer answered "miss": possible transiently while a
            # reroute's rehome propagates, or after message loss confused
            # the walk.  Restart the walk instead of giving up — a genuine
            # orphan shows up as lookup_restarts climbing in the diagnosis.
            self.store.metrics.inc("lookup_restarts")
            self.tracer.instant(self.node, "storage", "storage",
                                "lookup_restart", array=array)
            self.directory.start_lookup(array, 0)
            peer = self.directory.next_probe(array, 0)
        self._lookup_pending[array] = (
            time.monotonic() + self.RETRANSMIT_S, peer)
        self._peer_write(ctx, peer, {
            "op": "lookup", "array": array, "from": self.node})

    def _tick(self, ctx: FilterContext) -> None:
        """Flush due delayed messages; retransmit overdue fetches/lookups."""
        now = time.monotonic()
        if self._delayed:
            due = [d for d in self._delayed if d[0] <= now]
            if due:
                self._delayed = [d for d in self._delayed if d[0] > now]
                for _, peer, payload in due:
                    self._peer_send(ctx, peer, payload)
        for key, (deadline, owner) in list(self._fetch_pending.items()):
            if deadline <= now:
                array, block = key
                self._fetch_pending[key] = (now + self.RETRANSMIT_S, owner)
                self.store.metrics.inc("fetch_retransmits")
                self.tracer.instant(self.node, "storage", "storage",
                                    "fetch_retry", array=array, block=block,
                                    owner=owner)
                self._peer_write(ctx, owner, {
                    "op": "fetch", "array": array, "block": block,
                    "from": self.node})
        for array, (deadline, peer) in list(self._lookup_pending.items()):
            if deadline <= now:
                self._lookup_pending[array] = (now + self.RETRANSMIT_S, peer)
                self.store.metrics.inc("lookup_retransmits")
                self.tracer.instant(self.node, "storage", "storage",
                                    "lookup_retry", array=array, peer=peer)
                self._peer_write(ctx, peer, {
                    "op": "lookup", "array": array, "from": self.node})

    def _handle_peer(self, ctx: FilterContext, msg: dict) -> None:
        op = msg["op"]
        if op == "lookup":
            hit = self.store.has_array(msg["array"]) and not self.store.is_remote(msg["array"])
            self._peer_write(ctx, msg["from"], {
                "op": "lookup_reply", "array": msg["array"], "hit": hit,
                "owner": self.node})
        elif op == "lookup_reply":
            array = msg["array"]
            self._lookup_pending.pop(array, None)
            if array not in self._awaiting_owner:
                return  # walk abandoned (drain) or duplicate reply
            if msg["hit"]:
                self.directory.probe_hit(array, 0, msg["owner"])
                for block in self._awaiting_owner.pop(array):
                    self._send_fetch(ctx, msg["owner"], array, block)
            else:
                self.directory.probe_miss(array, 0)
                self._probe_next(ctx, array)
        elif op == "fetch":
            if self._draining:
                return  # requester is winding down too; drop the request
            try:
                iv_desc = self.descs[msg["array"]]
                lo, hi = iv_desc.block_bounds(msg["block"])
                ticket, effects = self.store.request_read(
                    Interval(msg["array"], msg["block"], lo, hi))
            except StorageError as exc:
                # e.g. the array was GC'd or rehomed away after the
                # requester cached this node as the owner: tell it so its
                # read waiters fail fast instead of wedging.
                self._peer_write(ctx, msg["from"], {
                    "op": "fetch_failed", "array": msg["array"],
                    "block": msg["block"], "error": repr(exc)})
                return
            ticket.tag = ("peer", msg["from"])
            self._execute(ctx, effects)
        elif op == "blockdata":
            self._fetch_pending.pop((msg["array"], msg["block"]), None)
            self._end_io_span("fetch_remote",
                              ("fetch", msg["array"], msg["block"]),
                              msg["array"], msg["block"])
            self._execute(ctx, self.store.on_remote_data(
                msg["array"], msg["block"], msg["data"]))
            self._wake_scheduler(ctx)
        elif op == "fetch_failed":
            array, block = msg["array"], msg["block"]
            self._fetch_pending.pop((array, block), None)
            # The cached owner may be stale (reroute): next fetch re-walks.
            self.directory.invalidate(array)
            self._execute(ctx, self.store.on_fetch_failed(
                array, block, msg["error"]))
            self._wake_scheduler(ctx)
        else:  # pragma: no cover - defensive
            raise StorageError(f"unknown peer op {op!r}")

    def _handle_request(self, ctx: FilterContext, msg: dict) -> None:
        op = msg["op"]
        if op in ("read", "write"):
            try:
                if op == "read":
                    ticket, effects = self.store.request_read(msg["interval"])
                else:
                    ticket, effects = self.store.request_write(msg["interval"])
            except StorageError as exc:
                # A rejected request (e.g. a re-dispatched task's write
                # racing its output's rehome) is reported to the worker,
                # whose failure path retries the attempt; it must not kill
                # the storage filter.
                iv = msg["interval"]
                tag = msg["reply_to"]
                if tag[0] != "worker":
                    raise
                self.tracer.instant(self.node, "storage", "storage",
                                    "request_rejected", array=iv.array,
                                    block=iv.block, error=repr(exc))
                ctx.write("rep_workers", DataBuffer(
                    {"op": "error", "array": iv.array, "block": iv.block,
                     "error": repr(exc)}, {"__dest__": tag[1]}))
                return
            ticket.tag = msg["reply_to"]
            self._execute(ctx, effects)
        elif op == "release":
            self._execute(ctx, self.store.release(msg["ticket"]))
            self._retry_parked(ctx)
        elif op == "abandon":
            # A failed task retracts a granted-but-unpublished write.
            self._execute(ctx, self.store.abandon_write(msg["ticket"]))
            self._retry_parked(ctx)
        elif op == "rehome":
            self._handle_rehome(ctx, msg["array"], msg["home"],
                                on_disk=msg.get("on_disk", False),
                                recover=msg.get("recover", False))
        elif op == "evict":
            self._handle_evict(ctx, msg["node"])
        elif op == "die":
            # Injected permanent node loss.  From here the filter is a
            # corpse: it stops all protocol work and initiates nothing, but
            # keeps consuming its streams to end-of-stream so survivors'
            # writes never wedge and the runtime winds down cleanly.
            self._dead = True
            self._draining = True
            self._awaiting_owner.clear()
            self._delayed.clear()
            self._fetch_pending.clear()
            self._lookup_pending.clear()
            self._recover_pending.clear()
            self.store.abandon_pending_allocs()
            for j in range(self.n_nodes):
                if j != self.node:
                    ctx.close(f"peer_out_{j}")
        elif op == "ensure":
            # Reroute prep: the new execution node needs a remote handle
            # for each input array it has never seen.
            if msg["home"] != self.node:
                self.store.ensure_remote(self.descs[msg["array"]])
        elif op == "prefetch":
            desc = self.descs[msg["array"]]
            dropped_before = self.store.metrics.get("prefetch_dropped")
            for iv in whole_array(desc):
                self._execute(ctx, self.store.prefetch(iv))
            dropped = self.store.metrics.get("prefetch_dropped") - dropped_before
            if dropped:
                self.tracer.instant(self.node, "storage", "sched",
                                    "prefetch_dropped",
                                    array=msg["array"], blocks=dropped)
        elif op == "map":
            ctx.write("rep_lsched", DataBuffer(
                {"op": "map", "resident": self.store.resident_arrays()}))
        elif op == "delete":
            self.directory.invalidate(msg["array"])
            self._try_delete(ctx, msg["array"])
        elif op == "shutdown":
            # Stop initiating work; processing continues until every inbound
            # stream reaches end-of-stream so that late releases still seal
            # their blocks.
            self._draining = True
            self._awaiting_owner.clear()
            self._delayed.clear()
            self._fetch_pending.clear()
            self._lookup_pending.clear()
            self.store.abandon_pending_allocs()
            for j in range(self.n_nodes):
                if j != self.node:
                    ctx.close(f"peer_out_{j}")
        else:  # pragma: no cover - defensive
            raise StorageError(f"unknown storage op {op!r}")

    def _retry_parked(self, ctx: FilterContext) -> None:
        """Re-attempt work that raced an in-flight pin (GC, recovery)."""
        if self._gc_pending:
            for name in list(self._gc_pending):
                self._try_delete(ctx, name)
        if self._recover_pending:
            for array in list(self._recover_pending):
                home, on_disk = self._recover_pending.pop(array)
                self._handle_rehome(ctx, array, home,
                                    on_disk=on_disk, recover=True)

    def _handle_rehome(self, ctx: FilterContext, array: str, home: int, *,
                       on_disk: bool = False, recover: bool = False) -> None:
        """An array's home moved (task reroute, or node-loss recovery).

        Recovery rehomes differ from reroute rehomes in two ways: blocks
        may be mid-fetch from the dead owner (those waiters are failed so
        their tasks retry against the new home), and a survivor may hold
        pinned cached copies (the rehome parks and retries on release —
        the copies stay byte-valid under write-once, so waiting is safe).
        """
        self.directory.invalidate(array)
        parked = self._awaiting_owner.pop(array, None) or []
        self._lookup_pending.pop(array, None)
        inflight = [k[1] for k in self._fetch_pending if k[0] == array]
        for key in [k for k in self._fetch_pending if k[0] == array]:
            del self._fetch_pending[key]
        if recover:
            for block in sorted(set(parked) | set(inflight)):
                self._execute(ctx, self.store.on_fetch_failed(
                    array, block,
                    f"owner of {array!r} died; re-homed to node {home}"))
        if home == self.node:
            try:
                effects = self.store.rehome_local(
                    self.descs[array], on_disk=on_disk)
            except StorageError:
                if not recover:
                    raise
                # A cached block is pinned by a running task: park the
                # rehome and retry when the pin is released.
                self._recover_pending[array] = (home, on_disk)
                return
        elif recover:
            effects = self.store.recover_remote(self.descs[array])
        else:
            effects = self.store.rehome_remote(array)
        self.tracer.instant(self.node, "storage", "storage", "rehome",
                            array=array, home=home)
        if recover:
            self.tracer.instant(self.node, "storage", "recovery",
                                "reconstruct", array=array, home=home,
                                seeded=on_disk)
        self._execute(ctx, effects)
        self._wake_scheduler(ctx)

    def _handle_evict(self, ctx: FilterContext, dead: int) -> None:
        """Apply a dead-node eviction: stop probing/fetching from it.

        In-flight fetches whose owner just died are restarted through the
        owner walk (the directory now excludes the corpse); their read
        waiters stay parked, so no task attempt is burned.  If the lost
        array is being reconstructed, the follow-up recovery rehome fails
        these restarted walks over to the new home.
        """
        if dead == self.node or dead in self.directory.evicted:
            return
        self.directory.evict(dead)
        self.store.metrics.inc("peer_evictions")
        self.tracer.instant(self.node, "storage", "recovery", "node_evict",
                            dead=dead)
        for key, (_deadline, owner) in list(self._fetch_pending.items()):
            if owner == dead:
                array, block = key
                del self._fetch_pending[key]
                self._start_fetch(ctx, array, block)
        for array, (_deadline, peer) in list(self._lookup_pending.items()):
            if peer == dead:
                del self._lookup_pending[array]
                self._probe_next(ctx, array)
        self._delayed = [d for d in self._delayed if d[1] != dead]

    def process(self, ctx: FilterContext) -> None:
        ports = ["req", "io_done", "peer_in"]
        while True:
            if self._draining and self._outstanding_io == 0 \
                    and not self._io_closed:
                # Closing io_cmd lets the I/O filters exit, which EOSes
                # io_done; the loop then runs to EOS of all ports, so every
                # in-flight release/peer message is still processed.
                ctx.close("io_cmd")
                self._io_closed = True
            recovery = bool(self._delayed or self._fetch_pending
                            or self._lookup_pending)
            try:
                port, buf = ctx.read_any(
                    ports, timeout=self.RETRY_TICK_S if recovery else None)
            except TimeoutError:
                self._tick(ctx)
                continue
            if recovery:
                # Heavy traffic can starve the timeout path; check the
                # deadlines between messages too.
                self._tick(ctx)
            if buf is END_OF_STREAM:
                break
            msg = buf.payload
            if self._dead:
                # Corpse mode: keep the stream accounting honest (io_done
                # gates the io_cmd close above) but discard every message —
                # survivors observe silence, retransmit, and evict us.
                if port == "io_done":
                    self._outstanding_io -= 1
                continue
            if port == "req":
                self._handle_request(ctx, msg)
            elif port == "peer_in":
                self._handle_peer(ctx, msg)
            else:  # io_done
                self._outstanding_io -= 1
                if msg["op"] == "loaded":
                    self._end_io_span(
                        "load", ("load", msg["desc"].name, msg["block"]),
                        msg["desc"].name, msg["block"])
                    self._execute(ctx, self.store.on_loaded(
                        msg["desc"].name, msg["block"], msg["data"]))
                elif msg["op"] == "stored":
                    self._end_io_span(
                        "spill", ("spill", msg["desc"].name, msg["block"]),
                        msg["desc"].name, msg["block"])
                    self._execute(ctx, self.store.on_spilled(
                        msg["desc"].name, msg["block"]))
                elif msg["op"] == "io_error":
                    self._on_io_error(ctx, msg)
                # "unlinked": nothing to do beyond the accounting above
                if not self._draining:
                    # A finished load/spill may have unpinned a block a
                    # parked delete or recovery rehome is waiting on.
                    self._retry_parked(ctx)
                self._wake_scheduler(ctx)
        if not self._io_closed:
            ctx.close("io_cmd")
            self._io_closed = True

    def _on_io_error(self, ctx: FilterContext, msg: dict) -> None:
        """An I/O command exhausted its retries: fail the blocked tickets."""
        name = msg["desc"].name
        failed = msg["failed_op"]
        span_op = {"load": "load", "store": "spill", "unlink": "unlink"}[failed]
        self._io_started.pop((span_op, name, msg["block"]), None)
        self.tracer.instant(self.node, "storage", "storage", "io_failed",
                            op=failed, array=name, block=msg["block"],
                            error=msg["error"])
        if failed == "load":
            self._execute(ctx, self.store.on_load_failed(
                name, msg["block"], msg["error"]))
        elif failed == "store":
            self._execute(ctx, self.store.on_spill_failed(
                name, msg["block"], msg["error"]))
        # A failed unlink leaves a stale scratch file behind; harmless,
        # since rediscovery is gated on array registration.

    def _try_delete(self, ctx: FilterContext, name: str) -> None:
        """Delete an array; if a block is still pinned (a GC message can
        arrive before the consumer's final release message), park it for a
        retry on the next release."""
        if not self.store.has_array(name):
            self._gc_pending.discard(name)
            return
        was_local = not self.store.is_remote(name)
        try:
            self._execute(ctx, self.store.delete_array(name))
        except StorageError:
            self._gc_pending.add(name)
            return
        self._gc_pending.discard(name)
        if was_local and not self._io_closed:
            # Skipped during the post-close drain: a stale scratch file is
            # harmless (rediscovery is gated on array registration).
            self._outstanding_io += 1
            ctx.write("io_cmd", DataBuffer(
                {"op": "unlink", "desc": self.descs[name], "block": -1}))

    def _wake_scheduler(self, ctx: FilterContext) -> None:
        """Nudge the local scheduler: residency just changed."""
        if not self._draining:
            ctx.write("rep_lsched", DataBuffer({"op": "wake"}))


class _WorkerFilter(Filter):
    """Executes task bodies against storage-granted views.

    A task attempt that fails — an injected crash, a task-body exception,
    or a storage ``error`` reply after the I/O layer exhausted its retries —
    is *unwound* rather than allowed to kill the filter: every read grant
    is released, every write grant is abandoned (its ranges were never
    published, thanks to write-once semantics), and a ``failed`` report
    goes to the local scheduler, which re-dispatches the task.
    """

    inputs = ("in", "from_storage")
    outputs = ("to_storage", "to_lsched")

    def __init__(self, node: int, descs: dict[str, ArrayDesc],
                 tracer: Tracer | None = None,
                 injector: FaultInjector | None = None,
                 metrics: MetricsRegistry | None = None,
                 opcache: DecodedOperandCache | None = None,
                 plane: ProcessWorkerPool | None = None,
                 segment_pool: SegmentPool | None = None):
        self.node = node
        self.descs = descs
        self.tracer = tracer or Tracer(enabled=False)
        self.injector = injector
        self.metrics = metrics
        #: node-shared decoded-operand cache (None = disabled); handed to
        #: task bodies through the OperandContext in ``meta``
        self.opcache = opcache
        #: process worker plane: when set, task bodies ship to a worker
        #: process as block-handle envelopes; this thread stays the
        #: protocol endpoint (tickets, leases, failure reports)
        self.plane = plane
        self.segment_pool = segment_pool

    def _inc(self, name: str, n: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, n)

    # -- storage round-trips ----------------------------------------------------

    def _request_all(self, ctx: FilterContext, op: str,
                     intervals: list[Interval],
                     held: list[Ticket]) -> list[Ticket]:
        """Request every interval; collect one reply (grant or error) each.

        Grants are appended to ``held`` as they arrive so that a failure
        mid-batch leaves no ticket untracked; the batch always drains all
        its replies before raising, so nothing remains outstanding.
        """
        start = self.tracer.now()
        for iv in intervals:
            ctx.write("to_storage", DataBuffer(
                {"op": op, "interval": iv,
                 "reply_to": ("worker", ctx.instance)}))
        granted: list[Ticket] = []
        failure: dict | None = None
        replies = 0
        while replies < len(intervals):
            buf = ctx.read("from_storage")
            if buf is END_OF_STREAM:
                raise StreamClosedError(
                    "storage replies closed while awaiting grants")
            msg = buf.payload
            replies += 1
            if msg["op"] == "grant":
                granted.append(msg["ticket"])
                held.append(msg["ticket"])
            else:  # "error": the backing I/O failed past its retry budget
                failure = msg
        if failure is not None:
            raise IOFailedError(
                f"{op} of {failure['array']}[{failure['block']}] failed: "
                f"{failure['error']}")
        self.tracer.complete(
            self.node, f"worker/{ctx.instance}", "task", "grant_wait", start,
            op=op, array=intervals[0].array, intervals=len(intervals))
        # Order grants to match the request order.
        by_iv = {(t.interval.array, t.interval.block, t.interval.lo): t
                 for t in granted}
        return [by_iv[(iv.array, iv.block, iv.lo)] for iv in intervals]

    def _release_all(self, ctx: FilterContext, tickets: list[Ticket]) -> None:
        for t in tickets:
            ctx.write("to_storage", DataBuffer({"op": "release", "ticket": t}))

    def _abort(self, ctx: FilterContext, held: list[Ticket]) -> None:
        """Unwind a failed attempt so a re-execution starts clean.

        Read grants are released (unpinning inputs frees memory other
        work may be queued on); write grants are abandoned — nothing they
        covered was published, so the retry can request them again.
        """
        for t in held:
            op = "release" if t.permission is Permission.READ else "abandon"
            try:
                ctx.write("to_storage", DataBuffer({"op": op, "ticket": t}))
            except StreamClosedError:
                return

    # -- data assembly -------------------------------------------------------------

    def _gather_input(self, tickets: list[Ticket]) -> np.ndarray:
        if len(tickets) == 1:
            return tickets[0].data
        # Multi-block arrays are reassembled with a copy — "trading
        # performance for semantic simplicity".  This (and the scatter
        # temp below) are the only deterministic copies left on the data
        # plane, so ``bytes_copied`` counts exactly them and CI can treat
        # any increase as a regression.
        self._inc("bytes_copied", sum(int(t.data.nbytes) for t in tickets))
        return np.concatenate([t.data for t in tickets])

    def _run_task(self, ctx: FilterContext, task: TaskSpec,
                  attempt: int) -> None:
        """One task attempt, requests through releases.

        The whole ticket lifecycle lives inside one ``try`` so that every
        grant collected into ``held`` is unwound by ``_abort`` on *any*
        failure — the structure the ``DOOC001`` lint rule checks for.
        """
        held: list[Ticket] = []
        try:
            out_ranges: dict[str, tuple[int, int]] = task.meta.get(
                "out_ranges", {})
            read_tickets: dict[str, list[Ticket]] = {}
            for array in task.inputs:
                ivs = whole_array(self.descs[array])
                read_tickets[array] = self._request_all(ctx, "read", ivs, held)
            write_tickets: dict[str, list[Ticket]] = {}
            out_buffers: dict[str, np.ndarray] = {}
            scatter: list[tuple[str, np.ndarray]] = []
            for array in task.outputs:
                desc = self.descs[array]
                lo, hi = out_ranges.get(array, (0, desc.length))
                ivs = intervals_for_range(desc, lo, hi)
                tickets = self._request_all(ctx, "write", ivs, held)
                write_tickets[array] = tickets
                if len(tickets) == 1:
                    out_buffers[array] = tickets[0].data
                else:
                    temp = np.empty(hi - lo, dtype=desc.dtype)
                    out_buffers[array] = temp
                    scatter.append((array, temp))
            if self.injector is not None and self.injector.task_fault(
                    task.name, attempt):
                raise InjectedTaskCrash(
                    f"injected crash of task {task.name!r} attempt {attempt} "
                    f"on node {self.node}")
            ran_remote = False
            if self.plane is not None:
                ran_remote = self._run_remote(
                    ctx, task, read_tickets, write_tickets, out_ranges)
            if not ran_remote:
                inputs = {a: self._gather_input(ts)
                          for a, ts in read_tickets.items()}
                meta = task.meta
                if self.opcache is not None:
                    # Hand the task body the node's operand cache plus the
                    # seal generations of its read grants (the freshness
                    # proof for cache keys) — without changing the fn
                    # signature.
                    meta = dict(meta)
                    meta[OPERAND_CONTEXT_KEY] = OperandContext(
                        self.opcache,
                        {a: tuple(t.generation for t in ts)
                         for a, ts in read_tickets.items()})
                task.fn(inputs, out_buffers, meta)
                for array, temp in scatter:
                    desc = self.descs[array]
                    lo, _ = out_ranges.get(array, (0, desc.length))
                    self._inc("bytes_copied", int(temp.nbytes))
                    for t in write_tickets[array]:
                        t.data[:] = temp[t.interval.lo - lo:
                                         t.interval.hi - lo]
            held.clear()  # from here the normal releases own every ticket
            for tickets in read_tickets.values():
                self._release_all(ctx, tickets)
            for tickets in write_tickets.values():
                self._release_all(ctx, tickets)
        except BaseException:
            self._abort(ctx, held)
            raise

    def _run_remote(self, ctx: FilterContext, task: TaskSpec,
                    read_tickets: dict[str, list[Ticket]],
                    write_tickets: dict[str, list[Ticket]],
                    out_ranges: dict[str, tuple[int, int]]) -> bool:
        """Ship the task to this slot's worker process.

        Returns False to fall back to inline execution (a grant without a
        segment handle, or a task that can't pickle).  Every granted
        span's segment is leased around the dispatch, so a concurrent
        reclaim can never unlink memory the child is computing on; leases
        drain in the ``finally`` even when the child crashes — the parent
        owns the lease lifecycle, never the (killable) child.
        """
        every = ([t for ts in read_tickets.values() for t in ts]
                 + [t for ts in write_tickets.values() for t in ts])
        if any(t.handle is None for t in every):
            self._inc("process_plane_fallbacks")
            return False
        input_handles = {a: [t.handle for t in ts]
                         for a, ts in read_tickets.items()}
        output_specs = {}
        for array, tickets in write_tickets.items():
            desc = self.descs[array]
            lo, hi = out_ranges.get(array, (0, desc.length))
            output_specs[array] = {
                "dtype": desc.dtype, "lo": lo, "hi": hi,
                "parts": [(t.handle, t.interval.lo, t.interval.hi)
                          for t in tickets],
            }
        generations = {a: tuple(t.generation for t in ts)
                       for a, ts in read_tickets.items()}
        envelope = build_envelope(task.fn, task.meta, input_handles,
                                  output_specs, generations)
        leased: list[str] = []
        try:
            for t in every:
                self.segment_pool.lease(t.handle.segment)
                leased.append(t.handle.segment)
            try:
                reply = self.plane.run_envelope(
                    self.node, ctx.instance, envelope)
            except EnvelopeUnpicklable:
                self._inc("process_plane_fallbacks")
                return False
            except WorkerProcessCrash:
                self._inc("worker_crashes")
                raise  # -> failure report -> re-dispatch (worker respawned)
        finally:
            for name in leased:
                self.segment_pool.release(name)
        if not reply.get("ok"):
            raise DoocError(
                f"task {task.name!r} failed in worker process: "
                f"{reply.get('error')}")
        for counter in ("bytes_copied", "opcache_hits", "opcache_misses"):
            if reply.get(counter):
                self._inc(counter, int(reply[counter]))
        return True

    def process(self, ctx: FilterContext) -> None:
        ctx.write("to_lsched", DataBuffer({"op": "idle", "inst": ctx.instance}))
        while True:
            buf = ctx.read("in")
            if buf is END_OF_STREAM:
                return
            msg = buf.payload
            if msg["op"] == "shutdown":
                return
            task: TaskSpec = msg["task"]
            attempt: int = msg.get("attempt", 1)
            started = self.tracer.now()
            try:
                self._run_task(ctx, task, attempt)
            except StreamClosedError:
                raise  # runtime failure/shutdown, not a task failure
            except Exception as exc:  # noqa: BLE001 - reported for re-execution
                self.tracer.instant(
                    self.node, f"worker/{ctx.instance}", "task",
                    "task_failed", task=task.name, attempt=attempt,
                    error=repr(exc))
                ctx.write("to_lsched", DataBuffer(
                    {"op": "failed", "task": task,
                     "parent": task.meta.get("parent"),
                     "attempt": attempt, "error": repr(exc)}))
            else:
                self.tracer.complete(
                    self.node, f"worker/{ctx.instance}", "task", "task",
                    started, task=task.name)
                ctx.write("to_lsched", DataBuffer(
                    {"op": "done", "task": task.name,
                     "parent": task.meta.get("parent")}))
            ctx.write("to_lsched", DataBuffer(
                {"op": "idle", "inst": ctx.instance}))


class _LocalSchedulerFilter(Filter):
    """Per-node scheduler: dispatch, split, prefetch.

    Faithful to Section III-C: "When a computing filter is free, a task
    which is ready and whose data input are available in memory is sent to
    the computing filter", with prefetch requests keeping a window of
    ready tasks memory-resident.  Liveness is guaranteed by a stall
    counter: when a node has been idle for a few ticks with no prefetch
    landing (the storage may drop prefetches under memory pressure), the
    top-ranked task is dispatched anyway and its demand reads do the I/O.
    """

    inputs = ("in", "from_workers", "from_storage")
    outputs = ("to_gsched", "to_workers", "to_storage")

    #: seconds between liveness ticks while idle work exists
    TICK_S = 0.02
    #: idle ticks before dispatching a task whose inputs are not resident
    STALL_TICKS = 3

    def __init__(self, node: int, workers: int,
                 nbytes: dict[str, int], *, prefetch_depth: int = 2,
                 reorder: bool = True, tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None,
                 max_attempts: int = 3,
                 heartbeat_s: float | None = None,
                 injector: FaultInjector | None = None):
        if max_attempts < 1:
            raise SchedulingError("max_attempts must be >= 1")
        self.core = LocalSchedulerCore(node, prefetch_depth=prefetch_depth,
                                       reorder=reorder)
        self.node = node
        self.workers = workers
        self.nbytes = nbytes
        self.tracer = tracer or Tracer(enabled=False)
        self.metrics = metrics
        self.max_attempts = max_attempts
        #: liveness beacon period (None = membership tracking off)
        self.heartbeat_s = heartbeat_s
        self.injector = injector
        #: injected permanent death point: die after this many worker
        #: completions on this node (None = immortal)
        self._kill_after = injector.kill_step() if injector is not None else None
        self._next_beat = 0.0
        self._idle: list[int] = []
        self._parents: dict[str, int] = {}  # parent task -> remaining subtasks
        self._attempts: dict[str, int] = {}  # task -> attempts dispatched here
        self._inflight = 0
        self._completions = 0
        self._stall = 0
        #: a cancel drain is underway: no dispatch, no retries, no
        #: escalation — only in-flight work finishes
        self._cancelling = False
        self._drain_acked = False

    def _on_storage_note(self, msg: dict) -> None:
        """A push notification from storage (not a map reply)."""
        if msg["op"] == "dropped":
            # The block was evicted: re-arm its prefetch instead of waiting
            # for the stall-recovery reset to notice.
            self.core.forget_prefetch(msg["array"])
        # "wake": residency changed; the caller re-runs dispatch anyway.

    def _query_map(self, ctx: FilterContext) -> set[str]:
        ctx.write("to_storage", DataBuffer({"op": "map"}))
        while True:
            buf = ctx.read("from_storage")
            if buf is END_OF_STREAM:
                return set()
            if buf.payload["op"] == "map":
                return buf.payload["resident"]
            # "wake"/"dropped" notifications racing the reply are absorbed
            # here; the dispatch about to run uses the fresher map anyway.
            self._on_storage_note(buf.payload)

    def _choose(self, resident: set[str]) -> TaskSpec | None:
        ranked = self.core.rank(resident, self.nbytes)
        if not ranked:
            return None
        if not self.core.reorder:
            # Ablation: the naive plan runs strictly in readiness order,
            # paying demand loads as they come (Fig. 5a).
            self._stall = 0
            return self.core.claim(ranked[0].name)
        for t in ranked:
            if all(a in resident for a in t.inputs):
                self._stall = 0
                return self.core.claim(t.name)
        # Nothing memory-resident. Wait for prefetches unless the node has
        # been starving: then force progress with the preferred task.
        if self._inflight == 0 and self._stall >= self.STALL_TICKS:
            self._stall = 0
            return self.core.claim(ranked[0].name)
        return None

    @property
    def _dying(self) -> bool:
        """Has the injected death point been reached?"""
        return (self._kill_after is not None
                and self._completions >= self._kill_after)

    def _maybe_beat(self, ctx: FilterContext) -> None:
        """Send the periodic liveness beacon to the global scheduler.

        The beacon comes from this scheduler loop, not from task progress,
        so a node mired in I/O retries or task re-executions still beats —
        the failure detector only fires on genuine silence.  It is not
        routed through the tracer: a beat is not runtime progress and must
        not reset the stall watchdog's quiet clock.
        """
        if self.heartbeat_s is None or self._dying:
            return
        now = time.monotonic()
        if now >= self._next_beat:
            self._next_beat = now + self.heartbeat_s
            self._inc("heartbeats_sent")
            ctx.write("to_gsched", DataBuffer(
                {"op": "heartbeat", "node": self.node}))

    def _die(self, ctx: FilterContext) -> None:
        """Permanent injected node death: fall silent, then drain.

        The node's threads cannot simply vanish (they share the runtime
        with the survivors), so death is modeled as the loudest possible
        silence: workers are shut down, storage enters corpse mode, the
        control stream to the global scheduler closes, and the filter
        discards inbound traffic until every stream reaches end-of-stream.
        """
        if self.injector is not None:
            self.injector.record_node_kill(self._completions)
        for worker in range(self.workers):
            ctx.write("to_workers", DataBuffer(
                {"op": "shutdown"}, {"__dest__": worker}))
        ctx.write("to_storage", DataBuffer({"op": "die"}))
        ctx.close("to_gsched")
        ctx.close("to_storage")
        while True:
            _port, buf = ctx.read_any(["in", "from_workers", "from_storage"])
            if buf is END_OF_STREAM:
                return

    def _dispatch(self, ctx: FilterContext) -> None:
        if self._dying or self._cancelling:
            return  # no new work on a node that is dying or draining
        while self._idle and self.core.ready_count:
            resident = self._query_map(ctx)
            # Keep upcoming tasks warm regardless of whether we dispatch.
            for array in self.core.prefetch_plan(resident, self.nbytes):
                self.tracer.instant(self.node, "sched", "sched", "prefetch",
                                    array=array)
                ctx.write("to_storage", DataBuffer(
                    {"op": "prefetch", "array": array}))
            task = self._choose(resident)
            if task is None:
                break
            subtasks = [task]
            spare = len(self._idle) - 1
            if task.splittable and spare > 0 and self.core.ready_count == 0:
                subtasks = LocalSchedulerCore.split(task, spare + 1)
                if len(subtasks) > 1:
                    self._parents[task.name] = len(subtasks)
            for sub in subtasks:
                if not self._idle:
                    # More subtasks than workers (split() may round up):
                    # requeue the remainder as ready work.
                    self.core.add_ready(sub)
                    continue
                worker = self._idle.pop(0)
                self._inflight += 1
                attempt = self._attempts.get(sub.name, 0) + 1
                self._attempts[sub.name] = attempt
                self.tracer.instant(self.node, "sched", "task", "dispatch",
                                    task=sub.name, worker=worker,
                                    attempt=attempt)
                ctx.write("to_workers", DataBuffer(
                    {"op": "task", "task": sub, "attempt": attempt},
                    {"__dest__": worker}))

    def debug_snapshot(self) -> dict:
        """Scheduler-side state for the stall watchdog (best effort)."""
        return {
            "ready_tasks": sorted(t.name for t in self.core.pending_tasks()),
            "inflight": self._inflight,
            "idle_workers": len(self._idle),
            "stall_ticks": self._stall,
        }

    def _inc(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.inc(name)

    def _on_done(self, ctx: FilterContext, msg: dict) -> None:
        self._inflight -= 1
        self._completions += 1
        self._attempts.pop(msg["task"], None)
        parent = msg.get("parent")
        if parent is not None:
            self._parents[parent] -= 1
            if self._parents[parent] == 0:
                del self._parents[parent]
                ctx.write("to_gsched", DataBuffer({"op": "done", "task": parent}))
        else:
            ctx.write("to_gsched", DataBuffer({"op": "done", "task": msg["task"]}))

    def _on_failed(self, ctx: FilterContext, msg: dict) -> None:
        """A worker reported a failed attempt: re-execute or escalate."""
        self._inflight -= 1
        task: TaskSpec = msg["task"]
        attempt: int = msg["attempt"]
        if self._cancelling:
            # The run is being torn down: a failed attempt needs neither a
            # retry nor an escalation, only its inflight slot back.
            self._attempts.pop(task.name, None)
            return
        if attempt < self.max_attempts:
            # Write-once makes re-execution safe: the failed attempt
            # published nothing, so the task simply becomes ready again.
            self._inc("task_reexecutions")
            self.tracer.instant(self.node, "sched", "task", "task_retry",
                                task=task.name, attempt=attempt,
                                error=msg["error"])
            self.core.add_ready(task)
            return
        self._attempts.pop(task.name, None)
        if msg.get("parent") is not None:
            # A subtask of a split: sibling subtasks may already have
            # published ranges of the shared outputs, so rerouting the
            # parent would collide with write-once.  Local retries are the
            # only recourse (documented limitation, see docs/FAULTS.md).
            raise SchedulingError(
                f"subtask {task.name!r} failed {attempt} times on node "
                f"{self.node}: {msg['error']}")
        self.tracer.instant(self.node, "sched", "task", "task_escalate",
                            task=task.name, error=msg["error"])
        ctx.write("to_gsched", DataBuffer(
            {"op": "failed", "task": task.name, "node": self.node,
             "error": msg["error"]}))

    def _begin_cancel_drain(self, ctx: FilterContext) -> None:
        """Global scheduler asked for a cancel drain: discard queued
        ready work (no worker ever saw it, so dropping it is safe) and
        let only in-flight tasks run to completion."""
        self._cancelling = True
        for t in list(self.core.pending_tasks()):
            self.core.claim(t.name)
        self._maybe_ack_drain(ctx)

    def _maybe_ack_drain(self, ctx: FilterContext) -> None:
        """Tell the global scheduler this node is quiescent (once)."""
        if (self._cancelling and not self._drain_acked
                and self._inflight == 0):
            self._drain_acked = True
            self.tracer.instant(self.node, "sched", "run", "cancel_drain")
            ctx.write("to_gsched", DataBuffer(
                {"op": "cancel_drained", "node": self.node}))

    def process(self, ctx: FilterContext) -> None:
        self._maybe_beat(ctx)
        while True:
            if self._dying and self._inflight == 0:
                self._die(ctx)
                return
            stall_wait = bool(self._idle and self.core.ready_count
                              and not self._dying)
            timeout = self.TICK_S if stall_wait else None
            if self.heartbeat_s is not None and not self._dying:
                timeout = (self.heartbeat_s if timeout is None
                           else min(timeout, self.heartbeat_s))
            try:
                port, buf = ctx.read_any(
                    ["in", "from_workers", "from_storage"], timeout=timeout)
            except TimeoutError:
                self._maybe_beat(ctx)
                if stall_wait:
                    # Idle tick: count starvation, re-arm dropped prefetches.
                    self._stall += 1
                    self.tracer.instant(self.node, "sched", "sched",
                                        "stall_tick", ticks=self._stall)
                    if self._stall >= self.STALL_TICKS:
                        self.core.reset_prefetch()
                    self._dispatch(ctx)
                continue
            self._maybe_beat(ctx)
            if buf is END_OF_STREAM:
                break
            msg = buf.payload
            if port == "in":
                if msg["op"] == "shutdown":
                    break
                if msg["op"] == "cancel":
                    self._begin_cancel_drain(ctx)
                    continue
                if msg["op"] == "gc":
                    ctx.write("to_storage", DataBuffer(
                        {"op": "delete", "array": msg["array"]}))
                    continue
                if msg["op"] in ("rehome", "ensure", "evict"):
                    # Reroute/recovery bookkeeping from the global
                    # scheduler, relayed to storage ahead of any
                    # re-dispatched task.
                    ctx.write("to_storage", DataBuffer(msg))
                    continue
                if self._cancelling:
                    continue  # a task dispatched before the cancel crossed it
                self.core.add_ready(msg["task"])
            elif port == "from_storage":
                self._on_storage_note(msg)  # wake/dropped; then re-dispatch
            else:
                if msg["op"] == "idle":
                    self._idle.append(msg["inst"])
                elif msg["op"] == "failed":
                    self._on_failed(ctx, msg)
                else:  # done
                    self._on_done(ctx, msg)
                self._maybe_ack_drain(ctx)
            self._dispatch(ctx)
        # Wind down: workers are idle by construction (the global scheduler
        # only announces shutdown once the DAG is complete).
        for worker in range(self.workers):
            ctx.write("to_workers", DataBuffer(
                {"op": "shutdown"}, {"__dest__": worker}))
        ctx.write("to_storage", DataBuffer({"op": "shutdown"}))


@dataclass
class _RecoveryContext:
    """Everything the global scheduler needs to survive a node loss."""

    descs: dict[str, ArrayDesc]
    nbytes: dict[str, int]
    #: (array, dead_node, new_home) -> copy the backing file to the new
    #: home's scratch (models a re-read from the shared filesystem)
    reseed: Any
    metrics: MetricsRegistry
    lineage: LineageLog | None = None
    #: False turns detection into a named failure instead of recovery
    node_recovery: bool = True


class _GlobalSchedulerFilter(Filter):
    """Walks the DAG, dispatching ready tasks to their assigned nodes.

    With ``gc_arrays`` enabled, the scheduler also exercises the storage
    layer's delete interface: once every consumer of an intermediate array
    has completed, a garbage-collection message goes to every node (the
    home drops memory + scratch file, consumers drop cached copies).
    Initial arrays and terminal outputs are always kept.

    A task that exhausts its local re-execution budget is **rerouted**: the
    assignment moves to a node that has not tried it, the task's output
    arrays are rehomed there (broadcast to every node so directories and
    remote registrations follow), and the task is re-sent.  Once every
    node has tried and failed, the run dies with :class:`TaskFailedError`.
    """

    inputs = ("in",)

    #: how often the scheduler re-checks an armed cancel token while
    #: blocked on its control stream (only paid when a token is passed)
    CANCEL_POLL_S = 0.05

    def __init__(self, dag: TaskDAG, assignment: dict[str, int], n_nodes: int,
                 *, gc_arrays: bool = False,
                 homes: dict[str, int] | None = None,
                 max_reroutes: int | None = None,
                 tracer: Tracer | None = None,
                 membership: MembershipTracker | None = None,
                 recovery: "_RecoveryContext | None" = None,
                 cancel: "CancelToken | None" = None):
        self.dag = dag
        self.assignment = assignment
        self.n_nodes = n_nodes
        self.gc_arrays = gc_arrays
        #: array -> home node; shared with the engine so reroutes are
        #: visible to post-run ``fetch()``
        self.homes = homes if homes is not None else {}
        self.max_reroutes = max_reroutes
        self.tracer = tracer or Tracer(enabled=False)
        #: heartbeat-driven failure detector (None = node loss not tracked)
        self.membership = membership
        self.recovery = recovery
        #: cooperative cancellation token (None = run to completion)
        self.cancel = cancel
        #: did this scheduler actually drain the run for a cancel?  The
        #: engine keys RunCancelled off this, not off the raw token, so a
        #: token set after the DAG completed does not fail a finished run.
        self.cancelled = False
        #: nodes whose drain acknowledgement is still outstanding
        self._cancel_pending: set[int] = set()
        self.outputs = tuple(f"out_{i}" for i in range(n_nodes))
        self._consumers_left: dict[str, int] = {}
        self._tried: dict[str, set[int]] = {}  # task -> nodes that failed it
        self._reroutes: dict[str, int] = {}
        #: arrays GC'd cluster-wide (their producers may need replaying)
        self._collected: set[str] = set()
        #: completed tasks re-executing for block reconstruction; their
        #: "done" reports bypass DAG bookkeeping (already marked complete)
        self._replaying: set[str] = set()
        #: reassigned tasks the corpse may have finished with the report
        #: still in flight: a second "done" for these is expected, not a bug
        self._dup_ok: set[str] = set()
        self._last_check = 0.0
        #: deterministic round-robin cursor for homeless recovery placement
        self._failover_rr = 0
        if gc_arrays:
            for t in dag.tasks.values():
                for array in t.outputs:
                    self._consumers_left[array] = len(dag.consumers_of(array))

    def _live_nodes(self) -> list[int]:
        if self.membership is None:
            return list(range(self.n_nodes))
        dead = set(self.membership.dead_nodes())
        return [n for n in range(self.n_nodes) if n not in dead]

    def _broadcast(self, ctx: FilterContext, payload: dict) -> None:
        for i in self._live_nodes():
            ctx.write(f"out_{i}", DataBuffer(dict(payload)))

    def _send(self, ctx: FilterContext, task_name: str) -> None:
        node = self.assignment[task_name]
        ctx.write(f"out_{node}", DataBuffer(
            {"op": "task", "task": self.dag.tasks[task_name]}))

    def _collect(self, ctx: FilterContext, completed: str) -> None:
        for array in self.dag.tasks[completed].inputs:
            left = self._consumers_left.get(array)
            if left is None:
                continue  # initial array: never collected
            left -= 1
            self._consumers_left[array] = left
            if left == 0:
                self._collected.add(array)
                self._broadcast(ctx, {"op": "gc", "array": array})

    def _reroute(self, ctx: FilterContext, msg: dict) -> None:
        """Move a repeatedly-failing task to a node that has not tried it."""
        name, failed_node = msg["task"], msg["node"]
        tried = self._tried.setdefault(name, {self.assignment[name]})
        tried.add(failed_node)
        reroutes = self._reroutes.get(name, 0)
        live = self._live_nodes()
        candidates = [n for n in live if n not in tried]
        if not candidates or (self.max_reroutes is not None
                              and reroutes >= self.max_reroutes):
            raise TaskFailedError(
                f"task {name!r} failed on node(s) {sorted(tried)} "
                f"(last error: {msg['error']})")
        new_node = candidates[0]
        self._reroutes[name] = reroutes + 1
        self.assignment[name] = new_node
        self.tracer.instant(new_node, "gsched", "task", "task_reroute",
                            task=name, from_node=failed_node,
                            error=msg["error"])
        self._move_task(ctx, name, new_node)
        self._send(ctx, name)

    def _move_task(self, ctx: FilterContext, name: str, new_node: int) -> None:
        """Re-home a task's outputs to ``new_node`` and prep its inputs.

        Outputs follow the task: every live node updates its registration
        (local on the new home, remote handles elsewhere) and forgets
        cached owner entries and block state; inputs are at least remotely
        registered on the new node.
        """
        spec = self.dag.tasks[name]
        for array in spec.outputs:
            self.homes[array] = new_node
            self._broadcast(ctx, {"op": "rehome", "array": array,
                                  "home": new_node})
        for array in spec.inputs:
            ctx.write(f"out_{new_node}", DataBuffer(
                {"op": "ensure", "array": array,
                 "home": self.homes.get(array, -1)}))

    # -- node-loss recovery ---------------------------------------------------

    def _check_membership(self, ctx: FilterContext) -> None:
        """Escalate silent nodes.  A completion the corpse managed to
        report may still be queued when death fires; the plan then counts
        that task as incomplete and reassigns it, and the late duplicate
        "done" is absorbed via ``_dup_ok``."""
        if self.membership is None:
            return
        now = time.monotonic()
        for node, state in self.membership.check(now):
            silent = self.membership.snapshot(now)[node]["silent_s"]
            if state == SUSPECT:
                if self.recovery is not None:
                    self.recovery.metrics.inc("nodes_suspected")
                self.tracer.instant(node, "gsched", "recovery",
                                    "node_suspect", silent_s=silent)
            else:
                self.tracer.instant(node, "gsched", "recovery", "node_dead",
                                    silent_s=silent)
                self._on_node_dead(ctx, node)

    def _heartbeat(self, ctx: FilterContext, node: int) -> None:
        if self.membership is None:
            return
        if self.membership.beat(node, time.monotonic()) is not None:
            # A quarantined suspect came back before the dead threshold.
            if self.recovery is not None:
                self.recovery.metrics.inc("nodes_recovered")
            self.tracer.instant(node, "gsched", "recovery", "node_alive")

    def _next_survivor(self, survivors: list[int]) -> int:
        node = survivors[self._failover_rr % len(survivors)]
        self._failover_rr += 1
        return node

    def _on_node_dead(self, ctx: FilterContext, dead: int) -> None:
        """Recover from one node's permanent loss (the tentpole sequence).

        Eviction first (survivors stop probing the corpse), then lost
        initial arrays re-seed from the filesystem onto survivors, lost
        derived blocks are reconstructed by re-executing their (completed)
        producers from lineage, and the corpse's unfinished tasks move to
        survivors.  Write-once makes all of it safe: replays produce the
        same bytes, and no survivor cache needs invalidation.
        """
        if self.cancelled:
            # The run is being torn down anyway: no reconstruction, just
            # stop survivors probing the corpse and stop waiting for its
            # drain ack (its in-flight work died with it).
            self._broadcast(ctx, {"op": "evict", "node": dead})
            self._cancel_pending.discard(dead)
            return
        rc = self.recovery
        plan = plan_reconstruction(
            self.dag, self.homes, self.assignment, dead,
            descs=rc.descs if rc is not None else None,
            collected=self._collected)
        survivors = self._live_nodes()
        if rc is not None:
            rc.metrics.inc("nodes_lost")
            rc.metrics.inc("blocks_lost", plan.lost_blocks)
            if rc.lineage is not None:
                rc.lineage.record(
                    "node_dead", node=dead, lost_arrays=plan.lost_arrays,
                    lost_blocks=plan.lost_blocks, reseed=plan.reseed,
                    replay=plan.replay, reassign=plan.reassign)
                rc.lineage.sync()
        if not survivors or rc is None or not rc.node_recovery:
            raise NodeLostError(
                f"node {dead} declared dead with {len(plan.lost_arrays)} "
                f"arrays ({plan.lost_blocks} blocks) homed on it"
                + ("" if survivors else "; no survivors left to recover on")
                + ("" if rc is not None and rc.node_recovery
                   else "; node recovery is disabled"),
                node=dead, lost_blocks=plan.lost_blocks)
        self._broadcast(ctx, {"op": "evict", "node": dead})
        for array in plan.reseed:
            new_home = self._next_survivor(survivors)
            rc.reseed(array, dead, new_home)
            self.homes[array] = new_home
            self._broadcast(ctx, {"op": "rehome", "array": array,
                                  "home": new_home, "on_disk": True,
                                  "recover": True})
            rc.metrics.inc("arrays_reseeded")
            if rc.lineage is not None:
                rc.lineage.record("reseed", array=array, node=new_home)
        ready_now = set(self.dag.ready_tasks())
        for name in plan.replay:
            spec = self.dag.tasks[name]
            new_node = failover_node(spec.inputs, self.homes, survivors,
                                     rc.nbytes)
            self.assignment[name] = new_node
            for array in spec.outputs:
                self.homes[array] = new_node
                self._broadcast(ctx, {"op": "rehome", "array": array,
                                      "home": new_node, "recover": True})
            for array in spec.inputs:
                ctx.write(f"out_{new_node}", DataBuffer(
                    {"op": "ensure", "array": array,
                     "home": self.homes.get(array, -1)}))
            self._replaying.add(name)
            self.tracer.instant(new_node, "gsched", "recovery",
                                "lineage_replay", task=name, from_node=dead)
            rc.metrics.inc("tasks_replayed")
            if rc.lineage is not None:
                rc.lineage.record("replay", task=name, node=new_node)
            self._send(ctx, name)
        for name in plan.reassign:
            spec = self.dag.tasks[name]
            new_node = failover_node(spec.inputs, self.homes, survivors,
                                     rc.nbytes)
            self.assignment[name] = new_node
            for array in spec.outputs:
                self.homes[array] = new_node
                self._broadcast(ctx, {"op": "rehome", "array": array,
                                      "home": new_node, "recover": True})
            for array in spec.inputs:
                ctx.write(f"out_{new_node}", DataBuffer(
                    {"op": "ensure", "array": array,
                     "home": self.homes.get(array, -1)}))
            self.tracer.instant(new_node, "gsched", "recovery",
                                "task_reassign", task=name, from_node=dead)
            rc.metrics.inc("tasks_reassigned")
            if rc.lineage is not None:
                rc.lineage.record("reassign", task=name, node=new_node)
            if name in ready_now and name not in self._replaying:
                # It had been dispatched to the corpse; send it again.  The
                # corpse may even have finished it with the report still in
                # flight, so tolerate one duplicate completion.
                self._dup_ok.add(name)
                self._send(ctx, name)
        if rc.lineage is not None:
            rc.lineage.sync()

    def _all_vanished(self, ctx: FilterContext) -> NoReturn:
        """Every lsched control stream closed before the DAG completed.

        The senders are gone, not slow.  With a failure detector armed,
        give it its declaration window so the error names the dead node
        (``NodeLostError`` out of ``_on_node_dead``) instead of a generic
        protocol failure — this is how a single-node kill, where no
        survivor is left to heartbeat, still fails loudly by name.
        """
        if self.membership is not None:
            cfg = self.membership.config
            deadline = (time.monotonic() + cfg.dead_after_s
                        + 4 * cfg.heartbeat_s)
            while time.monotonic() < deadline:
                self._check_membership(ctx)  # may raise NodeLostError
                time.sleep(cfg.poll_s)
        raise SchedulingError(
            "local schedulers vanished before the DAG completed"
        )

    def _begin_cancel(self, ctx: FilterContext) -> None:
        """The token fired: stop dispatching and ask every node to drain.

        The drain request goes to local schedulers, never to storage:
        each node finishes (only) its in-flight tasks, acks, and the
        normal shutdown broadcast below runs once every ack is in — so
        storage still drains strictly after all workers everywhere are
        idle, same as a completed run.
        """
        self.cancelled = True
        self._cancel_pending = set(self._live_nodes())
        reason = self.cancel.reason if self.cancel is not None else "cancelled"
        self.tracer.instant(-1, "gsched", "run", "run_cancel", reason=reason)
        self._broadcast(ctx, {"op": "cancel"})

    def process(self, ctx: FilterContext) -> None:
        if self.cancel is not None and self.cancel.is_set():
            # Cancelled before dispatch: nothing runs, but the drain
            # handshake still happens so the exit path is the same.
            self._begin_cancel(ctx)
        else:
            for name in sorted(self.dag.ready_tasks()):
                self._send(ctx, name)
        poll_s = (self.membership.config.poll_s
                  if self.membership is not None else None)
        wait_s = poll_s
        if self.cancel is not None:
            wait_s = (self.CANCEL_POLL_S if poll_s is None
                      else min(poll_s, self.CANCEL_POLL_S))
        while True:
            if self.cancelled:
                if not self._cancel_pending:
                    break  # every node drained: run the normal wind-down
            elif self.dag.done and not self._replaying:
                break
            if self.membership is not None:
                now = time.monotonic()
                if now - self._last_check >= poll_s:
                    self._last_check = now
                    self._check_membership(ctx)
            if (self.cancel is not None and not self.cancelled
                    and self.cancel.is_set()):
                self._begin_cancel(ctx)
                continue
            try:
                _port, buf = ctx.read_any(["in"], timeout=wait_s)
            except TimeoutError:
                continue  # loop back through the membership/cancel checks
            if buf is END_OF_STREAM:
                self._all_vanished(ctx)
            msg = buf.payload
            if msg["op"] == "heartbeat":
                self._heartbeat(ctx, msg["node"])
                continue
            if msg["op"] == "cancel_drained":
                self._cancel_pending.discard(msg["node"])
                continue
            if msg["op"] == "failed":
                if self.cancelled:
                    continue  # no reroutes for a run being torn down
                self._reroute(ctx, msg)
                continue
            if msg["task"] in self._replaying:
                # A reconstruction replay finished: the DAG already counts
                # this task as complete, so only clear the replay flag.
                self._replaying.discard(msg["task"])
                if (self.recovery is not None
                        and self.recovery.lineage is not None):
                    self.recovery.lineage.record(
                        "replay_done", task=msg["task"])
                continue
            if msg["task"] in self._dup_ok and msg["task"] in self.dag.completed:
                # The corpse finished this task before dying; the survivor's
                # re-execution already marked it complete (or vice versa).
                self._dup_ok.discard(msg["task"])
                continue
            for newly in self.dag.mark_complete(msg["task"]):
                if not self.cancelled:
                    self._send(ctx, newly)
            if (self.recovery is not None
                    and self.recovery.lineage is not None):
                self.recovery.lineage.record(
                    "complete", task=msg["task"],
                    node=self.assignment.get(msg["task"], -1))
            if self.gc_arrays and not self.cancelled:
                self._collect(ctx, msg["task"])
        for i in range(self.n_nodes):
            ctx.write(f"out_{i}", DataBuffer({"op": "shutdown"}))


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------


@dataclass
class RunReport:
    """What a run produced, beyond the output arrays themselves."""

    wall_seconds: float
    assignment: dict[str, int]
    store_stats: dict[int, StoreStats]
    stream_stats: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: per-node metrics registry snapshots (supersede ``store_stats``)
    metrics: dict[int, dict] = field(default_factory=dict)
    #: structured runtime events (empty unless tracing was enabled)
    trace_events: list[TraceEvent] = field(default_factory=list)
    #: last watchdog diagnosis, when a mid-run stall was observed
    diagnosis: Diagnosis | None = None

    @property
    def total_loads(self) -> int:
        return sum(s.loads for s in self.store_stats.values())

    @property
    def total_spills(self) -> int:
        return sum(s.spills for s in self.store_stats.values())

    @property
    def total_remote_fetches(self) -> int:
        return sum(s.remote_fetches for s in self.store_stats.values())

    # -- trace persistence ---------------------------------------------------

    def save_trace(self, path: str | Path) -> Path:
        """Write raw trace events as JSONL (``python -m repro trace <file>``)."""
        return save_events_jsonl(self.trace_events, path)

    def save_chrome_trace(self, path: str | Path) -> Path:
        """Write a ``chrome://tracing`` / Perfetto JSON file."""
        return export_chrome_trace(self.trace_events, path)


def _available_cpus() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the machine, not the allowance — inside a
    cgroup-limited container or under ``taskset`` it oversizes the pool
    and the extra workers just contend.  The scheduler affinity mask is
    the real budget; fall back to ``cpu_count`` where the platform has no
    ``sched_getaffinity`` (macOS, Windows).
    """
    try:
        return len(os.sched_getaffinity(0)) or (os.cpu_count() or 2)
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 2


def default_worker_count() -> int:
    """Worker filters per node when the caller doesn't say: cpu-aware,
    but never fewer than 2 (compute/copy overlap needs at least two) and
    never more than 8 (beyond that, GIL'd glue code dominates)."""
    return max(2, min(8, _available_cpus()))


#: process-wide engine instance counter.  Stamped into every segment-pool
#: tag so two engines running concurrently in one process (the job-server
#: pool) can never mint the same /dev/shm name: pool names are
#: ``dooc-seg-<pid>-e<engine>r<run>-<seq>`` — unique per (process,
#: engine, run, allocation).  ``itertools.count`` is atomic under the GIL.
_ENGINE_IDS = itertools.count(1)


class DOoCEngine:
    """Out-of-core, multi-node (threaded) execution of DOoC programs."""

    def __init__(
        self,
        *,
        n_nodes: int = 1,
        workers_per_node: int | None = None,
        workers: int | None = None,
        io_filters_per_node: int = 1,
        memory_budget_per_node: int = 256 * 2**20,
        opcache_bytes: int | None = None,
        scratch_dir: str | Path | None = None,
        prefetch_depth: int = 2,
        rng_seed: int = 0,
        gc_arrays: bool = False,
        scheduler_reorder: bool = True,
        trace: bool | Tracer = False,
        watchdog_quiet_s: float | None = 10.0,
        faults: FaultPlan | None = None,
        io_retry: RetryPolicy | None = None,
        task_max_attempts: int = 3,
        task_max_reroutes: int | None = None,
        protocol_checkers: bool | None = None,
        membership: MembershipConfig | bool | None = None,
        node_recovery: bool = True,
        worker_plane: str = "thread",
        data_plane: str | None = None,
        codec: str | None = None,
    ):
        if workers is not None and workers_per_node is not None:
            raise DoocError("pass either workers= or workers_per_node=, not both")
        if workers_per_node is None:
            # cpu_count-aware default: SpMV kernels release the GIL inside
            # scipy, so distinct ready tasks genuinely overlap; capped so a
            # many-core box doesn't drown a small run in idle threads.
            workers_per_node = (workers if workers is not None
                                else default_worker_count())
        if n_nodes < 1 or workers_per_node < 1 or io_filters_per_node < 1:
            raise DoocError("n_nodes, workers and I/O filters must be >= 1")
        if task_max_attempts < 1:
            raise DoocError("task_max_attempts must be >= 1")
        self.n_nodes = n_nodes
        self.workers_per_node = workers_per_node
        self.io_filters_per_node = io_filters_per_node
        self.memory_budget_per_node = memory_budget_per_node
        #: data-plane mode, snapshotted ONCE here.  ``None`` samples
        #: DOOC_DATA_PLANE; every filter receives this snapshot, so a
        #: mid-run flip of the environment variable cannot produce a
        #: mixed copying/zero-copy plane (it used to: the old code
        #: re-read os.environ at every load/serve call site).
        self.data_plane = resolve_data_plane(data_plane)
        self._legacy_copies = self.data_plane == "legacy"
        #: on-disk block codec, snapshotted ONCE here exactly like the
        #: data plane: ``None`` samples DOOC_CODEC, and every descriptor
        #: the run spills is stamped with this snapshot — a mid-run flip
        #: of the environment variable cannot split readers from writers.
        self.codec = resolve_codec(codec)
        if worker_plane not in ("thread", "process"):
            raise DoocError(
                f"unknown worker_plane {worker_plane!r}: "
                "expected 'thread' or 'process'")
        if worker_plane == "process" and self._legacy_copies:
            # A legacy copy of a segment-targeted load would desynchronize
            # the block's handle from its bytes; the combination has no
            # use (legacy exists only for A/B benchmarks) so refuse it.
            raise DoocError(
                "worker_plane='process' requires the zero-copy data plane "
                "(unset DOOC_DATA_PLANE / pass data_plane='zerocopy')")
        self.worker_plane = worker_plane
        #: decoded-operand cache budget per node (0 disables; None = a
        #: quarter of the memory budget).  The legacy data plane
        #: (DOOC_DATA_PLANE=legacy) force-disables the cache.
        if opcache_bytes is None:
            opcache_bytes = memory_budget_per_node // 4
        if opcache_bytes < 0:
            raise DoocError("opcache_bytes must be >= 0")
        self.opcache_bytes = 0 if self._legacy_copies else int(opcache_bytes)
        self.prefetch_depth = prefetch_depth
        self.gc_arrays = gc_arrays
        self.scheduler_reorder = scheduler_reorder
        #: deterministic fault plan (None or all-zero probabilities = off)
        self.faults = faults
        #: I/O retry/backoff policy; None uses the IOFilter default
        self.io_retry = io_retry
        #: per-node execution attempts before a task escalates to a reroute
        self.task_max_attempts = task_max_attempts
        #: cross-node reroutes before giving up (None = every other node)
        self.task_max_reroutes = task_max_reroutes
        #: failure detection: a MembershipConfig (or True for defaults)
        #: turns on heartbeats + the alive/suspect/dead tracker; None
        #: auto-enables it exactly when the fault plan injects node kills
        self.membership = membership
        #: on a declared death, reconstruct (True) or fail with a named
        #: NodeLostError (False)
        self.node_recovery = node_recovery
        #: run the protocol checkers (lock-order recorder, ticket-lifecycle
        #: auditor, pre-execution DAG validation)?  None defers to the
        #: ``DOOC_CHECKERS`` environment flag; production runs pay nothing.
        if protocol_checkers is None:
            from repro.analysis import checkers_enabled
            protocol_checkers = checkers_enabled()
        self.protocol_checkers = bool(protocol_checkers)
        #: ``trace=True`` records the run timeline (see repro.obs); a
        #: caller-provided Tracer is used as-is (e.g. a sim-clocked one).
        self.tracer = trace if isinstance(trace, Tracer) else Tracer(enabled=bool(trace))
        #: quiet seconds before the stall watchdog dumps a diagnosis;
        #: None disables the watchdog entirely.
        self.watchdog_quiet_s = watchdog_quiet_s
        self.rng = RngTree(rng_seed)
        self._engine_id = next(_ENGINE_IDS)
        self._scratch_finalizer = None
        if scratch_dir is None:
            # mkdtemp + a silent finalizer rather than TemporaryDirectory:
            # engines routinely live until garbage collection (fetch() reads
            # the scratch files after run()), and TemporaryDirectory's
            # implicit-cleanup ResourceWarning turns every such engine into
            # noise under ``-W error::ResourceWarning``.  The owning pid is
            # stamped into the name so the stale-resource sweeper
            # (repro.server.sweep) can tell an orphan from a live run's dir.
            scratch_dir = tempfile.mkdtemp(prefix=f"dooc-{os.getpid()}-")
            self._scratch_finalizer = weakref.finalize(
                self, shutil.rmtree, scratch_dir, True)
        self.scratch_root = Path(scratch_dir)
        self.stores: dict[int, LocalStore] = {}
        self._descs: dict[str, ArrayDesc] = {}
        self._homes: dict[str, int] = {}
        #: the last run's failure detector (None until a membership run)
        self._tracker: MembershipTracker | None = None
        #: process-plane state (None on the thread plane): the shared
        #: memory segment pool backing the last run's sealed blocks, and
        #: the worker-process fleet.  Both are per-run; the pool of run N
        #: is closed once run N+1 has rebuilt the stores (fetch() between
        #: runs reads store views, which survive the segment unlink).
        self._segment_pool: SegmentPool | None = None
        self._proc_pool: ProcessWorkerPool | None = None
        self._run_seq = 0  # disambiguates segment names across runs

    def cleanup(self) -> None:
        """Delete an engine-owned scratch directory now (no-op otherwise)."""
        if self._proc_pool is not None:
            self._proc_pool.shutdown()
            self._proc_pool = None
        if self._segment_pool is not None:
            self._segment_pool.close()
            self._segment_pool = None
        if self._scratch_finalizer is not None:
            self._scratch_finalizer()

    def node_scratch(self, node: int) -> Path:
        path = self.scratch_root / f"node{node}"
        path.mkdir(parents=True, exist_ok=True)
        return path

    def _membership_config(self) -> MembershipConfig | None:
        m = self.membership
        if isinstance(m, MembershipConfig):
            return m
        if m is True:
            return MembershipConfig()
        if m is None and self.faults is not None and self.faults.node_kill:
            # Injecting node deaths without a failure detector would just
            # produce unexplained stalls; arm the default detector.
            return MembershipConfig()
        return None

    def _reseed_array(self, array: str, dead: int, new_home: int) -> None:
        """Recover a lost *initial* array by re-reading its backing file.

        In the paper's deployment input files live on a shared parallel
        filesystem that outlives any compute node; here the corpse's
        scratch directory plays that role (threads don't take disks with
        them), so re-seeding is a byte copy into the new home's scratch.
        """
        from repro.core.iofilter import copy_array_files
        copy_array_files(self.node_scratch(dead), self.node_scratch(new_home),
                         array)

    # -- run ---------------------------------------------------------------------

    def run(self, program: Program, *, timeout: float = 300.0,
            cancel: CancelToken | None = None) -> RunReport:
        auditor = None
        if self.protocol_checkers:
            from repro.analysis.dagcheck import validate_tasks
            from repro.analysis.tickets import TicketAuditor
            # Fail with a named diagnosis before any thread starts; TaskDAG
            # would reject the same programs, but mid-construction and with
            # less precise messages (e.g. a cycle candidate set, not a path).
            validate_tasks(program.tasks, set(program.initial_data))
            auditor = TicketAuditor()
        dag = program.build_dag()
        # Stamp the engine's codec snapshot onto every descriptor that
        # doesn't pin one of its own: spills, loads, and checkpoints all
        # see the same codec for the whole run.  (Pre-seeded files keep
        # working regardless — readers probe the on-disk layout.)
        self._descs = {
            name: d if d.codec is not None else replace(d, codec=self.codec)
            for name, d in program.arrays.items()
        }
        nbytes = {name: d.nbytes for name, d in self._descs.items()}

        for name, home in program.initial_home.items():
            if not 0 <= home < self.n_nodes:
                raise DoocError(
                    f"initial array {name!r} homed on node {home}, but the "
                    f"engine has {self.n_nodes} nodes"
                )

        gsched = GlobalScheduler(dag, self.n_nodes,
                                 array_homes=program.initial_home,
                                 array_nbytes=nbytes)
        assignment = gsched.assign_all()
        self._homes = dict(gsched.array_homes)

        # Seed initial data to scratch directories (None = file pre-exists).
        for name, data in program.initial_data.items():
            scratch = self.node_scratch(program.initial_home[name])
            if data is None:
                from repro.core.iofilter import array_exists
                if not array_exists(scratch, name):
                    raise DoocError(
                        f"initial array {name!r} declared from scratch but "
                        f"no backing file exists on node "
                        f"{program.initial_home[name]}"
                    )
                continue
            write_array(scratch, self._descs[name], data)

        # Process plane: per-run segment pool + worker-process fleet.
        # Children are forked NOW, while this process is still
        # single-threaded (the runtime's threads have not started).  The
        # previous run's pool is closed only after the stores (whose
        # views pin the old mappings) are rebuilt below.
        old_pool = self._segment_pool
        proc_pool: ProcessWorkerPool | None = None
        if self.worker_plane == "process":
            self._run_seq += 1
            # e<engine>r<run>: two concurrent engines in one process get
            # disjoint /dev/shm namespaces (a bare r<run> tag used to
            # collide — both engines' first run minted dooc-seg-<pid>-r1-0).
            self._segment_pool = SegmentPool(
                tag=f"e{self._engine_id}r{self._run_seq}")
            proc_pool = ProcessWorkerPool(
                self.n_nodes, self.workers_per_node, self.opcache_bytes)
            proc_pool.start()
        else:
            self._segment_pool = None
        self._proc_pool = proc_pool

        # Per-node stores with the right registration per array.
        self.stores = {}
        directories = {}
        injectors: dict[int, FaultInjector | None] = {}
        inject = self.faults is not None and self.faults.enabled
        for node in range(self.n_nodes):
            store = LocalStore(node, self.memory_budget_per_node,
                               segment_pool=self._segment_pool)
            consumed_here = {
                a
                for t in program.tasks
                if assignment[t.name] == node
                for a in t.inputs
            }
            for name, desc in self._descs.items():
                home = self._homes[name]
                if home == node:
                    if name in program.initial_data:
                        store.register_on_disk(desc)
                    else:
                        store.create_array(desc)
                elif name in consumed_here:
                    store.register_remote(desc)
            store.auditor = auditor
            if self.opcache_bytes > 0:
                store.opcache = DecodedOperandCache(
                    self.opcache_bytes, metrics=store.metrics)
            self.stores[node] = store
            directories[node] = DirectoryClient(
                node, self.n_nodes, self.rng.child("directory", node))
            injectors[node] = FaultInjector(
                self.faults, node, metrics=store.metrics,
                tracer=self.tracer) if inject else None
        if old_pool is not None:
            # Run N-1's segments: already unlinked in that run's finally;
            # re-close to sweep mappings whose views died with the old
            # stores just replaced above.
            old_pool.close()

        membership_cfg = self._membership_config()
        tracker = (MembershipTracker(self.n_nodes, membership_cfg)
                   if membership_cfg is not None else None)
        self._tracker = tracker
        recovery_metrics = MetricsRegistry()
        lineage: LineageLog | None = None
        recovery_ctx = None
        if tracker is not None:
            # Durable lineage: every (task, node, inputs, outputs) fact the
            # reconstruction planner relies on, journaled before the run.
            lineage = LineageLog(self.scratch_root / "lineage.jsonl")
            for t in program.tasks:
                lineage.record("task", task=t.name, node=assignment[t.name],
                               inputs=list(t.inputs), outputs=list(t.outputs))
            lineage.sync()
            recovery_ctx = _RecoveryContext(
                descs=self._descs, nbytes=nbytes, reseed=self._reseed_array,
                metrics=recovery_metrics, lineage=lineage,
                node_recovery=self.node_recovery)

        layout = self._build_layout(program, dag, assignment, directories,
                                    nbytes, injectors,
                                    membership_cfg=membership_cfg,
                                    tracker=tracker, recovery=recovery_ctx,
                                    cancel=cancel)
        recorder = None
        if self.protocol_checkers:
            from repro.analysis.lockorder import LockOrderRecorder
            recorder = LockOrderRecorder()
        runtime = ThreadedRuntime(layout, lock_recorder=recorder)
        watchdog = self._build_watchdog(runtime, tracker)
        self.tracer.instant(-1, "engine", "run", "phase",
                            phase="start", program=program.name)
        started = time.monotonic()
        try:
            if watchdog is not None:
                watchdog.start()
            runtime.run(timeout=timeout)
        except FilterError as exc:
            # A declared node loss that could not be recovered (no
            # survivors, or node_recovery=False) surfaces by name rather
            # than as an opaque filter crash.
            cause = self._node_loss_cause(runtime, exc)
            if cause is not None:
                raise cause from exc
            raise
        except TimeoutError as exc:
            # Replace the runtime's opaque timeout with the watchdog's view
            # of who is stuck (blocked tickets, queued allocations, ready
            # pools); StallError still `is a` TimeoutError for old callers.
            diagnosis = watchdog.diagnose() if watchdog is not None else None
            message = str(exc)
            if diagnosis is not None:
                message = f"{message}\n{diagnosis.render()}"
            if tracker is not None and tracker.dead_nodes():
                # Not a generic stall: a node is dead and the run wedged
                # anyway.  Name the corpse and what it took with it.
                dead = tracker.dead_nodes()[0]
                lost = sum(
                    len(list(d.blocks()))
                    for a, d in self._descs.items()
                    if self._homes.get(a) == dead)
                raise NodeLostError(
                    f"node {dead} was declared dead and the run did not "
                    f"recover in time: {message}", diagnosis,
                    node=dead, lost_blocks=lost) from exc
            raise StallError(message, diagnosis) from exc
        finally:
            if watchdog is not None:
                watchdog.stop()
            if lineage is not None:
                lineage.close()
            if proc_pool is not None:
                proc_pool.shutdown()
            if self._segment_pool is not None:
                # Record any leaked leases for the audit below, then
                # unlink everything: /dev/shm is clean after *every*
                # run, success or not.  fetch() keeps working — the
                # stores' sealed views outlive the unlink.
                leaked_leases = self._segment_pool.lease_counts()
                self._segment_pool.close()
            else:
                leaked_leases = {}
        self.tracer.instant(-1, "engine", "run", "phase", phase="end")
        if auditor is not None:
            # Every grant on every node must have been unwound by a release
            # or an abandonment; leaks are named ticket-by-ticket.
            auditor.assert_clean()
            if leaked_leases:
                detail = ", ".join(
                    f"{n} x{c}" for n, c in sorted(leaked_leases.items()))
                raise SegmentLeakError(
                    f"segment leases leaked past the run: {detail}")
        gsched_filter = runtime.instances["gsched"][0].filter
        if getattr(gsched_filter, "cancelled", False):
            # The scheduler drained the run for the token (the flag, not
            # the raw token, is authoritative: a token set after the DAG
            # completed must not fail a finished run).  Raised after the
            # audits above, so a cancelled run is certified exactly as
            # clean as a completed one.
            reason = cancel.reason if cancel is not None else "cancelled"
            raise RunCancelled(f"run cancelled: {reason}", reason=reason)
        wall = time.monotonic() - started
        metrics = {n: s.metrics.as_dict() for n, s in self.stores.items()}
        recovered = recovery_metrics.as_dict()
        if recovered:
            # Engine-level recovery counters ride under the pseudo-node -1
            # (the same convention the tracer uses for engine events).
            metrics[-1] = recovered
        return RunReport(
            wall_seconds=wall,
            assignment=assignment,
            store_stats={n: s.stats for n, s in self.stores.items()},
            stream_stats=runtime.stream_stats(),
            metrics=metrics,
            trace_events=self.tracer.drain(),
            diagnosis=watchdog.last_diagnosis if watchdog is not None else None,
        )

    @staticmethod
    def _node_loss_cause(runtime: ThreadedRuntime,
                         exc: FilterError) -> NodeLostError | None:
        """Find a NodeLostError among the runtime's filter failures."""
        errors = list(getattr(runtime, "_errors", None) or [])
        for err in [exc, *errors]:
            cause = getattr(err, "cause", None)
            if isinstance(cause, NodeLostError):
                return cause
        return None

    def _build_watchdog(self, runtime: ThreadedRuntime,
                        tracker: MembershipTracker | None = None,
                        ) -> StallWatchdog | None:
        if not self.watchdog_quiet_s:
            return None
        watchdog = StallWatchdog(self.tracer, quiet_s=self.watchdog_quiet_s)
        for node, store in self.stores.items():
            watchdog.watch_store(node, store)
        for node in range(self.n_nodes):
            lsched = runtime.instances[f"lsched@{node}"][0].filter
            watchdog.watch_scheduler(node, lsched.debug_snapshot)
        if tracker is not None:
            watchdog.watch_membership(
                lambda: tracker.snapshot(time.monotonic()))
        return watchdog

    def _build_layout(self, program: Program, dag: TaskDAG,
                      assignment: dict[str, int],
                      directories: dict[int, DirectoryClient],
                      nbytes: dict[str, int],
                      injectors: dict[int, FaultInjector | None],
                      *,
                      membership_cfg: MembershipConfig | None = None,
                      tracker: MembershipTracker | None = None,
                      recovery: _RecoveryContext | None = None,
                      cancel: CancelToken | None = None,
                      ) -> Layout:
        n = self.n_nodes
        heartbeat_s = (membership_cfg.heartbeat_s
                       if membership_cfg is not None else None)
        layout = Layout(program.name)
        layout.add_filter(
            "gsched", lambda: _GlobalSchedulerFilter(
                dag, assignment, n, gc_arrays=self.gc_arrays,
                homes=self._homes, max_reroutes=self.task_max_reroutes,
                tracer=self.tracer, membership=tracker, recovery=recovery,
                cancel=cancel))
        for node in range(n):
            store = self.stores[node]
            directory = directories[node]
            scratch = self.node_scratch(node)
            injector = injectors[node]
            layout.add_filter(
                f"storage@{node}",
                lambda node=node, store=store, directory=directory,
                injector=injector: _StorageFilter(
                    node, n, store, directory, self._descs, self.tracer,
                    injector=injector, legacy_copies=self._legacy_copies),
            )
            layout.add_filter(
                f"io@{node}",
                lambda node=node, scratch=scratch, store=store,
                injector=injector: IOFilter(
                    scratch, node=node, tracer=self.tracer,
                    retry=self.io_retry, injector=injector,
                    metrics=store.metrics,
                    legacy_copies=self._legacy_copies,
                    segment_pool=self._segment_pool),
                instances=self.io_filters_per_node,
                replicable=True,
            )
            layout.add_filter(
                f"lsched@{node}",
                lambda node=node, store=store,
                injector=injector: _LocalSchedulerFilter(
                    node, self.workers_per_node, nbytes,
                    prefetch_depth=self.prefetch_depth,
                    reorder=self.scheduler_reorder,
                    tracer=self.tracer,
                    metrics=store.metrics,
                    max_attempts=self.task_max_attempts,
                    heartbeat_s=heartbeat_s,
                    injector=injector),
            )
            layout.add_filter(
                f"worker@{node}",
                lambda node=node, store=store,
                injector=injector: _WorkerFilter(
                    node, self._descs, self.tracer, injector=injector,
                    metrics=store.metrics, opcache=store.opcache,
                    plane=self._proc_pool,
                    segment_pool=self._segment_pool),
                instances=self.workers_per_node,
                replicable=True,
            )
            # Control plane
            layout.connect("gsched", f"out_{node}", f"lsched@{node}", "in",
                           capacity=1024)
            layout.connect(f"lsched@{node}", "to_gsched", "gsched", "in",
                           capacity=1024)
            layout.connect(f"lsched@{node}", "to_workers", f"worker@{node}", "in",
                           policy=DistributionPolicy.DIRECTED, capacity=64)
            layout.connect(f"worker@{node}", "to_lsched", f"lsched@{node}",
                           "from_workers", capacity=64)
            # Storage plane
            layout.connect(f"worker@{node}", "to_storage", f"storage@{node}",
                           "req", capacity=256)
            layout.connect(f"lsched@{node}", "to_storage", f"storage@{node}",
                           "req", capacity=256)
            layout.connect(f"storage@{node}", "rep_workers", f"worker@{node}",
                           "from_storage", policy=DistributionPolicy.DIRECTED,
                           capacity=256)
            layout.connect(f"storage@{node}", "rep_lsched", f"lsched@{node}",
                           "from_storage", capacity=256)
            layout.connect(f"storage@{node}", "io_cmd", f"io@{node}", "in",
                           capacity=256)
            layout.connect(f"io@{node}", "out", f"storage@{node}", "io_done",
                           capacity=256)
        # Peer-to-peer storage links ("complete peer-to-peer connections").
        for i in range(n):
            for j in range(n):
                if i != j:
                    layout.connect(f"storage@{i}", f"peer_out_{j}",
                                   f"storage@{j}", "peer_in", capacity=256)
        return layout

    # -- result access ----------------------------------------------------------------

    def fetch(self, name: str) -> np.ndarray:
        """Gather a (completed) array after a run."""
        desc = self._descs.get(name)
        if desc is None:
            raise DoocError(f"unknown array {name!r}")
        home = self._homes[name]
        store = self.stores[home]
        scratch = self.node_scratch(home)
        parts = []
        for b in desc.blocks():
            data = store.peek_block(name, b)
            if data is None:
                if not store.block_on_disk(name, b):
                    raise DoocError(
                        f"block {b} of {name!r} was never produced"
                    )
                data = read_block(scratch, desc, b)
            parts.append(np.asarray(data))
        return np.concatenate(parts)
