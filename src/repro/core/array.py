"""Global array descriptors.

Arrays are one-dimensional, typed, of arbitrary size, and structured in
fixed-size *blocks*; the data within a block is contiguous in memory.  An
array is *immutable*: each element is written at most once, and becomes
readable only after the writer releases its interval.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import StorageError


@dataclass(frozen=True)
class ArrayDesc:
    """Shape-level description of a global array.

    ``length`` counts elements of ``dtype``; ``block_elems`` is the block
    granularity (the unit of storage, transfer, and eviction).  The last
    block may be short.
    """

    name: str
    length: int
    dtype: str = "float64"
    block_elems: int = 2**20
    #: on-disk block codec name (see :mod:`repro.core.codecs`); ``None``
    #: means "unspecified" — the engine stamps its construction-time
    #: snapshot at run time, and standalone I/O helpers treat it as raw
    codec: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise StorageError("array needs a non-empty name")
        if self.length <= 0:
            raise StorageError(f"array {self.name!r}: length must be positive")
        if self.block_elems <= 0:
            raise StorageError(f"array {self.name!r}: block_elems must be positive")
        np.dtype(self.dtype)  # raises TypeError on junk
        if self.codec is not None:
            from repro.core.codecs import get_codec
            get_codec(self.codec)  # raises UnknownCodecError on junk

    @property
    def itemsize(self) -> int:
        return np.dtype(self.dtype).itemsize

    @property
    def nbytes(self) -> int:
        return self.length * self.itemsize

    @property
    def n_blocks(self) -> int:
        return -(-self.length // self.block_elems)

    def block_bounds(self, block: int) -> tuple[int, int]:
        """Element range [lo, hi) covered by ``block``."""
        if not 0 <= block < self.n_blocks:
            raise StorageError(
                f"array {self.name!r}: block {block} outside 0..{self.n_blocks - 1}"
            )
        lo = block * self.block_elems
        return lo, min(lo + self.block_elems, self.length)

    def block_length(self, block: int) -> int:
        lo, hi = self.block_bounds(block)
        return hi - lo

    def block_nbytes(self, block: int) -> int:
        return self.block_length(block) * self.itemsize

    def block_of(self, element: int) -> int:
        """Block index containing element ``element``."""
        if not 0 <= element < self.length:
            raise StorageError(
                f"array {self.name!r}: element {element} outside 0..{self.length - 1}"
            )
        return element // self.block_elems

    def blocks(self) -> range:
        return range(self.n_blocks)
