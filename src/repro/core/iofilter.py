"""Scratch-directory block I/O.

Each node's storage filter uses a scratch directory as its out-of-core
backing store: one binary file per array, blocks at fixed offsets.
``IOFilter`` (a DataCutter filter) performs the actual reads/writes so
"the interactions with the file system [are] completely asynchronous" —
the storage filter never blocks on disk.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from typing import Optional

from repro.core.array import ArrayDesc
from repro.core.errors import StorageError
from repro.datacutter.buffers import END_OF_STREAM, DataBuffer
from repro.datacutter.filters import Filter, FilterContext
from repro.obs import Tracer

_SUFFIX = ".arr"


def array_path(scratch: Path, name: str) -> Path:
    """File backing ``name`` (array names may contain '/' -> subdirs not
    allowed; they are mangled to keep one flat directory)."""
    safe = name.replace("/", "%2F").replace("\\", "%5C")
    return Path(scratch) / f"{safe}{_SUFFIX}"


def block_offset(desc: ArrayDesc, block: int) -> int:
    """Byte offset of ``block`` within the array's backing file."""
    desc.block_bounds(block)
    return block * desc.block_elems * desc.itemsize


def write_block(scratch: Path, desc: ArrayDesc, block: int, data: np.ndarray) -> None:
    """Persist one block at its offset (creating/growing the file)."""
    expected = desc.block_length(block)
    if data.shape != (expected,):
        raise StorageError(
            f"block {block} of {desc.name!r} has length {expected}, "
            f"got shape {data.shape}"
        )
    path = array_path(scratch, desc.name)
    path.parent.mkdir(parents=True, exist_ok=True)
    mode = "r+b" if path.exists() else "w+b"
    with open(path, mode) as fh:
        fh.seek(block_offset(desc, block))
        fh.write(np.ascontiguousarray(data, dtype=desc.dtype).tobytes())


def read_block(scratch: Path, desc: ArrayDesc, block: int) -> np.ndarray:
    """Load one block from its offset."""
    path = array_path(scratch, desc.name)
    length = desc.block_length(block)
    with open(path, "rb") as fh:
        fh.seek(block_offset(desc, block))
        raw = fh.read(length * desc.itemsize)
    if len(raw) != length * desc.itemsize:
        raise StorageError(
            f"short read of block {block} of {desc.name!r} from {path}"
        )
    return np.frombuffer(raw, dtype=desc.dtype).copy()


def write_array(scratch: Path, desc: ArrayDesc, data: np.ndarray) -> None:
    """Persist a whole array (used to seed initial data)."""
    if data.shape != (desc.length,):
        raise StorageError(
            f"array {desc.name!r} has length {desc.length}, got {data.shape}"
        )
    for b in desc.blocks():
        lo, hi = desc.block_bounds(b)
        write_block(scratch, desc, b, np.asarray(data[lo:hi], dtype=desc.dtype))


def read_array(scratch: Path, desc: ArrayDesc) -> np.ndarray:
    """Load a whole array from its backing file."""
    return np.concatenate([read_block(scratch, desc, b) for b in desc.blocks()])


def delete_array_file(scratch: Path, name: str) -> None:
    path = array_path(scratch, name)
    if path.exists():
        os.unlink(path)


def discover_arrays(scratch: Path) -> list[str]:
    """Array names present in a scratch directory (startup scan).

    Mirrors the paper's storage start-up: "the storage looks for files in
    that directory and records the name of the arrays as well as their
    sizes".  Sizes come from the registered descriptors; we return names.
    """
    out = []
    root = Path(scratch)
    if not root.exists():
        return out
    for path in sorted(root.glob(f"*{_SUFFIX}")):
        out.append(path.name[: -len(_SUFFIX)].replace("%2F", "/").replace("%5C", "\\"))
    return out


class IOFilter(Filter):
    """Executes load/store commands against a scratch directory.

    Input buffers: ``{"op": "load"|"store", "desc": ArrayDesc, "block": int,
    "data": ndarray (store only), "token": any}``.  Replies mirror the
    command with ``data`` filled for loads.  Deploy "as many I/O filters as
    is necessary to efficiently use the parallelism contained in the I/O
    subsystem" — instances are stateless and replicable.
    """

    inputs = ("in",)
    outputs = ("out",)

    def __init__(self, scratch: Path, *, node: int = -1,
                 tracer: Optional[Tracer] = None):
        self.scratch = Path(scratch)
        self.node = node
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)

    def process(self, ctx: FilterContext) -> None:
        tracer = self.tracer
        lane = f"io/{ctx.instance}"
        while True:
            buf = ctx.read("in")
            if buf is END_OF_STREAM:
                return
            cmd = buf.payload
            desc: ArrayDesc = cmd["desc"]
            block: int = cmd["block"]
            start = tracer.now()
            if cmd["op"] == "load":
                data = read_block(self.scratch, desc, block)
                tracer.complete(self.node, lane, "io", "read", start,
                                array=desc.name, block=block)
                ctx.write("out", DataBuffer(
                    {"op": "loaded", "desc": desc, "block": block, "data": data,
                     "token": cmd.get("token")}))
            elif cmd["op"] == "store":
                write_block(self.scratch, desc, block, cmd["data"])
                tracer.complete(self.node, lane, "io", "write", start,
                                array=desc.name, block=block)
                ctx.write("out", DataBuffer(
                    {"op": "stored", "desc": desc, "block": block,
                     "token": cmd.get("token")}))
            elif cmd["op"] == "unlink":
                delete_array_file(self.scratch, desc.name)
                tracer.complete(self.node, lane, "io", "unlink", start,
                                array=desc.name)
                ctx.write("out", DataBuffer(
                    {"op": "unlinked", "desc": desc, "block": -1,
                     "token": cmd.get("token")}))
            else:
                raise StorageError(f"unknown I/O op {cmd['op']!r}")
