"""Scratch-directory block I/O.

Each node's storage filter uses a scratch directory as its out-of-core
backing store: one binary file per array, blocks at fixed offsets.
``IOFilter`` (a DataCutter filter) performs the actual reads/writes so
"the interactions with the file system [are] completely asynchronous" —
the storage filter never blocks on disk.

Failure semantics: every command is retried under a
:class:`~repro.faults.RetryPolicy` (exponential backoff + jitter); a
command whose retries are exhausted is answered with a structured
``io_error`` reply carrying the original ``token`` — the filter itself
never dies on an I/O error, so the storage layer can fail the blocked
tickets fast instead of stranding them.
"""

from __future__ import annotations

import os
import random
import time
from pathlib import Path

import numpy as np


from repro.core.array import ArrayDesc
from repro.core.errors import StorageError
from repro.core.opcache import legacy_copy_plane
from repro.datacutter.buffers import END_OF_STREAM, DataBuffer
from repro.datacutter.filters import Filter, FilterContext
from repro.faults import FaultInjector, InjectedIOError, RetryPolicy
from repro.obs import MetricsRegistry, Tracer
from repro.util.atomicio import atomic_write

_SUFFIX = ".arr"


def escape_name(name: str) -> str:
    """Mangle an array name into a flat, filesystem-safe file stem.

    ``%`` is escaped *first* so that a literal ``a%2Fb`` and ``a/b`` map to
    distinct files and the mapping round-trips (the previous scheme left
    them colliding on disk and un-mangled wrongly at startup scan).
    """
    return (name.replace("%", "%25")
                .replace("/", "%2F")
                .replace("\\", "%5C"))


def unescape_name(safe: str) -> str:
    """Inverse of :func:`escape_name` (``%25`` decoded last)."""
    return (safe.replace("%5C", "\\")
                .replace("%2F", "/")
                .replace("%25", "%"))


def array_path(scratch: Path, name: str) -> Path:
    """File backing ``name`` (array names may contain '/' -> subdirs not
    allowed; they are mangled to keep one flat directory)."""
    return Path(scratch) / f"{escape_name(name)}{_SUFFIX}"


def block_offset(desc: ArrayDesc, block: int) -> int:
    """Byte offset of ``block`` within the array's backing file."""
    desc.block_bounds(block)
    return block * desc.block_elems * desc.itemsize


def write_block(scratch: Path, desc: ArrayDesc, block: int, data: np.ndarray) -> None:
    """Persist one block at its offset (creating/growing the file).

    The write is crash-atomic: :func:`repro.util.atomicio.atomic_write`
    splices the block into a complete fsynced temporary and renames it
    over the array file, so a crash mid-write never leaves a torn block —
    and its per-path lock serializes concurrent first-writes of different
    blocks (the create/truncate race the old ``O_CREAT | O_RDWR`` open
    existed to avoid).
    """
    expected = desc.block_length(block)
    if data.shape != (expected,):
        raise StorageError(
            f"block {block} of {desc.name!r} has length {expected}, "
            f"got shape {data.shape}"
        )
    atomic_write(array_path(scratch, desc.name),
                 np.ascontiguousarray(data, dtype=desc.dtype).tobytes(),
                 offset=block_offset(desc, block))


def read_block(scratch: Path, desc: ArrayDesc, block: int) -> np.ndarray:
    """Load one block from its offset — zero-copy.

    The returned array is a non-writable view over the read buffer (the
    ``bytes`` object owns the memory): no ``frombuffer(...).copy()``
    round-trip.  Blocks entering the store through this path are sealed
    under write-once, so a read-only buffer is exactly the invariant the
    rest of the data plane wants to hand out.
    """
    path = array_path(scratch, desc.name)
    length = desc.block_length(block)
    with open(path, "rb") as fh:
        fh.seek(block_offset(desc, block))
        raw = fh.read(length * desc.itemsize)
    if len(raw) != length * desc.itemsize:
        raise StorageError(
            f"short read of block {block} of {desc.name!r} from {path}"
        )
    data = np.frombuffer(raw, dtype=desc.dtype)
    data.flags.writeable = False  # already immutable; assert the invariant
    return data


def read_block_into(scratch: Path, desc: ArrayDesc, block: int,
                    out: np.ndarray) -> np.ndarray:
    """Load one block from its offset straight into ``out`` (no staging).

    The segment-pool load path: ``out`` is a writable view over a
    shared-memory segment, and ``readinto`` fills it directly from the
    file — the load *is* the segment fill, with no intermediate buffer.
    """
    path = array_path(scratch, desc.name)
    want = desc.block_nbytes(block)
    if out.nbytes != want:
        raise StorageError(
            f"destination for block {block} of {desc.name!r} holds "
            f"{out.nbytes} bytes, want {want}")
    with open(path, "rb") as fh:
        fh.seek(block_offset(desc, block))
        got = fh.readinto(memoryview(out).cast("B"))
    if got != want:
        raise StorageError(
            f"short read of block {block} of {desc.name!r} from {path}")
    return out


def write_array(scratch: Path, desc: ArrayDesc, data: np.ndarray) -> None:
    """Persist a whole array (used to seed initial data)."""
    if data.shape != (desc.length,):
        raise StorageError(
            f"array {desc.name!r} has length {desc.length}, got {data.shape}"
        )
    for b in desc.blocks():
        lo, hi = desc.block_bounds(b)
        write_block(scratch, desc, b, np.asarray(data[lo:hi], dtype=desc.dtype))


def read_array(scratch: Path, desc: ArrayDesc) -> np.ndarray:
    """Load a whole array from its backing file."""
    return np.concatenate([read_block(scratch, desc, b) for b in desc.blocks()])


def delete_array_file(scratch: Path, name: str) -> None:
    path = array_path(scratch, name)
    if path.exists():
        os.unlink(path)


def discover_arrays(scratch: Path) -> list[str]:
    """Array names present in a scratch directory (startup scan).

    Mirrors the paper's storage start-up: "the storage looks for files in
    that directory and records the name of the arrays as well as their
    sizes".  Sizes come from the registered descriptors; we return names.
    """
    out = []
    root = Path(scratch)
    if not root.exists():
        return out
    for path in sorted(root.glob(f"*{_SUFFIX}")):
        out.append(unescape_name(path.name[: -len(_SUFFIX)]))
    return out


class IOFilter(Filter):
    """Executes load/store commands against a scratch directory.

    Input buffers: ``{"op": "load"|"store", "desc": ArrayDesc, "block": int,
    "data": ndarray (store only), "token": any}``.  Replies mirror the
    command with ``data`` filled for loads; a command that keeps failing
    after ``retry.attempts`` tries is answered with ``{"op": "io_error",
    "failed_op": ..., "error": ..., "token": ...}`` instead of killing the
    filter thread.  Deploy "as many I/O filters as is necessary to
    efficiently use the parallelism contained in the I/O subsystem" —
    instances are stateless and replicable.
    """

    inputs = ("in",)
    outputs = ("out",)

    def __init__(self, scratch: Path, *, node: int = -1,
                 tracer: Tracer | None = None,
                 retry: RetryPolicy | None = None,
                 injector: FaultInjector | None = None,
                 metrics: MetricsRegistry | None = None,
                 legacy_copies: bool | None = None,
                 segment_pool=None):
        self.scratch = Path(scratch)
        self.node = node
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.retry = retry if retry is not None else RetryPolicy()
        self.injector = injector
        self.metrics = metrics
        #: legacy (copying) load path for A/B benchmarking.  The engine
        #: threads its construction-time snapshot through here; sampling
        #: the environment is only the fallback for direct construction,
        #: so a mid-run DOOC_DATA_PLANE flip can't de-cohere the plane.
        self.legacy_copies = (legacy_copy_plane() if legacy_copies is None
                              else bool(legacy_copies))
        #: repro.core.shm.SegmentPool when loads must land in shared
        #: memory (process worker plane); None for plain heap loads
        self.segment_pool = segment_pool
        self._jitter_rng = random.Random(node * 2654435761 + 17)

    def _inc(self, name: str, n: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, n)

    def _attempt(self, fn, op: str, desc: ArrayDesc, block: int, lane: str):
        """Run ``fn`` with fault injection and retry/backoff.

        Returns ``(result, None)`` on success or ``(None, error)`` once the
        policy is exhausted (or a permanent fault is injected).
        """
        last: BaseException | None = None
        for attempt in range(self.retry.attempts):
            if attempt > 0:
                self._inc("io_retries")
                self.tracer.instant(self.node, lane, "io", "io_retry",
                                    op=op, array=desc.name, block=block,
                                    attempt=attempt)
                time.sleep(self.retry.delay(attempt, self._jitter_rng))
            if self.injector is not None:
                kind = self.injector.io_fault(op, desc.name, block, attempt)
                if kind == "permanent":
                    last = InjectedIOError(
                        f"injected permanent {op} fault on "
                        f"{desc.name}[{block}] (node {self.node})")
                    break
                if kind == "transient":
                    last = InjectedIOError(
                        f"injected transient {op} fault on "
                        f"{desc.name}[{block}] attempt {attempt}")
                    continue
            try:
                return fn(), None
            except (OSError, StorageError) as exc:
                last = exc
        self._inc("io_failures")
        self.tracer.instant(self.node, lane, "io", "io_error", op=op,
                            array=desc.name, block=block, error=repr(last))
        return None, last

    def process(self, ctx: FilterContext) -> None:
        tracer = self.tracer
        lane = f"io/{ctx.instance}"
        while True:
            buf = ctx.read("in")
            if buf is END_OF_STREAM:
                return
            cmd = buf.payload
            desc: ArrayDesc = cmd["desc"]
            block: int = cmd["block"]
            op: str = cmd["op"]
            token = cmd.get("token")
            start = tracer.now()
            if op == "load":
                segment = cmd.get("segment") or ""
                if segment and self.segment_pool is not None:
                    # Destination segment pre-allocated by the store:
                    # readinto it directly, then hand back the sealed
                    # (frozen) view.  The legacy copying plane never
                    # combines with segments (the engine forbids it) —
                    # a copy here would desynchronize handle and buffer.
                    def _load_into(segment=segment):
                        out = self.segment_pool.ndarray(
                            segment, desc.block_length(block), desc.dtype)
                        read_block_into(self.scratch, desc, block, out)
                        out.flags.writeable = False
                        return out

                    data, error = self._attempt(
                        _load_into, op, desc, block, lane)
                else:
                    data, error = self._attempt(
                        lambda: read_block(self.scratch, desc, block),
                        op, desc, block, lane)
                if error is None:
                    if self.legacy_copies and not segment:
                        self._inc("bytes_copied", int(data.nbytes))
                        data = data.copy()
                    tracer.complete(self.node, lane, "io", "read", start,
                                    array=desc.name, block=block)
                    ctx.write("out", DataBuffer(
                        {"op": "loaded", "desc": desc, "block": block,
                         "data": data, "token": token}))
                    continue
            elif op == "store":
                _, error = self._attempt(
                    lambda: write_block(self.scratch, desc, block, cmd["data"]),
                    op, desc, block, lane)
                if error is None:
                    tracer.complete(self.node, lane, "io", "write", start,
                                    array=desc.name, block=block)
                    ctx.write("out", DataBuffer(
                        {"op": "stored", "desc": desc, "block": block,
                         "token": token}))
                    continue
            elif op == "unlink":
                _, error = self._attempt(
                    lambda: delete_array_file(self.scratch, desc.name),
                    op, desc, block, lane)
                if error is None:
                    tracer.complete(self.node, lane, "io", "unlink", start,
                                    array=desc.name)
                    ctx.write("out", DataBuffer(
                        {"op": "unlinked", "desc": desc, "block": -1,
                         "token": token}))
                    continue
            else:
                raise StorageError(f"unknown I/O op {op!r}")
            ctx.write("out", DataBuffer(
                {"op": "io_error", "failed_op": op, "desc": desc,
                 "block": block, "error": repr(error), "token": token}))
