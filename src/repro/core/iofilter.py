"""Scratch-directory block I/O.

Each node's storage filter uses a scratch directory as its out-of-core
backing store.  Two on-disk layouts coexist, selected by the array's
codec (:mod:`repro.core.codecs`) and self-describing to readers:

* ``raw`` (codec unset): one binary file per array (``<name>.arr``),
  blocks at fixed offsets — the original fixed-stride layout;
* any other codec: a zarr-style chunk directory (``<name>.arrc/``) with
  one container file per block (``<block>.blk``), each a small header
  (magic, codec name, raw/payload sizes, CRC-32) followed by the encoded
  payload.  Variable-length compressed blocks never splice into a shared
  file, so a chunk write is a single whole-file atomic write.

Readers probe the layout on disk rather than trusting the descriptor, and
chunk headers name their own codec — an array seeded raw stays readable
under an engine whose default codec is ``zlib`` and vice versa.

``IOFilter`` (a DataCutter filter) performs the actual reads/writes so
"the interactions with the file system [are] completely asynchronous" —
the storage filter never blocks on disk.

Failure semantics: every command is retried under a
:class:`~repro.faults.RetryPolicy` (exponential backoff + jitter); a
command whose retries are exhausted is answered with a structured
``io_error`` reply carrying the original ``token`` — the filter itself
never dies on an I/O error, so the storage layer can fail the blocked
tickets fast instead of stranding them.  A
:class:`~repro.core.errors.BlockMissingError` (block never written: file
absent, chunk absent, or offset past EOF) is **not** retried — the bytes
were never there, so backoff cannot help; the named type lets recovery
tell a reconstructable miss from real corruption.
"""

from __future__ import annotations

import os
import random
import shutil
import struct
import time
from pathlib import Path

import numpy as np


from repro.core.array import ArrayDesc
from repro.core.codecs import checksum, get_codec
from repro.core.errors import BlockMissingError, StorageError
from repro.core.opcache import legacy_copy_plane
from repro.datacutter.buffers import END_OF_STREAM, DataBuffer
from repro.datacutter.filters import Filter, FilterContext
from repro.faults import FaultInjector, InjectedIOError, RetryPolicy
from repro.obs import MetricsRegistry, Tracer
from repro.util.atomicio import atomic_write

_SUFFIX = ".arr"
_CHUNK_SUFFIX = ".arrc"

#: chunk container framing: magic, codec name (NUL-padded ASCII),
#: raw byte count, encoded payload byte count, CRC-32 of the payload
CHUNK_MAGIC = b"DOOCCHK1"
_CHUNK_HEADER = struct.Struct("<8s16sQQI")
CHUNK_HEADER_NBYTES = _CHUNK_HEADER.size


def escape_name(name: str) -> str:
    """Mangle an array name into a flat, filesystem-safe file stem.

    ``%`` is escaped *first* so that a literal ``a%2Fb`` and ``a/b`` map to
    distinct files and the mapping round-trips (the previous scheme left
    them colliding on disk and un-mangled wrongly at startup scan).
    """
    return (name.replace("%", "%25")
                .replace("/", "%2F")
                .replace("\\", "%5C"))


def unescape_name(safe: str) -> str:
    """Inverse of :func:`escape_name` (``%25`` decoded last)."""
    return (safe.replace("%5C", "\\")
                .replace("%2F", "/")
                .replace("%25", "%"))


def array_path(scratch: Path, name: str) -> Path:
    """File backing ``name`` under the raw layout (array names may contain
    '/' -> subdirs not allowed; they are mangled to keep one flat
    directory)."""
    return Path(scratch) / f"{escape_name(name)}{_SUFFIX}"


def chunk_dir(scratch: Path, name: str) -> Path:
    """Chunk directory backing ``name`` under a compressed layout."""
    return Path(scratch) / f"{escape_name(name)}{_CHUNK_SUFFIX}"


def chunk_path(scratch: Path, name: str, block: int) -> Path:
    return chunk_dir(scratch, name) / f"{block:08d}.blk"


def desc_codec(desc: ArrayDesc) -> str:
    """The codec this descriptor *writes* with (``None`` -> raw)."""
    return desc.codec or "raw"


def array_exists(scratch: Path, name: str) -> bool:
    """Is there any on-disk backing for ``name`` (either layout)?"""
    return (array_path(scratch, name).exists()
            or chunk_dir(scratch, name).is_dir())


def block_offset(desc: ArrayDesc, block: int) -> int:
    """Byte offset of ``block`` within the array's raw backing file."""
    desc.block_bounds(block)
    return block * desc.block_elems * desc.itemsize


def _inc(metrics, name: str, n: int) -> None:
    if metrics is not None and n:
        metrics.inc(name, int(n))


def pack_chunk(codec_name: str, raw, itemsize: int) -> bytes:
    """Frame one block's bytes as a self-describing chunk container."""
    codec = get_codec(codec_name)
    payload = codec.encode(raw, itemsize)
    name_bytes = codec_name.encode("ascii")
    if len(name_bytes) > 16:
        raise StorageError(f"codec name {codec_name!r} exceeds 16 bytes")
    header = _CHUNK_HEADER.pack(
        CHUNK_MAGIC, name_bytes.ljust(16, b"\0"),
        len(memoryview(raw).cast("B")), len(payload), checksum(payload))
    return header + payload


def _parse_chunk(blob: bytes, what: str):
    """Validate a chunk container's framing: ``(codec_name, raw_nbytes,
    payload)``.

    Every failure mode of a torn, truncated, or bit-flipped chunk file —
    short header, bad magic, payload shorter than the header promises,
    CRC mismatch — surfaces as a :class:`StorageError` naming ``what``.
    """
    if len(blob) < CHUNK_HEADER_NBYTES:
        raise StorageError(f"truncated chunk header for {what}")
    magic, codec_name, raw_nbytes, payload_nbytes, crc = \
        _CHUNK_HEADER.unpack_from(blob, 0)
    if magic != CHUNK_MAGIC:
        raise StorageError(f"bad chunk magic {magic!r} for {what}")
    payload = memoryview(blob)[CHUNK_HEADER_NBYTES:]
    if len(payload) != payload_nbytes:
        raise StorageError(
            f"chunk for {what} truncated: header promises {payload_nbytes} "
            f"payload bytes, file holds {len(payload)}")
    if checksum(payload) != crc:
        raise StorageError(f"chunk checksum mismatch for {what} (torn write "
                           "or bit rot)")
    return codec_name.rstrip(b"\0").decode("ascii"), raw_nbytes, payload


def unpack_chunk_into(blob: bytes, out: memoryview, itemsize: int,
                      what: str) -> None:
    """Verify and decode a chunk container straight into ``out``.

    On top of :func:`_parse_chunk`'s framing checks, a raw-size mismatch
    against ``out``, an unregistered codec, or a payload that will not
    decode to exactly ``len(out)`` bytes all surface as
    :class:`StorageError`; a corrupt chunk can never install garbage.
    """
    codec_name, raw_nbytes, payload = _parse_chunk(blob, what)
    if raw_nbytes != len(out):
        raise StorageError(
            f"chunk for {what} holds {raw_nbytes} raw bytes, want {len(out)}")
    get_codec(codec_name).decode_into(payload, out, itemsize)


def unpack_chunk(blob: bytes, itemsize: int, what: str) -> bytes:
    """Verify and decode a chunk container; size comes from its header."""
    codec_name, raw_nbytes, payload = _parse_chunk(blob, what)
    return get_codec(codec_name).decode(payload, raw_nbytes, itemsize)


def write_block(scratch: Path, desc: ArrayDesc, block: int, data: np.ndarray,
                *, metrics: MetricsRegistry | None = None) -> None:
    """Persist one block (creating/growing the backing as needed).

    Raw layout: :func:`repro.util.atomicio.atomic_write` splices the block
    into a complete fsynced temporary and renames it over the array file,
    so a crash mid-write never leaves a torn block — and its per-path lock
    serializes concurrent first-writes of different blocks.  Compressed
    layouts write one self-contained chunk file per block, so the same
    atomic-rename guarantee costs one small file, not a whole-array
    rewrite.
    """
    expected = desc.block_length(block)
    if data.shape != (expected,):
        raise StorageError(
            f"block {block} of {desc.name!r} has length {expected}, "
            f"got shape {data.shape}"
        )
    raw = np.ascontiguousarray(data, dtype=desc.dtype).tobytes()
    codec_name = desc_codec(desc)
    if codec_name == "raw":
        atomic_write(array_path(scratch, desc.name), raw,
                     offset=block_offset(desc, block))
        _inc(metrics, "disk_bytes_written", len(raw))
    else:
        blob = pack_chunk(codec_name, raw, desc.itemsize)
        atomic_write(chunk_path(scratch, desc.name, block), blob)
        _inc(metrics, "disk_bytes_written", len(blob))
    _inc(metrics, "logical_bytes_written", len(raw))


def _read_raw_block(path: Path, desc: ArrayDesc, block: int) -> bytes:
    """The raw layout's byte read, distinguishing missing from torn."""
    nbytes = desc.block_nbytes(block)
    offset = block_offset(desc, block)
    try:
        with open(path, "rb") as fh:
            size = os.fstat(fh.fileno()).st_size
            if offset >= size:
                raise BlockMissingError(
                    f"block {block} of {desc.name!r} was never written: "
                    f"offset {offset} past end of {path} ({size} bytes)")
            fh.seek(offset)
            raw = fh.read(nbytes)
    except FileNotFoundError:
        raise BlockMissingError(
            f"block {block} of {desc.name!r} was never written: "
            f"no backing file {path}") from None
    if len(raw) != nbytes:
        raise StorageError(
            f"short read of block {block} of {desc.name!r} from {path}: "
            f"got {len(raw)} of {nbytes} bytes (torn or truncated file)")
    return raw


def _read_chunk_blob(scratch: Path, desc: ArrayDesc, block: int) -> bytes:
    path = chunk_path(scratch, desc.name, block)
    try:
        return path.read_bytes()
    except FileNotFoundError:
        raise BlockMissingError(
            f"block {block} of {desc.name!r} was never written: "
            f"no chunk file {path}") from None


def _layout(scratch: Path, desc: ArrayDesc) -> str:
    """Which layout backs this array on disk right now?

    Readers self-describe from the filesystem: the chunk directory wins
    when present (a compressed writer created it), the raw file
    otherwise.  Neither existing is a missing *array* — reported as a
    missing block so sparse/never-written reads stay reconstructable.
    """
    if chunk_dir(scratch, desc.name).is_dir():
        return "chunk"
    return "raw"


def read_block(scratch: Path, desc: ArrayDesc, block: int,
               *, metrics: MetricsRegistry | None = None) -> np.ndarray:
    """Load one block — zero-copy for raw, decode-once for compressed.

    The returned array is a non-writable view over the read (or decoded)
    buffer: no ``frombuffer(...).copy()`` round-trip.  Blocks entering
    the store through this path are sealed under write-once, so a
    read-only buffer is exactly the invariant the rest of the data plane
    wants to hand out.
    """
    if _layout(scratch, desc) == "chunk":
        blob = _read_chunk_blob(scratch, desc, block)
        raw = bytearray(desc.block_nbytes(block))
        unpack_chunk_into(blob, memoryview(raw), desc.itemsize,
                          f"block {block} of {desc.name!r}")
        _inc(metrics, "disk_bytes_read", len(blob))
    else:
        raw = _read_raw_block(array_path(scratch, desc.name), desc, block)
        _inc(metrics, "disk_bytes_read", len(raw))
    _inc(metrics, "logical_bytes_read", desc.block_nbytes(block))
    data = np.frombuffer(raw, dtype=desc.dtype)
    data.flags.writeable = False  # already immutable; assert the invariant
    return data


def read_block_into(scratch: Path, desc: ArrayDesc, block: int,
                    out: np.ndarray,
                    *, metrics: MetricsRegistry | None = None) -> np.ndarray:
    """Load one block straight into ``out`` (no staging buffer).

    The segment-pool load path: ``out`` is a writable view over a
    shared-memory segment.  Raw blocks ``readinto`` it directly from the
    file; compressed blocks decode straight into it — either way the
    load *is* the segment fill, with no intermediate block buffer.
    """
    want = desc.block_nbytes(block)
    if out.nbytes != want:
        raise StorageError(
            f"destination for block {block} of {desc.name!r} holds "
            f"{out.nbytes} bytes, want {want}")
    dest = memoryview(out).cast("B")
    if _layout(scratch, desc) == "chunk":
        blob = _read_chunk_blob(scratch, desc, block)
        unpack_chunk_into(blob, dest, desc.itemsize,
                          f"block {block} of {desc.name!r}")
        _inc(metrics, "disk_bytes_read", len(blob))
        _inc(metrics, "logical_bytes_read", want)
        return out
    path = array_path(scratch, desc.name)
    offset = block_offset(desc, block)
    try:
        with open(path, "rb") as fh:
            size = os.fstat(fh.fileno()).st_size
            if offset >= size:
                raise BlockMissingError(
                    f"block {block} of {desc.name!r} was never written: "
                    f"offset {offset} past end of {path} ({size} bytes)")
            fh.seek(offset)
            got = fh.readinto(dest)
    except FileNotFoundError:
        raise BlockMissingError(
            f"block {block} of {desc.name!r} was never written: "
            f"no backing file {path}") from None
    if got != want:
        raise StorageError(
            f"short read of block {block} of {desc.name!r} from {path}: "
            f"got {got} of {want} bytes (torn or truncated file)")
    _inc(metrics, "disk_bytes_read", want)
    _inc(metrics, "logical_bytes_read", want)
    return out


def write_array(scratch: Path, desc: ArrayDesc, data: np.ndarray,
                *, metrics: MetricsRegistry | None = None) -> None:
    """Persist a whole array (used to seed initial data).

    The raw layout seeds with a **single** atomic write of the complete
    file.  (It used to call :func:`write_block` per block, and every such
    call re-ran ``atomic_write``'s read-splice-fsync-rename of the whole
    array file: O(blocks x file size) rewrite churn — one rename and one
    fsync per *block* — on every seed.)  Compressed layouts write one
    chunk file per block; each is small and independently atomic.
    """
    if data.shape != (desc.length,):
        raise StorageError(
            f"array {desc.name!r} has length {desc.length}, got {data.shape}"
        )
    if desc_codec(desc) == "raw":
        raw = np.ascontiguousarray(data, dtype=desc.dtype).tobytes()
        atomic_write(array_path(scratch, desc.name), raw)
        _inc(metrics, "disk_bytes_written", len(raw))
        return
    for b in desc.blocks():
        lo, hi = desc.block_bounds(b)
        write_block(scratch, desc, b,
                    np.asarray(data[lo:hi], dtype=desc.dtype),
                    metrics=metrics)


def read_array(scratch: Path, desc: ArrayDesc,
               *, metrics: MetricsRegistry | None = None) -> np.ndarray:
    """Load a whole array from its backing file(s)."""
    return np.concatenate([
        read_block(scratch, desc, b, metrics=metrics) for b in desc.blocks()
    ])


def delete_array_file(scratch: Path, name: str) -> None:
    path = array_path(scratch, name)
    if path.exists():
        os.unlink(path)
    cdir = chunk_dir(scratch, name)
    if cdir.is_dir():
        shutil.rmtree(cdir, ignore_errors=True)


def copy_array_files(src: Path, dst: Path, name: str) -> None:
    """Re-seed an array's backing bytes into another scratch directory.

    Used by node-loss recovery: whichever layout backs the array at the
    source is reproduced at the destination, each file crash-atomically.
    """
    copied = False
    spath = array_path(src, name)
    if spath.exists():
        atomic_write(array_path(dst, name), spath.read_bytes())
        copied = True
    sdir = chunk_dir(src, name)
    if sdir.is_dir():
        for chunk in sorted(sdir.iterdir()):
            atomic_write(chunk_dir(dst, name) / chunk.name,
                         chunk.read_bytes())
        copied = True
    if not copied:
        raise BlockMissingError(
            f"array {name!r} has no backing files under {src}")


def discover_arrays(scratch: Path) -> list[str]:
    """Array names present in a scratch directory (startup scan).

    Mirrors the paper's storage start-up: "the storage looks for files in
    that directory and records the name of the arrays as well as their
    sizes".  Both layouts are discovered — raw ``.arr`` files and
    compressed ``.arrc`` chunk directories.
    """
    root = Path(scratch)
    if not root.exists():
        return []
    names = set()
    for path in root.glob(f"*{_SUFFIX}"):
        if path.is_file():
            names.add(unescape_name(path.name[: -len(_SUFFIX)]))
    for path in root.glob(f"*{_CHUNK_SUFFIX}"):
        if path.is_dir():
            names.add(unescape_name(path.name[: -len(_CHUNK_SUFFIX)]))
    return sorted(names)


class IOFilter(Filter):
    """Executes load/store commands against a scratch directory.

    Input buffers: ``{"op": "load"|"store", "desc": ArrayDesc, "block": int,
    "data": ndarray (store only), "token": any}``.  Replies mirror the
    command with ``data`` filled for loads; a command that keeps failing
    after ``retry.attempts`` tries is answered with ``{"op": "io_error",
    "failed_op": ..., "error": ..., "token": ...}`` instead of killing the
    filter thread.  Deploy "as many I/O filters as is necessary to
    efficiently use the parallelism contained in the I/O subsystem" —
    instances are stateless and replicable.
    """

    inputs = ("in",)
    outputs = ("out",)

    def __init__(self, scratch: Path, *, node: int = -1,
                 tracer: Tracer | None = None,
                 retry: RetryPolicy | None = None,
                 injector: FaultInjector | None = None,
                 metrics: MetricsRegistry | None = None,
                 legacy_copies: bool | None = None,
                 segment_pool=None):
        self.scratch = Path(scratch)
        self.node = node
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.retry = retry if retry is not None else RetryPolicy()
        self.injector = injector
        self.metrics = metrics
        #: legacy (copying) load path for A/B benchmarking.  The engine
        #: threads its construction-time snapshot through here; sampling
        #: the environment is only the fallback for direct construction,
        #: so a mid-run DOOC_DATA_PLANE flip can't de-cohere the plane.
        self.legacy_copies = (legacy_copy_plane() if legacy_copies is None
                              else bool(legacy_copies))
        #: repro.core.shm.SegmentPool when loads must land in shared
        #: memory (process worker plane); None for plain heap loads
        self.segment_pool = segment_pool
        self._jitter_rng = random.Random(node * 2654435761 + 17)

    def _inc(self, name: str, n: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, n)

    def _attempt(self, fn, op: str, desc: ArrayDesc, block: int, lane: str):
        """Run ``fn`` with fault injection and retry/backoff.

        Returns ``(result, None)`` on success or ``(None, error)`` once the
        policy is exhausted (or a permanent fault is injected).  A
        :class:`BlockMissingError` short-circuits the retry loop: the
        block was never on disk, so no amount of backoff will produce it
        — the named error reaches the storage layer on the first attempt.
        """
        last: BaseException | None = None
        for attempt in range(self.retry.attempts):
            if attempt > 0:
                self._inc("io_retries")
                self.tracer.instant(self.node, lane, "io", "io_retry",
                                    op=op, array=desc.name, block=block,
                                    attempt=attempt)
                time.sleep(self.retry.delay(attempt, self._jitter_rng))
            if self.injector is not None:
                kind = self.injector.io_fault(op, desc.name, block, attempt)
                if kind == "permanent":
                    last = InjectedIOError(
                        f"injected permanent {op} fault on "
                        f"{desc.name}[{block}] (node {self.node})")
                    break
                if kind == "transient":
                    last = InjectedIOError(
                        f"injected transient {op} fault on "
                        f"{desc.name}[{block}] attempt {attempt}")
                    continue
            try:
                return fn(), None
            except BlockMissingError as exc:
                last = exc
                break  # retries cannot conjure never-written bytes
            except (OSError, StorageError) as exc:
                last = exc
        self._inc("io_failures")
        self.tracer.instant(self.node, lane, "io", "io_error", op=op,
                            array=desc.name, block=block, error=repr(last))
        return None, last

    def process(self, ctx: FilterContext) -> None:
        tracer = self.tracer
        lane = f"io/{ctx.instance}"
        while True:
            buf = ctx.read("in")
            if buf is END_OF_STREAM:
                return
            cmd = buf.payload
            desc: ArrayDesc = cmd["desc"]
            block: int = cmd["block"]
            op: str = cmd["op"]
            token = cmd.get("token")
            start = tracer.now()
            if op == "load":
                segment = cmd.get("segment") or ""
                if segment and self.segment_pool is not None:
                    # Destination segment pre-allocated by the store:
                    # readinto (or decode into) it directly, then hand
                    # back the sealed (frozen) view.  The legacy copying
                    # plane never combines with segments (the engine
                    # forbids it) — a copy here would desynchronize
                    # handle and buffer.
                    def _load_into(segment=segment):
                        out = self.segment_pool.ndarray(
                            segment, desc.block_length(block), desc.dtype)
                        read_block_into(self.scratch, desc, block, out,
                                        metrics=self.metrics)
                        out.flags.writeable = False
                        return out

                    data, error = self._attempt(
                        _load_into, op, desc, block, lane)
                else:
                    data, error = self._attempt(
                        lambda: read_block(self.scratch, desc, block,
                                           metrics=self.metrics),
                        op, desc, block, lane)
                if error is None:
                    if self.legacy_copies and not segment:
                        self._inc("bytes_copied", int(data.nbytes))
                        data = data.copy()
                    tracer.complete(self.node, lane, "io", "read", start,
                                    array=desc.name, block=block)
                    ctx.write("out", DataBuffer(
                        {"op": "loaded", "desc": desc, "block": block,
                         "data": data, "token": token}))
                    continue
            elif op == "store":
                _, error = self._attempt(
                    lambda: write_block(self.scratch, desc, block,
                                        cmd["data"], metrics=self.metrics),
                    op, desc, block, lane)
                if error is None:
                    tracer.complete(self.node, lane, "io", "write", start,
                                    array=desc.name, block=block)
                    ctx.write("out", DataBuffer(
                        {"op": "stored", "desc": desc, "block": block,
                         "token": token}))
                    continue
            elif op == "unlink":
                _, error = self._attempt(
                    lambda: delete_array_file(self.scratch, desc.name),
                    op, desc, block, lane)
                if error is None:
                    tracer.complete(self.node, lane, "io", "unlink", start,
                                    array=desc.name)
                    ctx.write("out", DataBuffer(
                        {"op": "unlinked", "desc": desc, "block": -1,
                         "token": token}))
                    continue
            else:
                raise StorageError(f"unknown I/O op {op!r}")
            ctx.write("out", DataBuffer(
                {"op": "io_error", "failed_op": op, "desc": desc,
                 "block": block, "error": repr(error), "token": token}))
