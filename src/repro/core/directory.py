"""Partitioned global data map with random-peer lookup.

The "global mapping (of which data is stored where) is not replicated on
each node but instead partitioned"; when a node needs a block it does not
host, it "asks the storage filter on a randomly selected compute node",
and it "keeps track of which interval it has requested from other
computing nodes" to avoid duplicate traffic.

We implement the walk as a sequence of *probes*: the requester asks a
random peer; a peer that hosts the array answers, otherwise it reports a
miss and the requester probes another peer it has not asked yet.  One
deliberate deviation from the paper (documented in DESIGN.md): probes
exclude already-visited peers, guaranteeing termination in at most
``n_nodes - 1`` probes even for adversarial RNG draws.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import DoocError


class LookupFailed(DoocError):
    """Every peer was probed and none hosts the requested array."""


@dataclass
class _Walk:
    key: tuple[str, int]
    visited: set[int] = field(default_factory=set)
    probes: int = 0


class DirectoryClient:
    """Per-node lookup engine.

    The driver supplies the probe transport: call :meth:`next_probe` to get
    the peer to ask, then report :meth:`probe_hit` / :meth:`probe_miss`.
    Multiple concurrent walks are tracked by (array, block) key, and
    duplicate lookups for a key already in flight are coalesced.
    """

    def __init__(self, node: int, n_nodes: int, rng: np.random.Generator):
        if not 0 <= node < n_nodes:
            raise DoocError(f"node {node} outside cluster of {n_nodes}")
        self.node = node
        self.n_nodes = n_nodes
        self.rng = rng
        self._walks: dict[tuple[str, int], _Walk] = {}
        self.resolved: dict[tuple[str, int], int] = {}  # cache: key -> owner
        self.evicted: set[int] = set()  # dead peers: never probed again
        self.total_probes = 0

    def start_lookup(self, array: str, block: int) -> int | None:
        """Begin (or join) a lookup; returns the cached owner if known.

        Returns None when a walk is (now) in flight; drive it with
        :meth:`next_probe`.
        """
        key = (array, block)
        if key in self.resolved:
            return self.resolved[key]
        if key not in self._walks:
            self._walks[key] = _Walk(key=key, visited={self.node})
        return None

    def in_flight(self, array: str, block: int) -> bool:
        return (array, block) in self._walks

    def next_probe(self, array: str, block: int) -> int:
        """The peer to ask next for this key."""
        walk = self._walks.get((array, block))
        if walk is None:
            raise DoocError(f"no lookup in flight for {array}[{block}]")
        candidates = [n for n in range(self.n_nodes)
                      if n not in walk.visited and n not in self.evicted]
        if not candidates:
            del self._walks[(array, block)]
            raise LookupFailed(
                f"no node hosts {array}[{block}] (probed all "
                f"{self.n_nodes - 1 - len(self.evicted)} live peers)"
            )
        peer = int(self.rng.choice(candidates))
        walk.visited.add(peer)
        walk.probes += 1
        self.total_probes += 1
        return peer

    def probe_hit(self, array: str, block: int, owner: int) -> None:
        """A peer confirmed it hosts the array; cache and close the walk."""
        key = (array, block)
        if key not in self._walks:
            raise DoocError(f"hit for {array}[{block}] without a walk")
        self.resolved[key] = owner
        del self._walks[key]

    def probe_miss(self, array: str, block: int) -> None:
        """The probed peer does not host the array; the walk continues."""
        if (array, block) not in self._walks:
            raise DoocError(f"miss for {array}[{block}] without a walk")

    def invalidate(self, array: str) -> None:
        """Forget cached owners of an array (it was deleted)."""
        for key in [k for k in self.resolved if k[0] == array]:
            del self.resolved[key]

    def evict(self, node: int) -> None:
        """Permanently exclude a dead peer from probing (idempotent).

        Cached resolutions pointing at the corpse are dropped (the array
        is being re-homed to a survivor), and in-flight walks treat the
        peer as already visited, so they terminate in at most
        ``n_live - 1`` probes.
        """
        if node == self.node:
            raise DoocError(f"node {node} cannot evict itself")
        if not 0 <= node < self.n_nodes:
            raise DoocError(f"node {node} outside cluster of {self.n_nodes}")
        self.evicted.add(node)
        for key in [k for k, owner in self.resolved.items() if owner == node]:
            del self.resolved[key]
        for walk in self._walks.values():
            walk.visited.add(node)
