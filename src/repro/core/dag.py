"""Dependency DAG derived from task input/output declarations.

"The input and output data information is used to derive a DAG of the
tasks": task B depends on task A iff B reads an array A writes.  Arrays
that no task produces must pre-exist in the storage layer (*initial*
arrays).  The DAG tracks completion and maintains the ready frontier.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.core.errors import SchedulingError
from repro.core.task import TaskSpec


class TaskDAG:
    """Tasks + derived dependencies + execution bookkeeping."""

    def __init__(self, tasks: Iterable[TaskSpec], initial_arrays: Iterable[str]):
        self.tasks: dict[str, TaskSpec] = {}
        self.producer: dict[str, str] = {}  # array -> producing task
        self.initial_arrays = set(initial_arrays)
        for t in tasks:
            if t.name in self.tasks:
                raise SchedulingError(f"duplicate task name {t.name!r}")
            self.tasks[t.name] = t
            for array in t.outputs:
                if array in self.producer:
                    raise SchedulingError(
                        f"array {array!r} written by both {self.producer[array]!r} "
                        f"and {t.name!r}; arrays are immutable"
                    )
                if array in self.initial_arrays:
                    raise SchedulingError(
                        f"array {array!r} is initial but task {t.name!r} writes it"
                    )
                self.producer[array] = t.name

        self.preds: dict[str, set[str]] = {name: set() for name in self.tasks}
        self.succs: dict[str, set[str]] = {name: set() for name in self.tasks}
        for t in self.tasks.values():
            for array in t.inputs:
                if array in self.producer:
                    p = self.producer[array]
                    self.preds[t.name].add(p)
                    self.succs[p].add(t.name)
                elif array not in self.initial_arrays:
                    raise SchedulingError(
                        f"task {t.name!r} reads array {array!r} which nothing "
                        "produces and which is not declared initial"
                    )
        self._check_acyclic()
        self.completed: set[str] = set()
        self._remaining_preds: dict[str, int] = {
            name: len(p) for name, p in self.preds.items()
        }

    def _check_acyclic(self) -> None:
        indeg = {n: len(p) for n, p in self.preds.items()}
        queue = deque(n for n, d in indeg.items() if d == 0)
        seen = 0
        while queue:
            n = queue.popleft()
            seen += 1
            for s in self.succs[n]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    queue.append(s)
        if seen != len(self.tasks):
            # Function-level import: repro.analysis reaches back into
            # repro.core, which is mid-import when this module loads.
            from repro.analysis.dagcheck import find_task_cycle

            cycle = find_task_cycle(self.tasks, self.producer)
            if cycle is not None:
                raise SchedulingError(
                    "task graph has a dependency cycle: " + " -> ".join(cycle)
                )
            cyclic = sorted(n for n, d in indeg.items() if d > 0)
            raise SchedulingError(f"task graph has a cycle involving {cyclic[:5]}")

    # -- execution bookkeeping -------------------------------------------------

    def ready_tasks(self) -> list[str]:
        """Tasks whose predecessors have all completed (and not yet done)."""
        return [
            name
            for name, remaining in self._remaining_preds.items()
            if remaining == 0 and name not in self.completed
        ]

    def mark_complete(self, name: str) -> list[str]:
        """Record completion; returns tasks that just became ready."""
        if name not in self.tasks:
            raise SchedulingError(f"unknown task {name!r}")
        if name in self.completed:
            raise SchedulingError(f"task {name!r} completed twice")
        if self._remaining_preds[name] != 0:
            raise SchedulingError(f"task {name!r} completed before its inputs")
        self.completed.add(name)
        newly_ready = []
        for s in self.succs[name]:
            self._remaining_preds[s] -= 1
            if self._remaining_preds[s] == 0:
                newly_ready.append(s)
        return newly_ready

    @property
    def done(self) -> bool:
        return len(self.completed) == len(self.tasks)

    def topological_order(self) -> list[str]:
        """A deterministic topological order (Kahn, name-sorted ties)."""
        indeg = {n: len(p) for n, p in self.preds.items()}
        frontier = sorted(n for n, d in indeg.items() if d == 0)
        order: list[str] = []
        while frontier:
            n = frontier.pop(0)
            order.append(n)
            added = False
            for s in sorted(self.succs[n]):
                indeg[s] -= 1
                if indeg[s] == 0:
                    frontier.append(s)
                    added = True
            if added:
                frontier.sort()
        return order

    def consumers_of(self, array: str) -> list[str]:
        return sorted(t.name for t in self.tasks.values() if array in t.inputs)

    def critical_path_length(self) -> int:
        """Longest chain of tasks (unit weights)."""
        depth: dict[str, int] = {}
        for name in self.topological_order():
            depth[name] = 1 + max((depth[p] for p in self.preds[name]), default=0)
        return max(depth.values(), default=0)
