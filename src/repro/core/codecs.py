"""Per-block compression codecs and the ``DOOC_CODEC`` knob.

The paper's thesis is that the dominant cost of an out-of-core solver is
moving sub-matrices between the filesystem and memory — so the cheapest
byte is the one never read.  This module shrinks the bytes: every block
that crosses the spill/load boundary can be encoded by a named codec, and
the on-disk chunk container (:mod:`repro.core.iofilter`) records which one,
so readers self-describe.

Design (zarr-style chunk+codec layering):

* a :class:`Codec` turns a block's raw bytes into an encoded payload and
  back; ``decode_into`` lands the decoded bytes **directly in a
  caller-provided buffer** (a pooled shared-memory segment on the process
  worker plane), so decompression never adds a staging copy to the data
  plane — the hot loop's ``bytes_copied == 0`` invariant survives;
* codecs are looked up by name in a registry (:func:`register_codec` /
  :func:`get_codec`), so block headers and checkpoint manifests can name
  their codec and new codecs plug in without touching the I/O layer;
* :func:`resolve_codec` normalizes the engine-level choice: an explicit
  argument beats the ``DOOC_CODEC`` environment variable, which is
  sampled **once** (at ``DOoCEngine`` construction, exactly like
  ``DOOC_DATA_PLANE``) — a mid-run flip cannot de-cohere readers from
  writers.

This is the only module allowed to touch :mod:`zlib`/:mod:`lzma`/:mod:`bz2`
directly — lint rule ``DOOC007`` (:mod:`repro.analysis.rules`) flags any
other call site, so compression policy stays in one place.
"""

from __future__ import annotations

import os
import zlib

import numpy as np

from repro.core.errors import CodecError, UnknownCodecError

__all__ = [
    "CODEC_ENV",
    "Codec",
    "RawCodec",
    "ZlibCodec",
    "ShuffleZlibCodec",
    "register_codec",
    "get_codec",
    "available_codecs",
    "resolve_codec",
    "checksum",
]

#: environment switch naming the engine-default codec (snapshot semantics)
CODEC_ENV = "DOOC_CODEC"


def checksum(data) -> int:
    """CRC-32 of ``data`` (the chunk container's torn-payload detector)."""
    return zlib.crc32(memoryview(data)) & 0xFFFFFFFF


class Codec:
    """One reversible bytes→bytes transform, named for self-description.

    ``itemsize`` is the element width of the block being coded; codecs
    that exploit numeric layout (byte shuffling) need it, byte-oriented
    codecs ignore it.  Encoding is lossless: ``decode(encode(b)) == b``
    for every input, which is what keeps solver results bit-identical
    across codec choices.
    """

    name: str = ""

    def encode(self, data, itemsize: int = 1) -> bytes:
        raise NotImplementedError

    def decode_into(self, payload, out: memoryview, itemsize: int = 1) -> None:
        """Decode ``payload`` into the writable buffer ``out`` (exact fit).

        ``out`` is typically a view over a pooled shared-memory segment:
        the decode *is* the segment fill.  Raises :class:`CodecError`
        when the payload does not decode to exactly ``len(out)`` bytes —
        a truncated or corrupt payload must surface as a clean error,
        never as a garbage block.
        """
        raise NotImplementedError

    def decode(self, payload, raw_nbytes: int, itemsize: int = 1) -> bytes:
        """Decode to a fresh immutable buffer of ``raw_nbytes`` bytes."""
        out = bytearray(raw_nbytes)
        self.decode_into(payload, memoryview(out), itemsize)
        return bytes(out)


class RawCodec(Codec):
    """Identity codec: the fixed-offset ``.arr`` layout, no container."""

    name = "raw"

    def encode(self, data, itemsize: int = 1) -> bytes:
        return bytes(data)

    def decode_into(self, payload, out: memoryview, itemsize: int = 1) -> None:
        payload = memoryview(payload).cast("B")
        if len(payload) != len(out):
            raise CodecError(
                f"raw payload holds {len(payload)} bytes, want {len(out)}")
        out[:] = payload


class ZlibCodec(Codec):
    """DEFLATE at a configurable level (the zarr default pipeline)."""

    name = "zlib"

    def __init__(self, level: int = 6):
        if not 0 <= level <= 9:
            raise CodecError(f"zlib level {level} outside 0..9")
        self.level = level

    def encode(self, data, itemsize: int = 1) -> bytes:
        return zlib.compress(bytes(memoryview(data).cast("B")), self.level)

    def decode_into(self, payload, out: memoryview, itemsize: int = 1) -> None:
        out = memoryview(out).cast("B")
        d = zlib.decompressobj()
        try:
            raw = d.decompress(bytes(memoryview(payload).cast("B")),
                               len(out) + 1)
        except zlib.error as exc:
            raise CodecError(f"zlib payload does not decode: {exc}") from exc
        if len(raw) != len(out) or not d.eof:
            raise CodecError(
                f"zlib payload decoded to {len(raw)} bytes, want {len(out)} "
                "(truncated or corrupt)")
        out[:] = raw


class ShuffleZlibCodec(Codec):
    """Byte-shuffle + fast DEFLATE (the lz4/blosc-style pipeline).

    Transposing the block to ``itemsize`` byte planes groups the
    slowly-varying high-order bytes of floating-point data together,
    which DEFLATE then squeezes far better than the interleaved layout —
    at level 1 the shuffle+deflate combination approaches zlib-6 ratios
    at a fraction of the CPU cost on smooth numeric data.
    """

    name = "shuffle-zlib"

    def __init__(self, level: int = 1):
        if not 0 <= level <= 9:
            raise CodecError(f"zlib level {level} outside 0..9")
        self.level = level

    @staticmethod
    def _shuffle(data: memoryview, itemsize: int) -> bytes:
        arr = np.frombuffer(data, dtype=np.uint8)
        return arr.reshape(-1, itemsize).T.tobytes()

    @staticmethod
    def _unshuffle_into(raw: bytes, out: memoryview, itemsize: int) -> None:
        planes = np.frombuffer(raw, dtype=np.uint8).reshape(itemsize, -1)
        # Scatter straight into the caller's buffer.  np.asarray (not
        # np.frombuffer) is deliberate: frombuffer views are sealed by
        # data-plane convention (DOOC010), while this is the one place a
        # decode writes into caller-owned writable scratch.
        np.asarray(out)[:] = planes.T.reshape(-1)

    def encode(self, data, itemsize: int = 1) -> bytes:
        data = memoryview(data).cast("B")
        if itemsize < 1 or len(data) % itemsize:
            raise CodecError(
                f"cannot shuffle {len(data)} bytes by itemsize {itemsize}")
        return zlib.compress(self._shuffle(data, itemsize), self.level)

    def decode_into(self, payload, out: memoryview, itemsize: int = 1) -> None:
        out = memoryview(out).cast("B")
        if itemsize < 1 or len(out) % itemsize:
            raise CodecError(
                f"cannot unshuffle {len(out)} bytes by itemsize {itemsize}")
        d = zlib.decompressobj()
        try:
            raw = d.decompress(bytes(memoryview(payload).cast("B")),
                               len(out) + 1)
        except zlib.error as exc:
            raise CodecError(
                f"shuffle-zlib payload does not decode: {exc}") from exc
        if len(raw) != len(out) or not d.eof:
            raise CodecError(
                f"shuffle-zlib payload decoded to {len(raw)} bytes, want "
                f"{len(out)} (truncated or corrupt)")
        self._unshuffle_into(raw, out, itemsize)


_REGISTRY: dict[str, Codec] = {}


def register_codec(codec: Codec, *, replace: bool = False) -> Codec:
    """Add a codec to the registry (headers resolve codecs by this name)."""
    if not codec.name:
        raise CodecError("codec needs a non-empty name")
    if codec.name in _REGISTRY and not replace:
        raise CodecError(f"codec {codec.name!r} registered twice")
    _REGISTRY[codec.name] = codec
    return codec


def get_codec(name: str) -> Codec:
    """Look up a codec by name; :class:`UnknownCodecError` if unregistered."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownCodecError(
            f"unknown codec {name!r}: registered codecs are "
            f"{sorted(_REGISTRY)}") from None


def available_codecs() -> list[str]:
    return sorted(_REGISTRY)


def resolve_codec(value: str | None = None) -> str:
    """Normalize a codec choice to a registered name.

    ``value=None`` samples ``DOOC_CODEC`` — once, at the caller's
    construction site (``DOoCEngine.__init__``, ``CheckpointManager``);
    an explicit value overrides the environment entirely.  An empty or
    unset environment means ``"raw"``.
    """
    if value is None:
        value = os.environ.get(CODEC_ENV, "").strip() or "raw"
    value = value.strip().lower()
    get_codec(value)  # raises UnknownCodecError on junk
    return value


register_codec(RawCodec())
register_codec(ZlibCodec())
register_codec(ShuffleZlibCodec())
