"""The multi-process worker plane: one compute process per worker slot.

The thread plane's workers contend on the GIL, so in-core compute-bound
workloads plateau regardless of worker count (ROADMAP item 1).  With
``DOoCEngine(worker_plane="process")`` every worker-filter instance owns
a long-lived child process; the filter thread stays the protocol
endpoint (tickets, grants, scatter accounting, failure reports) and only
the *compute* crosses the process boundary.

What crosses is an **envelope** — the task function plus
:class:`~repro.core.shm.BlockHandle` descriptors for every granted read
and write span — and what comes back is a small status dict.  The block
bytes themselves never travel: children map the named shared-memory
segments and compute on read-only views of the very buffers the parent
sealed, so ``bytes_copied`` accounting is identical to the thread plane
(gather/scatter for multi-block operands, nothing else).

Children are forked *before* the runtime's threads start (fork and
threads don't mix); a worker that dies mid-run is respawned with the
``spawn`` start method, which is thread-safe at the cost of a module
re-import.  Crashes surface as :class:`WorkerProcessCrash` and flow into
the engine's existing task-retry machinery.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
from typing import Any

import numpy as np

from repro.core.errors import DoocError
from repro.core.opcache import (OPERAND_CONTEXT_KEY, DecodedOperandCache,
                                OperandContext)
from repro.core import shm as shm_mod

__all__ = ["ProcessWorkerPool", "WorkerProcessCrash", "EnvelopeUnpicklable"]


class WorkerProcessCrash(DoocError):
    """A worker process died while a task was in flight."""


class EnvelopeUnpicklable(DoocError):
    """The task cannot be shipped to a process (closure, local def...)."""


def _execute_envelope(envelope: dict, cache: DecodedOperandCache | None) -> dict:
    """Run one task envelope in the worker process.

    Mirrors the thread plane's ``_WorkerFilter._run_task`` data handling
    exactly: single-span operands are zero-copy views, multi-span inputs
    gather into a scratch buffer and multi-span outputs scatter out of
    one — those deterministic copies (and only those) count toward
    ``bytes_copied``.
    """
    bytes_copied = 0
    inputs: dict[str, np.ndarray] = {}
    for array, handles in envelope["inputs"].items():
        if len(handles) == 1:
            inputs[array] = shm_mod.attach_view(handles[0])
        else:
            gathered = np.concatenate(
                [shm_mod.attach_view(h) for h in handles])
            gathered.flags.writeable = False
            bytes_copied += int(gathered.nbytes)
            inputs[array] = gathered
    outs: dict[str, np.ndarray] = {}
    scatters: list[tuple[np.ndarray, int, list]] = []
    for array, spec in envelope["outputs"].items():
        lo, hi, parts = spec["lo"], spec["hi"], spec["parts"]
        if len(parts) == 1 and parts[0][1] == lo and parts[0][2] == hi:
            outs[array] = shm_mod.attach_view(parts[0][0], writable=True)
        else:
            tmp = np.zeros(hi - lo, dtype=spec["dtype"])
            outs[array] = tmp
            scatters.append((tmp, lo, parts))
    meta = dict(envelope["meta"])
    hits0 = misses0 = 0
    if cache is not None:
        hits0, misses0 = cache.hits, cache.misses
        meta[OPERAND_CONTEXT_KEY] = OperandContext(
            cache, envelope["generations"])
    envelope["fn"](inputs, outs, meta)
    for tmp, base, parts in scatters:
        for handle, plo, phi in parts:
            view = shm_mod.attach_view(handle, writable=True)
            view[:] = tmp[plo - base:phi - base]
        bytes_copied += int(tmp.nbytes)
    reply = {"ok": True, "bytes_copied": bytes_copied}
    if cache is not None:
        reply["opcache_hits"] = cache.hits - hits0
        reply["opcache_misses"] = cache.misses - misses0
    return reply


def _child_main(conn, opcache_bytes: int) -> None:
    """Worker-process loop: recv envelope, compute, reply.

    Each process owns a private :class:`DecodedOperandCache` keyed on the
    same ``(array, seal-generation)`` scheme as the parent's, so a
    reclaim parent-side silently invalidates here too — new grants carry
    a bumped generation and simply miss.
    """
    cache = (DecodedOperandCache(opcache_bytes)
             if opcache_bytes > 0 else None)
    try:
        while True:
            try:
                payload = conn.recv_bytes()
            except (EOFError, OSError):
                break
            if not payload:  # shutdown sentinel
                break
            envelope = pickle.loads(payload)
            try:
                reply = _execute_envelope(envelope, cache)
            except BaseException as exc:  # noqa: BLE001 - report, don't die
                reply = {"ok": False,
                         "error": f"{type(exc).__name__}: {exc}"}
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                break
    finally:
        shm_mod.detach_all()
        conn.close()


class _Client:
    """Parent-side handle of one worker process (pipe + Process)."""

    __slots__ = ("conn", "proc")

    def __init__(self, ctx, opcache_bytes: int):
        self.conn, child_conn = mp.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_child_main, args=(child_conn, opcache_bytes),
            daemon=True, name="dooc-worker")
        self.proc.start()
        child_conn.close()


class ProcessWorkerPool:
    """Per-run fleet of worker processes, one per (node, instance) slot.

    Built and started by ``DOoCEngine.run`` *before* the threaded
    runtime spins up (so the initial ``fork`` happens while the parent
    is single-threaded) and shut down in the run's ``finally``.
    """

    def __init__(self, n_nodes: int, workers_per_node: int,
                 opcache_bytes: int = 0, start_method: str | None = None):
        self.n_nodes = int(n_nodes)
        self.workers_per_node = int(workers_per_node)
        self.opcache_bytes = int(opcache_bytes)
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = mp.get_context(start_method)
        self._clients: dict[tuple[int, int], _Client] = {}
        self.crashes = 0
        self.respawns = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        for node in range(self.n_nodes):
            for instance in range(self.workers_per_node):
                self._clients[(node, instance)] = _Client(
                    self._ctx, self.opcache_bytes)

    def shutdown(self, timeout: float = 5.0) -> None:
        for client in self._clients.values():
            try:
                client.conn.send_bytes(b"")
            except (BrokenPipeError, OSError):
                pass
        for client in self._clients.values():
            client.proc.join(timeout=timeout)
            if client.proc.is_alive():  # pragma: no cover - stuck worker
                client.proc.terminate()
                client.proc.join(timeout=timeout)
            client.conn.close()
        self._clients.clear()

    def alive_count(self) -> int:
        return sum(1 for c in self._clients.values() if c.proc.is_alive())

    # -- dispatch ------------------------------------------------------------

    def run_envelope(self, node: int, instance: int, envelope: dict) -> dict:
        """Ship an envelope to the slot's process and await its reply.

        Raises :class:`EnvelopeUnpicklable` when the task can't cross a
        process boundary (caller falls back to inline execution) and
        :class:`WorkerProcessCrash` when the process dies mid-task (the
        slot is respawned first, so the task's retry finds a live
        worker).
        """
        key = (node % self.n_nodes, instance % self.workers_per_node)
        client = self._clients[key]
        try:
            payload = pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise EnvelopeUnpicklable(
                f"task cannot be dispatched to a worker process: {exc}"
            ) from exc
        try:
            client.conn.send_bytes(payload)
            return self._recv_reply(client)
        except WorkerProcessCrash:
            self._respawn(key, client)
            raise
        except (BrokenPipeError, OSError) as exc:
            self._respawn(key, client)
            raise WorkerProcessCrash(
                f"worker process for slot {key} died: {exc}") from exc

    def _recv_reply(self, client: _Client) -> dict:
        """Poll for the reply, watching for the process dying under us.

        A plain blocking ``recv`` can hang forever after a SIGKILL when
        a sibling (forked later) still holds the pipe's write end open —
        poll + liveness check sidesteps pipe-fd inheritance entirely.
        """
        while True:
            if client.conn.poll(0.05):
                try:
                    return client.conn.recv()
                except (EOFError, OSError) as exc:
                    raise WorkerProcessCrash(
                        "worker process closed its pipe mid-task") from exc
            if not client.proc.is_alive():
                if client.conn.poll(0):
                    return client.conn.recv()
                raise WorkerProcessCrash(
                    f"worker process exited (code {client.proc.exitcode}) "
                    "with a task in flight")

    def _respawn(self, key: tuple[int, int], dead: _Client) -> None:
        """Replace a dead slot; ``spawn`` keeps a mid-run fork thread-safe."""
        self.crashes += 1
        dead.proc.join(timeout=1.0)
        try:
            dead.conn.close()
        except OSError:  # pragma: no cover
            pass
        respawn_ctx = mp.get_context("spawn")
        self._clients[key] = _Client(respawn_ctx, self.opcache_bytes)
        self.respawns += 1


def build_envelope(fn: Any, meta: dict,
                   input_handles: dict[str, list],
                   output_specs: dict[str, dict],
                   generations: dict[str, tuple[int, ...]]) -> dict:
    """Assemble the cross-process task description (parent side)."""
    meta = {k: v for k, v in meta.items() if k != OPERAND_CONTEXT_KEY}
    return {
        "fn": fn,
        "meta": meta,
        "inputs": input_handles,
        "outputs": output_specs,
        "generations": generations,
    }
