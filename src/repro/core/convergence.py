"""Per-block convergence tracking for incremental (delta/workset) sweeps.

Bulk-synchronous iteration pays the full data-movement bill every sweep,
even for partitions that can no longer change the answer.  Following
"Spinning Fast Iterative Data Flows" (PAPERS.md), the tracker below gives
solvers a *workset*: each sweep it compares every partition's iterate
before and after the update and freezes the ones that went stationary, so
drivers can stop generating tasks (and stop re-reading sub-matrix files)
for them.

The freeze rule matters for the bench verdicts:

* ``tol == 0.0`` (the default) freezes a partition only when its iterate
  is **bitwise** stationary (``np.array_equal``).  Re-multiplying an
  unchanged ``x_v`` is deterministic, so reusing the cached products is
  bit-identical to recomputing them — synchronous incremental runs keep
  the bit-identity verdict against the SciPy reference.
* ``tol > 0.0`` freezes on a relative update-norm threshold.  That is a
  numerical approximation (the classic delta-iteration trade), so runs
  using it get a convergence-bound verdict instead.

Floating-point Jacobi sweeps rarely land on an exact period-1 fixpoint:
near convergence the per-element update ``r_i / d_i`` sits right at the
last-ulp boundary and round-to-nearest makes the iterate *oscillate
between two adjacent floats* forever (the residual floor and the
absorption threshold are the same order, ``eps * |x|``).  The tracker
therefore also detects exact **period-2 limit cycles** — ``x_v(t)``
bitwise equal to ``x_v(t-2)`` — and freezes those partitions with *both*
phase values.  Product caches are content-addressed by the incoming
iterate bits, so a cycling partition's multiply is still reproduced
exactly; a partition is thawed the moment its iterate matches none of
its frozen phases.

A frozen partition is *not* retired for good: the tracker re-compares on
every sweep and thaws any partition whose iterate moved again (a tiny
update can be absorbed one sweep and resolvable the next), so dropout
never changes the computed values — only the work done to reach them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ConvergenceTracker", "ConvergenceReport", "SweepRecord"]


@dataclass(frozen=True)
class SweepRecord:
    """What one sweep did to the workset."""

    sweep: int                       #: 1-based sweep number
    active: tuple[int, ...]          #: partitions relaxed this sweep
    frozen: tuple[int, ...]          #: partitions frozen *after* this sweep
    newly_frozen: tuple[int, ...]    #: partitions that froze this sweep
    reentered: tuple[int, ...]       #: frozen partitions that moved again
    residuals: dict[int, float]      #: per-partition update norm ||dx_v||
    tasks_scheduled: int             #: engine tasks in this sweep's program
    aux_tasks: int = 0               #: freeze-time product-cache tasks


@dataclass
class ConvergenceReport:
    """Per-sweep workset history of one incremental drive."""

    k: int                            #: partition count
    tol: float                        #: freeze threshold (0.0 = bitwise)
    sweeps: list[SweepRecord] = field(default_factory=list)
    fixpoint_sweep: int | None = None  #: sweep at which everything froze

    def tasks_per_sweep(self) -> list[int]:
        return [r.tasks_scheduled for r in self.sweeps]

    def total_tasks(self) -> int:
        return sum(r.tasks_scheduled + r.aux_tasks for r in self.sweeps)

    def workset_sizes(self) -> list[int]:
        return [len(r.active) for r in self.sweeps]

    def first_freeze_sweep(self) -> int | None:
        for r in self.sweeps:
            if r.newly_frozen:
                return r.sweep
        return None

    def monotone_dropout(self) -> bool:
        """Did the workset never grow (no re-entries)?"""
        sizes = self.workset_sizes()
        return all(b <= a for a, b in zip(sizes, sizes[1:]))


class ConvergenceTracker:
    """Decides, sweep by sweep, which partitions stay in the workset.

    The tracker is the single authority on frozen/active state; drivers
    call :meth:`observe` once per sweep with the iterate's parts before
    and after the update and mirror the returned ``newly_frozen`` /
    ``reentered`` sets into their product caches.  Decisions are recorded
    in a :class:`ConvergenceReport` and, when a ``tracer`` is given,
    emitted as ``converge``-category trace events (``block_converged``,
    ``block_reentered``, ``workset_size``, ``fixpoint``), so dropout is
    visible in the same Chrome timeline as the tasks it removes.
    """

    def __init__(self, k: int, *, tol: float = 0.0, tracer=None,
                 metrics=None, node: int = -1):
        if k < 1:
            raise ValueError("k must be >= 1")
        if tol < 0.0:
            raise ValueError("tol must be >= 0")
        self.k = k
        self.tol = tol
        self.tracer = tracer
        self.node = node
        if metrics is None:
            from repro.obs.metrics import MetricsRegistry
            metrics = MetricsRegistry()
        self.metrics = metrics
        #: frozen partition -> its phase values (1 entry = stationary,
        #: 2 entries = exact period-2 limit cycle)
        self._frozen: dict[int, list[np.ndarray]] = {}
        #: partition -> its iterate two sweeps ago (limit-cycle detection)
        self._two_ago: dict[int, np.ndarray] = {}
        self._sweep = 0
        self.report = ConvergenceReport(k=k, tol=tol)

    @property
    def frozen(self) -> frozenset[int]:
        return frozenset(self._frozen)

    def active(self) -> list[int]:
        return [v for v in range(self.k) if v not in self._frozen]

    @property
    def fixpoint(self) -> bool:
        return len(self._frozen) == self.k

    def phases(self, v: int) -> tuple[np.ndarray, ...]:
        """The frozen phase values of partition ``v`` (empty if active)."""
        return tuple(self._frozen.get(v, ()))

    def _stationary(self, old: np.ndarray, new: np.ndarray) -> bool:
        if self.tol == 0.0:
            return bool(np.array_equal(old, new))
        scale = max(float(np.linalg.norm(new)), 1.0)
        return float(np.linalg.norm(new - old)) <= self.tol * scale

    def observe(self, prev_parts: dict[int, np.ndarray],
                new_parts: dict[int, np.ndarray], *,
                tasks_scheduled: int = 0,
                aux_tasks: int = 0) -> SweepRecord:
        """Record one completed sweep; returns its workset transitions."""
        self._sweep += 1
        active = tuple(self.active())
        residuals: dict[int, float] = {}
        newly_frozen: list[int] = []
        reentered: list[int] = []
        for v in range(self.k):
            old, new = prev_parts[v], new_parts[v]
            residuals[v] = float(np.linalg.norm(
                np.asarray(new, dtype=np.float64)
                - np.asarray(old, dtype=np.float64)))
            two_ago = self._two_ago.get(v)
            self._two_ago[v] = np.array(old, dtype=np.float64, copy=True)
            if v in self._frozen:
                if not any(np.array_equal(p, new) for p in self._frozen[v]):
                    del self._frozen[v]
                    reentered.append(v)
            elif self._stationary(old, new):
                self._frozen[v] = [np.array(new, dtype=np.float64, copy=True)]
                newly_frozen.append(v)
            elif (self.tol == 0.0 and two_ago is not None
                  and np.array_equal(two_ago, new)):
                # Exact period-2 limit cycle: freeze both phases.
                self._frozen[v] = [np.array(new, dtype=np.float64, copy=True),
                                   np.array(old, dtype=np.float64, copy=True)]
                newly_frozen.append(v)
        record = SweepRecord(
            sweep=self._sweep, active=active,
            frozen=tuple(sorted(self._frozen)),
            newly_frozen=tuple(newly_frozen), reentered=tuple(reentered),
            residuals=residuals, tasks_scheduled=tasks_scheduled,
            aux_tasks=aux_tasks)
        self.report.sweeps.append(record)
        self.metrics.inc("sweeps")
        self.metrics.inc("blocks_converged", len(newly_frozen))
        self.metrics.inc("blocks_reentered", len(reentered))
        self.metrics.inc("workset_tasks", tasks_scheduled)
        if self.tracer is not None:
            for v in newly_frozen:
                self.tracer.instant(self.node, "driver", "converge",
                                    "block_converged", block=v,
                                    sweep=self._sweep,
                                    residual=residuals[v])
            for v in reentered:
                self.tracer.instant(self.node, "driver", "converge",
                                    "block_reentered", block=v,
                                    sweep=self._sweep,
                                    residual=residuals[v])
            self.tracer.counter(self.node, "driver", "converge",
                                "workset_size", len(self.active()),
                                sweep=self._sweep)
        if self.fixpoint and self.report.fixpoint_sweep is None:
            self.report.fixpoint_sweep = self._sweep
            self.metrics.inc("fixpoints")
            if self.tracer is not None:
                self.tracer.instant(self.node, "driver", "converge",
                                    "fixpoint", sweep=self._sweep)
        return record
