"""Tasks: the unit of computation scheduled by DOoC.

Each computation "takes some data as an input and outputs some data; each
data is a complete array that is (or will be) stored within the storage
layer".  The dependency DAG is *derived* from these declarations
(:mod:`repro.core.dag`) rather than specified by the programmer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable
from typing import Any

from repro.core.errors import SchedulingError

#: A task body: fn(inputs: dict[str, np.ndarray], outputs: dict[str, np.ndarray])
#: Inputs are read-only views of whole arrays; outputs are writable buffers
#: the engine publishes on completion.
TaskFn = Callable[[dict, dict], None]


@dataclass(frozen=True)
class TaskSpec:
    """A declared task.

    ``inputs`` / ``outputs`` name whole global arrays.  ``flops`` is a cost
    hint (used by schedulers and the simulator).  ``splittable`` marks tasks
    whose output range can be partitioned by the local scheduler "to expose
    more parallelism when necessary" — the body is then called with an
    ``outputs`` dict holding only a slice of each output array, plus
    matching input row ranges supplied through ``split_ctx`` in metadata.
    """

    name: str
    fn: TaskFn | None
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    flops: float = 0.0
    splittable: bool = False
    meta: dict[str, Any] = field(default_factory=dict, hash=False, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchedulingError("task needs a non-empty name")
        if not self.outputs:
            raise SchedulingError(f"task {self.name!r} produces no output array")
        if len(set(self.outputs)) != len(self.outputs):
            raise SchedulingError(f"task {self.name!r} lists duplicate outputs")
        if set(self.inputs) & set(self.outputs):
            raise SchedulingError(
                f"task {self.name!r} reads and writes the same array; arrays "
                "are immutable — write a new array instead"
            )
        if self.flops < 0:
            raise SchedulingError(f"task {self.name!r}: negative flops")


def task(
    name: str,
    fn: TaskFn | None,
    inputs: list[str] | tuple[str, ...] = (),
    outputs: list[str] | tuple[str, ...] = (),
    *,
    flops: float = 0.0,
    splittable: bool = False,
    **meta: Any,
) -> TaskSpec:
    """Convenience constructor with list arguments."""
    return TaskSpec(
        name=name,
        fn=fn,
        inputs=tuple(inputs),
        outputs=tuple(outputs),
        flops=flops,
        splittable=splittable,
        meta=dict(meta),
    )
