"""The global scheduler: affinity-based task placement.

"Tasks are sent to the compute nodes which host most of the data required
to process them."  Placement walks the DAG in topological order; a task's
outputs become homed on its assigned node, so affinity chains through the
graph.  Ties are broken toward the least-loaded node (by assigned input
bytes), then the lowest node index — both deterministic.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.dag import TaskDAG
from repro.core.errors import SchedulingError


def failover_node(
    task_inputs,
    array_homes: Mapping[str, int],
    survivors: list[int],
    array_nbytes: Mapping[str, int],
) -> int:
    """Pick the survivor hosting the most input bytes of a recovering task.

    The same affinity heuristic as initial placement ("tasks are sent to
    the compute nodes which host most of the data required to process
    them"), restricted to nodes still alive after a failure.  Ties break
    toward the lowest node index; pass ``survivors`` sorted for a
    deterministic choice.
    """
    if not survivors:
        raise SchedulingError("failover_node needs at least one survivor")
    best, best_affinity = survivors[0], -1.0
    for node in survivors:
        affinity = float(sum(
            array_nbytes.get(a, 0)
            for a in task_inputs
            if array_homes.get(a) == node
        ))
        if affinity > best_affinity:
            best, best_affinity = node, affinity
    return best


class GlobalScheduler:
    """Computes (and records) a task -> node assignment."""

    def __init__(
        self,
        dag: TaskDAG,
        n_nodes: int,
        array_homes: Mapping[str, int],
        array_nbytes: Mapping[str, int],
    ):
        if n_nodes < 1:
            raise SchedulingError("need at least one node")
        for array in dag.initial_arrays:
            if array not in array_homes:
                raise SchedulingError(f"initial array {array!r} has no home node")
            if not 0 <= array_homes[array] < n_nodes:
                raise SchedulingError(
                    f"initial array {array!r} homed on invalid node "
                    f"{array_homes[array]}"
                )
        self.dag = dag
        self.n_nodes = n_nodes
        self.array_homes: dict[str, int] = dict(array_homes)
        self.array_nbytes = dict(array_nbytes)
        self.assignment: dict[str, int] = {}
        self._node_load: list[float] = [0.0] * n_nodes

    def _nbytes(self, array: str) -> int:
        size = self.array_nbytes.get(array)
        if size is None:
            raise SchedulingError(f"array {array!r} has no declared size")
        return size

    def assign_all(self) -> dict[str, int]:
        """Place every task; returns {task_name: node}."""
        for name in self.dag.topological_order():
            self.assignment[name] = self._place(name)
        return self.assignment

    def _place(self, name: str) -> int:
        t = self.dag.tasks[name]
        affinity = [0.0] * self.n_nodes
        for array in t.inputs:
            home = self.array_homes.get(array)
            if home is None:
                raise SchedulingError(
                    f"task {name!r}: input {array!r} has no home when placed "
                    "(topological-order violation?)"
                )
            affinity[home] += self._nbytes(array)
        best = max(affinity)
        candidates = [n for n in range(self.n_nodes) if affinity[n] == best]
        # Tie-break: least accumulated load, then lowest index.
        node = min(candidates, key=lambda n: (self._node_load[n], n))
        self._node_load[node] += sum(self._nbytes(a) for a in t.inputs) or 1.0
        for array in t.outputs:
            self.array_homes[array] = node
        return node

    def node_tasks(self, node: int) -> list[str]:
        """Tasks assigned to ``node``, in topological order."""
        return [n for n in self.dag.topological_order() if self.assignment.get(n) == node]
