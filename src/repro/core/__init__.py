"""DOoC: distributed data storage and scheduling with out-of-core capabilities.

This package is the paper's primary contribution, layered on the DataCutter
substrate (:mod:`repro.datacutter`):

* :mod:`repro.core.array` / :mod:`repro.core.interval` — immutable global
  one-dimensional arrays structured in blocks, accessed through per-block
  intervals with read or write permission;
* :mod:`repro.core.storage` — the per-node storage layer: write-once
  semantics, reference counting, LRU memory reclamation, asynchronous
  loads/spills, prefetching (a pure effect-emitting state machine shared by
  the threaded engine and the testbed simulator);
* :mod:`repro.core.directory` — the partitioned global map with
  random-peer query resolution;
* :mod:`repro.core.task` / :mod:`repro.core.dag` — tasks declaring whole
  arrays as inputs/outputs, from which the dependency DAG is derived;
* :mod:`repro.core.global_scheduler` — affinity-based task placement;
* :mod:`repro.core.local_scheduler` — per-node splitting, data-aware
  reordering (which discovers the "back-and-forth" plan of Fig. 5b), and
  prefetch management;
* :mod:`repro.core.engine` — the threaded out-of-core execution engine
  binding it all to real files and real NumPy kernels.
"""

from repro.core.array import ArrayDesc
from repro.core.errors import (
    DoocError,
    ImmutabilityError,
    IOFailedError,
    StallError,
    StorageError,
    TaskFailedError,
    UnknownArrayError,
)
from repro.core.interval import Interval
from repro.core.task import TaskSpec
from repro.core.dag import TaskDAG
from repro.core.engine import DOoCEngine, Program

__all__ = [
    "ArrayDesc",
    "Interval",
    "TaskSpec",
    "TaskDAG",
    "DOoCEngine",
    "Program",
    "DoocError",
    "StorageError",
    "StallError",
    "ImmutabilityError",
    "IOFailedError",
    "TaskFailedError",
    "UnknownArrayError",
]
