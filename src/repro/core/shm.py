"""Shared-memory segments: the cross-process block data plane.

The multi-process worker plane (``DOoCEngine(worker_plane="process")``)
cannot ship NumPy views over a pipe — views only mean something inside
one address space.  Instead, sealed block buffers live in POSIX shared
memory (``multiprocessing.shared_memory``) and what crosses the process
boundary is a :class:`BlockHandle`: ``(segment name, byte offset,
element count, dtype, seal generation)``.  A worker process maps the
named segment once, builds a **read-only** ``np.frombuffer`` view at the
offset, and computes on the very bytes the storage layer sealed — the
zero-copy and frozen-buffer invariants of the thread plane, preserved
across ``fork``.

:class:`SegmentPool` is the only place segments are created or
destroyed (lint rule ``DOOC006`` keeps it that way).  One segment backs
one block buffer; the pool refcounts *leases* (taken by worker proxies
for the duration of a dispatched task) and unlinks a segment when its
block is freed **and** the last lease is gone, so a reclaim can never
pull the memory out from under an in-flight task.  Unlinking removes
the ``/dev/shm`` name immediately; the mapping itself lives until the
last view dies (NumPy's base reference), which is why freeing is a
*retire-and-sweep*: segments whose buffers are still exported are
parked and closed on a later sweep instead of erroring.

Child-process attachments go through :func:`attach_view`, which also
works around bpo-39959: on Python < 3.13 attaching by name registers
the segment with the child's ``resource_tracker``, which would unlink
the parent's segment when the child exits — the attachment is
unregistered immediately after opening.
"""

from __future__ import annotations

import itertools
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path

import numpy as np

from repro.core.errors import StorageError

__all__ = [
    "BlockHandle",
    "SegmentPool",
    "SegmentLeakError",
    "attach_view",
    "detach_all",
    "dev_shm_segments",
    "SEGMENT_PREFIX",
]

#: every pool segment name starts with this (leak scans key on it)
SEGMENT_PREFIX = "dooc-seg"


class SegmentLeakError(StorageError):
    """A pool audit found segments or leases that should be gone."""


@dataclass(frozen=True)
class BlockHandle:
    """A pass-by-reference descriptor of a span of a sealed block.

    Handles are tiny and picklable: this is what the dispatch path sends
    to a worker process instead of the bytes.  ``generation`` is the
    block's seal generation at grant time — the same freshness stamp the
    decoded-operand cache keys on, so per-process caches in workers use
    identical keys and can never serve bytes the parent reclaimed.
    """

    segment: str      #: shared-memory segment name
    offset: int       #: byte offset of the span within the segment
    count: int        #: element count
    dtype: str        #: NumPy dtype string
    generation: int = 0

    @property
    def nbytes(self) -> int:
        return self.count * np.dtype(self.dtype).itemsize


class _Segment:
    __slots__ = ("shm", "leases", "freed", "unlinked")

    def __init__(self, shm: shared_memory.SharedMemory):
        self.shm = shm
        self.leases = 0
        self.freed = False
        self.unlinked = False


class _PoolSharedMemory(shared_memory.SharedMemory):
    """SharedMemory whose destructor tolerates still-exported views.

    The stock ``__del__`` calls ``close()``, which raises ``BufferError``
    while any NumPy view still exports the mapping's buffer — at
    interpreter exit that prints "Exception ignored in __del__" for
    every retired segment an engine's stores still reference.  The
    mapping is about to die with the process anyway; swallow it.
    """

    def __del__(self):  # pragma: no cover - interpreter-exit path
        try:
            super().__del__()
        except BufferError:
            pass


def _try_close(shm: shared_memory.SharedMemory) -> bool:
    """Close a mapping unless live views still export its buffer."""
    try:
        shm.close()
        return True
    except (BufferError, ValueError):
        return False


class SegmentPool:
    """Owner of this engine's shared-memory segments (parent side).

    Thread-safe: the per-node storage filters of one engine share a
    single pool (segment names are process-global anyway), and worker
    filter threads take/release leases concurrently.
    """

    def __init__(self, tag: str = ""):
        suffix = f"-{tag}" if tag else ""
        self._prefix = f"{SEGMENT_PREFIX}-{os.getpid()}{suffix}"
        self._lock = threading.Lock()
        self._segments: dict[str, _Segment] = {}
        #: unlinked segments whose mapping could not close yet (views alive)
        self._retired: list[shared_memory.SharedMemory] = []
        self._seq = itertools.count()
        self.created = 0
        self.freed_count = 0
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    def allocate(self, nbytes: int) -> str:
        """Create a fresh segment of ``nbytes`` and return its name."""
        if self._closed:
            raise StorageError("segment pool is closed")
        name = f"{self._prefix}-{next(self._seq)}"
        # The one sanctioned constructor call (see DOOC006).
        shm = _PoolSharedMemory(
            name=name, create=True, size=max(int(nbytes), 1))
        with self._lock:
            self._segments[name] = _Segment(shm)
            self.created += 1
            self._sweep_locked()
        return name

    def ndarray(self, name: str, count: int, dtype: str, *,
                offset: int = 0, readonly: bool = False) -> np.ndarray:
        """A view over ``count`` elements of a pool segment (parent side)."""
        with self._lock:
            seg = self._segments.get(name)
            if seg is None or seg.unlinked:
                raise StorageError(f"segment {name!r} not in pool")
            view = np.frombuffer(seg.shm.buf, dtype=dtype, count=count,
                                 offset=offset)
        if readonly:
            view.flags.writeable = False
        return view

    def free(self, name: str) -> None:
        """The backing block was reclaimed: unlink once leases drain.

        Unlinking removes the name (no new attachment can map it); views
        already built over the mapping stay valid until they die.
        """
        with self._lock:
            seg = self._segments.get(name)
            if seg is None:
                raise StorageError(f"segment {name!r} not in pool")
            seg.freed = True
            self._maybe_unlink_locked(name, seg)
            self._sweep_locked()

    # -- leases --------------------------------------------------------------

    def lease(self, name: str) -> None:
        """Pin a segment for an in-flight cross-process task."""
        with self._lock:
            seg = self._segments.get(name)
            if seg is None or seg.unlinked:
                raise StorageError(f"cannot lease segment {name!r}")
            seg.leases += 1

    def release(self, name: str) -> None:
        with self._lock:
            seg = self._segments.get(name)
            if seg is None:
                return  # already unlinked and swept after a late release
            if seg.leases <= 0:
                raise StorageError(f"lease underflow on segment {name!r}")
            seg.leases -= 1
            if seg.freed:
                self._maybe_unlink_locked(name, seg)

    # -- teardown / audit ----------------------------------------------------

    def close(self) -> None:
        """Unlink every remaining segment (engine cleanup / finalizer)."""
        with self._lock:
            self._closed = True
            for name, seg in list(self._segments.items()):
                seg.freed = True
                seg.leases = 0
                self._maybe_unlink_locked(name, seg)
            self._sweep_locked()

    def lease_counts(self) -> dict[str, int]:
        with self._lock:
            return {n: s.leases for n, s in self._segments.items()
                    if s.leases}

    def live_segments(self) -> list[str]:
        """Names still linked in /dev/shm (not yet freed)."""
        with self._lock:
            return sorted(n for n, s in self._segments.items()
                          if not s.unlinked)

    def assert_clean(self) -> None:
        """Raise if any lease survived the run (mirrors TicketAuditor)."""
        leaked = self.lease_counts()
        if leaked:
            detail = ", ".join(f"{n} x{c}" for n, c in sorted(leaked.items()))
            raise SegmentLeakError(
                f"segment leases leaked past the run: {detail}")

    # -- internals -----------------------------------------------------------

    def _maybe_unlink_locked(self, name: str, seg: _Segment) -> None:
        if seg.unlinked or seg.leases > 0 or not seg.freed:
            return
        seg.unlinked = True
        try:
            seg.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - defensive
            pass
        self.freed_count += 1
        del self._segments[name]
        if not _try_close(seg.shm):
            self._retired.append(seg.shm)

    def _sweep_locked(self) -> None:
        self._retired = [shm for shm in self._retired
                         if not _try_close(shm)]


# ---------------------------------------------------------------------------
# Child-process attachment
# ---------------------------------------------------------------------------

#: name -> SharedMemory attachments of *this* process (LRU); bounded so a
#: long-lived worker doesn't accumulate one dead mapping per retired block
_ATTACH_CAP = 128
_attached: OrderedDict[str, shared_memory.SharedMemory] = OrderedDict()
_evict_pending: list[shared_memory.SharedMemory] = []
_attach_lock = threading.Lock()


def _attach(name: str) -> shared_memory.SharedMemory:
    with _attach_lock:
        shm = _attached.get(name)
        if shm is not None:
            _attached.move_to_end(name)
            return shm
        # bpo-39959: attaching by name registers the segment with a
        # resource tracker, which would unlink the parent's segment when
        # this worker exits (spawn children own a private tracker) or
        # cancel the parent's own registration (fork children share the
        # parent's tracker, and a later ``unlink`` then double-
        # unregisters).  The parent owns the lifecycle — suppress the
        # registration entirely for the duration of the attach.
        original_register = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            shm = _PoolSharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
        _attached[name] = shm
        while len(_attached) > _ATTACH_CAP:
            _, old = _attached.popitem(last=False)
            if not _try_close(old):
                _evict_pending.append(old)
        _evict_pending[:] = [s for s in _evict_pending if not _try_close(s)]
        return shm


def attach_view(handle: BlockHandle, *, writable: bool = False) -> np.ndarray:
    """Map a handle's span in this process (worker side).

    The returned view is read-only unless ``writable=True`` (output
    spans): the frozen-buffer invariant crosses the process boundary,
    so a task body writing an input raises exactly as it does in the
    thread plane.
    """
    shm = _attach(handle.segment)
    view = np.frombuffer(shm.buf, dtype=handle.dtype,
                         count=handle.count, offset=handle.offset)
    if not writable:
        view.flags.writeable = False
    return view


def detach_all() -> None:
    """Close every attachment of this process (worker shutdown)."""
    with _attach_lock:
        for shm in _attached.values():
            if not _try_close(shm):
                _evict_pending.append(shm)
        _attached.clear()
        _evict_pending[:] = [s for s in _evict_pending if not _try_close(s)]


# ---------------------------------------------------------------------------
# Leak scanning (tests / CI)
# ---------------------------------------------------------------------------


def dev_shm_segments(prefix: str = SEGMENT_PREFIX,
                     root: str | Path = "/dev/shm") -> list[str]:
    """Pool segments currently linked on the system (leak assertion)."""
    root = Path(root)
    if not root.is_dir():  # pragma: no cover - non-POSIX fallback
        return []
    return sorted(p.name for p in root.iterdir()
                  if p.name.startswith(prefix))
