"""Intervals: the unit of access to global arrays.

A filter requests *intervals* of an array with read or write permission.
Arrays are structured in blocks and an interval never spans blocks — "if
one needs to access data that span across multiple blocks, it is required
to use one interval per block".  :func:`intervals_for_range` builds the
per-block interval list for an arbitrary element range.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.array import ArrayDesc
from repro.core.errors import StorageError


class Permission(enum.Enum):
    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class Interval:
    """A contiguous element range within a single block of an array.

    ``lo``/``hi`` are *global* element indices, half-open.
    """

    array: str
    block: int
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.block < 0:
            raise StorageError(f"negative block index {self.block}")
        if not self.lo < self.hi:
            raise StorageError(f"empty or inverted interval [{self.lo}, {self.hi})")

    @property
    def length(self) -> int:
        return self.hi - self.lo

    def validate_against(self, desc: ArrayDesc) -> None:
        """Check this interval fits inside its block of ``desc``."""
        if desc.name != self.array:
            raise StorageError(
                f"interval names array {self.array!r}, descriptor is {desc.name!r}"
            )
        blo, bhi = desc.block_bounds(self.block)
        if self.lo < blo or self.hi > bhi:
            raise StorageError(
                f"interval [{self.lo}, {self.hi}) escapes block {self.block} "
                f"of {self.array!r} (block spans [{blo}, {bhi}))"
            )

    def local_slice(self, desc: ArrayDesc) -> slice:
        """Slice of the block buffer corresponding to this interval."""
        blo, _ = desc.block_bounds(self.block)
        return slice(self.lo - blo, self.hi - blo)


def whole_block(desc: ArrayDesc, block: int) -> Interval:
    """The interval covering all of one block."""
    lo, hi = desc.block_bounds(block)
    return Interval(desc.name, block, lo, hi)


def whole_array(desc: ArrayDesc) -> list[Interval]:
    """One interval per block, covering the array."""
    return [whole_block(desc, b) for b in desc.blocks()]


def intervals_for_range(desc: ArrayDesc, lo: int, hi: int) -> list[Interval]:
    """Per-block intervals covering global element range [lo, hi)."""
    if not 0 <= lo < hi <= desc.length:
        raise StorageError(
            f"range [{lo}, {hi}) outside array {desc.name!r} of length {desc.length}"
        )
    out: list[Interval] = []
    first, last = desc.block_of(lo), desc.block_of(hi - 1)
    for block in range(first, last + 1):
        blo, bhi = desc.block_bounds(block)
        out.append(Interval(desc.name, block, max(lo, blo), min(hi, bhi)))
    return out
