"""The per-node storage layer: a pure, effect-emitting state machine.

This module implements the semantics of Section III-B:

* arrays are **immutable**: a given element can be written once, and can be
  read only after its writing interval is *released* — which removes race
  conditions and the need for coherency protocols;
* filters *request* intervals with read or write permission and *release*
  them; for reads, data stays pinned until release (reference counting);
* blocks whose reference count is zero may be **reclaimed** under memory
  pressure in LRU order — dropped if a copy exists on disk (or on the
  owning peer, for remotely fetched blocks), spilled to disk first
  otherwise;
* **prefetch** warms blocks ahead of use; loads and spills are asynchronous.

The class is *pure*: every public method returns a list of
:class:`Effect` records (``load``, ``spill``, ``drop``, ``fetch_remote``,
``grant_read``, ``grant_write``) that the driver — the threaded storage
filter, the DES testbed node, or a unit test — executes and answers via
``on_loaded`` / ``on_spilled`` / ``on_remote_data``.  Purity is what lets
the real engine and the simulator share one storage implementation.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Literal

import numpy as np

from repro.core.array import ArrayDesc
from repro.core.errors import ImmutabilityError, StorageError, UnknownArrayError
from repro.core.interval import Interval, Permission
from repro.obs.metrics import MetricsRegistry

__all__ = ["Effect", "Ticket", "LocalStore", "StoreStats"]


@dataclass(frozen=True)
class Effect:
    """An action the driver must perform on behalf of the store.

    ``deny`` is the failure counterpart of ``grant_read``: the ticket's
    backing I/O failed permanently, and the driver must route ``error``
    back to the requester instead of a grant.
    """

    kind: Literal["load", "spill", "drop", "fetch_remote", "grant_read",
                  "grant_write", "deny"]
    array: str = ""
    block: int = -1
    data: np.ndarray | None = None
    ticket: Ticket | None = None
    error: str = ""
    #: for ``load`` effects under a segment pool: the pre-allocated
    #: shared-memory segment the I/O filter must read the bytes into
    segment: str = ""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.ticket is not None:
            return f"Effect({self.kind}, ticket={self.ticket.tid})"
        return f"Effect({self.kind}, {self.array}[{self.block}])"


@dataclass
class Ticket:
    """An outstanding interval request; doubles as the release token."""

    tid: int
    interval: Interval
    permission: Permission
    granted: bool = False
    released: bool = False
    data: np.ndarray | None = None  # view into the block, set at grant
    tag: Any = None  # opaque driver correlation slot
    #: the block's seal generation at grant time (read grants only):
    #: cache keys derived from this view stay valid exactly as long as
    #: the backing buffer does (see repro.core.opcache)
    generation: int = 0
    #: under a segment pool: the picklable BlockHandle describing this
    #: grant's span for cross-process dispatch (None on plain buffers)
    handle: Any = None


@dataclass
class StoreStats:
    """Operational counters (used by experiments and tests).

    Since the :mod:`repro.obs` metrics registry took over the live
    accounting, this is a *compatibility view*: ``LocalStore.stats``
    materializes one from ``LocalStore.metrics`` on each access.  Existing
    readers (`.loads`, `.loads_by_array`, ...) keep working unchanged.
    """

    loads: int = 0
    spills: int = 0
    drops: int = 0
    remote_fetches: int = 0
    read_hits: int = 0   # read grants served without waiting for I/O
    read_waits: int = 0  # read grants that had to wait (load/seal/fetch)
    prefetch_dropped: int = 0  # prefetches the store declined (no headroom)
    bytes_loaded: int = 0
    bytes_spilled: int = 0
    loads_by_array: dict[str, int] = field(default_factory=dict)

    def record_load(self, array: str, nbytes: int) -> None:
        self.loads += 1
        self.bytes_loaded += nbytes
        self.loads_by_array[array] = self.loads_by_array.get(array, 0) + 1

    @classmethod
    def from_metrics(cls, metrics: MetricsRegistry) -> StoreStats:
        return cls(
            loads=metrics.get("loads"),
            spills=metrics.get("spills"),
            drops=metrics.get("drops"),
            remote_fetches=metrics.get("remote_fetches"),
            read_hits=metrics.get("read_hits"),
            read_waits=metrics.get("read_waits"),
            prefetch_dropped=metrics.get("prefetch_dropped"),
            bytes_loaded=metrics.get("bytes_loaded"),
            bytes_spilled=metrics.get("bytes_spilled"),
            loads_by_array=metrics.labeled("loads"),
        )


# Block residency states
_ABSENT = "absent"
_LOADING = "loading"
_RESIDENT = "resident"
_SPILLING = "spilling"
_FETCHING = "fetching"


@dataclass
class _BlockState:
    desc: ArrayDesc
    block: int
    status: str = _ABSENT
    data: np.ndarray | None = None
    on_disk: bool = False
    remote: bool = False           # home is another node; droppable when cached
    sealed: bool = False           # every element written (or discovered on disk)
    written: list[tuple[int, int]] = field(default_factory=list)  # merged, global idx
    readers: int = 0
    writers: int = 0
    lru: int = 0
    read_waiters: list[Ticket] = field(default_factory=list)
    #: bumped whenever the in-memory buffer is reclaimed; decoded-operand
    #: cache entries are keyed on it so they can never outlive the bytes
    generation: int = 0
    #: name of the shared-memory segment backing ``data`` (pool mode only)
    segment: str | None = None

    @property
    def nbytes(self) -> int:
        return self.desc.block_nbytes(self.block)

    @property
    def pinned(self) -> bool:
        return self.readers > 0 or self.writers > 0 or bool(self.read_waiters)

    def covers(self, lo: int, hi: int) -> bool:
        """Is [lo, hi) fully inside the written ranges?"""
        return any(wlo <= lo and hi <= whi for wlo, whi in self.written)

    def overlaps_written(self, lo: int, hi: int) -> bool:
        return any(lo < whi and wlo < hi for wlo, whi in self.written)

    def add_written(self, lo: int, hi: int) -> None:
        """Merge [lo, hi) into the written set."""
        spans = sorted(self.written + [(lo, hi)])
        merged: list[tuple[int, int]] = []
        for s in spans:
            if merged and s[0] <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], s[1]))
            else:
                merged.append(s)
        self.written = merged
        blo, bhi = self.desc.block_bounds(self.block)
        if self.written == [(blo, bhi)]:
            self.sealed = True


class LocalStore:
    """Storage layer of one node. See module docstring for the contract."""

    def __init__(self, node: int, memory_budget: int, *,
                 segment_pool: Any = None):
        if memory_budget <= 0:
            raise StorageError("memory budget must be positive")
        self.node = node
        self.budget = int(memory_budget)
        #: Optional :class:`repro.core.shm.SegmentPool`.  When set, every
        #: block buffer is carved from a named shared-memory segment and
        #: grants carry a picklable :class:`~repro.core.shm.BlockHandle`,
        #: so the process worker plane can map the same bytes.  ``None``
        #: (thread plane) keeps plain heap ndarrays.
        self.segment_pool = segment_pool
        self.in_use = 0
        self.arrays: dict[str, ArrayDesc] = {}
        self._remote_arrays: set[str] = set()
        self._blocks: dict[tuple[str, int], _BlockState] = {}
        self._clock = itertools.count(1)
        self._tids = itertools.count(1)
        self._write_tickets: dict[tuple[str, int], list[Ticket]] = {}
        # FIFO of (needed_bytes, thunk) waiting for memory; thunk returns effects.
        self._alloc_queue: deque[tuple[int, Any]] = deque()
        self.metrics = MetricsRegistry(node)
        #: Optional :class:`repro.analysis.tickets.TicketAuditor`; when set
        #: (engine under ``DOOC_CHECKERS=1``) every grant/release/abandon is
        #: reported so leaks can be named at teardown.  ``None`` in
        #: production — the hooks cost a single attribute test.
        self.auditor: Any = None
        #: Optional :class:`repro.core.opcache.DecodedOperandCache` shared
        #: by this node's workers; when set, every buffer reclaim
        #: (``_free``) and array deletion invalidates the entries decoded
        #: from those bytes.  ``None`` when the cache is disabled.
        self.opcache: Any = None

    @property
    def stats(self) -> StoreStats:
        """Compatibility view over :attr:`metrics` (see :class:`StoreStats`)."""
        return StoreStats.from_metrics(self.metrics)

    # -- array registration ----------------------------------------------------

    def create_array(self, desc: ArrayDesc) -> None:
        """Declare a new, locally-homed, not-yet-written array."""
        if desc.name in self.arrays:
            raise StorageError(f"array {desc.name!r} already exists on node {self.node}")
        self.arrays[desc.name] = desc

    def register_on_disk(self, desc: ArrayDesc) -> None:
        """Record an array discovered in the scratch directory at startup.

        Its blocks are sealed and on disk — exactly what the paper's storage
        does when it "looks for files in that directory and records the name
        of the arrays as well as their sizes".
        """
        self.create_array(desc)
        for b in desc.blocks():
            st = self._state(desc.name, b)
            st.on_disk = True
            st.sealed = True
            st.written = [desc.block_bounds(b)]

    def register_remote(self, desc: ArrayDesc) -> None:
        """Declare an array homed on another node (fetchable, cache-droppable)."""
        if desc.name in self.arrays:
            raise StorageError(f"array {desc.name!r} already exists on node {self.node}")
        self.arrays[desc.name] = desc
        self._remote_arrays.add(desc.name)

    def delete_array(self, name: str) -> list[Effect]:
        """Forget an array; its resident blocks are freed, disk copy dropped.

        Deletion is atomic: every block is validated before any state is
        touched, so a pinned or in-flight block raises with residency,
        ``in_use`` and the block table unchanged (the failed delete is
        retried by the driver once the pin is released).
        """
        desc = self._desc(name)
        states = [
            st for b in desc.blocks()
            if (st := self._blocks.get((name, b))) is not None
        ]
        for st in states:
            if st.pinned or st.status in (_LOADING, _SPILLING, _FETCHING):
                raise StorageError(
                    f"cannot delete {name!r}: block {st.block} is in use "
                    f"on node {self.node}"
                )
        effects: list[Effect] = []
        for st in states:
            if st.data is not None:
                self._free(st)
            effects.append(Effect("drop", name, st.block))
            del self._blocks[(name, st.block)]
        del self.arrays[name]
        self._remote_arrays.discard(name)
        if self.opcache is not None:
            self.opcache.invalidate(name)
        effects.extend(self._pump_allocs())
        return effects

    def has_array(self, name: str) -> bool:
        return name in self.arrays

    def is_remote(self, name: str) -> bool:
        return name in self._remote_arrays

    # -- requests ----------------------------------------------------------------

    def request_read(self, interval: Interval) -> tuple[Ticket, list[Effect]]:
        """Ask for read access; the grant arrives as a ``grant_read`` effect
        (immediately in the returned list when possible)."""
        desc = self._desc(interval.array)
        interval.validate_against(desc)
        ticket = Ticket(next(self._tids), interval, Permission.READ)
        st = self._state(interval.array, interval.block)
        effects = self._drive_read(st, ticket)
        return ticket, effects

    def request_write(self, interval: Interval) -> tuple[Ticket, list[Effect]]:
        """Ask for write access to a never-written range."""
        desc = self._desc(interval.array)
        interval.validate_against(desc)
        if interval.array in self._remote_arrays:
            raise StorageError(
                f"node {self.node} cannot write remote-homed array {interval.array!r}"
            )
        st = self._state(interval.array, interval.block)
        if st.sealed or st.on_disk:
            raise ImmutabilityError(
                f"block {interval.block} of {interval.array!r} is sealed"
            )
        if st.overlaps_written(interval.lo, interval.hi):
            raise ImmutabilityError(
                f"range [{interval.lo}, {interval.hi}) of {interval.array!r} "
                "overlaps an already-written range"
            )
        for other in self._outstanding_writes(interval.array, interval.block):
            if interval.lo < other.interval.hi and other.interval.lo < interval.hi:
                raise ImmutabilityError(
                    f"range [{interval.lo}, {interval.hi}) of {interval.array!r} "
                    "overlaps an outstanding write ticket"
                )
        ticket = Ticket(next(self._tids), interval, Permission.WRITE)
        st.writers += 1
        self._write_tickets.setdefault((interval.array, interval.block), []).append(ticket)
        effects = self._alloc_then(st, lambda: self._grant_write(st, ticket))
        return ticket, effects

    def release(self, ticket: Ticket) -> list[Effect]:
        """Return an interval. Write releases publish the data."""
        if ticket.released:
            raise StorageError(f"ticket {ticket.tid} released twice")
        if not ticket.granted:
            raise StorageError(f"ticket {ticket.tid} released before being granted")
        ticket.released = True
        if self.auditor is not None:
            self.auditor.note_released(self.node, ticket)
        iv = ticket.interval
        st = self._state(iv.array, iv.block)
        st.lru = next(self._clock)
        effects: list[Effect] = []
        if ticket.permission is Permission.READ:
            if st.readers <= 0:
                raise StorageError("reader refcount underflow")
            st.readers -= 1
        else:
            st.writers -= 1
            key = (iv.array, iv.block)
            outstanding = self._write_tickets[key]
            outstanding.remove(ticket)
            if not outstanding:
                # Drop the emptied entry: without this the dict gained one
                # dead key per written block for the life of the store.
                del self._write_tickets[key]
            st.add_written(iv.lo, iv.hi)
            if st.sealed and st.data is not None:
                # Fully written + released: write-once makes the buffer
                # immutable from here on — freeze it so zero-copy read
                # views (and peer serves of them) are provably safe.
                st.data.flags.writeable = False
            effects.extend(self._wake_readers(st))
        effects.extend(self._pump_allocs())
        return effects

    def abandon_pending_allocs(self) -> None:
        """Drop queued allocations (shutdown: pending prefetches only).

        Must not be called while read/write grants may still be queued — the
        driver guarantees all task work completed first.
        """
        self._alloc_queue.clear()

    def prefetch(self, interval: Interval) -> list[Effect]:
        """Warm a block without pinning it (no grant is produced)."""
        desc = self._desc(interval.array)
        interval.validate_against(desc)
        st = self._state(interval.array, interval.block)
        if st.status == _RESIDENT or st.status in (_LOADING, _FETCHING):
            return []
        if st.status == _SPILLING:
            self.metrics.inc("prefetch_dropped")
            return []  # will be dropped; re-request later
        if st.on_disk:
            return self._alloc_then(st, lambda: self._begin_load(st),
                                    prefetch=True)
        if st.desc.name in self._remote_arrays:
            return self._alloc_then(st, lambda: self._begin_fetch(st),
                                    prefetch=True)
        return []  # not yet written anywhere: nothing to warm

    # -- async completions ---------------------------------------------------------

    def on_loaded(self, array: str, block: int, data: np.ndarray) -> list[Effect]:
        """Driver finished a ``load`` effect."""
        st = self._state(array, block)
        if st.status != _LOADING:
            raise StorageError(f"unexpected load completion for {array}[{block}]")
        self._install(st, data)
        self.metrics.inc("loads", label=array)
        self.metrics.inc("bytes_loaded", st.nbytes)
        effects = self._wake_readers(st)
        # The block just became evictable (if unpinned): queued allocations
        # may now be satisfiable by reclaiming it.
        effects.extend(self._pump_allocs())
        return effects

    def on_remote_data(self, array: str, block: int, data: np.ndarray) -> list[Effect]:
        """Driver finished a ``fetch_remote`` effect.

        Duplicate deliveries (the fetch path retransmits requests whose
        reply may merely be slow or dropped) are ignored rather than
        treated as protocol violations.
        """
        st = self._state(array, block)
        if st.status != _FETCHING:
            self.metrics.inc("stale_blockdata")
            return []
        self._install(st, data)
        st.remote = True
        self.metrics.inc("remote_fetches")
        effects = self._wake_readers(st)
        effects.extend(self._pump_allocs())
        return effects

    def on_spilled(self, array: str, block: int) -> list[Effect]:
        """Driver finished a ``spill`` effect: the block is now on disk."""
        st = self._state(array, block)
        if st.status != _SPILLING:
            raise StorageError(f"unexpected spill completion for {array}[{block}]")
        st.on_disk = True
        self.metrics.inc("spills")
        self.metrics.inc("bytes_spilled", st.nbytes)
        if st.pinned:
            # Someone requested it again while it was being written out;
            # keep the resident copy.
            st.status = _RESIDENT
            return self._wake_readers(st)
        self._free(st)
        st.status = _ABSENT
        effects = [Effect("drop", array, block)]
        effects.extend(self._pump_allocs())
        return effects

    # -- failure completions ---------------------------------------------------------

    def _fail_waiters(self, st: _BlockState, error: str) -> list[Effect]:
        """Deny every blocked read waiter of ``st`` (fail fast, no stall)."""
        effects = [
            Effect("deny", st.desc.name, st.block, ticket=t, error=error)
            for t in st.read_waiters
        ]
        st.read_waiters = []
        return effects

    def on_load_failed(self, array: str, block: int, error: str) -> list[Effect]:
        """Driver's ``load`` effect failed permanently (retries exhausted)."""
        st = self._state(array, block)
        if st.status != _LOADING:
            raise StorageError(f"unexpected load failure for {array}[{block}]")
        self.in_use -= st.nbytes  # release the reservation made at _begin_load
        if st.segment is not None:
            # The destination segment pre-allocated at _begin_load holds
            # nothing readable; return it before anyone can lease it.
            self.segment_pool.free(st.segment)
            st.segment = None
        st.status = _ABSENT
        self.metrics.inc("load_failures")
        effects = self._fail_waiters(st, error)
        effects.extend(self._pump_allocs())
        return effects

    def on_fetch_failed(self, array: str, block: int, error: str) -> list[Effect]:
        """Driver's ``fetch_remote`` effect failed permanently.

        Duplicate failure notices (the fetch path may retransmit) after the
        state already unwound are ignored.
        """
        st = self._state(array, block)
        if st.status != _FETCHING:
            return []
        self.in_use -= st.nbytes
        st.status = _ABSENT
        self.metrics.inc("fetch_failures")
        effects = self._fail_waiters(st, error)
        effects.extend(self._pump_allocs())
        return effects

    def on_spill_failed(self, array: str, block: int, error: str) -> list[Effect]:
        """Driver's ``spill`` effect failed: keep the block resident.

        The data is still in memory, so nothing is lost — the reclaim that
        wanted this block's bytes simply stays queued and a later pump will
        retry the spill (the I/O filter retries transient errors below this
        level; a permanently unwritable scratch disk keeps the block pinned
        in memory, degrading capacity rather than correctness).
        """
        st = self._state(array, block)
        if st.status != _SPILLING:
            raise StorageError(f"unexpected spill failure for {array}[{block}]")
        st.status = _RESIDENT
        self.metrics.inc("spill_failures")
        return self._wake_readers(st)

    # -- task abandonment / re-execution ----------------------------------------------

    def abandon_write(self, ticket: Ticket) -> list[Effect]:
        """Retract a granted write ticket without publishing its range.

        The write-once discipline makes task re-execution cheap: nothing
        the failed task wrote was ever readable (ranges publish only at
        release), so abandoning simply forgets the ticket and discards the
        block buffer when nothing else uses it.  The same intervals can
        then be requested again by the re-executed task.
        """
        if ticket.permission is not Permission.WRITE:
            raise StorageError("abandon_write() is for write tickets")
        if ticket.released:
            raise StorageError(f"ticket {ticket.tid} released twice")
        if not ticket.granted:
            raise StorageError(
                f"ticket {ticket.tid} abandoned before being granted")
        ticket.released = True
        if self.auditor is not None:
            self.auditor.note_abandoned(self.node, ticket)
        iv = ticket.interval
        st = self._state(iv.array, iv.block)
        st.writers -= 1
        key = (iv.array, iv.block)
        outstanding = self._write_tickets[key]
        outstanding.remove(ticket)
        if not outstanding:
            del self._write_tickets[key]
        self.metrics.inc("writes_abandoned")
        if (not st.pinned and not st.written and st.data is not None
                and st.status == _RESIDENT):
            # No released range and no other user: the buffer holds only
            # the failed task's partial output — discard it.
            self._free(st)
            st.status = _ABSENT
        return self._pump_allocs()

    # -- rehoming (graceful degradation) -----------------------------------------------

    def _purge_blocks(self, name: str) -> list[Effect]:
        """Forget all block state of ``name`` (must be unpublished/unpinned)."""
        effects: list[Effect] = []
        for key, st in [(k, s) for k, s in self._blocks.items() if k[0] == name]:
            if st.pinned or st.status in (_LOADING, _SPILLING, _FETCHING):
                raise StorageError(
                    f"cannot rehome {name!r}: block {st.block} is in use "
                    f"on node {self.node}"
                )
            if st.data is not None:
                self._free(st)
            effects.append(Effect("drop", name, st.block))
            del self._blocks[key]
        return effects

    def rehome_local(self, desc: ArrayDesc, *, on_disk: bool = False) -> list[Effect]:
        """This node becomes the home of a (never-written) rerouted array.

        With ``on_disk=True`` the array's bytes already sit in this node's
        scratch directory (node-loss recovery re-seeded an initial array
        from the shared filesystem), so every block is marked sealed and
        loadable rather than awaiting a producer.
        """
        if desc.name not in self.arrays:
            self.arrays[desc.name] = desc
        self._remote_arrays.discard(desc.name)
        effects = self._purge_blocks(desc.name)
        if on_disk:
            for b in desc.blocks():
                st = self._state(desc.name, b)
                st.on_disk = True
                st.sealed = True
                st.written = [desc.block_bounds(b)]
        effects.extend(self._pump_allocs())
        return effects

    def rehome_remote(self, name: str) -> list[Effect]:
        """A rerouted array's home moved elsewhere; keep a remote handle."""
        if name not in self.arrays:
            return []
        self._remote_arrays.add(name)
        effects = self._purge_blocks(name)
        effects.extend(self._pump_allocs())
        return effects

    def ensure_remote(self, desc: ArrayDesc) -> None:
        """Register a remote handle if the array is unknown (reroute prep)."""
        if desc.name not in self.arrays:
            self.register_remote(desc)

    def recover_remote(self, desc: ArrayDesc) -> list[Effect]:
        """A lost array found a new home elsewhere; keep/repair a remote view.

        Three cases, all safe under write-once: unknown here (register a
        remote handle), already remote (keep it — any cached sealed blocks
        stay byte-valid because reconstruction recomputes identical bytes),
        or locally homed (a double failure moved it off this node too:
        demote to remote, dropping local state).
        """
        if desc.name not in self.arrays:
            self.register_remote(desc)
            return []
        if desc.name in self._remote_arrays:
            return []
        return self.rehome_remote(desc.name)

    # -- introspection ---------------------------------------------------------------

    def availability_map(self) -> dict[tuple[str, int], bool]:
        """(array, block) -> is resident and readable right now.

        This is the map the local scheduler queries "to know which data are
        available in memory and which are not".
        """
        out = {}
        for key, st in self._blocks.items():
            out[key] = st.status == _RESIDENT and st.sealed
        return out

    def resident_arrays(self) -> set[str]:
        """Arrays all of whose blocks are resident and sealed."""
        out = set()
        for name, desc in self.arrays.items():
            if all(
                (st := self._blocks.get((name, b))) is not None
                and st.status == _RESIDENT
                and st.sealed
                for b in desc.blocks()
            ):
                out.add(name)
        return out

    @property
    def headroom(self) -> int:
        return self.budget - self.in_use

    def peek_block(self, name: str, block: int) -> np.ndarray | None:
        """Resident sealed data of a block (read-only), else None.

        For post-run inspection only — does not pin, touch LRU, or count as
        a read.
        """
        st = self._blocks.get((name, block))
        if st is None or st.data is None or not st.sealed:
            return None
        view = st.data[:]
        view.flags.writeable = False
        return view

    def block_on_disk(self, name: str, block: int) -> bool:
        st = self._blocks.get((name, block))
        return bool(st is not None and st.on_disk)

    @property
    def alloc_queue_depth(self) -> int:
        return len(self._alloc_queue)

    def _why_blocked(self, st: _BlockState) -> str:
        if st.status in (_LOADING, _FETCHING):
            return f"{st.status} in flight"
        if st.status == _SPILLING:
            return "spill in flight"
        if st.status == _RESIDENT:
            return "awaiting writer release of the requested range"
        if st.on_disk:
            return "load not yet started (allocation queued?)"
        if st.desc.name in self._remote_arrays:
            return "remote fetch not yet started"
        return "read-before-write: range never written"

    def debug_snapshot(self) -> dict:
        """Structured liveness dump for the stall watchdog.

        Called from the watchdog thread while the owning filter may be
        mutating the store, so it only reads (shallow copies first) and the
        caller tolerates exceptions from torn iterations.
        """
        blocked_reads = []
        for (name, block), st in list(self._blocks.items()):
            for t in list(st.read_waiters):
                blocked_reads.append({
                    "ticket": t.tid, "array": name, "block": block,
                    "lo": t.interval.lo, "hi": t.interval.hi,
                    "why": self._why_blocked(st),
                })
        write_tickets = [
            {"ticket": t.tid, "array": a, "block": b, "granted": t.granted}
            for (a, b), tickets in list(self._write_tickets.items())
            for t in list(tickets)
        ]
        alloc_queue = [{"bytes": need} for need, _ in list(self._alloc_queue)]
        # Non-zero recovery counters let the watchdog distinguish a node
        # that is *retrying* (faults being absorbed) from one that stalled.
        recovery = {
            k: self.metrics.get(k)
            for k in ("io_retries", "io_failures", "faults_injected",
                      "task_reexecutions", "fetch_retransmits",
                      "lookup_retransmits", "lookup_restarts",
                      "load_failures", "fetch_failures", "spill_failures",
                      "writes_abandoned")
        }
        return {
            "in_use": self.in_use,
            "budget": self.budget,
            "blocked_reads": blocked_reads,
            "write_tickets": write_tickets,
            "alloc_queue": alloc_queue,
            "recovery": {k: v for k, v in recovery.items() if v},
        }

    # -- internals ----------------------------------------------------------------------

    def _outstanding_writes(self, array: str, block: int) -> list[Ticket]:
        return self._write_tickets.get((array, block), [])

    def _desc(self, name: str) -> ArrayDesc:
        try:
            return self.arrays[name]
        except KeyError:
            raise UnknownArrayError(
                f"array {name!r} unknown to node {self.node}"
            ) from None

    def _state(self, name: str, block: int) -> _BlockState:
        desc = self._desc(name)
        desc.block_bounds(block)  # bounds check
        key = (name, block)
        st = self._blocks.get(key)
        if st is None:
            st = _BlockState(desc=desc, block=block)
            self._blocks[key] = st
        return st

    def _drive_read(self, st: _BlockState, ticket: Ticket) -> list[Effect]:
        iv = ticket.interval
        st.lru = next(self._clock)
        if st.status == _RESIDENT and st.covers(iv.lo, iv.hi):
            self.metrics.inc("read_hits")
            return [self._grant_read(st, ticket)]
        self.metrics.inc("read_waits")
        st.read_waiters.append(ticket)
        if st.status in (_LOADING, _FETCHING, _SPILLING):
            return []  # grant will follow the in-flight transition
        if st.status == _RESIDENT:
            return []  # waiting for the range to be written & released
        # ABSENT:
        if st.on_disk:
            return self._alloc_then(st, lambda: self._begin_load(st))
        if st.desc.name in self._remote_arrays:
            return self._alloc_then(st, lambda: self._begin_fetch(st))
        # Local array not written yet: read-before-write blocks until the
        # writer releases (immutable-object paradigm).
        return []

    def _grant_read(self, st: _BlockState, ticket: Ticket) -> Effect:
        assert st.data is not None
        view = st.data[ticket.interval.local_slice(st.desc)]
        view.flags.writeable = False
        ticket.data = view
        ticket.generation = st.generation
        ticket.handle = self._make_handle(st, ticket)
        ticket.granted = True
        st.readers += 1
        if self.auditor is not None:
            self.auditor.note_granted(self.node, ticket)
        return Effect("grant_read", st.desc.name, st.block, ticket=ticket)

    def _grant_write(self, st: _BlockState, ticket: Ticket) -> list[Effect]:
        if st.data is None:
            self._allocate_buffer(st)
            st.status = _RESIDENT
        ticket.data = st.data[ticket.interval.local_slice(st.desc)]
        ticket.handle = self._make_handle(st, ticket)
        ticket.granted = True
        if self.auditor is not None:
            self.auditor.note_granted(self.node, ticket)
        return [Effect("grant_write", st.desc.name, st.block, ticket=ticket)]

    def _make_handle(self, st: _BlockState, ticket: Ticket) -> Any:
        """A picklable descriptor of the grant's span (pool mode only)."""
        if self.segment_pool is None or st.segment is None:
            return None
        from repro.core.shm import BlockHandle

        sl = ticket.interval.local_slice(st.desc)
        return BlockHandle(
            segment=st.segment,
            offset=sl.start * st.desc.itemsize,
            count=sl.stop - sl.start,
            dtype=st.desc.dtype,
            generation=st.generation,
        )

    def _wake_readers(self, st: _BlockState) -> list[Effect]:
        effects: list[Effect] = []
        still_waiting: list[Ticket] = []
        for ticket in st.read_waiters:
            if st.status == _RESIDENT and st.covers(ticket.interval.lo, ticket.interval.hi):
                effects.append(self._grant_read(st, ticket))
            else:
                still_waiting.append(ticket)
        st.read_waiters = still_waiting
        return effects

    # -- memory management -----------------------------------------------------------

    def _allocate_buffer(self, st: _BlockState) -> None:
        if self.segment_pool is not None:
            # Segment-backed write buffer: fresh shm pages arrive zeroed,
            # so semantics match np.zeros without touching every page.
            st.segment = self.segment_pool.allocate(st.nbytes)
            st.data = self.segment_pool.ndarray(
                st.segment, st.desc.block_length(st.block), st.desc.dtype)
        else:
            st.data = np.zeros(st.desc.block_length(st.block),
                               dtype=st.desc.dtype)
        self.in_use += st.nbytes

    def _install(self, st: _BlockState, data: np.ndarray) -> None:
        # Memory was reserved by _begin_load/_begin_fetch; only attach data.
        # The delivered array becomes the block buffer: the driver must not
        # mutate it afterwards.
        expected = st.desc.block_length(st.block)
        if data.shape != (expected,):
            raise StorageError(
                f"driver delivered shape {data.shape} for block of length {expected}"
            )
        if self.segment_pool is not None:
            # Every sealed buffer must live in a named segment so grants
            # can carry handles.  Loads arrive already in the segment
            # pre-allocated by _begin_load; remote fetches arrive as wire
            # bytes and are staged into a fresh segment here (the copy
            # models the network transfer, not data-plane overhead).
            if st.segment is None:
                st.segment = self.segment_pool.allocate(st.nbytes)
            view = self.segment_pool.ndarray(st.segment, expected,
                                             st.desc.dtype)
            src = np.asarray(data)
            if (src.__array_interface__["data"][0]
                    != view.__array_interface__["data"][0]):
                view[:] = src
            view.flags.writeable = False
            st.data = view
        else:
            st.data = np.ascontiguousarray(data, dtype=st.desc.dtype)
            # Loaded/fetched blocks are sealed: freeze the buffer so every
            # view handed out of it is provably immutable (no-op when the
            # driver delivered a zero-copy read-only view already).
            st.data.flags.writeable = False
        st.status = _RESIDENT
        st.sealed = True
        st.written = [st.desc.block_bounds(st.block)]

    def _free(self, st: _BlockState) -> None:
        assert st.data is not None
        self.in_use -= st.nbytes
        st.data = None
        if st.segment is not None:
            # Unlinks now or when the last worker lease drains; either way
            # no new grant can reach the old bytes (generation bump below).
            self.segment_pool.free(st.segment)
            st.segment = None
        # The buffer is gone: bump the seal generation so cache keys minted
        # from the old grants can never match again, and proactively drop
        # any decoded operands that were built over those bytes.
        st.generation += 1
        if self.opcache is not None:
            self.opcache.invalidate(st.desc.name, st.block)

    def _alloc_then(self, st: _BlockState, thunk, *, prefetch: bool = False) -> list[Effect]:
        """Run ``thunk`` once ``st``'s block fits in memory.

        Demand allocations (read/write grants) may evict (LRU reclaim) and
        queue when memory is tight.  Prefetch allocations only ever use
        *free* headroom and are dropped otherwise: the local scheduler
        prefetches into "the amount of memory available" (Section III-C) —
        an evicting prefetch would push out the most valuable block in the
        store (the still-hot one whose successor task is about to become
        ready), and a queued prefetch can deadlock a small demand behind a
        block pinned by the demanding task itself.
        """
        need = st.nbytes
        effects: list[Effect] = []
        if prefetch:
            if self.in_use + need <= self.budget:
                result = thunk()
                effects.extend([result] if isinstance(result, Effect) else result)
            else:
                self.metrics.inc("prefetch_dropped")
            return effects
        if self.in_use + need > self.budget:
            effects.extend(self._reclaim(self.in_use + need - self.budget))
        if self.in_use + need <= self.budget:
            result = thunk()
            effects.extend([result] if isinstance(result, Effect) else result)
        else:
            self._alloc_queue.append((need, thunk))
            self.metrics.inc("allocs_queued")
            self.metrics.observe_max("alloc_queue_depth", len(self._alloc_queue))
        return effects

    def _begin_load(self, st: _BlockState) -> list[Effect]:
        self.in_use += st.nbytes  # reserve; the buffer arrives via on_loaded
        st.status = _LOADING
        if self.segment_pool is not None and st.segment is None:
            # Pre-allocate the destination segment so the I/O filter can
            # read the file bytes straight into shared memory (no staging
            # buffer, no copy — the load IS the segment fill).
            st.segment = self.segment_pool.allocate(st.nbytes)
        return [Effect("load", st.desc.name, st.block,
                       segment=st.segment or "")]

    def _begin_fetch(self, st: _BlockState) -> list[Effect]:
        self.in_use += st.nbytes  # reserve
        st.status = _FETCHING
        return [Effect("fetch_remote", st.desc.name, st.block)]

    def _reclaim(self, want_bytes: int) -> list[Effect]:
        """Free at least ``want_bytes`` if possible: LRU over unpinned blocks."""
        effects: list[Effect] = []
        candidates = sorted(
            (
                st
                for st in self._blocks.values()
                if st.status == _RESIDENT and not st.pinned and st.sealed
            ),
            key=lambda s: s.lru,
        )
        freed = 0
        pending = 0  # bytes that will free once in-flight spills complete
        for st in candidates:
            if freed + pending >= want_bytes:
                break
            if st.on_disk or st.remote:
                # A persistent copy exists (local disk, or the owning peer
                # for cached remote blocks): dropping is safe.
                freed += st.nbytes
                self._free(st)
                st.status = _ABSENT
                self.metrics.inc("drops")
                effects.append(Effect("drop", st.desc.name, st.block))
            else:
                # Dirty (never persisted): must spill before the memory is
                # reusable; freeing happens in on_spilled.
                st.status = _SPILLING
                assert st.data is not None
                pending += st.nbytes
                effects.append(Effect("spill", st.desc.name, st.block, data=st.data))
        return effects

    def _pump_allocs(self) -> list[Effect]:
        """Admit queued allocations as memory frees up.

        FIFO order is preferred, but an entry that fits may overtake one
        that does not: with strict FIFO, a large blocked allocation at the
        head would starve a small one whose completion is the only way the
        large one's memory ever frees (tasks pin their inputs while waiting
        for output grants).

        Each round is a *single pass* over the queue with a skip threshold:
        once an entry of ``need`` bytes fails to fit even after a reclaim,
        every remaining entry at least as large is skipped for the rest of
        the pass — admissions only consume memory, so retrying them can
        only fail again.  (The previous implementation restarted the scan
        from the head after every admission and re-ran the LRU reclaim
        scan per entry per restart: O(n²) thunk scans with redundant spill
        walks on deep queues.)  A further round runs only if the previous
        one admitted something, which may have dropped enough clean blocks
        to unblock a previously skipped entry.
        """
        effects: list[Effect] = []
        progress = True
        while progress and self._alloc_queue:
            progress = False
            min_failed: int | None = None  # smallest need that failed
            still_blocked: deque[tuple[int, Any]] = deque()
            while self._alloc_queue:
                need, thunk = self._alloc_queue.popleft()
                if min_failed is not None and need >= min_failed:
                    still_blocked.append((need, thunk))
                    continue
                if self.in_use + need > self.budget:
                    effects.extend(
                        self._reclaim(self.in_use + need - self.budget))
                if self.in_use + need <= self.budget:
                    result = thunk()
                    if isinstance(result, Effect):
                        effects.append(result)
                    else:
                        effects.extend(result)
                    progress = True
                else:
                    min_failed = need
                    still_blocked.append((need, thunk))
            self._alloc_queue = still_blocked
        return effects
