"""Cooperative run cancellation.

A :class:`CancelToken` is the one-way switch a supervisor hands to
``DOoCEngine.run(cancel=...)``.  Setting it does **not** kill threads or
tear streams: the global scheduler notices the token, stops dispatching,
broadcasts a drain request, and waits for every node to report its
in-flight tasks finished before running the normal wind-down.  The run
then raises :class:`~repro.core.errors.RunCancelled` with every ticket
released, /dev/shm unlinked, and nothing torn on disk — exactly the
same exit hygiene as a successful run.

The token is therefore safe to set from any thread at any time,
including before ``run()`` starts (the run cancels before dispatching
anything) and after it finished (the completed run is not retroactively
failed — ``run()`` raises only if the scheduler actually drained).
"""

from __future__ import annotations

import threading

__all__ = ["CancelToken"]


class CancelToken:
    """A thread-safe, one-shot cancellation flag with a reason.

    The first ``cancel(reason)`` wins; later calls are no-ops so the
    recorded reason always names the original canceller (user request,
    deadline, preemption).  ``wait()`` lets supervisors block on the
    token with an interruptible timeout instead of polling.
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._reason = "cancelled"

    def cancel(self, reason: str = "cancelled") -> bool:
        """Request cancellation.  Returns True if this call flipped the
        token, False if it was already cancelled (reason unchanged)."""
        with self._lock:
            if self._event.is_set():
                return False
            self._reason = str(reason)
            self._event.set()
            return True

    def is_set(self) -> bool:
        return self._event.is_set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    @property
    def reason(self) -> str:
        """The first canceller's stated reason (meaningful once set)."""
        with self._lock:
            return self._reason

    def wait(self, timeout: float | None = None) -> bool:
        """Block until cancelled (or ``timeout`` elapses); True if set."""
        return self._event.wait(timeout)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"cancelled: {self.reason!r}" if self.cancelled else "armed"
        return f"<CancelToken {state}>"
