"""The decoded-operand cache and the data-plane mode knob.

The block data plane moves *untyped bytes*; typed operands (e.g. the
binary-CRS sub-matrices of the SpMV programs) are decoded from those
bytes inside task bodies.  Without a cache, a sub-matrix that stays
memory-resident across K x iters multiply tasks is re-decoded K x iters
times — pure overhead the paper's overlap argument never accounts for.

:class:`DecodedOperandCache` memoizes decoded operands per node, keyed on
``(array, seal-generation)``: the generation is a per-block counter the
storage layer bumps whenever a block's buffer is reclaimed (spill-drop,
evict, delete, rehome), so a cache entry can never outlive the bytes it
was decoded from.  The cache is bounded (LRU by decoded size) and
thread-safe — worker filters of one node share it.

Task bodies opt in through :func:`cached_decode`; the worker filter
injects an :class:`OperandContext` (cache handle + the generations of the
granted read tickets) into the task's ``meta`` under
:data:`OPERAND_CONTEXT_KEY`.  Code paths that call task functions
directly (references, the DES testbed) simply decode — no context, no
cache, same bytes.

``DOOC_DATA_PLANE=legacy`` re-enables the pre-zero-copy behavior (loads
round-trip through a defensive copy, peer serves copy the block, the
operand cache is disabled).  It exists so `python -m repro bench` can
measure the zero-copy data plane against its predecessor on the same
build; production runs should never set it.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable

__all__ = [
    "OPERAND_CONTEXT_KEY",
    "DATA_PLANE_ENV",
    "legacy_copy_plane",
    "resolve_data_plane",
    "DecodedOperandCache",
    "OperandContext",
    "cached_decode",
]

#: reserved ``meta`` key under which workers pass the OperandContext
OPERAND_CONTEXT_KEY = "__operands__"

#: environment switch: "legacy" restores the copying data plane
DATA_PLANE_ENV = "DOOC_DATA_PLANE"


def legacy_copy_plane() -> bool:
    """Is the legacy (copying) data plane requested via the environment?

    This samples ``os.environ`` *now*.  The engine snapshots the mode
    once at construction (:func:`resolve_data_plane`) and threads the
    result through the storage and I/O filters, so a mid-run change to
    ``DOOC_DATA_PLANE`` cannot produce a mixed copying/zero-copy plane —
    only the engine's constructor should consult this.
    """
    return os.environ.get(DATA_PLANE_ENV, "").strip().lower() == "legacy"


def resolve_data_plane(value: str | None = None) -> str:
    """Normalize a data-plane choice to ``"zerocopy"`` or ``"legacy"``.

    ``value=None`` (the default) samples the environment — once, at the
    single call site in ``DOoCEngine.__init__``; an explicit value
    overrides the environment entirely.
    """
    if value is None:
        value = "legacy" if legacy_copy_plane() else "zerocopy"
    value = value.strip().lower()
    if value not in ("zerocopy", "legacy"):
        raise ValueError(
            f"unknown data plane {value!r}: expected 'zerocopy' or 'legacy'")
    return value


class DecodedOperandCache:
    """Bounded, thread-safe LRU cache of decoded block operands.

    Keys are ``(array, generations)`` where ``generations`` is the tuple
    of per-block seal generations of the read grants the operand was
    decoded from; a reclaim bumps the generation, so stale entries simply
    stop being found (and are proactively removed by
    :meth:`invalidate`, which the storage layer calls on every buffer
    free so decoded views never pin reclaimed memory).
    """

    def __init__(self, budget_bytes: int, metrics: Any = None):
        if budget_bytes < 0:
            raise ValueError("cache budget must be non-negative")
        self.budget = int(budget_bytes)
        self.metrics = metrics
        self._lock = threading.Lock()
        # (array, generations) -> (value, nbytes); insertion order = LRU
        self._entries: OrderedDict[tuple, tuple[Any, int]] = OrderedDict()
        self.in_use = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def _inc(self, name: str, n: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, n)

    # -- lookup / insert ----------------------------------------------------

    def get(self, array: str, generations: tuple[int, ...]) -> Any | None:
        """The cached decoded operand, or None (counts a hit/miss)."""
        key = (array, tuple(generations))
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                self._inc("opcache_misses")
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            self._inc("opcache_hits")
            return entry[0]

    def put(self, array: str, generations: tuple[int, ...],
            value: Any, nbytes: int) -> bool:
        """Insert a decoded operand; returns False if it cannot fit."""
        nbytes = int(nbytes)
        if nbytes > self.budget:
            self._inc("opcache_rejected")
            return False
        key = (array, tuple(generations))
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self.in_use -= old[1]
            while self._entries and self.in_use + nbytes > self.budget:
                _, (_, freed) = self._entries.popitem(last=False)
                self.in_use -= freed
                self.evictions += 1
                self._inc("opcache_evictions")
            self._entries[key] = (value, nbytes)
            self.in_use += nbytes
            if self.metrics is not None:
                self.metrics.observe_max("opcache_bytes", self.in_use)
        return True

    # -- invalidation -------------------------------------------------------

    def invalidate(self, array: str, block: int | None = None) -> int:
        """Drop every entry decoded from ``array`` (any generation).

        Called by the storage layer whenever one of the array's block
        buffers is reclaimed; entries are per-array (an operand may span
        blocks), so the whole array's entries go.  Returns the count.
        """
        del block  # reclaims are per-block, entries per-array: drop all
        with self._lock:
            stale = [k for k in self._entries if k[0] == array]
            for key in stale:
                _, nbytes = self._entries.pop(key)
                self.in_use -= nbytes
            self.invalidations += len(stale)
            if stale:
                self._inc("opcache_invalidations", len(stale))
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.in_use = 0

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "in_use": self.in_use,
                "budget": self.budget,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }


@dataclass(frozen=True)
class OperandContext:
    """What a task body needs to use the node's operand cache.

    ``generations`` maps each input array to the tuple of seal
    generations of the read tickets backing it (one per block, in block
    order) — the freshness proof for cache keys.
    """

    cache: DecodedOperandCache | None
    generations: dict[str, tuple[int, ...]]

    def key_for(self, array: str) -> tuple[int, ...] | None:
        return self.generations.get(array)


def cached_decode(meta: dict, array: str, raw: Any,
                  decode: Callable[[Any], Any],
                  size_of: Callable[[Any], int] | None = None) -> Any:
    """Decode ``raw`` (the granted view of ``array``) through the cache.

    Falls back to a plain ``decode(raw)`` when no operand context was
    injected (direct calls, cache disabled) or the array's generations
    are unknown.  ``size_of`` estimates the decoded size for the LRU
    accounting; the raw buffer's size is used when omitted.
    """
    ctx = meta.get(OPERAND_CONTEXT_KEY)
    if not isinstance(ctx, OperandContext) or ctx.cache is None:
        return decode(raw)
    gens = ctx.key_for(array)
    if gens is None:
        return decode(raw)
    value = ctx.cache.get(array, gens)
    if value is not None:
        return value
    value = decode(raw)
    if size_of is not None:
        nbytes = size_of(value)
    else:
        nbytes = int(getattr(raw, "nbytes", 0)) or len(raw)
    ctx.cache.put(array, gens, value, nbytes)
    return value
