"""Deterministic random-number tree.

Every stochastic component in the library (matrix generators, GPFS jitter,
directory peer selection, hypothesis-free fuzz helpers) draws from a named
child of a single root seed, so each table row regenerates bit-for-bit and
adding a new consumer never perturbs existing streams.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _digest_seed(*parts: object) -> int:
    """Map a path of labels to a stable 128-bit integer seed."""
    h = hashlib.blake2b(digest_size=16)
    for part in parts:
        h.update(repr(part).encode())
        h.update(b"\x1f")
    return int.from_bytes(h.digest(), "little")


def spawn(root_seed: int, *path: object) -> np.random.Generator:
    """Return an independent generator for ``path`` under ``root_seed``.

    The mapping is pure: the same (seed, path) always yields an identical
    stream, and distinct paths yield independent streams.
    """
    return np.random.default_rng(np.random.SeedSequence(_digest_seed(root_seed, *path)))


class RngTree:
    """A convenience wrapper binding a root seed.

    >>> tree = RngTree(7)
    >>> g1 = tree.child("gpfs", "node", 3)
    >>> g2 = tree.child("gpfs", "node", 3)
    >>> float(g1.random()) == float(g2.random())
    True
    """

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)

    def child(self, *path: object) -> np.random.Generator:
        """Generator for a labelled sub-stream."""
        return spawn(self.root_seed, *path)

    def subtree(self, *path: object) -> RngTree:
        """A new tree rooted at a child label (for handing to a component)."""
        return RngTree(_digest_seed(self.root_seed, *path) & (2**63 - 1))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"RngTree(root_seed={self.root_seed})"
