"""Byte / rate / time unit constants and formatting helpers.

The paper mixes decimal storage units (GB/s bandwidth figures, TB matrix
sizes) with binary memory sizes; we follow the same convention: decimal for
bandwidth and file sizes, binary for DRAM capacities.
"""

from __future__ import annotations

import re

KB = 10**3
MB = 10**6
GB = 10**9
TB = 10**12

KiB = 2**10
MiB = 2**20
GiB = 2**30
TiB = 2**40

_DECIMAL = [(TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")]
_BINARY = [(TiB, "TiB"), (GiB, "GiB"), (MiB, "MiB"), (KiB, "KiB")]

_SUFFIXES = {
    "b": 1,
    "kb": KB,
    "mb": MB,
    "gb": GB,
    "tb": TB,
    "kib": KiB,
    "mib": MiB,
    "gib": GiB,
    "tib": TiB,
}

_PARSE_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([A-Za-z]*)\s*$")


def format_bytes(n: float, *, binary: bool = False, digits: int = 2) -> str:
    """Render a byte count with an auto-selected unit suffix."""
    table = _BINARY if binary else _DECIMAL
    for factor, suffix in table:
        if abs(n) >= factor:
            return f"{n / factor:.{digits}f} {suffix}"
    return f"{n:.0f} B"


def format_rate(bytes_per_second: float, *, digits: int = 2) -> str:
    """Render a bandwidth in decimal units per second (paper convention)."""
    return f"{format_bytes(bytes_per_second, digits=digits)}/s"


def format_seconds(seconds: float) -> str:
    """Render a duration compactly (µs to hours)."""
    if seconds < 0:
        return "-" + format_seconds(-seconds)
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    if seconds < 7200.0:
        return f"{seconds / 60.0:.1f} min"
    return f"{seconds / 3600.0:.2f} h"


def parse_bytes(text: str | int | float) -> int:
    """Parse a human byte size such as ``"4 GB"`` or ``"24GiB"`` to bytes.

    Bare numbers are interpreted as bytes.  Raises :class:`ValueError` on
    unrecognized suffixes.
    """
    if isinstance(text, (int, float)):
        return int(text)
    match = _PARSE_RE.match(text)
    if not match:
        raise ValueError(f"unparseable byte size: {text!r}")
    value, suffix = match.groups()
    suffix = suffix.lower() or "b"
    if suffix not in _SUFFIXES:
        raise ValueError(f"unknown byte-size suffix {suffix!r} in {text!r}")
    return int(float(value) * _SUFFIXES[suffix])


def gbit_to_bytes(gbits_per_second: float) -> float:
    """Convert a link rate quoted in Gb/s (e.g. 32 Gb/s QDR IB) to bytes/s."""
    return gbits_per_second * 1e9 / 8.0
