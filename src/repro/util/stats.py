"""Small online statistics used by traces and benchmark reports."""

from __future__ import annotations

import math
from dataclasses import dataclass, field


class OnlineStats:
    """Welford single-pass mean/variance accumulator.

    Numerically stable; O(1) memory.  Used by simulation traces that would
    otherwise have to retain millions of samples.
    """

    __slots__ = ("n", "_mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, x: float) -> None:
        """Fold one sample into the accumulator."""
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def merge(self, other: OnlineStats) -> None:
        """Fold another accumulator in (parallel Welford merge)."""
        if other.n == 0:
            return
        if self.n == 0:
            self.n, self._mean, self._m2 = other.n, other._mean, other._m2
            self.min, self.max = other.min, other.max
            return
        total = self.n + other.n
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.n * other.n / total
        self._mean += delta * other.n / total
        self.n = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def mean(self) -> float:
        return self._mean if self.n else math.nan

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator)."""
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OnlineStats(n={self.n}, mean={self.mean:.4g}, std={self.std:.4g})"


@dataclass
class Percentiles:
    """Retains samples for exact percentile queries (small populations)."""

    samples: list[float] = field(default_factory=list)

    def add(self, x: float) -> None:
        self.samples.append(float(x))

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile, q in [0, 1]."""
        if not self.samples:
            raise ValueError("no samples")
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q}")
        xs = sorted(self.samples)
        pos = q * (len(xs) - 1)
        lo = int(math.floor(pos))
        hi = int(math.ceil(pos))
        if lo == hi:
            return xs[lo]
        frac = pos - lo
        return xs[lo] * (1 - frac) + xs[hi] * frac

    @property
    def median(self) -> float:
        return self.quantile(0.5)
