"""Shared utilities: unit handling, seeded RNG trees, online statistics."""

from repro.util.units import (
    KB,
    MB,
    GB,
    TB,
    KiB,
    MiB,
    GiB,
    TiB,
    format_bytes,
    format_rate,
    format_seconds,
    parse_bytes,
)
from repro.util.rng import RngTree, spawn
from repro.util.stats import OnlineStats, Percentiles

__all__ = [
    "KB",
    "MB",
    "GB",
    "TB",
    "KiB",
    "MiB",
    "GiB",
    "TiB",
    "format_bytes",
    "format_rate",
    "format_seconds",
    "parse_bytes",
    "RngTree",
    "spawn",
    "OnlineStats",
    "Percentiles",
]
