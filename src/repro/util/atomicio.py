"""Crash-atomic file writes (temp file + fsync + rename).

A block, checkpoint payload, or manifest that is half-written when the
process dies must never be observable: a reader sees either the previous
complete content or the new complete content.  POSIX gives exactly one
primitive with that guarantee — ``rename(2)`` within a filesystem — so
every durable artifact in the tree funnels through :func:`atomic_write`:
write the full new content to a temporary file in the *same directory*,
``fsync`` it, then ``os.replace`` it over the destination.  The lint rule
``DOOC005`` (:mod:`repro.analysis.rules`) flags bare ``open(..., "w")`` /
``write_bytes`` on checkpoint/block paths that bypass this helper.

Offset writes (one block spliced into a shared per-array file) are
supported by rewriting the whole file: read-splice-replace, serialized by
a per-path in-process lock (all writers of a scratch file are threads of
one engine process).  That trades bandwidth for the atomicity guarantee —
"trading performance for semantic simplicity", as the storage layer's
reassembly copy already does.
"""

from __future__ import annotations

import os
import tempfile
import threading
from pathlib import Path

__all__ = ["atomic_write"]

_REGISTRY_LOCK = threading.Lock()
_PATH_LOCKS: dict[str, threading.Lock] = {}


def _path_lock(path: Path) -> threading.Lock:
    key = os.fspath(path)
    with _REGISTRY_LOCK:
        lock = _PATH_LOCKS.get(key)
        if lock is None:
            lock = _PATH_LOCKS[key] = threading.Lock()
        return lock


def atomic_write(path: str | Path, data: bytes, *,
                 offset: int | None = None) -> None:
    """Atomically replace ``path``'s content (or splice at ``offset``).

    With ``offset=None`` the file becomes exactly ``data``.  With an
    offset, ``data`` is spliced over the existing content at that byte
    position (zero-padding any gap, matching seek-past-end semantics);
    concurrent spliced writes to one path are serialized in-process.
    In every case the destination is only ever replaced by a complete,
    fsynced temporary — a crash at any point leaves the old content
    intact, never a torn file.
    """
    path = Path(path)
    if offset is not None and offset < 0:
        raise ValueError(f"offset must be non-negative, got {offset}")
    path.parent.mkdir(parents=True, exist_ok=True)
    with _path_lock(path):
        if offset is None:
            content = bytes(data)
        else:
            try:
                existing = path.read_bytes()
            except FileNotFoundError:
                existing = b""
            end = offset + len(data)
            buf = bytearray(max(len(existing), end))
            buf[: len(existing)] = existing
            buf[offset:end] = data
            content = bytes(buf)
        fd, tmp = tempfile.mkstemp(
            prefix=f".{path.name}.", suffix=".tmp", dir=path.parent)
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(content)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
