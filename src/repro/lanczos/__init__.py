"""Lanczos eigensolvers: the iterative method that motivates the paper.

MFDn seeks the lowest eigenvalues of the CI Hamiltonian with the Lanczos
algorithm, whose cost is "dominated by the associated sparse matrix vector
multiplications and (to a smaller extent) orthonormalization of Lanczos
vectors" (Section II).

* :mod:`repro.lanczos.lanczos` — in-core Lanczos with full
  reorthogonalization and Ritz-value extraction;
* :mod:`repro.lanczos.ooc` — out-of-core Lanczos: each iteration's SpMV
  runs as a DOoC program over blocked matrix files, with the (small)
  tridiagonal bookkeeping in core — the paper's envisioned MFDn-on-DOoC
  structure ("our out-of-core code does not implement the full Lanczos
  algorithm required for MFDn ... but SpMV computations account for the
  major part").
"""

from repro.lanczos.basis import DiskBasis, InMemoryBasis
from repro.lanczos.lanczos import LanczosResult, lanczos
from repro.lanczos.ooc import OutOfCoreLanczos

__all__ = ["lanczos", "LanczosResult", "OutOfCoreLanczos",
           "InMemoryBasis", "DiskBasis"]
