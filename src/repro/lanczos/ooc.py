"""Out-of-core Lanczos on the DOoC engine.

The matrix lives as K x K binary-CSR sub-matrix files in the engine's
per-node scratch directories (seeded once); every Lanczos step's SpMV is
executed out-of-core through :class:`repro.spmv.ooc_operator.OutOfCoreMatrix`,
while the tridiagonal bookkeeping and the (dense but small)
reorthogonalization run in core — the division of labour the paper
proposes for MFDn on SSD clusters.
"""

from __future__ import annotations

from pathlib import Path
from collections.abc import Callable
from typing import Dict

import numpy as np

from repro.lanczos.lanczos import LanczosResult, lanczos
from repro.spmv.csr import CSRBlock
from repro.spmv.ooc_operator import OutOfCoreMatrix


class OutOfCoreLanczos:
    """Lanczos whose SpMV runs out-of-core through DOoC."""

    def __init__(
        self,
        blocks: dict[tuple[int, int], CSRBlock],
        *,
        n_nodes: int = 1,
        workers_per_node: int = 2,
        memory_budget_per_node: int = 256 * 2**20,
        scratch_dir: str | Path | None = None,
        policy: str = "interleaved",
        owner: Callable[[int, int], int] | None = None,
        rng_seed: int = 0,
    ):
        self.operator = OutOfCoreMatrix(
            blocks,
            n_nodes=n_nodes,
            workers_per_node=workers_per_node,
            memory_budget_per_node=memory_budget_per_node,
            scratch_dir=scratch_dir,
            policy=policy,
            owner=owner,
            rng_seed=rng_seed,
        )
        self.partition = self.operator.partition
        self.policy = self.operator.policy
        self.k = self.operator.k
        self.n = self.operator.n

    @property
    def engine(self):
        return self.operator.engine

    @property
    def matvec_count(self) -> int:
        return self.operator.matvec_count

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """y = A @ x, executed out-of-core as a DOoC program."""
        return self.operator.matvec(x)

    def solve(
        self,
        *,
        k: int = 50,
        n_eigenvalues: int = 5,
        rng: np.random.Generator | None = None,
        tol: float = 1e-9,
        want_vectors: bool = False,
        basis_on_disk: bool = False,
    ) -> LanczosResult:
        """Run Lanczos with this operator.

        ``basis_on_disk=True`` also keeps the Krylov basis out of core
        (one scratch file per Lanczos vector): both the matrix *and* the
        vectors then live on storage, the full Section-II scenario.
        """
        basis = None
        if basis_on_disk:
            from repro.lanczos.basis import DiskBasis

            basis = DiskBasis(
                self.n,
                scratch_dir=self.engine.scratch_root / "lanczos-basis",
            )
        return lanczos(
            self.matvec, self.n,
            k=k, n_eigenvalues=n_eigenvalues, rng=rng, tol=tol,
            want_vectors=want_vectors, basis=basis,
        )
