"""Lanczos basis stores: where the O(k x D) Krylov vectors live.

Section II sizes the problem: for ¹⁴C at Nmax=10, "the amount of memory
required to store the H matrix together with the eigenvectors is estimated
to take up the entire 200 TBs of memory available on Hopper" — the basis
itself, not just the matrix, breaks the in-core approach.  The solver
therefore takes a pluggable basis store:

* :class:`InMemoryBasis` — the classical dense basis with vectorized
  two-pass reorthogonalization;
* :class:`DiskBasis` — one scratch file per Lanczos vector; the working
  memory is O(D) regardless of the iteration count.  Orthogonalization
  streams stored vectors through memory one at a time (two passes of
  classical Gram-Schmidt, the Kahan-Parlett "twice is enough" rule), and
  Ritz vectors are accumulated by a second streaming pass.
"""

from __future__ import annotations

import shutil
import tempfile
import weakref
from pathlib import Path
from typing import Protocol

import numpy as np

from repro.core.array import ArrayDesc
from repro.core.iofilter import (
    array_path,
    delete_array_file,
    read_array,
    write_array,
)


class BasisStore(Protocol):  # pragma: no cover - typing aid
    """What the Lanczos driver needs from a basis container."""

    def append(self, v: np.ndarray) -> None: ...
    def orthogonalize(self, w: np.ndarray, *, passes: int = 2) -> np.ndarray: ...
    def combine(self, coefficients: np.ndarray) -> np.ndarray: ...
    def __len__(self) -> int: ...
    def last(self, back: int = 1) -> np.ndarray: ...


class InMemoryBasis:
    """Dense basis rows in RAM (the fast default)."""

    def __init__(self, n: int, capacity: int):
        if capacity < 1 or n < 1:
            raise ValueError("capacity and n must be >= 1")
        self._rows = np.zeros((capacity, n), dtype=np.float64)
        self._count = 0

    def append(self, v: np.ndarray) -> None:
        if self._count >= self._rows.shape[0]:
            raise ValueError("basis capacity exceeded")
        self._rows[self._count] = v
        self._count += 1

    def __len__(self) -> int:
        return self._count

    def last(self, back: int = 1) -> np.ndarray:
        if not 1 <= back <= self._count:
            raise IndexError(f"no vector {back} from the end")
        return self._rows[self._count - back]

    def orthogonalize(self, w: np.ndarray, *, passes: int = 2) -> np.ndarray:
        active = self._rows[: self._count]
        for _ in range(passes):
            w = w - active.T @ (active @ w)
        return w

    def combine(self, coefficients: np.ndarray) -> np.ndarray:
        if coefficients.shape[0] != self._count:
            raise ValueError("coefficient length != basis size")
        return self._rows[: self._count].T @ coefficients


class DiskBasis:
    """One binary scratch file per Lanczos vector; O(D) working memory.

    The in-RAM footprint is a single vector at a time, whatever the
    iteration count — the property that makes a 99-iteration run on a
    billion-dimensional basis feasible on nodes with ~1 GB per core.
    """

    def __init__(self, n: int, *, scratch_dir: str | Path | None = None,
                 block_elems: int = 2**16, cache_last: int = 2):
        if n < 1:
            raise ValueError("n must be >= 1")
        if cache_last < 1:
            raise ValueError("cache_last must be >= 1 (Lanczos needs v_j)")
        self.n = n
        if scratch_dir is None:
            # mkdtemp + silent finalizer: bases live until garbage
            # collection, and TemporaryDirectory's implicit-cleanup warning
            # fails suites running under ``-W error::ResourceWarning``.
            scratch_dir = tempfile.mkdtemp(prefix="lanczos-basis-")
            weakref.finalize(self, shutil.rmtree, scratch_dir, True)
        self.scratch = Path(scratch_dir)
        self.scratch.mkdir(parents=True, exist_ok=True)
        self.block_elems = block_elems
        self._count = 0
        # Small hot cache: the recurrence touches v_j and v_{j-1} every
        # step; keeping them resident avoids 2 reads per iteration.
        self._cache: dict[int, np.ndarray] = {}
        self._cache_last = cache_last
        self.reads = 0
        self.writes = 0

    def _desc(self, index: int) -> ArrayDesc:
        return ArrayDesc(f"q{index}", length=self.n,
                         block_elems=self.block_elems)

    def _load(self, index: int) -> np.ndarray:
        if index in self._cache:
            return self._cache[index]
        self.reads += 1
        return read_array(self.scratch, self._desc(index))

    def append(self, v: np.ndarray) -> None:
        v = np.asarray(v, dtype=np.float64)
        if v.shape != (self.n,):
            raise ValueError(f"vector has shape {v.shape}, want ({self.n},)")
        write_array(self.scratch, self._desc(self._count), v)
        self.writes += 1
        self._cache[self._count] = v.copy()
        self._count += 1
        for stale in [i for i in self._cache
                      if i <= self._count - 1 - self._cache_last]:
            del self._cache[stale]

    def __len__(self) -> int:
        return self._count

    def reattach(self, count: int) -> None:
        """Adopt ``count`` vectors already on disk (checkpoint restart).

        A resumed Lanczos run reopens the scratch directory of the
        interrupted one; the vector files are write-once, so trusting them
        is exactly the engine's lineage argument applied to the basis.
        The hot cache is dropped — the next access re-reads from disk.
        """
        if count < 0:
            raise ValueError("count must be >= 0")
        for i in range(count):
            if not array_path(self.scratch, f"q{i}").exists():
                raise FileNotFoundError(
                    f"basis vector {i} missing from {self.scratch}")
        self._count = count
        self._cache.clear()

    def last(self, back: int = 1) -> np.ndarray:
        if not 1 <= back <= self._count:
            raise IndexError(f"no vector {back} from the end")
        return self._load(self._count - back)

    def orthogonalize(self, w: np.ndarray, *, passes: int = 2) -> np.ndarray:
        """Stream every stored vector past ``w`` (classical Gram-Schmidt,
        ``passes`` sweeps)."""
        w = np.asarray(w, dtype=np.float64)
        for _ in range(passes):
            for i in range(self._count):
                q = self._load(i)
                w = w - (q @ w) * q
        return w

    def combine(self, coefficients: np.ndarray) -> np.ndarray:
        """sum_i c_i q_i by streaming accumulation."""
        coefficients = np.asarray(coefficients, dtype=np.float64)
        if coefficients.shape[0] != self._count:
            raise ValueError("coefficient length != basis size")
        out = np.zeros(self.n)
        for i in range(self._count):
            out += coefficients[i] * self._load(i)
        return out

    def cleanup(self) -> None:
        """Remove the backing files (idempotent)."""
        for i in range(self._count):
            delete_array_file(self.scratch, f"q{i}")
