"""In-core Lanczos with full reorthogonalization (pluggable basis store).

A k-step Lanczos procedure applied to a symmetric matrix H and a random
starting vector x spans the Krylov subspace {x, Hx, ..., H^k x}; projecting
H onto it gives a tridiagonal matrix whose extreme eigenvalues (Ritz
values) converge rapidly to H's extreme eigenvalues.  MFDn uses full
reorthogonalization to keep the basis numerically orthogonal; so do we.

The Krylov basis itself lives in a :mod:`repro.lanczos.basis` store:
in-memory by default, or on disk (:class:`~repro.lanczos.basis.DiskBasis`)
so the O(k x D) vectors never occupy more than O(D) of RAM — Section II's
observation that the *eigenvectors together with* the matrix exhaust
Hopper's memory is what this addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable
from pathlib import Path

import numpy as np
import scipy.linalg

from repro.lanczos.basis import BasisStore, InMemoryBasis


@dataclass
class LanczosResult:
    """Outcome of a Lanczos run."""

    eigenvalues: np.ndarray        # converged (or best) Ritz values, ascending
    eigenvectors: np.ndarray | None  # Ritz vectors (n x k), or None
    alphas: np.ndarray             # tridiagonal diagonal
    betas: np.ndarray              # tridiagonal off-diagonal
    iterations: int
    residuals: np.ndarray          # |beta_k * s_{k,i}| error bounds per Ritz pair

    @property
    def tridiagonal(self) -> np.ndarray:
        """The (dense) projected tridiagonal matrix."""
        k = len(self.alphas)
        t = np.diag(self.alphas)
        if k > 1:
            t += np.diag(self.betas[: k - 1], 1) + np.diag(self.betas[: k - 1], -1)
        return t


def lanczos(
    matvec: Callable[[np.ndarray], np.ndarray],
    n: int,
    *,
    k: int = 50,
    n_eigenvalues: int = 5,
    rng: np.random.Generator | None = None,
    v0: np.ndarray | None = None,
    tol: float = 1e-10,
    want_vectors: bool = False,
    basis: BasisStore | None = None,
    checkpoint_dir: str | Path | None = None,
    checkpoint_every: int = 10,
    resume: bool = False,
) -> LanczosResult:
    """Run up to ``k`` Lanczos steps with full reorthogonalization.

    ``matvec`` applies the symmetric operator; convergence is declared
    when the ``n_eigenvalues`` lowest Ritz pairs all have residual bound
    ``|beta_k s_ki| <= tol * |theta_i|`` (early exit).  ``basis`` selects
    where the Krylov vectors are kept (default: in memory); pass a
    :class:`~repro.lanczos.basis.DiskBasis` to bound RAM at O(D).

    ``checkpoint_dir`` persists the recurrence state every
    ``checkpoint_every`` steps; ``resume=True`` restarts from the newest
    intact checkpoint and continues bit-identically.  Resuming requires a
    basis store whose vectors survived the crash — a
    :class:`~repro.lanczos.basis.DiskBasis` on the same scratch
    directory, re-adopted via its ``reattach`` hook (the vector files are
    write-once, so the reattach is exactly the engine's lineage argument
    applied to the basis).
    """
    if k < 1 or n < 1:
        raise ValueError("k and n must be >= 1")
    if n_eigenvalues < 1 or n_eigenvalues > k:
        raise ValueError("n_eigenvalues must be in [1, k]")
    if checkpoint_every < 1:
        raise ValueError("checkpoint_every must be >= 1")
    steps = min(k, n)
    mgr = None
    ckpt = None
    if checkpoint_dir is not None:
        from repro.recovery.checkpoint import CheckpointManager
        mgr = CheckpointManager(checkpoint_dir)
        if resume:
            ckpt = mgr.load_latest()
    if ckpt is not None:
        if basis is None or not hasattr(basis, "reattach"):
            from repro.core.errors import RecoveryError
            raise RecoveryError(
                "resuming Lanczos needs a reattachable basis store "
                "(a DiskBasis on the surviving scratch directory)"
            )
        basis.reattach(int(ckpt.extra["basis_count"]))
        store: BasisStore = basis
        alphas = [float(a) for a in ckpt.arrays["alphas"]]
        betas = [float(b) for b in ckpt.arrays["betas"]]
        v_curr = ckpt.arrays["v_curr"].copy()
        v_prev: np.ndarray | None = ckpt.arrays["v_prev"].copy()
        start = ckpt.step
    else:
        if v0 is not None:
            v = np.asarray(v0, dtype=np.float64).copy()
            if v.shape != (n,):
                raise ValueError(f"v0 has shape {v.shape}, want ({n},)")
        else:
            gen = rng if rng is not None else np.random.default_rng(0)
            v = gen.standard_normal(n)
        norm = np.linalg.norm(v)
        if norm == 0:
            raise ValueError("starting vector is zero")
        v /= norm
        store = basis if basis is not None else InMemoryBasis(n, steps + 1)
        store.append(v)
        v_curr = v
        v_prev = None
        alphas = []
        betas = []
        start = 0

    for j in range(start, steps):
        w = matvec(v_curr)
        alpha = float(v_curr @ w)
        alphas.append(alpha)
        w = w - alpha * v_curr
        if v_prev is not None:
            w = w - betas[-1] * v_prev
        # Full reorthogonalization against every stored basis vector
        # (two sweeps: Kahan-Parlett "twice is enough").
        w = store.orthogonalize(w, passes=2)
        beta = float(np.linalg.norm(w))
        theta, s = _ritz(alphas, betas)
        res = np.abs(beta * s[-1, :])
        m = min(n_eigenvalues, len(theta))
        if j + 1 >= n_eigenvalues and np.all(
            res[:m] <= tol * np.maximum(np.abs(theta[:m]), 1.0)
        ):
            break
        if beta <= 1e-14:  # invariant subspace found
            break
        betas.append(beta)
        v_prev = v_curr
        v_curr = w / beta
        store.append(v_curr)
        if mgr is not None and (j + 1) % checkpoint_every == 0:
            mgr.save(j + 1, {
                "alphas": np.asarray(alphas),
                "betas": np.asarray(betas),
                "v_curr": v_curr,
                "v_prev": v_prev,
            }, {"step": j + 1, "basis_count": len(store)})

    theta, s = _ritz(alphas, betas[: len(alphas) - 1])
    iterations = len(alphas)
    res = (
        np.abs(betas[iterations - 1] * s[-1, :])
        if len(betas) >= iterations
        else np.zeros(len(theta))
    )
    m = min(n_eigenvalues, len(theta))
    vectors = None
    if want_vectors:
        cols = []
        for i in range(m):
            cols.append(store.combine(
                np.concatenate([s[:, i], np.zeros(len(store) - iterations)])))
        vectors = np.stack(cols, axis=1)
    return LanczosResult(
        eigenvalues=theta[:m],
        eigenvectors=vectors,
        alphas=np.array(alphas),
        betas=np.array(betas[: iterations - 1]),
        iterations=iterations,
        residuals=res[:m],
    )


def _ritz(alphas: list[float], betas: list[float]) -> tuple[np.ndarray, np.ndarray]:
    """Eigen-decomposition of the running tridiagonal (ascending)."""
    k = len(alphas)
    if k == 1:
        return np.array(alphas), np.ones((1, 1))
    return scipy.linalg.eigh_tridiagonal(
        np.asarray(alphas), np.asarray(betas[: k - 1])
    )
