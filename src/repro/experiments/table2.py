"""Table II: in-core MFDn on Hopper (modelled), vs published."""

from __future__ import annotations

from dataclasses import dataclass

from repro.ci.cases import TABLE1_CASES
from repro.experiments.paperdata import TABLE2
from repro.experiments.report import format_table, ratio
from repro.models.mfdn_hopper import MFDnHopperModel


@dataclass
class Table2Row:
    name: str
    processors: int
    t_total_s: float
    published_t_total_s: float
    comm_fraction: float
    published_comm_fraction: float
    cpu_hours_per_iteration: float
    published_cpu_hours: float


def run(*, iterations: int = 99) -> list[Table2Row]:
    model = MFDnHopperModel()
    rows = []
    for case in TABLE1_CASES:
        modelled = model.table2_row(case, iterations=iterations)
        pub = TABLE2[case.name]
        rows.append(Table2Row(
            name=case.name,
            processors=case.published_processors,
            t_total_s=modelled["t_total_s"],
            published_t_total_s=pub["t_total_s"],
            comm_fraction=modelled["comm_fraction"],
            published_comm_fraction=pub["comm_fraction"],
            cpu_hours_per_iteration=modelled["cpu_hours_per_iteration"],
            published_cpu_hours=pub["cpu_hours_per_iteration"],
        ))
    return rows


def render(rows: list[Table2Row]) -> str:
    return format_table(
        ["case", "np", "t_total (ours)", "t_total (paper)", "ratio",
         "comm% (ours)", "comm% (paper)", "CPUh/iter (ours)",
         "CPUh/iter (paper)"],
        [
            [
                r.name,
                r.processors,
                f"{r.t_total_s:.0f}",
                f"{r.published_t_total_s:.0f}",
                ratio(r.t_total_s, r.published_t_total_s),
                f"{100 * r.comm_fraction:.0f}%",
                f"{100 * r.published_comm_fraction:.0f}%",
                f"{r.cpu_hours_per_iteration:.2f}",
                f"{r.published_cpu_hours:.2f}",
            ]
            for r in rows
        ],
        title="Table II - 99 Lanczos iterations of MFDn on Hopper (model)",
    )
