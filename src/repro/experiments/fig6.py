"""Fig. 6: runtime relative to the 20 GB/s optimal-I/O lower bound."""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.experiments import table34
from repro.experiments.paperdata import TABLE3, TABLE4
from repro.experiments.report import ascii_chart, format_table
from repro.models.testbed import TestbedWorkload, optimal_io_seconds
from repro.testbed import TestbedParams


@dataclass
class Fig6Point:
    nodes: int
    policy: str
    relative_time: float          # measured / optimal-I/O
    published_relative_time: float


def run(*, node_counts: Sequence[int] = table34.NODE_COUNTS, seed: int = 1,
        params: TestbedParams | None = None) -> list[Fig6Point]:
    workload = TestbedWorkload()
    points = []
    for policy, published in (("simple", TABLE3), ("interleaved", TABLE4)):
        rows = table34.run(policy, node_counts=node_counts, seed=seed,
                           params=params)
        for row in rows:
            nodes = row.measured.nodes
            opt = optimal_io_seconds(workload.total_bytes(nodes),
                                     workload.iterations)
            points.append(Fig6Point(
                nodes=nodes,
                policy=policy,
                relative_time=row.measured.time_s / opt,
                published_relative_time=published[nodes]["time_s"] / opt,
            ))
    return points


def render(points: list[Fig6Point]) -> str:
    body = [
        [p.nodes, p.policy, f"{p.relative_time:.2f}",
         f"{p.published_relative_time:.2f}"]
        for p in points
    ]
    table = format_table(
        ["nodes", "policy", "t/opt (ours)", "t/opt (paper)"],
        body,
        title=("Fig. 6 - runtime relative to the minimum time to read the "
               "data at a sustained 20 GB/s"),
    )
    series = {
        "simple (ours)": [(p.nodes, p.relative_time)
                          for p in points if p.policy == "simple"],
        "interleaved (ours)": [(p.nodes, p.relative_time)
                               for p in points if p.policy == "interleaved"],
        "paper simple": [(p.nodes, p.published_relative_time)
                         for p in points if p.policy == "simple"],
        "paper interleaved": [(p.nodes, p.published_relative_time)
                              for p in points if p.policy == "interleaved"],
    }
    chart = ascii_chart(series, logy=True, xlabel="nodes",
                        ylabel="t/opt",
                        markers={"simple (ours)": "s",
                                 "interleaved (ours)": "i",
                                 "paper simple": "S",
                                 "paper interleaved": "I"})
    return table + "\n\n" + chart
