"""Experiment registry: id -> (run, render)."""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.experiments import (
    extensions,
    fig1,
    fig34,
    fig5,
    fig6,
    fig7,
    table1,
    table2,
    table34,
)


def _run_table3(**kw: Any):
    return table34.run("simple", **kw)


def _run_table4(**kw: Any):
    return table34.run("interleaved", **kw)


EXPERIMENTS: dict[str, tuple[Callable[..., Any], Callable[[Any], str]]] = {
    "fig1": (fig1.run, fig1.render),
    "table1": (table1.run, table1.render),
    "table2": (table2.run, table2.render),
    "table3": (_run_table3, lambda rows: table34.render(rows, "simple")),
    "table4": (_run_table4, lambda rows: table34.render(rows, "interleaved")),
    "fig34": (fig34.run, fig34.render),
    "fig5": (fig5.run, fig5.render),
    "fig6": (fig6.run, fig6.render),
    "fig7": (fig7.run, fig7.render),
    # Section VI future work, implemented as extensions:
    "colocated": (extensions.run_colocated, extensions.render_colocated),
    "energy": (extensions.run_energy, extensions.render_energy),
}


def run_experiment(exp_id: str, **kwargs: Any) -> tuple[Any, str]:
    """Run one experiment; returns (results, rendered text)."""
    if exp_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {exp_id!r}; have {sorted(EXPERIMENTS)}"
        )
    run, render = EXPERIMENTS[exp_id]
    results = run(**kwargs)
    return results, render(results)
