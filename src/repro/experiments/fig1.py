"""Fig. 1: the memory hierarchy (documentation figure)."""

from __future__ import annotations

from repro.experiments.report import format_table
from repro.models.testbed import MEMORY_HIERARCHY
from repro.util.units import format_bytes, format_rate


def run():
    return MEMORY_HIERARCHY


def render(layers=MEMORY_HIERARCHY) -> str:
    rows = [
        [l.name, format_bytes(l.capacity_bytes), f"{l.latency_cycles:,.0f}",
         format_rate(l.bandwidth_bytes_per_s)]
        for l in layers
    ]
    table = format_table(
        ["layer", "capacity", "latency (cycles)", "bandwidth"],
        rows,
        title="Fig. 1 - the memory hierarchy and the DRAM/disk latency gap",
    )
    note = ("SSDs sit inside the gap: ~30x the latency of DRAM instead of "
            "the HDD's ~100x, at 10x the HDD's bandwidth - the opportunity "
            "the paper builds on.")
    return table + "\n" + note
