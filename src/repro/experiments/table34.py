"""Tables III and IV: the SSD-testbed sweeps under both policies."""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.experiments.paperdata import TABLE3, TABLE4
from repro.experiments.report import format_table, ratio
from repro.testbed import TestbedParams, TestbedRow, run_testbed_spmv
from repro.util.units import GB

NODE_COUNTS = (1, 4, 9, 16, 25, 36)


@dataclass
class SweepRow:
    measured: TestbedRow
    published: dict


def run(policy: str, *, node_counts: Sequence[int] = NODE_COUNTS,
        seed: int = 1, params: TestbedParams | None = None) -> list[SweepRow]:
    """Run the sweep for one policy (Table III: simple, IV: interleaved)."""
    published = TABLE3 if policy == "simple" else TABLE4
    rows = []
    for nodes in node_counts:
        measured = run_testbed_spmv(
            nodes, policy, seed=seed,
            params=params or TestbedParams(),
        )
        rows.append(SweepRow(measured=measured, published=published[nodes]))
    return rows


def render(rows: list[SweepRow], policy: str) -> str:
    title = (
        "Table III - SSD testbed, simple scheduling policy"
        if policy == "simple"
        else "Table IV - SSD testbed, intra-iteration interleaving + "
        "per-node aggregation"
    )
    headers = ["nodes", "dim", "size TB", "t (ours)", "t (paper)", "t ratio",
               "GF/s (ours)", "GF/s (paper)", "BW (ours)", "BW (paper)",
               "non-ovl (ours)", "non-ovl (paper)", "CPUh/it"]
    body = []
    for row in rows:
        m, p = row.measured, row.published
        body.append([
            m.nodes,
            f"{m.dimension / 1e6:.0f}M",
            f"{m.size_bytes / 1e12:.2f}",
            f"{m.time_s:.0f}",
            f"{p['time_s']:.0f}",
            ratio(m.time_s, p["time_s"]),
            f"{m.gflops:.2f}",
            f"{p['gflops']:.2f}",
            f"{m.read_bw_bytes_per_s / GB:.1f}",
            f"{p['read_bw_gbs']:.1f}",
            f"{100 * m.non_overlapped_fraction:.0f}%",
            f"{100 * p['non_overlapped']:.0f}%",
            f"{m.cpu_hours_per_iteration:.2f}",
        ])
    return format_table(headers, body, title=title)
