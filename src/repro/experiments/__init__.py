"""Experiment runners: one per table/figure of the paper's evaluation.

Each module exposes ``run(...)`` returning structured results and
``render(results)`` producing the text table/figure; the registry maps
experiment ids (``table1`` ... ``fig7``) to runners so the benchmark
harness and EXPERIMENTS.md generation share one code path.
"""

from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["EXPERIMENTS", "run_experiment"]
