"""Published values from the paper, for paper-vs-measured comparisons.

Transcribed from the tables of Zhou et al., ICPP 2012.  Units follow the
paper: seconds, Gflop/s, GB/s, CPU-hours.
"""

from __future__ import annotations

#: Table I — 10B matrix characteristics per (Nmax, Mj).
TABLE1 = {
    "test276": {"nmax": 7, "mj": 0, "dimension": 4.66e7, "nnz": 2.81e10,
                "processors": 276, "v_local_mb": 8.8, "h_local_mb": 880},
    "test1128": {"nmax": 8, "mj": 1, "dimension": 1.60e8, "nnz": 1.24e11,
                 "processors": 1128, "v_local_mb": 13.6, "h_local_mb": 880},
    "test4560": {"nmax": 9, "mj": 2, "dimension": 4.82e8, "nnz": 4.62e11,
                 "processors": 4560, "v_local_mb": 20.4, "h_local_mb": 800},
    "test18336": {"nmax": 10, "mj": 3, "dimension": 1.30e9, "nnz": 1.51e12,
                  "processors": 18336, "v_local_mb": 27.2, "h_local_mb": 750},
}

#: Table II — MFDn on Hopper, 99 Lanczos iterations.
TABLE2 = {
    "test276": {"t_total_s": 244, "comm_fraction": 0.34, "cpu_hours_per_iteration": 0.19},
    "test1128": {"t_total_s": 543, "comm_fraction": 0.60, "cpu_hours_per_iteration": 1.72},
    "test4560": {"t_total_s": 759, "comm_fraction": 0.67, "cpu_hours_per_iteration": 9.70},
    "test18336": {"t_total_s": 1870, "comm_fraction": 0.86, "cpu_hours_per_iteration": 96.2},
}

#: Table III — simple scheduling policy on the SSD testbed (4 iterations).
TABLE3 = {
    1: {"dimension_m": 50, "nnz_b": 12.8, "size_tb": 0.10, "time_s": 290,
        "gflops": 0.35, "read_bw_gbs": 1.5, "non_overlapped": 0.13},
    4: {"dimension_m": 100, "nnz_b": 51.2, "size_tb": 0.39, "time_s": 330,
        "gflops": 1.24, "read_bw_gbs": 5.7, "non_overlapped": 0.19},
    9: {"dimension_m": 150, "nnz_b": 115, "size_tb": 0.88, "time_s": 384,
        "gflops": 2.40, "read_bw_gbs": 12.8, "non_overlapped": 0.30},
    16: {"dimension_m": 200, "nnz_b": 205, "size_tb": 1.56, "time_s": 509,
         "gflops": 3.22, "read_bw_gbs": 18.7, "non_overlapped": 0.36},
    25: {"dimension_m": 250, "nnz_b": 320, "size_tb": 2.43, "time_s": 791,
         "gflops": 3.23, "read_bw_gbs": 17.9, "non_overlapped": 0.32},
    36: {"dimension_m": 300, "nnz_b": 460, "size_tb": 3.50, "time_s": 1172,
         "gflops": 3.15, "read_bw_gbs": 18.3, "non_overlapped": 0.36},
}

#: Table IV — intra-iteration interleaving + per-node aggregation.
TABLE4 = {
    1: {"time_s": 293, "gflops": 0.35, "read_bw_gbs": 1.4,
        "non_overlapped": 0.00, "cpu_hours_per_iteration": 0.16},
    4: {"time_s": 335, "gflops": 1.22, "read_bw_gbs": 5.8,
        "non_overlapped": 0.13, "cpu_hours_per_iteration": 0.74},
    9: {"time_s": 336, "gflops": 2.74, "read_bw_gbs": 12.7,
        "non_overlapped": 0.11, "cpu_hours_per_iteration": 1.68},
    16: {"time_s": 432, "gflops": 3.79, "read_bw_gbs": 18.2,
         "non_overlapped": 0.14, "cpu_hours_per_iteration": 3.84},
    25: {"time_s": 644, "gflops": 3.97, "read_bw_gbs": 17.8,
         "non_overlapped": 0.08, "cpu_hours_per_iteration": 8.95},
    36: {"time_s": 910, "gflops": 4.05, "read_bw_gbs": 18.5,
         "non_overlapped": 0.10, "cpu_hours_per_iteration": 18.20},
}

#: Fig. 7's "star": the 3.50 TB matrix on 9 nodes.
STAR_RUN = {"nodes": 9, "oversubscribe": 4, "time_s": 1318,
            "cpu_hours_per_iteration": 6.59, "read_bw_gbs": 12.5}

#: Fig. 5 load counts (per node, 3 sub-matrices, memory for one).
FIG5 = {"loads_first_iteration": 3, "loads_subsequent_iterations": 2,
        "regular_loads_per_iteration": 3}
