"""Table I: matrix dimensions and nonzero counts of the ¹⁰B Hamiltonians.

``D`` is counted exactly (M-scheme dynamic programming); ``nnz`` is the
Monte-Carlo estimate D x (mean row connections) described in
:mod:`repro.ci.nnz`.  The published nnz appears to count stored (half
symmetric) elements, so the comparison column shows both conventions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ci.cases import TABLE1_CASES, Table1Case
from repro.ci.nnz import estimate_row_nnz
from repro.experiments.report import format_table, ratio
from repro.util.rng import spawn


@dataclass
class Table1Row:
    name: str
    nmax: int
    mj: int
    dimension: int
    published_dimension: float
    nnz_estimate: float
    nnz_std_error: float
    published_nnz: float
    v_local_mb: float
    h_local_mb: float


def run(*, cases: tuple[Table1Case, ...] = TABLE1_CASES,
        nnz_samples: int = 30, seed: int = 0) -> list[Table1Row]:
    """Regenerate Table I (all four cases by default)."""
    rows = []
    for case in cases:
        space = case.space()
        dim = space.dimension()
        est = estimate_row_nnz(space, nnz_samples, spawn(seed, "table1", case.name))
        rows.append(Table1Row(
            name=case.name,
            nmax=case.nmax,
            mj=case.mj,
            dimension=dim,
            published_dimension=case.published_dimension,
            nnz_estimate=dim * est.mean,
            nnz_std_error=dim * est.std_error,
            published_nnz=case.published_nnz,
            v_local_mb=case.v_local_bytes(dim) / 1e6,
            h_local_mb=case.h_local_bytes(dim * est.mean / 2) / 1e6,
        ))
    return rows


def render(rows: list[Table1Row]) -> str:
    table = format_table(
        ["case", "(Nmax,Mj)", "D (ours)", "D (paper)", "D ratio",
         "nnz full (ours)", "nnz half (ours)", "nnz (paper)", "half ratio",
         "v_loc MB", "H_loc MB"],
        [
            [
                r.name,
                f"({r.nmax},{r.mj})",
                f"{r.dimension:.3e}",
                f"{r.published_dimension:.3e}",
                ratio(r.dimension, r.published_dimension),
                f"{r.nnz_estimate:.3e}",
                f"{r.nnz_estimate / 2:.3e}",
                f"{r.published_nnz:.3e}",
                ratio(r.nnz_estimate / 2, r.published_nnz),
                f"{r.v_local_mb:.1f}",
                f"{r.h_local_mb:.0f}",
            ]
            for r in rows
        ],
        title="Table I - 10B Hamiltonian characteristics (D exact, nnz sampled)",
    )
    return table
