"""Beyond the paper's tables: its Section VI proposals, carried out.

* ``colocated`` — Section VI-A: "SSD cards should be positioned on the
  compute nodes themselves".  Reruns the Table IV sweep on that
  configuration: local 2 GB/s per node, no shared-filesystem ceiling, no
  cross-tenant jitter.
* ``energy`` — Section VI-B: the energy-efficiency comparison between the
  testbed (whose ten I/O nodes are always powered), the colocated
  alternative, and Hopper.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.ci.cases import TABLE1_CASES
from repro.cluster.spec import carver_colocated_ssd
from repro.experiments.report import format_table
from repro.models.energy import (
    EnergyPerIteration,
    PowerModel,
    hopper_energy,
    testbed_energy,
)
from repro.testbed import TestbedParams, TestbedRow, run_testbed_spmv
from repro.util.units import GB

_COLOCATED_PARAMS = TestbedParams(jitter_cv0=0.0, jitter_cv_per_node=0.0)


@dataclass
class ColocatedRow:
    shared: TestbedRow
    colocated: TestbedRow


def run_colocated(*, node_counts: Sequence[int] = (1, 4, 9, 16, 25, 36),
                  seed: int = 1) -> list[ColocatedRow]:
    rows = []
    for nodes in node_counts:
        shared = run_testbed_spmv(nodes, "interleaved", seed=seed)
        colocated = run_testbed_spmv(
            nodes, "interleaved", seed=seed,
            spec=carver_colocated_ssd(compute_nodes=max(nodes, 1)),
            params=_COLOCATED_PARAMS,
        )
        rows.append(ColocatedRow(shared=shared, colocated=colocated))
    return rows


def render_colocated(rows: list[ColocatedRow]) -> str:
    body = []
    for row in rows:
        s, c = row.shared, row.colocated
        body.append([
            s.nodes,
            f"{s.time_s:.0f}",
            f"{c.time_s:.0f}",
            f"{s.gflops:.2f}",
            f"{c.gflops:.2f}",
            f"{s.read_bw_bytes_per_s / GB:.1f}",
            f"{c.read_bw_bytes_per_s / GB:.1f}",
            f"{s.cpu_hours_per_iteration:.2f}",
            f"{c.cpu_hours_per_iteration:.2f}",
        ])
    table = format_table(
        ["nodes", "t shared", "t coloc", "GF/s shared", "GF/s coloc",
         "BW shared", "BW coloc", "CPUh shared", "CPUh coloc"],
        body,
        title=("Extension (Section VI-A) - shared I/O nodes vs SSDs on the "
               "compute nodes, interleaved policy"),
    )
    note = ("Colocated cards remove the aggregate ceiling: bandwidth and "
            "GFlop/s scale linearly with nodes instead of plateauing at "
            "~16 nodes.")
    return table + "\n" + note


@dataclass
class EnergyComparison:
    testbed: list[EnergyPerIteration]
    colocated: list[EnergyPerIteration]
    hopper: list[EnergyPerIteration]


def run_energy(*, node_counts: Sequence[int] = (9, 36), seed: int = 1,
               power: PowerModel = PowerModel()) -> EnergyComparison:
    testbed_rows = [run_testbed_spmv(n, "interleaved", seed=seed)
                    for n in node_counts]
    colocated_rows = [
        run_testbed_spmv(
            n, "interleaved", seed=seed,
            spec=carver_colocated_ssd(compute_nodes=max(n, 1)),
            params=_COLOCATED_PARAMS,
        )
        for n in node_counts
    ]
    return EnergyComparison(
        testbed=[testbed_energy(r, power=power) for r in testbed_rows],
        colocated=[testbed_energy(r, power=power, colocated=True)
                   for r in colocated_rows],
        hopper=[hopper_energy(c, power=power) for c in TABLE1_CASES[1:3]],
    )


def render_energy(cmp: EnergyComparison) -> str:
    body = [
        [e.label, f"{e.powered_watts / 1000:.1f}", f"{e.seconds:.0f}",
         f"{e.kwh:.3f}"]
        for e in cmp.testbed + cmp.colocated + cmp.hopper
    ]
    table = format_table(
        ["configuration", "power kW", "s/iter", "kWh/iter"],
        body,
        title="Extension (Section VI-B) - energy per iteration",
    )
    note = ("The separated design pays for ten always-on I/O nodes even at "
            "small scales; colocating the cards cuts the testbed's energy "
            "per iteration ~3x, to rough parity with Hopper's — while "
            "using an order of magnitude fewer cores.  (An honest negative "
            "result for the paper's energy conjecture: Hopper's short "
            "iterations offset its large powered footprint.)")
    return table + "\n" + note
