"""Fig. 7: CPU-hour cost per iteration — SSD testbed vs MFDn on Hopper.

Includes the "star": the 3.50 TB matrix re-run on 9 nodes (the best
I/O-bandwidth-per-node point), which undercuts the comparable Hopper run.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.ci.cases import TABLE1_CASES
from repro.experiments.paperdata import STAR_RUN
from repro.experiments.report import ascii_chart, format_table
from repro.models.mfdn_hopper import MFDnHopperModel
from repro.testbed import TestbedParams, run_testbed_spmv


@dataclass
class Fig7Result:
    #: (matrix dimension, CPU-hours/iter) for the testbed series
    testbed_points: list[tuple[float, float]]
    #: (matrix dimension, CPU-hours/iter) for the Hopper (model) series
    hopper_points: list[tuple[float, float]]
    star_dimension: float
    star_cpu_hours: float
    published_star_cpu_hours: float
    #: the headline comparison: star vs test4560 on Hopper
    star_saving_vs_hopper: float


def run(*, node_counts: Sequence[int] = (1, 4, 9, 16, 25, 36), seed: int = 1,
        params: TestbedParams | None = None) -> Fig7Result:
    testbed_points = []
    for nodes in node_counts:
        row = run_testbed_spmv(nodes, "interleaved", seed=seed,
                               params=params or TestbedParams())
        testbed_points.append((float(row.dimension), row.cpu_hours_per_iteration))
    model = MFDnHopperModel()
    hopper_points = [
        (float(case.published_dimension),
         model.table2_row(case)["cpu_hours_per_iteration"])
        for case in TABLE1_CASES
    ]
    star = run_testbed_spmv(9, "interleaved", seed=seed, oversubscribe=4,
                            params=params or TestbedParams())
    hopper_4560 = model.table2_row(TABLE1_CASES[2])["cpu_hours_per_iteration"]
    return Fig7Result(
        testbed_points=testbed_points,
        hopper_points=hopper_points,
        star_dimension=float(star.dimension),
        star_cpu_hours=star.cpu_hours_per_iteration,
        published_star_cpu_hours=STAR_RUN["cpu_hours_per_iteration"],
        star_saving_vs_hopper=1.0 - star.cpu_hours_per_iteration / hopper_4560,
    )


def render(result: Fig7Result) -> str:
    rows = []
    for dim, cpuh in result.testbed_points:
        rows.append([f"{dim / 1e6:.0f}M", "SSD testbed", f"{cpuh:.2f}"])
    for dim, cpuh in result.hopper_points:
        rows.append([f"{dim / 1e6:.0f}M", "Hopper (model)", f"{cpuh:.2f}"])
    rows.append([f"{result.star_dimension / 1e6:.0f}M", "SSD 9-node star",
                 f"{result.star_cpu_hours:.2f}"])
    table = format_table(["dimension", "series", "CPU-h/iter"], rows,
                         title="Fig. 7 - CPU-hour cost of one iteration")
    chart = ascii_chart(
        {
            "testbed": result.testbed_points,
            "hopper": result.hopper_points,
            "star": [(result.star_dimension, result.star_cpu_hours)],
        },
        logy=True,
        xlabel="matrix dimension",
        ylabel="CPUh/it",
        markers={"testbed": "t", "hopper": "h", "star": "*"},
    )
    saving = 100 * result.star_saving_vs_hopper
    verdict = (
        f"9-node 3.5TB star: {result.star_cpu_hours:.2f} CPU-h/iter "
        f"(paper {result.published_star_cpu_hours:.2f}); "
        f"{saving:.0f}% below the comparable Hopper run "
        "(paper reports 32%)"
    )
    return table + "\n\n" + chart + "\n" + verdict
