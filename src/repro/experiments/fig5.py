"""Fig. 5: the Gantt charts of the regular vs back-and-forth plans.

Two artefacts are produced:

* analytic load counts per plan (:mod:`repro.spmv.reference`), matching
  the figure's narrative (3 loads/iteration naive, 3 then 2 reordered);
* a *real execution* on the threaded DOoC engine in the figure's setting
  (3 nodes, one grid column each, memory for one sub-matrix), verifying
  that the reordering emerges from the local scheduler, plus an ASCII
  Gantt of the engine's load/multiply events.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from tempfile import TemporaryDirectory
from typing import Dict, List

import numpy as np

from repro.core import DOoCEngine
from repro.experiments.report import format_table
from repro.spmv.csrfile import serialize_csr
from repro.spmv.generator import choose_gap_parameter, gap_uniform_csr
from repro.spmv.partition import GridPartition, column_owner
from repro.spmv.program import build_iterated_spmv
from repro.spmv.reference import (
    iterated_spmv_reference,
    loads_back_and_forth_plan,
    loads_regular_plan,
)


@dataclass
class Fig5Result:
    iterations: int
    k: int
    regular_loads_per_node: int
    back_and_forth_loads_per_node: int
    engine_matrix_loads_total: int
    engine_matrix_loads_naive_total: int
    correct: bool
    #: per node, the *row indices* of sub-matrix loads in timestamp order
    #: (from the run trace) — the figure's traversal direction, not just
    #: its load count
    engine_load_order: dict[int, list[int]] = field(default_factory=dict)
    #: raw trace events of the engine run (obs schema)
    trace_events: list = field(default_factory=list)


_A_LOAD = re.compile(r"^A_(\d+)_(\d+)$")


def matrix_load_order(trace_events) -> dict[int, list[int]]:
    """Per-node sequence of sub-matrix row indices, from storage.load spans."""
    order: dict[int, list[int]] = {}
    for e in sorted(trace_events, key=lambda e: e.ts):
        if e.cat != "storage" or e.name != "load":
            continue
        m = _A_LOAD.match(str(e.args.get("array", "")))
        if m:
            order.setdefault(e.node, []).append(int(m.group(1)))
    return order


def run(*, iterations: int = 3, seed: int = 3,
        scratch_dir: str | Path | None = None) -> Fig5Result:
    k = 3
    rng = np.random.default_rng(seed)
    n = 150
    p = GridPartition(n, k)
    d = choose_gap_parameter(n, 20.0)
    global_m = gap_uniform_csr(n, n, d, rng)
    blocks = p.split_matrix(global_m)
    x0 = rng.normal(size=n)
    result = build_iterated_spmv(
        blocks, p.split_vector(x0), iterations=iterations, n_nodes=k,
        policy="simple", owner=column_owner(k, k))
    a_bytes = max(len(serialize_csr(b)) for b in blocks.values())
    with TemporaryDirectory() as tmp:
        eng = DOoCEngine(
            n_nodes=k, workers_per_node=1,
            memory_budget_per_node=int(a_bytes * 1.5) + 3000,
            scratch_dir=scratch_dir or tmp,
            trace=True,
        )
        report = eng.run(result.program, timeout=300)
        got = result.fetch_final(eng)
    want = iterated_spmv_reference(global_m, x0, iterations)
    matrix_loads = sum(
        count
        for stats in report.store_stats.values()
        for array, count in stats.loads_by_array.items()
        if array.startswith("A_")
    )
    return Fig5Result(
        iterations=iterations,
        k=k,
        regular_loads_per_node=loads_regular_plan(k, iterations),
        back_and_forth_loads_per_node=loads_back_and_forth_plan(k, iterations),
        engine_matrix_loads_total=matrix_loads,
        engine_matrix_loads_naive_total=k * loads_regular_plan(k, iterations),
        correct=bool(np.allclose(got, want, rtol=1e-9)),
        engine_load_order=matrix_load_order(report.trace_events),
        trace_events=report.trace_events,
    )


def render(result: Fig5Result) -> str:
    per_node = result.engine_matrix_loads_total / result.k
    table = format_table(
        ["plan", "matrix loads/node", "total (3 nodes)"],
        [
            ["regular (Fig. 5a)", result.regular_loads_per_node,
             3 * result.regular_loads_per_node],
            ["back-and-forth (Fig. 5b)", result.back_and_forth_loads_per_node,
             3 * result.back_and_forth_loads_per_node],
            ["DOoC engine (measured)", f"{per_node:.1f}",
             result.engine_matrix_loads_total],
        ],
        title=(f"Fig. 5 - sub-matrix loads over {result.iterations} "
               "iterations, memory for one sub-matrix per node"),
    )
    verdict = (
        "result vector matches the in-core reference; the engine's load "
        "count tracks the back-and-forth plan, not the regular plan"
        if result.correct
        else "WARNING: engine result did not validate"
    )
    return table + "\n" + verdict
