"""Figs. 3 and 4: the commands and dependencies of a 3x3 iterated SpMV.

Fig. 3 lists the operations DOoC receives for the first two iterations of
a 3x3-partitioned SpMV ("9 sub-matrix sub-vector multiplications and 6
sub-vector additions are necessary at each iteration" — 3 three-way sums,
i.e. 6 pairwise additions); Fig. 4 shows the dependencies derived from the
input/output declarations.  Both are regenerated from the actual program
builder and DAG deriver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dag import TaskDAG
from repro.spmv.generator import gap_uniform_csr
from repro.spmv.partition import GridPartition
from repro.spmv.program import build_iterated_spmv


@dataclass
class Fig34Result:
    k: int
    iterations: int
    multiplies_per_iteration: int
    pairwise_additions_per_iteration: int
    commands: list[str]
    edges: list[tuple[str, str]]
    dag: TaskDAG


def run(*, k: int = 3, iterations: int = 2, seed: int = 0) -> Fig34Result:
    n = 6 * k
    rng = np.random.default_rng(seed)
    p = GridPartition(n, k)
    blocks = p.split_matrix(gap_uniform_csr(n, n, 2.0, rng))
    result = build_iterated_spmv(
        blocks, p.split_vector(rng.normal(size=n)),
        iterations=iterations, n_nodes=1, policy="simple")
    dag = result.program.build_dag()
    commands = dag.topological_order()
    edges = sorted(
        (src, dst) for dst, preds in dag.preds.items() for src in preds
    )
    mults = sum(1 for c in commands if c.startswith("mult_1_"))
    sums = sum(1 for c in commands if c.startswith("sum_1_"))
    # Each k-way sum is (k - 1) pairwise additions.
    return Fig34Result(
        k=k,
        iterations=iterations,
        multiplies_per_iteration=mults,
        pairwise_additions_per_iteration=sums * (k - 1),
        commands=commands,
        edges=edges,
        dag=dag,
    )


def render(result: Fig34Result) -> str:
    lines = [
        f"Fig. 3 - commands for {result.iterations} iterations of a "
        f"{result.k}x{result.k} iterated SpMV "
        f"({result.multiplies_per_iteration} multiplies + "
        f"{result.pairwise_additions_per_iteration} pairwise additions "
        "per iteration):",
    ]
    per_iter: dict[int, list[str]] = {}
    for name in result.commands:
        it = int(name.split("_")[1])
        per_iter.setdefault(it, []).append(name)
    for it in sorted(per_iter):
        lines.append(f"  iteration {it}: " + "  ".join(per_iter[it]))
    lines.append("")
    lines.append(
        f"Fig. 4 - dependencies derived from array declarations "
        f"({len(result.edges)} edges):")
    by_dst: dict[str, list[str]] = {}
    for src, dst in result.edges:
        by_dst.setdefault(dst, []).append(src)
    for dst in result.dag.topological_order():
        if dst in by_dst:
            lines.append(f"  {dst} <- {', '.join(sorted(by_dst[dst]))}")
    lines.append("")
    lines.append(
        f"critical path: {result.dag.critical_path_length()} tasks "
        f"(mult -> sum per iteration, chained across iterations)")
    return "\n".join(lines)
