"""Text rendering: tables with paper-vs-measured columns, ASCII charts."""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 *, title: str | None = None) -> str:
    """A fixed-width text table."""
    str_rows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.rjust(w) for h, w in zip(headers, widths, strict=True)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths, strict=True)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3g}"
        if abs(value) >= 100:
            return f"{value:.0f}"
        return f"{value:.2f}"
    return str(value)


def ratio(measured: float, published: float) -> str:
    """Render measured/published as a compact ratio string."""
    if published == 0:
        return "n/a" if measured == 0 else "inf"
    return f"{measured / published:.2f}x"


def ascii_chart(
    series: dict[str, list[tuple[float, float]]],
    *,
    width: int = 72,
    height: int = 20,
    logy: bool = False,
    xlabel: str = "",
    ylabel: str = "",
    markers: dict[str, str] | None = None,
) -> str:
    """A minimal ASCII scatter/line chart for Figs. 6 and 7.

    ``series`` maps a label to (x, y) points; ``markers`` assigns each
    series a single glyph (defaults to 1st letter of the label).
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    if logy and min(ys) <= 0:
        raise ValueError("log-scale chart needs positive y values")
    y_map = (lambda v: math.log10(v)) if logy else (lambda v: v)
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = y_map(min(ys)), y_map(max(ys))
    x_span = max(x_hi - x_lo, 1e-12)
    y_span = max(y_hi - y_lo, 1e-12)
    grid = [[" "] * width for _ in range(height)]
    glyphs = markers or {}
    for label, pts in series.items():
        glyph = glyphs.get(label, label[:1] or "?")
        for x, y in pts:
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y_map(y) - y_lo) / y_span * (height - 1))
            grid[row][col] = glyph
    lines = []
    top = f"{(10 ** y_hi if logy else y_hi):.3g}"
    bottom = f"{(10 ** y_lo if logy else y_lo):.3g}"
    margin = max(len(top), len(bottom), len(ylabel)) + 1
    for r, row in enumerate(grid):
        prefix = ""
        if r == 0:
            prefix = top
        elif r == height - 1:
            prefix = bottom
        elif r == height // 2 and ylabel:
            prefix = ylabel
        lines.append(prefix.rjust(margin) + "|" + "".join(row))
    lines.append(" " * margin + "+" + "-" * width)
    xaxis = f"{x_lo:.3g}".ljust(width - 10) + f"{x_hi:.3g}"
    lines.append(" " * (margin + 1) + xaxis + ("  " + xlabel if xlabel else ""))
    legend = "   ".join(
        f"{glyphs.get(label, label[:1])} = {label}" for label in series
    )
    lines.append(" " * (margin + 1) + legend)
    return "\n".join(lines)
