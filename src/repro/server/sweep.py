"""Reclaim resources orphaned by dead DOoC processes.

A SIGKILLed engine (or job server) can leave two kinds of litter behind,
both stamped with their owner's pid precisely so this sweeper can tell
"orphan" from "someone else's live run":

* ``/dev/shm/dooc-seg-<pid>-<tag>-<seq>`` — shared-memory segments from
  the multi-process worker plane (:mod:`repro.core.segments`);
* ``<tmpdir>/dooc-<pid>-*`` — engine scratch directories and job-server
  work dirs (``tempfile.mkdtemp(prefix=f"dooc-{os.getpid()}-")``).

Only entries whose embedded pid is *dead* are reclaimed; anything owned
by a live process — or not matching the pid-stamped patterns at all — is
left alone.  Runs at job-server start and on demand via ``repro sweep``.
"""

from __future__ import annotations

import os
import re
import shutil
import tempfile
from pathlib import Path

__all__ = ["sweep", "pid_alive", "format_report"]

_SEG_RE = re.compile(r"^dooc-seg-(\d+)-")
_DIR_RE = re.compile(r"^dooc-(\d+)-")


def pid_alive(pid: int) -> bool:
    """Is a process with this pid still running (signal-0 probe)?"""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    return True


def _owner_pid(name: str, pattern: re.Pattern) -> int | None:
    m = pattern.match(name)
    return int(m.group(1)) if m else None


def sweep(shm_dir: str | Path = "/dev/shm",
          tmp_dir: str | Path | None = None, *,
          dry_run: bool = False) -> dict:
    """One reclamation pass; returns a structured report.

    ``dry_run=True`` reports what *would* be reclaimed without touching
    anything.  Errors on individual entries (e.g. a segment the owner
    unlinks mid-sweep) are recorded, not raised — the sweep is a
    best-effort janitor, never a crash source.
    """
    shm_dir = Path(shm_dir)
    tmp_dir = Path(tmp_dir) if tmp_dir is not None else \
        Path(tempfile.gettempdir())
    report = {"segments": [], "scratch_dirs": [], "kept": [], "errors": []}

    if shm_dir.is_dir():
        for entry in sorted(shm_dir.iterdir()):
            pid = _owner_pid(entry.name, _SEG_RE)
            if pid is None:
                continue
            if pid_alive(pid):
                report["kept"].append(str(entry))
                continue
            report["segments"].append(str(entry))
            if not dry_run:
                try:
                    entry.unlink()
                except OSError as exc:
                    report["errors"].append(f"{entry}: {exc}")

    if tmp_dir.is_dir():
        for entry in sorted(tmp_dir.iterdir()):
            if not entry.is_dir():
                continue
            pid = _owner_pid(entry.name, _DIR_RE)
            if pid is None:
                continue
            if pid_alive(pid):
                report["kept"].append(str(entry))
                continue
            report["scratch_dirs"].append(str(entry))
            if not dry_run:
                try:
                    shutil.rmtree(entry, ignore_errors=True)
                except OSError as exc:
                    report["errors"].append(f"{entry}: {exc}")
    return report


def format_report(report: dict, *, dry_run: bool = False) -> str:
    verb = "would reclaim" if dry_run else "reclaimed"
    lines = [
        f"{verb} {len(report['segments'])} shm segment(s), "
        f"{len(report['scratch_dirs'])} scratch dir(s); "
        f"kept {len(report['kept'])} live-owner entr(ies)"
    ]
    for path in report["segments"] + report["scratch_dirs"]:
        lines.append(f"  {verb}: {path}")
    for err in report["errors"]:
        lines.append(f"  error: {err}")
    return "\n".join(lines)
