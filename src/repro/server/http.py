"""The HTTP surface of the job service (stdlib ``http.server`` only).

A :class:`DoocJobServer` wraps one :class:`~repro.server.manager.JobManager`
in a ``ThreadingHTTPServer``; each request thread only ever touches the
manager's thread-safe surface.  The API is deliberately small and fully
structured — every response is JSON and every job a client submits is
guaranteed to converge on a terminal state it can read back:

======  ========================  ==============================================
method  path                      meaning
======  ========================  ==============================================
GET     /healthz                  liveness probe
GET     /stats                    queue depth, memory budget, metrics
POST    /jobs                     submit a JobSpec; 202 accepted / 429 rejected
GET     /jobs                     all job records (summary form)
GET     /jobs/<id>                one record; ``?wait=SECONDS`` blocks until
                                  the job is terminal (long-poll, no client
                                  sleep loops)
GET     /jobs/<id>/trace          the job's event log
POST    /jobs/<id>/cancel         cooperative cancel; 409 if already terminal
POST    /drain                    graceful drain (same path as SIGTERM)
======  ========================  ==============================================
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.server.jobs import JobSpec
from repro.server.manager import JobManager, ServerConfig

__all__ = ["DoocJobServer", "serve"]

#: cap on a single long-poll wait; clients re-issue to wait longer
MAX_WAIT_S = 30.0


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "dooc-jobs/1.0"

    # The ThreadingHTTPServer subclass sets .manager on itself.
    @property
    def manager(self) -> JobManager:
        return self.server.manager  # type: ignore[attr-defined]

    def log_message(self, fmt, *args):  # quiet by default
        if getattr(self.server, "verbose", False):  # type: ignore[attr-defined]
            super().log_message(fmt, *args)

    # -- plumbing ----------------------------------------------------------------

    def _json(self, status: int, payload: dict | list) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return {}
        raw = self.rfile.read(length)
        payload = json.loads(raw.decode("utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    # -- routes ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        if parts == ["healthz"]:
            self._json(200, {"ok": True})
            return
        if parts == ["stats"]:
            self._json(200, self.manager.stats())
            return
        if parts == ["jobs"]:
            self._json(200, [r.to_json() for r in self.manager.list_jobs()])
            return
        if len(parts) >= 2 and parts[0] == "jobs":
            rec = self.manager.get(parts[1])
            if rec is None:
                self._json(404, {"error": f"no such job {parts[1]!r}"})
                return
            if len(parts) == 3 and parts[2] == "trace":
                self._json(200, {"id": rec.id, "events": list(rec.events)})
                return
            if len(parts) == 2:
                qs = parse_qs(url.query)
                if "wait" in qs:
                    wait_s = min(float(qs["wait"][0]), MAX_WAIT_S)
                    rec.done_event.wait(timeout=max(wait_s, 0.0))
                self._json(200, rec.to_json(verbose=True))
                return
        self._json(404, {"error": f"no route for GET {url.path}"})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        if parts == ["jobs"]:
            try:
                spec = JobSpec.from_json(self._read_body())
            except (ValueError, TypeError, json.JSONDecodeError) as exc:
                self._json(400, {"error": str(exc)})
                return
            rec = self.manager.submit(spec)
            if rec.state == "rejected":
                self._json(429, rec.to_json())
            else:
                self._json(202, rec.to_json())
            return
        if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
            rec = self.manager.get(parts[1])
            if rec is None:
                self._json(404, {"error": f"no such job {parts[1]!r}"})
                return
            if not self.manager.cancel(parts[1]):
                self._json(409, {"error": "job already terminal",
                                 "state": rec.state})
                return
            self._json(200, rec.to_json())
            return
        if parts == ["drain"]:
            server: DoocJobServer = self.server  # type: ignore[assignment]
            # Respond first: drain stops the listener, and a client
            # waiting on this response must not see a reset socket.
            self._json(202, {"draining": True})
            threading.Thread(target=server.drain, daemon=True).start()
            return
        self._json(404, {"error": f"no route for POST {url.path}"})


class DoocJobServer(ThreadingHTTPServer):
    """ThreadingHTTPServer + JobManager + signal-driven graceful drain."""

    daemon_threads = True

    def __init__(self, addr: tuple[str, int],
                 config: ServerConfig | None = None, *,
                 verbose: bool = False):
        super().__init__(addr, _Handler)
        self.manager = JobManager(config)
        self.verbose = verbose
        self._drained = threading.Event()
        self.drain_manifest: dict | None = None

    @property
    def port(self) -> int:
        return self.server_address[1]

    def start(self) -> "DoocJobServer":
        self.manager.start()
        return self

    def drain(self, timeout: float = 60.0) -> dict:
        """Drain the manager (checkpointing running jobs) exactly once,
        then stop accepting connections."""
        if self._drained.is_set():
            return self.drain_manifest or {}
        self._drained.set()
        self.drain_manifest = self.manager.drain(timeout=timeout)
        self.shutdown()
        return self.drain_manifest

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain (main thread only)."""

        def _on_signal(signum, frame):
            threading.Thread(target=self.drain, daemon=True,
                             name="dooc-drain").start()

        signal.signal(signal.SIGTERM, _on_signal)
        signal.signal(signal.SIGINT, _on_signal)


def serve(host: str = "127.0.0.1", port: int = 8787,
          config: ServerConfig | None = None, *,
          verbose: bool = False) -> dict | None:
    """Run the job service until SIGTERM/SIGINT, then drain gracefully.

    Returns the drain manifest (also written to ``<work_dir>/drain.json``).
    """
    server = DoocJobServer((host, port), config, verbose=verbose).start()
    server.install_signal_handlers()
    print(f"dooc job server listening on http://{host}:{server.port} "
          f"(work dir {server.manager.work_dir})", flush=True)
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        server.server_close()
    return server.drain_manifest
