"""Execute one attempt of a job on the DOoC engine.

The runner is deliberately stateless: everything an attempt needs is in
the :class:`~repro.server.jobs.JobSpec` (the problem is *regenerated*
deterministically from its seed), the job's checkpoint directory (for
resume after a preemption or server restart), and the per-attempt
:class:`~repro.core.cancel.CancelToken` (for deadlines, client cancels,
preemption, and drain).  A cancelled attempt raises
:class:`~repro.core.errors.RunCancelled` with the newest chunk-boundary
checkpoint already on disk; re-running with ``resume=True`` continues
bit-identically — verified by digesting the final iterate.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import numpy as np

from repro.core.cancel import CancelToken
from repro.server.jobs import JobSpec
from repro.spmv.generator import symmetric_test_matrix
from repro.spmv.partition import GridPartition

__all__ = ["execute_attempt", "digest_vector"]


def digest_vector(x: np.ndarray) -> str:
    """A short bit-exact fingerprint of a float64 vector (the server's
    bit-identity witness for preemption/resume)."""
    arr = np.ascontiguousarray(np.asarray(x, dtype=np.float64))
    return hashlib.sha256(arr.tobytes()).hexdigest()[:32]


def _build_problem(spec: JobSpec):
    """The deterministic (matrix blocks, rhs/x0) pair for a spec.

    ``diag_shift`` scales with the row weight so Jacobi stays strictly
    diagonally dominant and CG's operator positive definite for any
    ``nnz_per_row`` a client picks.
    """
    rng = np.random.default_rng(spec.seed)
    m = symmetric_test_matrix(spec.n, spec.nnz_per_row, rng,
                              diag_shift=4.0 * spec.nnz_per_row)
    partition = GridPartition(spec.n, spec.parts)
    blocks = partition.split_matrix(m)
    vec = np.random.default_rng(spec.seed + 1).standard_normal(spec.n)
    return partition, blocks, vec


def _engine_kwargs(engine: dict | None, faults) -> dict:
    kwargs = dict(engine or {})
    kwargs.pop("n_nodes", None)
    if faults is not None:
        kwargs["faults"] = faults
    return kwargs


def execute_attempt(spec: JobSpec, *, job_dir: str | Path,
                    cancel: CancelToken, resume: bool = False,
                    n_nodes: int = 1, engine: dict | None = None,
                    faults=None) -> dict:
    """Run one attempt to completion; returns the structured result.

    Raises ``RunCancelled`` if the token fires (checkpoint on disk), or
    a ``DoocError`` subclass if the run dies to an (injected) fault —
    the manager decides between retry and a terminal ``failed``.
    """
    ckpt_dir = Path(job_dir) / "ckpt"
    ckpt_dir.mkdir(parents=True, exist_ok=True)
    partition, blocks, vec = _build_problem(spec)
    if spec.kind == "spmv":
        from repro.spmv.program import run_iterated_spmv
        x0_parts = partition.split_vector(vec)
        run = run_iterated_spmv(
            blocks, x0_parts, spec.iterations, n_nodes=n_nodes,
            checkpoint_dir=ckpt_dir, checkpoint_every=spec.checkpoint_every,
            resume=resume, cancel=cancel,
            engine_kwargs=_engine_kwargs(engine, faults))
        x = run.join()
        return {"digest": digest_vector(x), "iterations": run.iterations,
                "restored_from": run.restored_from,
                "norm": float(np.linalg.norm(x))}

    from repro.spmv.ooc_operator import OutOfCoreMatrix
    op = OutOfCoreMatrix(blocks, n_nodes=n_nodes,
                         rng_seed=spec.seed,
                         engine_kwargs=_engine_kwargs(engine, faults))
    op.cancel = cancel  # interrupts a solve *inside* an SpMV
    try:
        if spec.kind == "jacobi":
            from repro.solvers.jacobi import jacobi_solve
            res = jacobi_solve(op, vec, max_iterations=spec.iterations,
                               tol=1e-12, checkpoint_dir=ckpt_dir,
                               checkpoint_every=spec.checkpoint_every,
                               resume=resume)
            return {"digest": digest_vector(res.x),
                    "iterations": res.iterations,
                    "converged": bool(res.converged),
                    "residual": float(res.residual_history[-1])}
        if spec.kind == "cg":
            from repro.solvers.cg import conjugate_gradient_solve
            res = conjugate_gradient_solve(
                op, vec, max_iterations=spec.iterations, tol=1e-12,
                checkpoint_dir=ckpt_dir,
                checkpoint_every=spec.checkpoint_every, resume=resume)
            return {"digest": digest_vector(res.x),
                    "iterations": res.iterations,
                    "converged": bool(res.converged),
                    "residual": float(res.residual_history[-1])}
        # lanczos
        from repro.lanczos.lanczos import lanczos
        v0 = np.random.default_rng(spec.seed + 2).standard_normal(spec.n)
        res = lanczos(op.matvec, spec.n, k=spec.iterations,
                      n_eigenvalues=min(5, spec.iterations), v0=v0,
                      checkpoint_dir=ckpt_dir,
                      checkpoint_every=spec.checkpoint_every, resume=resume)
        eigs = np.asarray(res.eigenvalues, dtype=np.float64)
        return {"digest": digest_vector(eigs), "iterations": res.iterations,
                "eigenvalues": [float(v) for v in eigs[:5]]}
    finally:
        op.engine.cleanup()
