"""Job specifications, lifecycle states, and server-side job records."""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.core.cancel import CancelToken

__all__ = ["JOB_KINDS", "JobSpec", "JobState", "JobRecord",
           "estimate_working_set"]

#: solver kinds the server knows how to run (see repro.server.runner)
JOB_KINDS = ("spmv", "jacobi", "cg", "lanczos")


class JobState:
    """The job lifecycle vocabulary (strings, for JSON transparency).

    ``QUEUED -> RUNNING -> DONE`` is the happy path.  ``PREEMPTED`` is a
    *waiting* state — the job was suspended at a checkpoint and requeues
    automatically — except after a drain, where it is the record's final
    state in this process (the checkpoint on disk is the continuation).
    Everything in :data:`TERMINAL` is final and structured: a client
    polling a job always converges on one of these, never on a hang.
    """

    QUEUED = "queued"
    RUNNING = "running"
    PREEMPTED = "preempted"
    DONE = "done"
    REJECTED = "rejected"
    FAILED = "failed"
    CANCELLED = "cancelled"
    DEADLINE_EXCEEDED = "deadline-exceeded"

    TERMINAL = frozenset({DONE, REJECTED, FAILED, CANCELLED,
                          DEADLINE_EXCEEDED})
    ALL = (QUEUED, RUNNING, PREEMPTED, DONE, REJECTED, FAILED, CANCELLED,
           DEADLINE_EXCEEDED)


@dataclass(frozen=True)
class JobSpec:
    """What a client asks for: a deterministic solver problem.

    Problems are described by (kind, n, parts, seed), not by shipped
    matrices: the server regenerates the operator bit-identically on
    every attempt (and after a preemption), which is what makes retry
    and checkpoint-resume reproducible without persisting input data.
    """

    tenant: str
    kind: str
    n: int = 256
    parts: int = 2
    iterations: int = 20
    seed: int = 0
    nnz_per_row: float = 8.0
    #: wall-clock seconds from submission before the supervisor cancels
    #: the job (None = no deadline)
    deadline_s: float | None = None
    #: declared peak working set; None = estimated from the problem shape
    working_set_bytes: int | None = None
    #: checkpoint cadence (iterations between chunk boundaries) — the
    #: granularity at which preemption can suspend and resume the job
    checkpoint_every: int = 5

    def __post_init__(self) -> None:
        if not self.tenant or not str(self.tenant).strip():
            raise ValueError("tenant must be a non-empty string")
        if self.kind not in JOB_KINDS:
            raise ValueError(
                f"unknown job kind {self.kind!r}: expected one of {JOB_KINDS}")
        if self.n < 8:
            raise ValueError("n must be >= 8")
        if not 1 <= self.parts <= self.n // 4:
            raise ValueError("parts must be in [1, n/4]")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.nnz_per_row <= 0:
            raise ValueError("nnz_per_row must be positive")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        if self.working_set_bytes is not None and self.working_set_bytes < 0:
            raise ValueError("working_set_bytes must be non-negative")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")

    @property
    def working_set(self) -> int:
        """Declared working set, falling back to the estimator."""
        if self.working_set_bytes is not None:
            return self.working_set_bytes
        return estimate_working_set(self)

    @classmethod
    def from_json(cls, payload: dict) -> "JobSpec":
        """Build from a client JSON body, rejecting unknown fields by
        name (a typo'd field must not silently become a default)."""
        if not isinstance(payload, dict):
            raise ValueError("job spec must be a JSON object")
        known = {f for f in cls.__dataclass_fields__}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown job spec field(s): {', '.join(unknown)}")
        return cls(**payload)

    def to_json(self) -> dict:
        return {
            "tenant": self.tenant, "kind": self.kind, "n": self.n,
            "parts": self.parts, "iterations": self.iterations,
            "seed": self.seed, "nnz_per_row": self.nnz_per_row,
            "deadline_s": self.deadline_s,
            "working_set_bytes": self.working_set_bytes,
            "checkpoint_every": self.checkpoint_every,
        }


def estimate_working_set(spec: JobSpec) -> int:
    """Peak in-memory bytes a job's engine runs will want, estimated
    from the problem shape.

    The dominant term is the serialized sub-matrix grid (CSR data +
    indices, ~12 bytes/nnz, plus indptr); solvers add a handful of
    length-``n`` float64 vectors (iterate, residual, direction, Krylov
    working set) and the engine pins one decoded copy of each operand it
    touches.  Deliberately a mild over-estimate: admission control is a
    promise not to stall, so the estimator errs toward refusing."""
    nnz = float(spec.n) * float(spec.nnz_per_row)
    matrix = nnz * 12.0 + (spec.n + spec.parts * spec.parts) * 4.0
    vectors = 6.0 * spec.n * 8.0
    if spec.kind == "lanczos":
        # Full reorthogonalization keeps the whole Krylov basis live.
        vectors += float(min(spec.iterations, spec.n)) * spec.n * 8.0
    return int((matrix + vectors) * 1.25)


@dataclass
class JobRecord:
    """Server-side mutable state for one submitted job.

    All mutation happens under the JobManager's lock; the ``events``
    list is the job's own trace (served at ``/jobs/<id>/trace``).
    """

    id: str
    spec: JobSpec
    state: str = JobState.QUEUED
    #: monotonic deadline (derived from spec.deadline_s at submit)
    deadline_at: float | None = None
    #: monotonic time before which the job may not start (retry backoff)
    not_before: float = 0.0
    #: completed attempt count (a preemption does not count as an attempt)
    attempts: int = 0
    preemptions: int = 0
    #: resume from the newest checkpoint on the next start?
    resume: bool = False
    #: the in-flight attempt's cancel token (None while not running)
    cancel: CancelToken | None = None
    #: structured terminal payload: result on DONE, reason otherwise
    outcome: dict = field(default_factory=dict)
    events: list = field(default_factory=list)
    submitted_at: float = field(default_factory=time.time)
    finished_at: float | None = None
    #: signalled when the record reaches a TERMINAL state
    done_event: threading.Event = field(default_factory=threading.Event)

    def log(self, event: str, **fields) -> None:
        self.events.append({"ts": time.time(), "event": event, **fields})

    @property
    def terminal(self) -> bool:
        return self.state in JobState.TERMINAL

    def to_json(self, *, verbose: bool = False) -> dict:
        out = {
            "id": self.id,
            "tenant": self.spec.tenant,
            "kind": self.spec.kind,
            "state": self.state,
            "attempts": self.attempts,
            "preemptions": self.preemptions,
            "outcome": dict(self.outcome),
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
        }
        if verbose:
            out["spec"] = self.spec.to_json()
        return out
