"""CLI verbs for the job service.

    python -m repro serve --port 8787 --memory-budget-mb 64
    python -m repro submit --kind cg --n 256 --tenant alice --wait
    python -m repro status j0001 --trace
    python -m repro cancel j0001
    python -m repro sweep --dry-run

``serve`` runs a stale-resource sweep first (reclaiming litter from any
previously SIGKILLed run), installs SIGTERM/SIGINT drain handlers, and
blocks until a signal arrives.  A transient-fault plan for *all* jobs
can be enabled with ``--fault-seed`` (or the ``DOOC_FAULT_SEED``
environment variable, as CI does); each (job, attempt) then derives its
own deterministic seed from it.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.server.jobs import JOB_KINDS, JobSpec


def _parse_quota(text: str):
    """``tenant=max_running,max_queued,weight`` → (tenant, TenantQuota)."""
    from repro.server.admission import TenantQuota
    tenant, _, rest = text.partition("=")
    if not tenant or not rest:
        raise argparse.ArgumentTypeError(
            f"quota must look like name=running,queued,weight: {text!r}")
    parts = rest.split(",")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"quota needs exactly running,queued,weight: {text!r}")
    return tenant, TenantQuota(max_running=int(parts[0]),
                               max_queued=int(parts[1]),
                               weight=float(parts[2]))


def serve_main(argv: list[str]) -> int:
    p = argparse.ArgumentParser(prog="python -m repro serve",
                                description="Run the DOoC job service.")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8787,
                   help="0 picks a free port (printed at startup)")
    p.add_argument("--n-nodes", type=int, default=1)
    p.add_argument("--memory-budget-mb", type=int, default=64,
                   help="cluster-wide admission budget")
    p.add_argument("--engine-budget-mb", type=int, default=32,
                   help="per-node engine memory budget for each job run")
    p.add_argument("--max-queue", type=int, default=32)
    p.add_argument("--max-concurrent", type=int, default=2)
    p.add_argument("--work-dir", default=None,
                   help="job checkpoint dir (default: pid-stamped tempdir)")
    p.add_argument("--quota", action="append", default=[], type=_parse_quota,
                   metavar="TENANT=RUN,QUEUE,WEIGHT",
                   help="per-tenant quota (repeatable)")
    p.add_argument("--no-preemption", action="store_true")
    p.add_argument("--fault-seed", type=int,
                   default=int(os.environ.get("DOOC_FAULT_SEED", "0") or 0),
                   help="enable a deterministic transient-fault plan")
    p.add_argument("--fault-io-transient", type=float, default=0.02)
    p.add_argument("--fault-task-crash", type=float, default=0.01)
    p.add_argument("--no-sweep", action="store_true",
                   help="skip the stale-resource sweep at startup")
    p.add_argument("--verbose", action="store_true")
    args = p.parse_args(argv)

    from repro.server.http import serve
    from repro.server.manager import ServerConfig
    from repro.server.sweep import format_report, sweep

    if not args.no_sweep:
        report = sweep()
        if report["segments"] or report["scratch_dirs"]:
            print(format_report(report), flush=True)

    faults = None
    if args.fault_seed:
        from repro.faults import FaultPlan
        faults = FaultPlan(seed=args.fault_seed,
                           io_transient=args.fault_io_transient,
                           task_crash=args.fault_task_crash)
    config = ServerConfig(
        n_nodes=args.n_nodes,
        memory_budget=args.memory_budget_mb * 2**20,
        max_queue=args.max_queue,
        max_concurrent=args.max_concurrent,
        quotas=dict(args.quota),
        faults=faults,
        engine={"memory_budget_per_node": args.engine_budget_mb * 2**20},
        preemption=not args.no_preemption,
        work_dir=args.work_dir,
    )
    manifest = serve(args.host, args.port, config, verbose=args.verbose)
    if manifest is not None:
        undrained = manifest.get("undrained", [])
        print(f"drained: {len(manifest.get('jobs', {}))} job record(s), "
              f"{len(manifest.get('preempted', []))} checkpointed, "
              f"{len(undrained)} undrained", flush=True)
        return 1 if undrained else 0
    return 0


def submit_main(argv: list[str]) -> int:
    p = argparse.ArgumentParser(prog="python -m repro submit",
                                description="Submit a job to the service.")
    p.add_argument("--url", default="http://127.0.0.1:8787")
    p.add_argument("--tenant", default="cli")
    p.add_argument("--kind", choices=JOB_KINDS, default="cg")
    p.add_argument("--n", type=int, default=256)
    p.add_argument("--parts", type=int, default=2)
    p.add_argument("--iterations", type=int, default=20)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--nnz-per-row", type=float, default=8.0)
    p.add_argument("--deadline-s", type=float, default=None)
    p.add_argument("--working-set-bytes", type=int, default=None)
    p.add_argument("--checkpoint-every", type=int, default=5)
    p.add_argument("--wait", action="store_true",
                   help="block until the job reaches a terminal state")
    args = p.parse_args(argv)

    from repro.server.client import JobClient
    spec = JobSpec(tenant=args.tenant, kind=args.kind, n=args.n,
                   parts=args.parts, iterations=args.iterations,
                   seed=args.seed, nnz_per_row=args.nnz_per_row,
                   deadline_s=args.deadline_s,
                   working_set_bytes=args.working_set_bytes,
                   checkpoint_every=args.checkpoint_every)
    client = JobClient(args.url)
    rec = client.submit(spec)
    if rec["state"] == "rejected":
        print(json.dumps(rec, indent=2))
        return 3
    if args.wait:
        rec = client.wait_terminal(rec["id"])
    print(json.dumps(rec, indent=2))
    return 0 if rec["state"] in ("queued", "running", "done") else 3


def status_main(argv: list[str]) -> int:
    p = argparse.ArgumentParser(prog="python -m repro status",
                                description="Job or server status.")
    p.add_argument("job_id", nargs="?", default=None,
                   help="omit for server-wide stats")
    p.add_argument("--url", default="http://127.0.0.1:8787")
    p.add_argument("--wait", type=float, default=None,
                   help="long-poll up to this many seconds for a terminal state")
    p.add_argument("--trace", action="store_true",
                   help="print the job's event log instead of its record")
    args = p.parse_args(argv)

    from repro.server.client import JobClient
    client = JobClient(args.url)
    if args.job_id is None:
        print(json.dumps(client.stats(), indent=2))
        return 0
    if args.trace:
        print(json.dumps(client.trace(args.job_id), indent=2))
        return 0
    print(json.dumps(client.status(args.job_id, wait=args.wait), indent=2))
    return 0


def cancel_main(argv: list[str]) -> int:
    p = argparse.ArgumentParser(prog="python -m repro cancel",
                                description="Cancel a queued/running job.")
    p.add_argument("job_id")
    p.add_argument("--url", default="http://127.0.0.1:8787")
    args = p.parse_args(argv)

    from repro.server.client import JobClient, ServerError
    try:
        print(json.dumps(JobClient(args.url).cancel(args.job_id), indent=2))
        return 0
    except ServerError as exc:
        print(json.dumps(exc.payload, indent=2), file=sys.stderr)
        return 3


def sweep_main(argv: list[str]) -> int:
    p = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description="Reclaim shm segments / scratch dirs of dead runs.")
    p.add_argument("--dry-run", action="store_true")
    p.add_argument("--shm-dir", default="/dev/shm")
    p.add_argument("--tmp-dir", default=None)
    args = p.parse_args(argv)

    from repro.server.sweep import format_report, sweep
    report = sweep(shm_dir=args.shm_dir, tmp_dir=args.tmp_dir,
                   dry_run=args.dry_run)
    print(format_report(report, dry_run=args.dry_run))
    return 1 if report["errors"] else 0
