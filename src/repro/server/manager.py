"""The job manager: queue, workers, deadlines, preemption, drain.

One lock, one condition variable, zero polling sleeps: worker threads
and the deadline supervisor block on :class:`threading.Condition` waits
whose timeouts are derived from the nearest actionable instant (a
deadline or a retry-backoff expiry), and every state change notifies.
The DOOC013 lint rule enforces the no-``time.sleep`` discipline for
this package mechanically — a sleeping supervisor is a supervisor that
ignores SIGTERM for the rest of its nap.

Scheduling state machine (see docs/SERVER.md for the full diagram)::

    submit -> rejected                    (admission: budget/queue/quota)
           -> queued -> running -> done
                            |-> failed            (retries exhausted)
                            |-> cancelled         (client asked)
                            |-> deadline-exceeded (supervisor cancelled)
                            |-> preempted -> queued (resume=True)
                            |-> preempted [final]   (SIGTERM drain)
"""

from __future__ import annotations

import itertools
import json
import os
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.cancel import CancelToken
from repro.core.errors import DoocError, RunCancelled
from repro.faults import FaultPlan, RetryPolicy, job_fault_plan
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.server.admission import TenantQuota, admit, fair_share_order
from repro.server.jobs import JobRecord, JobSpec, JobState
from repro.server.runner import execute_attempt

__all__ = ["ServerConfig", "JobManager"]


def _default_retry() -> RetryPolicy:
    return RetryPolicy(attempts=3, backoff_s=0.05, multiplier=2.0,
                       max_backoff_s=1.0, jitter=0.0)


@dataclass
class ServerConfig:
    """Everything a :class:`JobManager` needs to run."""

    #: engine nodes per job run
    n_nodes: int = 1
    #: cluster-wide admission budget (sum of running working sets)
    memory_budget: int = 64 * 2**20
    #: bounded queue: submissions beyond this are load-shed (rejected)
    max_queue: int = 32
    #: concurrently running jobs (runner threads)
    max_concurrent: int = 2
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    quotas: dict[str, TenantQuota] = field(default_factory=dict)
    retry: RetryPolicy = field(default_factory=_default_retry)
    #: base fault plan; each (job, attempt) derives its own seed from it
    faults: FaultPlan | None = None
    #: extra DOoCEngine kwargs for every job run (memory budget per
    #: node, watchdog, worker sizing...)
    engine: dict = field(default_factory=dict)
    #: may a higher-weight job suspend a lower-weight running one?
    preemption: bool = True
    #: job checkpoint/working directory (None = pid-stamped temp dir)
    work_dir: str | Path | None = None


class JobManager:
    """Multi-tenant job scheduling over a pool of engine runs."""

    def __init__(self, config: ServerConfig | None = None):
        self.config = config or ServerConfig()
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._jobs: dict[str, JobRecord] = {}
        self._queue: list[JobRecord] = []
        self._running: dict[str, JobRecord] = {}
        self._mem_used = 0
        self._draining = False
        self._stopped = False
        self._seq = itertools.count(1)
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(enabled=True, capacity=1 << 14)
        self._ephemeral_work_dir = self.config.work_dir is None
        if self.config.work_dir is None:
            # pid-stamped like engine scratch, so `repro sweep` can
            # reclaim it if this server is SIGKILLed.
            self.work_dir = Path(tempfile.mkdtemp(
                prefix=f"dooc-{os.getpid()}-jobs-"))
        else:
            self.work_dir = Path(self.config.work_dir)
            self.work_dir.mkdir(parents=True, exist_ok=True)
        self._workers = [
            threading.Thread(target=self._worker_loop, daemon=True,
                             name=f"dooc-job-worker-{i}")
            for i in range(self.config.max_concurrent)
        ]
        self._supervisor = threading.Thread(
            target=self._supervise, daemon=True, name="dooc-job-supervisor")

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "JobManager":
        for t in self._workers:
            t.start()
        self._supervisor.start()
        return self

    def drain(self, timeout: float = 60.0) -> dict:
        """Graceful shutdown: cancel running jobs to their checkpoints,
        refuse new work, and write a drain manifest.

        Every running job is cancelled with reason ``drain``; its newest
        chunk-boundary checkpoint is already on disk (the runner
        checkpoints as it goes), so the manifest records a *resumable*
        job, not a lost one.  Queued jobs are listed untouched.
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            self._draining = True
            for rec in self._running.values():
                if rec.cancel is not None:
                    rec.cancel.cancel("drain")
            self._cond.notify_all()
            while self._running and time.monotonic() < deadline:
                self._cond.wait(timeout=max(deadline - time.monotonic(),
                                            0.01))
            manifest = {
                "drained_at": time.time(),
                "jobs": {rid: rec.to_json(verbose=True)
                         for rid, rec in self._jobs.items()},
                "queued": [r.id for r in self._queue],
                "preempted": [rid for rid, rec in self._jobs.items()
                              if rec.state == JobState.PREEMPTED],
                "undrained": sorted(self._running),
            }
            self._stopped = True
            self._cond.notify_all()
        for t in self._workers:
            t.join(timeout=5.0)
        self._supervisor.join(timeout=5.0)
        path = self.work_dir / "drain.json"
        path.write_text(json.dumps(manifest, indent=2), encoding="utf-8")
        if self._ephemeral_work_dir and not manifest["preempted"] \
                and not manifest["queued"] and not manifest["undrained"]:
            # Auto-created work dir with nothing resumable in it: the
            # drain leaves no scratch behind.  (With checkpointed jobs
            # it stays — the manifest + checkpoints ARE the handoff.)
            shutil.rmtree(self.work_dir, ignore_errors=True)
        return manifest

    # -- client surface ----------------------------------------------------------

    def submit(self, spec: JobSpec) -> JobRecord:
        """Admit (or reject) a job; returns its record either way."""
        with self._cond:
            quota = self.config.quotas.get(spec.tenant,
                                           self.config.default_quota)
            tenant_queued = sum(1 for r in self._queue
                                if r.spec.tenant == spec.tenant)
            decision = admit(
                spec, budget=self.config.memory_budget,
                queue_len=len(self._queue), max_queue=self.config.max_queue,
                tenant_queued=tenant_queued, quota=quota,
                draining=self._draining or self._stopped)
            rec = JobRecord(id=f"j{next(self._seq):04d}", spec=spec)
            self._jobs[rec.id] = rec
            if not decision.accepted:
                rec.state = JobState.REJECTED
                rec.outcome = {"reason": decision.reason}
                rec.finished_at = time.time()
                rec.done_event.set()
                rec.log("job_reject", reason=decision.reason)
                self.metrics.inc("jobs_rejected", label=spec.tenant)
                self.tracer.instant(-1, "server", "job", "job_reject",
                                    job=rec.id, reason=decision.reason)
                return rec
            if spec.deadline_s is not None:
                rec.deadline_at = time.monotonic() + spec.deadline_s
            rec.log("job_submit", tenant=spec.tenant, kind=spec.kind)
            self.metrics.inc("jobs_submitted", label=spec.tenant)
            self.tracer.instant(-1, "server", "job", "job_submit",
                                job=rec.id, tenant=spec.tenant,
                                kind=spec.kind)
            self._queue.append(rec)
            self._note_queue_depth()
            self._maybe_preempt_locked()
            self._cond.notify_all()
            return rec

    def cancel(self, job_id: str, reason: str = "client cancel") -> bool:
        """Cancel a queued or running job; False if unknown/terminal."""
        with self._cond:
            rec = self._jobs.get(job_id)
            if rec is None or rec.terminal:
                return False
            if rec.state == JobState.RUNNING and rec.cancel is not None:
                rec.cancel.cancel(reason)  # the worker finalizes it
            else:
                if rec in self._queue:
                    self._queue.remove(rec)
                    self._note_queue_depth()
                self._finalize_locked(rec, JobState.CANCELLED,
                                      {"reason": reason})
            self._cond.notify_all()
            return True

    def get(self, job_id: str) -> JobRecord | None:
        with self._lock:
            return self._jobs.get(job_id)

    def list_jobs(self) -> list[JobRecord]:
        with self._lock:
            return list(self._jobs.values())

    def stats(self) -> dict:
        with self._lock:
            return {
                "queue_depth": len(self._queue),
                "running": len(self._running),
                "memory_used": self._mem_used,
                "memory_budget": self.config.memory_budget,
                "draining": self._draining,
                "metrics": self.metrics.as_dict(),
            }

    # -- internals (all *_locked helpers run under self._lock) -------------------

    def _note_queue_depth(self) -> None:
        depth = len(self._queue)
        self.metrics.observe_max("queue_depth", float(depth))
        self.tracer.counter(-1, "server", "job", "queue_depth",
                            value=float(depth))

    def _quota_of(self, tenant: str) -> TenantQuota:
        return self.config.quotas.get(tenant, self.config.default_quota)

    def _fair_order_locked(self, now: float) -> list[JobRecord]:
        return fair_share_order(self._queue, list(self._running.values()),
                                self.config.quotas,
                                self.config.default_quota, now)

    def _startable_locked(self, rec: JobRecord, now: float) -> bool:
        if rec.not_before > now:
            return False
        quota = self._quota_of(rec.spec.tenant)
        tenant_running = sum(1 for r in self._running.values()
                             if r.spec.tenant == rec.spec.tenant)
        if tenant_running >= quota.max_running:
            return False
        return self._mem_used + rec.spec.working_set <= \
            self.config.memory_budget

    def _pick_locked(self, now: float) -> JobRecord | None:
        if self._draining or self._stopped:
            return None
        for rec in self._fair_order_locked(now):
            if self._startable_locked(rec, now):
                self._queue.remove(rec)
                self._note_queue_depth()
                return rec
        return None

    def _maybe_preempt_locked(self) -> None:
        """Suspend lower-weight running jobs for a starved heavier one.

        Triggered on submit and on finish: if the fair-share head of the
        queue is blocked *only* by memory, and strictly lighter running
        victims exist whose release would let it fit, cancel them with
        reason ``preempted`` — they checkpoint, requeue with
        ``resume=True``, and later continue bit-identically.
        """
        if not self.config.preemption or self._draining:
            return
        now = time.monotonic()
        head = None
        for rec in self._fair_order_locked(now):
            if rec.not_before > now:
                continue
            quota = self._quota_of(rec.spec.tenant)
            tenant_running = sum(1 for r in self._running.values()
                                 if r.spec.tenant == rec.spec.tenant)
            if tenant_running >= quota.max_running:
                continue
            head = rec
            break
        if head is None:
            return
        need = self._mem_used + head.spec.working_set \
            - self.config.memory_budget
        if need <= 0:
            return  # fits already; a worker will pick it up
        weight = self._quota_of(head.spec.tenant).weight
        victims = sorted(
            (r for r in self._running.values()
             if self._quota_of(r.spec.tenant).weight < weight
             and r.cancel is not None and not r.cancel.cancelled),
            key=lambda r: (self._quota_of(r.spec.tenant).weight,
                           -r.submitted_at))
        freeable, chosen = 0, []
        for victim in victims:
            chosen.append(victim)
            freeable += victim.spec.working_set
            if freeable >= need:
                break
        if freeable < need:
            return  # preempting everyone lighter still wouldn't fit
        for victim in chosen:
            victim.log("job_preempt", by=head.id)
            self.metrics.inc("jobs_preempted", label=victim.spec.tenant)
            self.tracer.instant(-1, "server", "job", "job_preempt",
                                job=victim.id, by=head.id)
            victim.cancel.cancel("preempted")

    def _finalize_locked(self, rec: JobRecord, state: str,
                         outcome: dict) -> None:
        rec.state = state
        rec.outcome = outcome
        rec.finished_at = time.time()
        rec.done_event.set()
        event = {
            JobState.DONE: "job_done",
            JobState.FAILED: "job_failed",
            JobState.CANCELLED: "job_cancelled",
            JobState.DEADLINE_EXCEEDED: "job_deadline",
        }[state]
        rec.log(event, **{k: v for k, v in outcome.items()
                          if isinstance(v, (str, int, float, bool))})
        self.metrics.inc(f"jobs_{state.replace('-', '_')}",
                         label=rec.spec.tenant)
        self.tracer.instant(-1, "server", "job", event, job=rec.id)

    # -- worker threads ----------------------------------------------------------

    def _wait_timeout_locked(self, now: float) -> float | None:
        """Seconds until the nearest retry-backoff expiry (workers need
        no deadline wakeups — the supervisor owns those)."""
        pending = [r.not_before for r in self._queue if r.not_before > now]
        if not pending:
            return None
        return max(min(pending) - now, 0.01)

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                rec = None
                while rec is None:
                    if self._stopped:
                        return
                    now = time.monotonic()
                    rec = self._pick_locked(now)
                    if rec is None:
                        self._cond.wait(self._wait_timeout_locked(now))
                rec.state = JobState.RUNNING
                rec.cancel = CancelToken()
                resume = rec.resume
                attempt = rec.attempts + 1
                self._running[rec.id] = rec
                self._mem_used += rec.spec.working_set
                event = "job_resume" if resume else "job_start"
                rec.log(event, attempt=attempt)
                self.tracer.instant(-1, "server", "job", event,
                                    job=rec.id, attempt=attempt)
                if resume:
                    self.metrics.inc("jobs_resumed", label=rec.spec.tenant)
                token = rec.cancel
            plan = None
            if self.config.faults is not None and self.config.faults.enabled:
                plan = job_fault_plan(self.config.faults, rec.id, attempt)
            error: BaseException | None = None
            result: dict | None = None
            try:
                result = execute_attempt(
                    rec.spec, job_dir=self.work_dir / rec.id, cancel=token,
                    resume=resume, n_nodes=self.config.n_nodes,
                    engine=self.config.engine, faults=plan)
            except BaseException as exc:  # noqa: BLE001 - finalized below
                error = exc
            with self._cond:
                self._running.pop(rec.id, None)
                self._mem_used -= rec.spec.working_set
                self._settle_locked(rec, attempt, result, error)
                self._maybe_preempt_locked()
                self._cond.notify_all()

    def _settle_locked(self, rec: JobRecord, attempt: int,
                       result: dict | None,
                       error: BaseException | None) -> None:
        """Map one attempt's outcome onto the job state machine."""
        if error is None:
            rec.attempts = attempt
            self._finalize_locked(rec, JobState.DONE, dict(result))
            return
        if isinstance(error, RunCancelled):
            reason = error.reason
            if reason == "deadline":
                self._finalize_locked(rec, JobState.DEADLINE_EXCEEDED,
                                      {"reason": "deadline exceeded",
                                       "deadline_s": rec.spec.deadline_s})
            elif reason in ("preempted", "drain"):
                rec.state = JobState.PREEMPTED
                rec.resume = True
                rec.preemptions += 1
                rec.cancel = None
                if reason == "preempted" and not self._draining:
                    # Requeue immediately; fair share decides when it
                    # gets back in (state flips to QUEUED so pickers
                    # and quota counts treat it uniformly).
                    rec.state = JobState.QUEUED
                    self._queue.append(rec)
                    self._note_queue_depth()
                # On drain the record *stays* PREEMPTED: its checkpoint
                # and the drain manifest are the continuation.
            else:
                self._finalize_locked(rec, JobState.CANCELLED,
                                      {"reason": reason})
            return
        rec.attempts = attempt
        if (isinstance(error, DoocError) and not self._draining
                and attempt < self.config.retry.attempts):
            delay = self.config.retry.delay(attempt)
            rec.state = JobState.QUEUED
            rec.not_before = time.monotonic() + delay
            rec.resume = True  # keep any checkpointed progress
            rec.cancel = None
            rec.log("job_retry", attempt=attempt, error=str(error),
                    backoff_s=delay)
            self.metrics.inc("job_retries", label=rec.spec.tenant)
            self.tracer.instant(-1, "server", "job", "job_retry",
                                job=rec.id, attempt=attempt)
            self._queue.append(rec)
            self._note_queue_depth()
            return
        self._finalize_locked(rec, JobState.FAILED, {
            "reason": str(error), "error_type": type(error).__name__,
            "attempts": attempt,
        })

    # -- deadline supervisor -----------------------------------------------------

    def _supervise(self) -> None:
        """Enforce deadlines with condition waits, never sleeps.

        Queued jobs past their deadline finalize directly (they never
        consumed a slot); running jobs get their token cancelled with
        reason ``deadline`` and their worker finalizes the structured
        ``deadline-exceeded`` outcome.
        """
        with self._cond:
            while not self._stopped:
                now = time.monotonic()
                nearest: float | None = None
                for rec in list(self._queue):
                    if rec.deadline_at is None:
                        continue
                    if now >= rec.deadline_at:
                        self._queue.remove(rec)
                        self._note_queue_depth()
                        self._finalize_locked(
                            rec, JobState.DEADLINE_EXCEEDED,
                            {"reason": "deadline exceeded before start",
                             "deadline_s": rec.spec.deadline_s})
                    else:
                        nearest = (rec.deadline_at if nearest is None
                                   else min(nearest, rec.deadline_at))
                for rec in self._running.values():
                    if rec.deadline_at is None:
                        continue
                    if now >= rec.deadline_at:
                        if rec.cancel is not None:
                            rec.cancel.cancel("deadline")
                    else:
                        nearest = (rec.deadline_at if nearest is None
                                   else min(nearest, rec.deadline_at))
                timeout = None if nearest is None \
                    else max(nearest - now, 0.01)
                self._cond.wait(timeout)
