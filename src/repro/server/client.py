"""A tiny stdlib client for the job service (urllib only).

Used by the CLI (``repro submit/status/cancel``), the CI smoke script,
and the soak test.  ``wait_terminal`` long-polls the server's
``?wait=`` parameter, so the client never spins: each request parks on
the job's ``done_event`` server-side until the state is terminal.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

from repro.server.jobs import JobSpec

__all__ = ["JobClient", "ServerError"]


class ServerError(RuntimeError):
    """A non-2xx response, with the server's structured body attached."""

    def __init__(self, status: int, payload: dict):
        super().__init__(f"HTTP {status}: {payload}")
        self.status = status
        self.payload = payload


class JobClient:
    """Talk to a running :class:`~repro.server.http.DoocJobServer`."""

    def __init__(self, base_url: str = "http://127.0.0.1:8787",
                 timeout: float = 60.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(self, method: str, path: str,
                 body: dict | None = None) -> dict | list:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(self.base_url + path, data=data,
                                     headers=headers, method=method)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read().decode("utf-8"))
            except (ValueError, OSError):
                payload = {"error": str(exc)}
            raise ServerError(exc.code, payload) from exc

    # -- API ---------------------------------------------------------------------

    def healthy(self) -> bool:
        try:
            return bool(self._request("GET", "/healthz").get("ok"))
        except (ServerError, OSError):
            return False

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def submit(self, spec: JobSpec | dict) -> dict:
        """Submit; returns the job record.  A 429 rejection is returned
        as a normal record (``state == "rejected"``), not raised — the
        refusal is a structured outcome, not a transport error."""
        body = spec.to_json() if isinstance(spec, JobSpec) else dict(spec)
        try:
            return self._request("POST", "/jobs", body)
        except ServerError as exc:
            if exc.status == 429:
                return exc.payload
            raise

    def status(self, job_id: str, wait: float | None = None) -> dict:
        path = f"/jobs/{job_id}"
        if wait is not None:
            path += f"?wait={wait:g}"
        return self._request("GET", path)

    def trace(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}/trace")

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def jobs(self) -> list:
        return self._request("GET", "/jobs")

    def drain(self) -> dict:
        return self._request("POST", "/drain")

    def wait_terminal(self, job_id: str, timeout: float = 300.0) -> dict:
        """Long-poll until the job reaches a terminal state (or a drain
        leaves it PREEMPTED and the server goes away)."""
        import time
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(f"job {job_id} not terminal "
                                   f"after {timeout}s")
            rec = self.status(job_id, wait=min(remaining, 25.0))
            from repro.server.jobs import JobState
            if rec["state"] in JobState.TERMINAL:
                return rec
