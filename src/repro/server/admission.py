"""Admission control, per-tenant quotas, and weighted fair share.

Pure decision logic: no locks, no threads, no clocks.  The
:class:`~repro.server.manager.JobManager` owns the mutable queue and
calls in here under its lock, so every rule is unit-testable with plain
data.  The contract admission enforces is the robustness core of the
service: a job the cluster cannot hold is **refused by name** at the
door (a structured ``rejected(reason=...)``) instead of being admitted
to wedge against the engine's memory budget and die as a watchdog stall.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.server.jobs import JobRecord, JobSpec, JobState

__all__ = ["TenantQuota", "AdmissionDecision", "admit", "fair_share_order"]


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant limits and scheduling weight.

    ``weight`` drives both fair share (a weight-2 tenant gets twice the
    running share of a weight-1 tenant under contention) and preemption
    (only a strictly higher-weight job may suspend a running victim).
    """

    max_running: int = 2
    max_queued: int = 8
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.max_running < 1 or self.max_queued < 0:
            raise ValueError("max_running >= 1 and max_queued >= 0 required")
        if self.weight <= 0:
            raise ValueError("weight must be positive")


@dataclass(frozen=True)
class AdmissionDecision:
    """``accepted`` or a structured refusal (the HTTP layer maps
    ``rejected`` to a 429 with ``reason`` in the body)."""

    accepted: bool
    reason: str = ""

    @staticmethod
    def ok() -> "AdmissionDecision":
        return AdmissionDecision(True)

    @staticmethod
    def rejected(reason: str) -> "AdmissionDecision":
        return AdmissionDecision(False, reason)


def admit(spec: JobSpec, *, budget: int, queue_len: int, max_queue: int,
          tenant_queued: int, quota: TenantQuota,
          draining: bool = False) -> AdmissionDecision:
    """Should this submission enter the queue at all?

    Order matters and is part of the contract: an impossible job (working
    set over the *whole* cluster budget) is named as such even when the
    queue also happens to be full — the client must learn it can never
    run, not just retry later.
    """
    if draining:
        return AdmissionDecision.rejected("server is draining")
    ws = spec.working_set
    if ws > budget:
        return AdmissionDecision.rejected(
            f"working set {ws} bytes exceeds the cluster memory budget "
            f"{budget} bytes; this job can never be scheduled")
    if queue_len >= max_queue:
        return AdmissionDecision.rejected(
            f"job queue is saturated ({queue_len}/{max_queue}); "
            "load shedding — retry later")
    if tenant_queued >= quota.max_queued:
        return AdmissionDecision.rejected(
            f"tenant {spec.tenant!r} queue quota exhausted "
            f"({tenant_queued}/{quota.max_queued})")
    return AdmissionDecision.ok()


def fair_share_order(queued: list[JobRecord],
                     running: list[JobRecord],
                     quotas, default_quota: TenantQuota,
                     now: float) -> list[JobRecord]:
    """Queued jobs in the order the scheduler should try to start them.

    Weighted deficit scheduling: each tenant's priority is
    ``weight / (running_jobs + 1)``, so a tenant's claim shrinks as its
    share grows and a heavier tenant overtakes a lighter one at equal
    share.  Ties break by submission time then id — deterministic, so
    two schedulers given the same state pick the same job.  Jobs inside
    a retry-backoff window (``not_before`` in the future) sort last and
    are skipped by the caller.
    """
    share: dict[str, int] = {}
    for r in running:
        if r.state == JobState.RUNNING:
            share[r.spec.tenant] = share.get(r.spec.tenant, 0) + 1

    def quota_of(tenant: str) -> TenantQuota:
        return quotas.get(tenant, default_quota)

    def key(r: JobRecord):
        backing_off = r.not_before > now
        priority = quota_of(r.spec.tenant).weight / (
            share.get(r.spec.tenant, 0) + 1)
        return (backing_off, -priority, r.submitted_at, r.id)

    return sorted(queued, key=key)
