"""DOoC-as-a-service: a multi-tenant job server over the DOoC engine.

The paper's middleware assumes one well-behaved run per cluster; this
package turns it into a long-lived service that accepts solver jobs
(iterated SpMV, Jacobi, CG, Lanczos) from many concurrent clients and
runs them on a pool of :class:`~repro.core.engine.DOoCEngine` runs under
a fixed cluster memory budget.  The robustness core:

* **admission control** — a job whose declared working set exceeds the
  remaining budget is *rejected by name* (a 429-style structured
  ``rejected(reason=...)``), never admitted to stall against the
  watchdog; a saturated queue load-sheds the same way;
* **per-tenant quotas and weighted fair share** — bounded queue slots
  per tenant, and the scheduler picks runnable jobs by weighted deficit
  (tenant weight over running share), not arrival order;
* **deadlines** — a supervisor cancels the underlying run through its
  :class:`~repro.core.cancel.CancelToken` and the job ends in a
  structured ``deadline-exceeded`` state;
* **retry with backoff** — jobs that die to transient faults re-run
  under :class:`repro.faults.RetryPolicy` with a re-derived per-attempt
  fault seed (:func:`repro.faults.job_fault_plan`);
* **checkpoint-based preemption** — a higher-weight job can suspend a
  running victim (cancel + chunk-boundary checkpoint via
  :class:`repro.recovery.checkpoint.CheckpointManager`) and the victim
  later resumes bit-identically; SIGTERM drains the whole server the
  same way.

See docs/SERVER.md for the HTTP API and lifecycle semantics.
"""

from repro.server.admission import AdmissionDecision, TenantQuota
from repro.server.jobs import (
    JOB_KINDS,
    JobRecord,
    JobSpec,
    JobState,
    estimate_working_set,
)
from repro.server.manager import JobManager, ServerConfig

__all__ = [
    "AdmissionDecision",
    "TenantQuota",
    "JOB_KINDS",
    "JobSpec",
    "JobState",
    "JobRecord",
    "estimate_working_set",
    "JobManager",
    "ServerConfig",
]
