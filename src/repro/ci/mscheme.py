"""Exact M-scheme dimension counting and uniform basis sampling.

The M-scheme basis for (Z protons, N neutrons) at truncation ``Nmax`` and
total magnetic projection ``Mj`` is the set of Slater-determinant pairs
(one determinant per species) with

* total HO excitation quanta (above the minimal configuration) at most
  ``Nmax`` **and of the same parity as** ``Nmax`` (fixing the many-body
  parity, as MFDn does: even ``Nmax`` spans natural-parity spaces, odd
  ``Nmax`` unnatural-parity ones);
* total magnetic projection ``sum m_j = Mj``.

:class:`SpeciesCounter` runs a knapsack-style dynamic program producing,
for one species, the count of determinants per (quanta, 2M) cell.  Since
the constraints see a single-particle state only through its (quanta, m)
pair, states are *grouped* by that pair and the DP walks groups with
binomial multiplicities — two orders of magnitude fewer steps than
state-by-state, and small enough to snapshot prefix tables for exact
uniform sampling by backward branching.  :class:`MSchemeSpace` convolves
the two species and applies the truncation; it regenerates Table I's
dimensions exactly and feeds the nnz estimator with uniform basis draws.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.ci.ho_basis import SPState, ho_states_up_to, minimal_quanta


@dataclass(frozen=True)
class _Group:
    """All single-particle states sharing (quanta, 2m)."""

    quanta: int
    mm: int
    states: tuple[SPState, ...]

    @property
    def size(self) -> int:
        return len(self.states)


def _group_states(states: tuple[SPState, ...]) -> list[_Group]:
    buckets: dict[tuple[int, int], list[SPState]] = {}
    for s in states:
        buckets.setdefault((s.quanta, s.mm), []).append(s)
    return [
        _Group(q, mm, tuple(ss))
        for (q, mm), ss in sorted(buckets.items())
    ]


class SpeciesCounter:
    """Determinant counts of one species per (total quanta, total 2m)."""

    def __init__(self, particles: int, max_quanta: int):
        if particles < 0:
            raise ValueError("particle count must be non-negative")
        if max_quanta < minimal_quanta(particles):
            raise ValueError(
                f"max_quanta={max_quanta} below the Pauli minimum "
                f"{minimal_quanta(particles)} for {particles} particles"
            )
        self.particles = particles
        self.max_quanta = max_quanta
        self.states: tuple[SPState, ...] = ho_states_up_to(max_quanta)
        self.groups = _group_states(self.states)
        # 2m bound: the largest-|2m| states a determinant could combine.
        jjs = sorted((s.jj for s in self.states), reverse=True)
        self.mm_bound = sum(jjs[:particles]) if particles else 0
        self._q_dim = max_quanta + 1
        self._m_dim = 2 * self.mm_bound + 1
        # prefix[g][k]: counts using only groups[:g]; prefix[-1] is the full DP.
        self._prefixes = self._build_prefixes()

    @property
    def mm_offset(self) -> int:
        return self.mm_bound

    def _build_prefixes(self) -> list[list[np.ndarray]]:
        tables = [
            np.zeros((self._q_dim, self._m_dim), dtype=np.int64)
            for _ in range(self.particles + 1)
        ]
        tables[0][0, self.mm_offset] = 1
        snapshots = [[t.copy() for t in tables]]
        for g in self.groups:
            new = [t.copy() for t in tables]
            for t_occ in range(1, min(self.particles, g.size) + 1):
                dq = t_occ * g.quanta
                dm = t_occ * g.mm
                if dq >= self._q_dim:
                    break
                weight = math.comb(g.size, t_occ)
                for k in range(t_occ, self.particles + 1):
                    src = tables[k - t_occ]
                    dst = new[k]
                    if dm >= 0:
                        dst[dq:, dm:] += weight * src[: self._q_dim - dq,
                                                      : self._m_dim - dm]
                    else:
                        dst[dq:, : self._m_dim + dm] += weight * src[
                            : self._q_dim - dq, -dm:]
            tables = new
            snapshots.append([t.copy() for t in tables])
        return snapshots

    # -- queries -----------------------------------------------------------------

    def count(self, quanta: int, mm_total: int) -> int:
        """Determinants with exactly ``quanta`` total quanta and 2M."""
        return self._cell(len(self.groups), self.particles, quanta, mm_total)

    def counts_matrix(self) -> np.ndarray:
        """The (quanta, shifted 2m) grid for the full species."""
        return self._prefixes[-1][self.particles]

    def _cell(self, n_groups: int, k: int, q: int, mm: int) -> int:
        if k < 0 or q < 0 or q > self.max_quanta:
            return 0
        col = mm + self.mm_offset
        if not 0 <= col < self._m_dim:
            return 0
        return int(self._prefixes[n_groups][k][q, col])

    # -- uniform sampling -----------------------------------------------------------

    def sample(self, quanta: int, mm_total: int,
               rng: np.random.Generator) -> list[SPState]:
        """Uniform determinant with the given (quanta, 2M) totals.

        Walks groups backwards; at group ``g`` the occupancy ``t`` is drawn
        with weight C(size, t) * prefix_count(rest), then ``t`` distinct
        states are drawn uniformly from the group.
        """
        if self.count(quanta, mm_total) == 0:
            raise ValueError(f"no determinant with quanta={quanta}, 2M={mm_total}")
        chosen: list[SPState] = []
        k, q, mm = self.particles, quanta, mm_total
        for gi in range(len(self.groups) - 1, -1, -1):
            if k == 0:
                break
            g = self.groups[gi]
            weights = []
            t_max = min(k, g.size)
            for t_occ in range(t_max + 1):
                rest = self._cell(gi, k - t_occ, q - t_occ * g.quanta,
                                  mm - t_occ * g.mm)
                weights.append(math.comb(g.size, t_occ) * rest)
            total = sum(weights)
            if total <= 0:  # pragma: no cover - defensive
                raise RuntimeError("sampling walked into a zero-count cell")
            draw = int(rng.integers(0, total))
            t_occ = 0
            acc = 0
            for t_occ, w in enumerate(weights):
                acc += w
                if draw < acc:
                    break
            if t_occ:
                picked = rng.choice(g.size, size=t_occ, replace=False)
                chosen.extend(g.states[int(i)] for i in picked)
                k -= t_occ
                q -= t_occ * g.quanta
                mm -= t_occ * g.mm
        if k != 0:  # pragma: no cover - defensive
            raise RuntimeError("sampling failed to place all particles")
        return chosen


@dataclass(frozen=True)
class MSchemeSpace:
    """The two-species M-scheme space of one Table-I calculation."""

    protons: int
    neutrons: int
    nmax: int
    mj2: int  # twice Mj (even for even A, odd for odd A)

    def __post_init__(self) -> None:
        if self.nmax < 0:
            raise ValueError("Nmax must be non-negative")
        total_parity = (self.protons + self.neutrons) % 2
        if (self.mj2 % 2) != total_parity:
            raise ValueError(
                f"2Mj={self.mj2} has wrong parity for A={self.protons + self.neutrons}"
            )

    @property
    def min_quanta(self) -> int:
        return minimal_quanta(self.protons) + minimal_quanta(self.neutrons)

    @cached_property
    def proton_counter(self) -> SpeciesCounter:
        return SpeciesCounter(self.protons,
                              minimal_quanta(self.protons) + self.nmax)

    @cached_property
    def neutron_counter(self) -> SpeciesCounter:
        return SpeciesCounter(self.neutrons,
                              minimal_quanta(self.neutrons) + self.nmax)

    def _allowed_exc(self, exc: int, fixed_parity: bool) -> bool:
        if exc < 0 or exc > self.nmax:
            return False
        return not fixed_parity or (exc - self.nmax) % 2 == 0

    def dimension(self, *, fixed_parity: bool = True) -> int:
        """The basis dimension D of Table I.

        ``fixed_parity=True`` restricts total excitation to the parity of
        ``Nmax`` (MFDn's convention); ``False`` counts every excitation
        <= Nmax (both parities), kept for convention comparisons.
        """
        cp, cn = self.proton_counter, self.neutron_counter
        mp = cp.counts_matrix()
        mn = cn.counts_matrix()
        total = 0
        for qp in range(mp.shape[0]):
            for qn in range(mn.shape[0]):
                if not self._allowed_exc(qp + qn - self.min_quanta, fixed_parity):
                    continue
                total += _correlate_at(mp[qp], cp.mm_offset,
                                       mn[qn], cn.mm_offset, self.mj2)
        return int(total)

    def sample_determinant(self, rng: np.random.Generator,
                           *, fixed_parity: bool = True
                           ) -> tuple[list[SPState], list[SPState]]:
        """Uniform random basis state: (proton states, neutron states)."""
        cp, cn = self.proton_counter, self.neutron_counter
        cells, weights = self._cells(fixed_parity)
        idx = int(rng.choice(len(cells), p=weights / weights.sum()))
        qp, qn, mmp = cells[idx]
        return (
            cp.sample(qp, mmp, rng),
            cn.sample(qn, self.mj2 - mmp, rng),
        )

    @cached_property
    def _cells_cache(self) -> dict:
        return {}

    def _cells(self, fixed_parity: bool):
        cached = self._cells_cache.get(fixed_parity)
        if cached is not None:
            return cached
        cp, cn = self.proton_counter, self.neutron_counter
        mp = cp.counts_matrix()
        mn = cn.counts_matrix()
        cells = []
        weights = []
        for qp in range(mp.shape[0]):
            for qn in range(mn.shape[0]):
                if not self._allowed_exc(qp + qn - self.min_quanta, fixed_parity):
                    continue
                for col_p in np.nonzero(mp[qp])[0]:
                    mmp = int(col_p) - cp.mm_offset
                    w_p = int(mp[qp][col_p])
                    w_n = cn.count(qn, self.mj2 - mmp)
                    if w_n == 0:
                        continue
                    cells.append((qp, qn, mmp))
                    weights.append(float(w_p) * float(w_n))
        if not cells:
            raise ValueError("empty basis: nothing to sample")
        result = (cells, np.array(weights))
        self._cells_cache[fixed_parity] = result
        return result


def _correlate_at(row_a: np.ndarray, off_a: int,
                  row_b: np.ndarray, off_b: int, target: int) -> int:
    """sum over ma + mb = target of row_a[ma] * row_b[mb] (shifted)."""
    total = 0
    for col_a in np.nonzero(row_a)[0]:
        ma = int(col_a) - off_a
        col_b = (target - ma) + off_b
        if 0 <= col_b < row_b.shape[0]:
            total += int(row_a[col_a]) * int(row_b[col_b])
    return total
