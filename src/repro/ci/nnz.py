"""Stochastic estimation of the Hamiltonian's nonzero count.

With a 2-body interaction, ``H_ij`` can be nonzero only when determinants
``i`` and ``j`` differ in at most two single-particle states (Slater-Condon
rules), conserve total M, and both lie in the truncated basis.  The number
of nonzeros per row is therefore the number of 0-, 1-, and 2-substitution
moves from a basis state that stay in the basis.

Enumerating all D rows is out of reach for Table I's spaces (D up to 1.3e9)
— MFDn itself distributes this counting over thousands of cores — so we
estimate: sample basis determinants *uniformly* (exact DP-backed sampling,
:meth:`repro.ci.mscheme.MSchemeSpace.sample_determinant`) and count each
sampled row's connections exactly with group-level combinatorics (no move
enumeration).  The estimator is unbiased for the mean row count, and
``nnz = D * mean_row``; DESIGN.md records this as the one deliberate
approximation in Table I (D itself is exact).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.ci.ho_basis import SPState
from repro.ci.mscheme import MSchemeSpace, SpeciesCounter


def _group_grid(counter: SpeciesCounter) -> np.ndarray:
    """G[q, m_col] = number of single-particle states in that (q, 2m) cell."""
    grid = np.zeros((counter.max_quanta + 1, 2 * counter.mm_bound + 1),
                    dtype=np.int64)
    for g in counter.groups:
        grid[g.quanta, g.mm + counter.mm_offset] = g.size
    return grid


def _occupancy_grid(counter: SpeciesCounter,
                    occ: Sequence[SPState]) -> np.ndarray:
    grid = np.zeros((counter.max_quanta + 1, 2 * counter.mm_bound + 1),
                    dtype=np.int64)
    for s in occ:
        grid[s.quanta, s.mm + counter.mm_offset] += 1
    return grid


def _singles_table(counter: SpeciesCounter, occ: Sequence[SPState],
                   unocc: np.ndarray) -> dict[tuple[int, int], int]:
    """count of (a in occ, b unoccupied) moves keyed by (2dm, dq).

    No in-basis filtering here — the caller applies the joint constraints.
    """
    table: dict[tuple[int, int], int] = {}
    q_dim, m_dim = unocc.shape
    off = counter.mm_offset
    for a in occ:
        for qb in range(q_dim):
            row = unocc[qb]
            for col in np.nonzero(row)[0]:
                dm = (int(col) - off) - a.mm
                dq = qb - a.quanta
                key = (dm, dq)
                table[key] = table.get(key, 0) + int(row[col])
    return table


def _pair_targets(unocc: np.ndarray, off: int, q2: int, m2: int) -> int:
    """Unordered pairs of distinct unoccupied states with total quanta q2
    and total 2m equal to m2."""
    q_dim, m_dim = unocc.shape
    ordered = 0
    for q1 in range(max(0, q2 - (q_dim - 1)), min(q2, q_dim - 1) + 1):
        qb = q2 - q1
        row1 = unocc[q1]
        row2 = unocc[qb]
        # sum over m1 of row1[m1] * row2[m2 - m1] with shifted columns.
        for col1 in np.nonzero(row1)[0]:
            m1 = int(col1) - off
            col2 = (m2 - m1) + off
            if 0 <= col2 < m_dim:
                ordered += int(row1[col1]) * int(row2[col2])
    # Subtract self-pairs (b, b): a state used twice needs 2q_b = q2, 2m_b = m2.
    diag = 0
    if q2 % 2 == 0 and m2 % 2 == 0:
        qb = q2 // 2
        col = (m2 // 2) + off
        if 0 <= qb < q_dim and 0 <= col < m_dim:
            diag = int(unocc[qb, col])
    return (ordered - diag) // 2


@dataclass(frozen=True)
class RowEstimate:
    """Monte-Carlo estimate of the mean row nonzero count."""

    samples: int
    mean: float
    std_error: float

    @property
    def ci95(self) -> tuple[float, float]:
        return (self.mean - 1.96 * self.std_error,
                self.mean + 1.96 * self.std_error)


def count_row_connections(space: MSchemeSpace,
                          protons: Sequence[SPState],
                          neutrons: Sequence[SPState]) -> int:
    """Exact number of basis states connected to one determinant
    (including itself: the diagonal entry)."""
    cp, cn = space.proton_counter, space.neutron_counter
    exc = (sum(s.quanta for s in protons) + sum(s.quanta for s in neutrons)
           - space.min_quanta)
    budget_hi = space.nmax - exc   # max allowed total dq
    budget_lo = -exc               # min allowed total dq

    def dq_allowed(dq: int) -> bool:
        # Parity of the excitation is pinned to Nmax's parity, so any
        # in-basis move changes total quanta by an even amount.
        return budget_lo <= dq <= budget_hi and dq % 2 == 0

    unocc_p = _group_grid(cp) - _occupancy_grid(cp, protons)
    unocc_n = _group_grid(cn) - _occupancy_grid(cn, neutrons)

    total = 1  # the diagonal

    singles_p = _singles_table(cp, protons, unocc_p)
    singles_n = _singles_table(cn, neutrons, unocc_n)

    # 1-substitution moves: dm = 0 and even dq within budget.
    for (dm, dq), count in singles_p.items():
        if dm == 0 and dq_allowed(dq):
            total += count
    for (dm, dq), count in singles_n.items():
        if dm == 0 and dq_allowed(dq):
            total += count

    # Cross-species doubles: any (dm, dq_p) x (-dm, dq_n) with dq_p + dq_n
    # allowed. Individual moves may break M or parity; the pair restores them.
    n_by_dm: dict[int, list[tuple[int, int]]] = {}
    for (dm, dq), count in singles_n.items():
        n_by_dm.setdefault(dm, []).append((dq, count))
    for (dm, dq_p), count_p in singles_p.items():
        for dq_n, count_n in n_by_dm.get(-dm, []):
            if dq_allowed(dq_p + dq_n):
                total += count_p * count_n

    # Same-species doubles: occupied pair out, unoccupied pair in.
    for counter, occ, unocc in ((cp, protons, unocc_p), (cn, neutrons, unocc_n)):
        off = counter.mm_offset
        occ_list = list(occ)
        for i in range(len(occ_list)):
            for j in range(i + 1, len(occ_list)):
                a1, a2 = occ_list[i], occ_list[j]
                q_out = a1.quanta + a2.quanta
                m2 = a1.mm + a2.mm
                for dq in range(budget_lo, budget_hi + 1):
                    if dq % 2 != 0:
                        continue
                    q2 = q_out + dq
                    if q2 < 0:
                        continue
                    total += _pair_targets(unocc, off, q2, m2)
    return total


def estimate_row_nnz(space: MSchemeSpace, samples: int,
                     rng: np.random.Generator) -> RowEstimate:
    """Monte-Carlo mean row nonzero count over uniform basis states."""
    if samples < 2:
        raise ValueError("need at least two samples for a standard error")
    counts = np.empty(samples, dtype=np.float64)
    for k in range(samples):
        protons, neutrons = space.sample_determinant(rng)
        counts[k] = count_row_connections(space, protons, neutrons)
    return RowEstimate(
        samples=samples,
        mean=float(counts.mean()),
        std_error=float(counts.std(ddof=1) / np.sqrt(samples)),
    )


def estimate_total_nnz(space: MSchemeSpace, samples: int,
                       rng: np.random.Generator,
                       *, dimension: int | None = None) -> tuple[float, float]:
    """(nnz estimate, standard error): D x mean row count."""
    d = space.dimension() if dimension is None else dimension
    row = estimate_row_nnz(space, samples, rng)
    return d * row.mean, d * row.std_error
